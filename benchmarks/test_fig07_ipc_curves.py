"""Figure 7: per-workload normalized-IPC S-curves.

Checks the paper's claim that Entangling never degrades performance,
unlike NextLine which can.
"""

from repro.analysis.figures import per_workload_curves, render_curves


def test_fig07_ipc_curves(benchmark, curve_evaluation):
    curves = benchmark.pedantic(
        per_workload_curves, args=(curve_evaluation, "ipc"), rounds=1, iterations=1
    )
    print()
    print(render_curves("Fig 7 — normalized IPC (sorted per config)", curves))

    # Entangling never drops below the no-prefetch baseline.
    assert min(curves["entangling_4k"]) >= 0.99
    # The 4K configuration dominates the 2K configuration pointwise-sorted.
    paired = zip(curves["entangling_2k"], curves["entangling_4k"])
    assert sum(b >= a for a, b in paired) >= len(curves["entangling_2k"]) // 2
    # Ideal tops every workload.
    assert min(curves["ideal"]) >= max(
        min(curves[c]) for c in curves if c != "ideal"
    )
