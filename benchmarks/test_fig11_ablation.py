"""Figure 11: breakdown of the contributions to performance.

Variants: BB (block-only), BBEnt (+destination lines), BBEntBB
(+destination blocks), Ent (lines only, no blocks), and the full
BBEntBB-Merge.  Shape claim: each mechanism adds performance, with
entangling the key contributor and merging the finishing touch.
"""

from repro.analysis.figures import fig11_ablation, render_fig11


def test_fig11_ablation(benchmark, suite):
    data = benchmark.pedantic(
        fig11_ablation,
        args=(suite,),
        kwargs={"sizes": (2048, 4096, 8192)},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_fig11(data))

    for size in (2048, 4096, 8192):
        bb = data["BB"][size]
        bbent = data["BBEnt"][size]
        bbentbb = data["BBEntBB"][size]
        full = data["BBEntBB-Merge"][size]
        # Entangling destinations on top of blocks helps...
        assert bbent > bb
        # ...prefetching whole destination blocks helps further...
        assert bbentbb > bbent
        # ...and the full design is the best variant overall.
        assert full >= bbentbb * 0.995
        # Everything improves on the no-prefetch baseline.
        assert all(data[v][size] > 1.0 for v in data)
