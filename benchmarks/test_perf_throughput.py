"""Simulator throughput telemetry: the speed-tracking harness.

Runs the no-prefetch baseline and Entangling-4K over a small fixed
suite — once per simulator backend — reads the per-run
wall-clock/throughput telemetry that every simulation records in
``SimStats``, and appends one record to the ``BENCH_throughput.json``
trajectory file at the repository root.  The trajectory is versioned
(``schema_version``) and capped at the last N records
(``REPRO_BENCH_KEEP``, default 50) via
:mod:`repro.analysis.regression`, whose ``repro bench-check`` sentinel
gates each new record against the trajectory in CI.

The backend sweep earns its keep twice over: every run carries a
``backend`` tag and a measured ``speedup_vs_reference`` (the CI speedup
gate reads the per-backend geomean), and the benchmark asserts the
fast backends' :meth:`~repro.sim.stats.SimStats.signature` equals the
reference backend's bit-for-bit on the full bench suite — the largest
identity check in the repo, riding along with every bench run.
"""

from __future__ import annotations

import math
import os
import platform
import time

from repro.analysis.experiments import (
    resolve_config,
    resolve_warmup,
    run_suite,
    _cached_units,
    _cached_workload,
)
from repro.analysis.regression import (
    load_trajectory,
    retention_from_env,
    save_trajectory,
)
from repro.analysis.runcache import RunCache
from repro.obs.profiler import PhaseProfiler, set_stage_profiler
from repro.sim.config import SimConfig
from repro.sim.simulator import simulate
from repro.sim.stages import vector
from repro.workloads.generators import CATEGORIES, WorkloadSpec

TRAJECTORY_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_throughput.json"
)

#: Fixed small suite so records are comparable across PRs.
BENCH_SUITE = [
    WorkloadSpec(
        name=f"bench_{category}",
        category=category,
        seed=17 + i,
        n_instructions=100_000,
    )
    for i, category in enumerate(CATEGORIES)
]

BENCH_CONFIGS = ("no", "entangling_4k")

#: Every available simulator backend, reference first (it anchors the
#: speedup ratios and the bit-identity assertion).
BENCH_BACKENDS = ("reference", "staged") + (
    ("numpy",) if vector.NUMPY_AVAILABLE else ()
)


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _profiled_phase_seconds() -> dict:
    """One profiled Entangling run: where simulator wall-clock goes."""
    spec = BENCH_SUITE[0]
    prefetcher, sim_config = resolve_config("entangling_4k", SimConfig())
    profiler = PhaseProfiler()
    result = simulate(
        _cached_workload(spec),
        prefetcher,
        config=sim_config,
        units=_cached_units(spec, sim_config.line_size),
        warmup_instructions=resolve_warmup(spec, None),
        profiler=profiler,
    )
    return {
        phase: round(seconds, 4)
        for phase, seconds in result.stats.phase_seconds.items()
    }


def _run_backend_sweep() -> dict:
    """The bench suite once per backend, each with a fresh isolated cache.

    Returns ``{backend: (stage_profiler, timing_entries)}``.  A fresh
    :class:`RunCache` per backend is load-bearing twice over: telemetry
    must reflect real simulations (not results memoized by other
    benchmarks in the same session), and the run cache intentionally
    ignores the backend field (bit-identical results), so a shared cache
    would serve one backend's runs to the others and fake the timings.
    """
    per_backend = {}
    for backend in BENCH_BACKENDS:
        stages = PhaseProfiler()
        previous = set_stage_profiler(stages)
        try:
            evaluation = run_suite(
                BENCH_SUITE, list(BENCH_CONFIGS), include_baseline=True,
                base_config=SimConfig(backend=backend),
                cache=RunCache(),
            )
        finally:
            set_stage_profiler(previous)
        per_backend[backend] = (stages, evaluation.timing_entries())
    return per_backend


def test_perf_throughput():
    # Truthful backend labels: an outer REPRO_BACKEND (e.g. the CI
    # backend-matrix job) must not silently re-route the "reference" leg.
    outer_backend = os.environ.pop("REPRO_BACKEND", None)
    try:
        per_backend = _run_backend_sweep()
    finally:
        if outer_backend is not None:
            os.environ["REPRO_BACKEND"] = outer_backend
    stages, reference_entries = per_backend["reference"]

    # The largest bit-identity check in the repo: every fast backend must
    # reproduce the reference signatures exactly on the full bench suite.
    ref_wall = {}
    ref_signatures = {}
    for config, workload, stats in reference_entries:
        ref_wall[(config, workload)] = stats.wall_seconds
        ref_signatures[(config, workload)] = stats.signature()
    for backend in BENCH_BACKENDS[1:]:
        _, entries = per_backend[backend]
        for config, workload, stats in entries:
            assert stats.signature() == ref_signatures[(config, workload)], (
                backend, config, workload,
            )

    runs = []
    backend_aggregates = {}
    total_wall = 0.0
    total_instrs = 0
    total_cycles = 0
    for backend in BENCH_BACKENDS:
        _, entries = per_backend[backend]
        backend_wall = 0.0
        backend_instrs = 0
        speedups = []
        for config, workload, stats in entries:
            # Cache-served stats carry the *original* run's wall-clock
            # (and run_key ignores the backend), which would fake the
            # speedup math; the fresh per-backend RunCache above makes
            # this impossible, and the stamp check keeps it that way.
            assert not stats.from_cache, (backend, config, workload)
            assert stats.wall_seconds > 0.0, (backend, config, workload)
            assert stats.instrs_per_second > 0.0, (backend, config, workload)
            speedup = ref_wall[(config, workload)] / stats.wall_seconds
            backend_wall += stats.wall_seconds
            backend_instrs += stats.instructions
            speedups.append(speedup)
            runs.append(
                {
                    "config": config,
                    "workload": workload,
                    "backend": backend,
                    "wall_seconds": round(stats.wall_seconds, 4),
                    "instructions": stats.instructions,
                    "cycles": stats.cycles,
                    "instrs_per_sec": round(stats.instrs_per_second, 1),
                    "cycles_per_sec": round(stats.cycles_per_second, 1),
                    "speedup_vs_reference": round(speedup, 3),
                }
            )
            if backend == "reference":
                # The headline aggregate stays reference-only so it
                # remains comparable with pre-backend trajectory records.
                total_wall += stats.wall_seconds
                total_instrs += stats.instructions
                total_cycles += stats.cycles
        backend_aggregates[backend] = {
            "total_wall_seconds": round(backend_wall, 4),
            "instrs_per_sec": round(backend_instrs / backend_wall, 1),
            "geomean_speedup_vs_reference": round(_geomean(speedups), 3),
        }

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "suite": [spec.name for spec in BENCH_SUITE],
        "configs": list(BENCH_CONFIGS),
        "backends": backend_aggregates,
        "runs": runs,
        "aggregate": {
            "total_wall_seconds": round(total_wall, 4),
            "instrs_per_sec": round(total_instrs / total_wall, 1),
            "cycles_per_sec": round(total_cycles / total_wall, 1),
        },
        "stages": {
            name: round(seconds, 4)
            for name, seconds in sorted(stages.seconds.items())
        },
        "phases": _profiled_phase_seconds(),
    }

    # Tolerant: a torn trajectory from a crashed prior run starts fresh
    # rather than aborting the benchmark that would repair it.
    trajectory = load_trajectory(TRAJECTORY_PATH, tolerant=True)
    trajectory.append(record)
    save_trajectory(TRAJECTORY_PATH, trajectory)

    print()
    print(
        f"simulator throughput (reference): "
        f"{record['aggregate']['instrs_per_sec']:,.0f} "
        f"instrs/s over {len(reference_entries)} runs "
        f"({record['aggregate']['total_wall_seconds']:.1f}s wall)"
    )
    for backend in BENCH_BACKENDS[1:]:
        aggregate = backend_aggregates[backend]
        print(
            f"  {backend}: {aggregate['instrs_per_sec']:,.0f} instrs/s, "
            f"geomean speedup "
            f"{aggregate['geomean_speedup_vs_reference']:.2f}x "
            f"(signatures bit-identical)"
        )

    # The trajectory file is valid JSON, versioned, capped, and carries
    # this run as its newest entry.
    reloaded = load_trajectory(TRAJECTORY_PATH)
    assert reloaded and reloaded[-1]["aggregate"]["instrs_per_sec"] > 0
    assert len(reloaded) <= retention_from_env()
