"""Simulator throughput telemetry: the speed-tracking harness.

Runs the no-prefetch baseline and Entangling-4K over a small fixed suite,
reads the per-run wall-clock/throughput telemetry that every simulation
now records in ``SimStats``, and appends one record to the
``BENCH_throughput.json`` trajectory file at the repository root.  The
trajectory is versioned (``schema_version``) and capped at the last N
records (``REPRO_BENCH_KEEP``, default 50) via
:mod:`repro.analysis.regression`, whose ``repro bench-check`` sentinel
gates each new record against the trajectory in CI.
"""

from __future__ import annotations

import os
import platform
import time

from repro.analysis.experiments import (
    resolve_config,
    resolve_warmup,
    run_suite,
    _cached_units,
    _cached_workload,
)
from repro.analysis.regression import (
    load_trajectory,
    retention_from_env,
    save_trajectory,
)
from repro.analysis.runcache import RunCache
from repro.obs.profiler import PhaseProfiler, set_stage_profiler
from repro.sim.config import SimConfig
from repro.sim.simulator import simulate
from repro.workloads.generators import CATEGORIES, WorkloadSpec

TRAJECTORY_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_throughput.json"
)

#: Fixed small suite so records are comparable across PRs.
BENCH_SUITE = [
    WorkloadSpec(
        name=f"bench_{category}",
        category=category,
        seed=17 + i,
        n_instructions=100_000,
    )
    for i, category in enumerate(CATEGORIES)
]

BENCH_CONFIGS = ("no", "entangling_4k")


def _profiled_phase_seconds() -> dict:
    """One profiled Entangling run: where simulator wall-clock goes."""
    spec = BENCH_SUITE[0]
    prefetcher, sim_config = resolve_config("entangling_4k", SimConfig())
    profiler = PhaseProfiler()
    result = simulate(
        _cached_workload(spec),
        prefetcher,
        config=sim_config,
        units=_cached_units(spec, sim_config.line_size),
        warmup_instructions=resolve_warmup(spec, None),
        profiler=profiler,
    )
    return {
        phase: round(seconds, 4)
        for phase, seconds in result.stats.phase_seconds.items()
    }


def test_perf_throughput():
    # Fresh, isolated cache: telemetry must reflect real simulations, not
    # results memoized by other benchmarks in the same session.  The stage
    # profiler times the analysis pipeline around the runs.
    stages = PhaseProfiler()
    previous = set_stage_profiler(stages)
    try:
        evaluation = run_suite(
            BENCH_SUITE, list(BENCH_CONFIGS), include_baseline=True,
            cache=RunCache(),
        )
    finally:
        set_stage_profiler(previous)

    runs = []
    total_wall = 0.0
    total_instrs = 0
    total_cycles = 0
    for config, workload, stats in evaluation.timing_entries():
        assert stats.wall_seconds > 0.0, (config, workload)
        assert stats.instrs_per_second > 0.0, (config, workload)
        total_wall += stats.wall_seconds
        total_instrs += stats.instructions
        total_cycles += stats.cycles
        runs.append(
            {
                "config": config,
                "workload": workload,
                "wall_seconds": round(stats.wall_seconds, 4),
                "instructions": stats.instructions,
                "cycles": stats.cycles,
                "instrs_per_sec": round(stats.instrs_per_second, 1),
                "cycles_per_sec": round(stats.cycles_per_second, 1),
            }
        )

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "suite": [spec.name for spec in BENCH_SUITE],
        "configs": list(BENCH_CONFIGS),
        "runs": runs,
        "aggregate": {
            "total_wall_seconds": round(total_wall, 4),
            "instrs_per_sec": round(total_instrs / total_wall, 1),
            "cycles_per_sec": round(total_cycles / total_wall, 1),
        },
        "stages": {
            name: round(seconds, 4)
            for name, seconds in sorted(stages.seconds.items())
        },
        "phases": _profiled_phase_seconds(),
    }

    # Tolerant: a torn trajectory from a crashed prior run starts fresh
    # rather than aborting the benchmark that would repair it.
    trajectory = load_trajectory(TRAJECTORY_PATH, tolerant=True)
    trajectory.append(record)
    save_trajectory(TRAJECTORY_PATH, trajectory)

    print()
    print(
        f"simulator throughput: {record['aggregate']['instrs_per_sec']:,.0f} "
        f"instrs/s over {len(runs)} runs "
        f"({record['aggregate']['total_wall_seconds']:.1f}s wall)"
    )

    # The trajectory file is valid JSON, versioned, capped, and carries
    # this run as its newest entry.
    reloaded = load_trajectory(TRAJECTORY_PATH)
    assert reloaded and reloaded[-1]["aggregate"]["instrs_per_sec"] > 0
    assert len(reloaded) <= retention_from_env()
