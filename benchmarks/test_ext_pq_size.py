"""Extension: prefetch-queue size sensitivity (paper Section IV-D).

The paper: "our prefetcher would benefit from a larger prefetch queue
(32 entries employed in our evaluation), as less prefetches would be
discarded."  This bench sweeps the PQ size around the paper's design
point and checks that drops shrink monotonically.
"""

from repro.analysis.sweeps import render_sweep, sweep_sim_parameter


def test_ext_pq_size(benchmark, suite):
    points = benchmark.pedantic(
        sweep_sim_parameter,
        args=(suite, "prefetch_queue_size", [8, 32, 128]),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_sweep("Extension — prefetch-queue size sweep (paper uses 32)",
                       points))

    by_value = {p.value: p for p in points}
    # Fewer slots, more discarded prefetches.
    assert by_value[8].mean_pq_drops >= by_value[32].mean_pq_drops
    assert by_value[32].mean_pq_drops >= by_value[128].mean_pq_drops
    # The paper's conjecture: a larger PQ does not hurt (and usually helps).
    assert by_value[128].geomean_speedup >= by_value[32].geomean_speedup - 0.02
    assert all(p.geomean_speedup > 1.0 for p in points)
