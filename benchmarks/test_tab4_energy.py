"""Table IV: average energy per cache level and normalized total.

Shape claims: prefetching raises L1I dynamic energy but cuts L2/LLC
energy (mostly leakage, via shorter runtime); the accurate Entangling
prefetcher reduces overall memory-hierarchy energy versus no prefetching,
and wastes less L2/LLC energy than NextLine.
"""

from repro.analysis.figures import TAB4_CONFIGS, render_tab4, tab4_energy


def test_tab4_energy(benchmark, suite):
    rows, _evaluation = benchmark.pedantic(
        tab4_energy, args=(suite, TAB4_CONFIGS), rounds=1, iterations=1
    )
    print()
    print(render_tab4(rows))

    table = {row[0]: row for row in rows}
    l1i, l2c, llc, norm = 1, 3, 4, 5

    # Prefetchers add L1I accesses (lookups + fills): L1I energy rises.
    assert table["entangling_4k"][l1i] > table["no"][l1i]
    # Better instruction supply shortens runtime: L2/LLC (leakage-heavy)
    # energy drops versus no-prefetch.
    assert table["entangling_4k"][l2c] < table["no"][l2c]
    assert table["entangling_4k"][llc] < table["no"][llc]
    # Entangling-4K spends less at L2 than NextLine (fewer useless fetches
    # and a faster run), mirroring the paper's 38.6%-lower L2/LLC figure.
    assert table["entangling_4k"][l2c] < table["next_line"][l2c]
    # Overall normalized energy under Entangling is below 1.0 (the paper
    # reports ~0.97 for the 4K configuration).
    assert table["entangling_4k"][norm] < 1.0
