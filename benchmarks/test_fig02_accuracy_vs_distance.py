"""Figure 2: prefetch accuracy vs fixed look-ahead distance.

The complementary motivation figure: longer look-ahead loses accuracy
(early/wrong prefetches from path divergence and eviction before use).
"""

from repro.analysis.figures import fig1_fig2_oracle, render_fig2


def test_fig02_accuracy_vs_distance(benchmark, suite):
    results = benchmark.pedantic(
        fig1_fig2_oracle, args=(suite,), rounds=1, iterations=1
    )
    print()
    print(render_fig2(results))

    for result in results:
        # Accuracy must decline as the look-ahead distance grows.
        assert result.accuracy[10] < result.accuracy[1]
