"""Figure 14: average basic-block size of the triggering (source) block.

Shape claim: fp has the largest blocks (long loop bodies) and srv the
smallest (branchy server code).
"""

from repro.analysis.figures import figs12_to_15_internals


def test_fig14_bbsize_source(benchmark, suite):
    result = benchmark.pedantic(
        figs12_to_15_internals, args=(suite,), rounds=1, iterations=1
    )
    print()
    for category, value in sorted(result.avg_src_bb_size.items()):
        print(f"Fig 14  {category:8s} avg source block size = {value:.2f}")

    sizes = result.avg_src_bb_size
    assert sizes["fp"] == max(sizes.values())
    assert sizes["srv"] == min(sizes.values())
    assert all(v >= 0 for v in sizes.values())
