"""Figure 8: per-workload L1I miss-ratio curves.

The paper: Entangling drastically reduces the miss rate across all
workloads, approaching the ideal cache.
"""

import statistics

from repro.analysis.figures import per_workload_curves, render_curves


def test_fig08_missrate_curves(benchmark, curve_evaluation):
    curves = benchmark.pedantic(
        per_workload_curves,
        args=(curve_evaluation, "miss_ratio"),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_curves("Fig 8 — L1I miss ratio (sorted per config)", curves))

    base = curve_evaluation.miss_ratio("no")
    # Every workload has at least 1 MPKI-class misses in the baseline.
    assert all(v > 0 for v in base.values())

    mean = {c: statistics.mean(vals) for c, vals in curves.items()}
    # Entangling reduces the mean miss ratio well below the baseline and
    # below every evaluated competitor.
    assert mean["entangling_4k"] < statistics.mean(base.values()) * 0.75
    for competitor in ("next_line", "sn4l", "rdip", "mana_4k", "mana_2k"):
        assert mean["entangling_4k"] < mean[competitor]
    # The ideal cache has a zero miss ratio by construction.
    assert max(curves["ideal"]) == 0.0
