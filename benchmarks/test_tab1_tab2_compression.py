"""Tables I and II: the destination compression mode tables.

Structural: derived directly from the compression scheme, checked against
the values printed in the paper.
"""

from repro.analysis.figures import render_tab1_tab2, tab1_tab2_modes


def test_tab1_tab2_compression(benchmark):
    modes = benchmark.pedantic(tab1_tab2_modes, rounds=1, iterations=1)
    print()
    print(render_tab1_tab2())

    virtual = {mode: bits for mode, _cap, bits in modes["virtual"]}
    physical = {mode: bits for mode, _cap, bits in modes["physical"]}
    assert virtual == {1: 58, 2: 28, 3: 18, 4: 13, 5: 10, 6: 8}
    assert physical == {1: 42, 2: 20, 3: 12, 4: 9}
