"""Figure 1: fraction of timely prefetches vs fixed look-ahead distance.

The paper's motivation: no single look-ahead distance serves all misses.
The oracle instruments a no-prefetch run and replays distances 1-10.
"""

from repro.analysis.figures import fig1_fig2_oracle, render_fig1


def test_fig01_timeliness_oracle(benchmark, suite):
    results = benchmark.pedantic(
        fig1_fig2_oracle, args=(suite,), rounds=1, iterations=1
    )
    print()
    print(render_fig1(results))

    for result in results:
        fractions = [result.timely_fraction[d] for d in range(1, 11)]
        # Timeliness is monotone in distance and never complete by d=10
        # (the paper: distances larger than 10 still cover misses).
        assert all(b >= a for a, b in zip(fractions, fractions[1:]))
        assert fractions[0] < 1.0
        # A fixed distance of 1 leaves a significant miss fraction late.
        assert fractions[0] < 0.9
