"""Figure 16: normalized IPC for the CloudSuite applications.

Shape claims: every CloudSuite-like workload exceeds 1 L1I MPKI, and the
Entangling prefetcher outperforms the low-budget baselines (SN4L and
MANA) on these cloud workloads, staying below the ideal bound.
"""

from repro.analysis.figures import FIG16_CONFIGS, fig16_cloudsuite, render_fig16


def test_fig16_cloudsuite(benchmark, cloud_suite):
    data, evaluation = benchmark.pedantic(
        fig16_cloudsuite, args=(cloud_suite, FIG16_CONFIGS), rounds=1, iterations=1
    )
    print()
    print(render_fig16(data))

    # Workload-selection rule: >1 MPKI at the L1I in the baseline.
    for workload in evaluation.workloads():
        assert evaluation.stats("no", workload).l1i_mpki > 1.0

    for workload in evaluation.workloads():
        ent = data["entangling_4k"][workload]
        assert ent > data["sn4l"][workload]
        assert ent > data["mana_2k"][workload]
        assert ent <= data["ideal"][workload]
        assert ent > 1.0
