"""Figure 9: per-workload prefetcher coverage curves.

The paper: Entangling shows much higher coverage than the state of the
art across workloads.
"""

import statistics

from repro.analysis.figures import per_workload_curves, render_curves


def test_fig09_coverage(benchmark, curve_evaluation):
    curves = benchmark.pedantic(
        per_workload_curves,
        args=(curve_evaluation, "coverage"),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_curves("Fig 9 — coverage (sorted per config)", curves))

    mean = {c: statistics.mean(vals) for c, vals in curves.items() if c != "ideal"}
    # Entangling-4K has the best mean coverage of the realistic field.
    assert max(mean, key=mean.get) == "entangling_4k", mean
    # Coverage values are well-formed.
    for series in curves.values():
        assert all(0.0 <= v <= 1.0 for v in series)
