"""Figure 12: in which format entangled destinations are stored.

Shape claims: most destinations compress far below the full address
width, and srv destinations are the hardest to compress.
"""

from repro.analysis.figures import figs12_to_15_internals, render_figs12_to_15


def test_fig12_compression_formats(benchmark, suite):
    result = benchmark.pedantic(
        figs12_to_15_internals, args=(suite,), rounds=1, iterations=1
    )
    print()
    print(render_figs12_to_15(result))

    for category, buckets in result.format_fractions.items():
        total = sum(buckets.values())
        assert total == __import__("pytest").approx(1.0, abs=1e-6)
        # The dominant format is a compressed one (< the 58-bit full width).
        dominant = max(buckets, key=buckets.get)
        assert dominant < 58, (category, buckets)

    def wide_fraction(cat):
        return sum(frac for bits, frac in result.format_fractions[cat].items()
                   if bits >= 18)

    # srv needs wide formats more often than crypto (paper Fig 12).
    if "srv" in result.format_fractions and "crypto" in result.format_fractions:
        assert wide_fraction("srv") > wide_fraction("crypto")
