"""Figure 6: geometric-mean IPC vs storage for the whole prefetcher field.

The headline figure.  Shape claims checked:
* the Entangling family beats every baseline prefetcher below its budget;
* spending the budget on a larger L1I instead is far less effective;
* the Ideal prefetcher upper-bounds everything.
"""

from repro.analysis.figures import FIG6_CONFIGS, fig6_ipc_vs_storage, render_fig6


def test_fig06_ipc_vs_storage(benchmark, suite):
    rows, evaluation = benchmark.pedantic(
        fig6_ipc_vs_storage, args=(suite, FIG6_CONFIGS), rounds=1, iterations=1
    )
    print()
    print(render_fig6(rows))

    geo = {row.config: row.geomean_speedup for row in rows}

    # Entangling-4K outperforms the same-or-larger-budget baselines.
    for baseline in ("rdip", "sn4l", "mana_4k", "next_line"):
        assert geo["entangling_4k"] > geo[baseline], (baseline, geo)

    # The low-budget Entangling outperforms MANA's low-budget configs
    # (paper: "Entangling also outperforms all low-budget configurations
    # of MANA").
    assert geo["entangling_2k"] > geo["mana_2k"]

    # Growing the L1I is a poor use of the budget compared to Entangling.
    assert geo["entangling_2k"] > geo["l1i_64kb"]

    # Ideal bounds everything; every prefetcher improves on no-prefetch.
    for config in FIG6_CONFIGS:
        if config == "ideal":
            continue
        assert geo[config] <= geo["ideal"]
        assert geo[config] > 1.0
