"""Extension: the block-size recording policy ablation.

The paper keeps the *maximum* observed basic-block size ("this decision
increases the coverage of the prefetcher at the cost of having extra
false positives", Section III-A1).  This bench quantifies the trade-off
against the tighter *latest*-size policy.
"""

import statistics

from repro.analysis.experiments import _cached_units, _cached_workload
from repro.analysis.metrics import geometric_mean
from repro.core.entangling import EntanglingConfig, EntanglingPrefetcher
from repro.prefetchers import NullPrefetcher
from repro.sim import simulate


def _evaluate(suite):
    out = {}
    for policy in ("max", "latest"):
        ratios, coverages, accuracies = [], [], []
        for spec in suite:
            trace = _cached_workload(spec)
            units = _cached_units(spec, 64)
            warm = int(spec.n_instructions * 0.4)
            base = simulate(trace, NullPrefetcher(), units=units,
                            warmup_instructions=warm).stats
            stats = simulate(
                trace,
                EntanglingPrefetcher(EntanglingConfig(bb_size_policy=policy)),
                units=units,
                warmup_instructions=warm,
            ).stats
            ratios.append(stats.ipc / base.ipc)
            coverages.append(stats.coverage_vs(base))
            accuracies.append(stats.accuracy)
        out[policy] = {
            "speedup": geometric_mean(ratios),
            "coverage": statistics.mean(coverages),
            "accuracy": statistics.mean(accuracies),
        }
    return out


def test_ext_bbsize_policy(benchmark, suite):
    data = benchmark.pedantic(_evaluate, args=(suite,), rounds=1, iterations=1)
    print()
    print("Extension — block-size policy (paper: max; alternative: latest)")
    for policy, metrics in data.items():
        print(f"  {policy:7s} speedup={metrics['speedup']:.3f} "
              f"coverage={metrics['coverage']:.3f} "
              f"accuracy={metrics['accuracy']:.3f}")

    # The paper's trade-off: max gains coverage, latest gains accuracy.
    assert data["max"]["coverage"] >= data["latest"]["coverage"] - 0.02
    assert data["latest"]["accuracy"] >= data["max"]["accuracy"] - 0.02
    assert data["max"]["speedup"] > 1.0 and data["latest"]["speedup"] > 1.0
