"""Figure 10: per-workload prefetcher accuracy curves.

The paper: Entangling achieves the highest accuracy, which is also the
proxy for its energy efficiency (fewest useless L2/LLC requests).
"""

import statistics

from repro.analysis.figures import per_workload_curves, render_curves


def test_fig10_accuracy(benchmark, curve_evaluation):
    curves = benchmark.pedantic(
        per_workload_curves,
        args=(curve_evaluation, "accuracy"),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_curves("Fig 10 — accuracy (sorted per config)", curves))

    mean = {
        c: statistics.mean(vals)
        for c, vals in curves.items()
        if c not in ("ideal", "no")
    }
    # Entangling sits in the top accuracy tier (the paper shows it as the
    # most accurate prefetcher; at this suite scale it can tie MANA to the
    # third decimal) and NextLine is clearly the least accurate.
    best = max(mean.values())
    assert mean["entangling_4k"] >= best - 0.02, mean
    assert min(mean, key=mean.get) == "next_line", mean
    assert mean["entangling_4k"] > mean["next_line"] + 0.1
    for series in curves.values():
        assert all(0.0 <= v <= 1.0 for v in series)
