"""Figure 13: average number of entangled destinations found per hit.

The paper reports ~2.2-2.5 across categories; we check the value is a
small handful (well under the compression limit of 6).
"""

from repro.analysis.figures import figs12_to_15_internals


def test_fig13_avg_destinations(benchmark, suite):
    result = benchmark.pedantic(
        figs12_to_15_internals, args=(suite,), rounds=1, iterations=1
    )
    print()
    for category, value in sorted(result.avg_destinations.items()):
        print(f"Fig 13  {category:8s} avg destinations/hit = {value:.2f}")

    for category, value in result.avg_destinations.items():
        assert 0.0 < value <= 6.0, (category, value)
