"""Shared fixtures for the per-figure benchmarks.

The benchmark suite runs a scaled-down evaluation by default (one workload
per CVP category at the full per-category trace lengths).  Set
``REPRO_SUITE_SCALE=N`` to multiply the workload count — ``6`` matches the
full evaluation recorded in EXPERIMENTS.md.

Heavy sweeps shared by several figures (the Figure 7-10 curve field) run
once per session.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import default_suite, run_suite
from repro.analysis.figures import CURVE_CONFIGS
from repro.workloads.cloudsuite import cloudsuite_suite


@pytest.fixture(scope="session")
def suite():
    """The CVP-like workload suite used by most figures."""
    return default_suite(per_category=1)


@pytest.fixture(scope="session")
def cloud_suite():
    """The CloudSuite-like workloads of Figure 16."""
    return cloudsuite_suite(n_instructions=300_000)


@pytest.fixture(scope="session")
def curve_evaluation(suite):
    """One sweep over the sub-64KB prefetcher field (Figures 7-10)."""
    return run_suite(suite, list(CURVE_CONFIGS))
