"""Figure 15: average basic-block size of the entangled destinations,
plus the paper's prefetches-per-hit formula:
``bbsize + destinations * (1 + bbsize_dst)``.
"""

from repro.analysis.figures import figs12_to_15_internals


def test_fig15_bbsize_dest(benchmark, suite):
    result = benchmark.pedantic(
        figs12_to_15_internals, args=(suite,), rounds=1, iterations=1
    )
    print()
    for category in sorted(result.avg_dst_bb_size):
        print(
            f"Fig 15  {category:8s} avg destination block size = "
            f"{result.avg_dst_bb_size[category]:.2f}  "
            f"(prefetches/hit = {result.avg_prefetches_per_hit[category]:.1f})"
        )

    sizes = result.avg_dst_bb_size
    # Destination blocks mirror the source-block ordering: fp largest.
    assert sizes["fp"] == max(sizes.values())
    # Prefetches per hit stay in a sane band (the paper reports ~9-17).
    for category, value in result.avg_prefetches_per_hit.items():
        assert 0.0 < value < 80.0, (category, value)
