"""Extension: History-buffer size sensitivity.

The cost-effective design uses a 16-entry history while the EPI variant
uses ~1000 entries.  This bench sweeps the size, verifying the paper's
implicit claim that 16 entries suffice (the source search is bounded by
timestamps, not by capacity, once the L1I miss latency is covered).
"""

from repro.analysis.experiments import _cached_units, _cached_workload
from repro.analysis.metrics import geometric_mean
from repro.core.entangling import EntanglingConfig, EntanglingPrefetcher
from repro.prefetchers import NullPrefetcher
from repro.sim import simulate


def _evaluate(suite):
    out = {}
    for history_size in (4, 16, 64, 256):
        ratios = []
        for spec in suite:
            trace = _cached_workload(spec)
            units = _cached_units(spec, 64)
            warm = int(spec.n_instructions * 0.4)
            base = simulate(trace, NullPrefetcher(), units=units,
                            warmup_instructions=warm).stats
            stats = simulate(
                trace,
                EntanglingPrefetcher(EntanglingConfig(history_size=history_size)),
                units=units,
                warmup_instructions=warm,
            ).stats
            ratios.append(stats.ipc / base.ipc)
        out[history_size] = geometric_mean(ratios)
    return out


def test_ext_history_size(benchmark, suite):
    data = benchmark.pedantic(_evaluate, args=(suite,), rounds=1, iterations=1)
    print()
    print("Extension — History-buffer size sweep")
    for size, speedup in sorted(data.items()):
        print(f"  {size:4d} entries: geomean speedup {speedup:.3f}")

    # 16 entries capture nearly all the benefit of much larger histories.
    assert data[16] >= data[256] - 0.02
    # Every size still improves on the no-prefetch baseline.
    assert all(v > 1.0 for v in data.values())
