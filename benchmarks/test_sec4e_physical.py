"""Section IV-E: training the prefetchers with physical addresses.

Shape claims: Entangling still delivers solid speedups with physical
training, slightly below virtual training (consecutive virtual pages are
no longer consecutive physically, costing some coverage), and the size
ordering is preserved.
"""

from repro.analysis.experiments import run_suite
from repro.analysis.figures import render_sec4e, sec4e_physical


def test_sec4e_physical(benchmark, suite):
    speedups = benchmark.pedantic(
        sec4e_physical, args=(suite,), rounds=1, iterations=1
    )
    print()
    print(render_sec4e(speedups))

    # All configurations still beat the no-prefetch baseline clearly.
    for name, value in speedups.items():
        assert value > 1.0, (name, value)

    # Virtual training beats physical training at the same size (the
    # paper: 9.60% virtual vs 8.10% physical at 4K).
    virt = run_suite(suite, ["entangling_4k"]).geomean_speedup("entangling_4k")
    assert virt > speedups["entangling_4k_phys"] * 0.995
