"""Extension: the split Entangled table (paper Section III-C3 future work).

Compares the unified low-budget Entangling-2K against a split design
(1K-entry pairs-only table + 2K-entry block-size table) that costs less
storage.  The paper conjectures the split is "likely beneficial for
low-storage configurations"; this bench quantifies it on our workloads.
"""

from repro.analysis.experiments import _cached_units, _cached_workload
from repro.analysis.metrics import geometric_mean
from repro.core.split_table import make_split_entangling
from repro.core.variants import make_entangling
from repro.prefetchers import NullPrefetcher
from repro.sim import simulate


def _evaluate(suite):
    rows = {}
    for make, label in (
        (lambda: make_entangling(2048), "unified-2K"),
        (lambda: make_split_entangling(1024, 2048), "split-1K+2Ksz"),
        (lambda: make_split_entangling(2048, 4096), "split-2K+4Ksz"),
    ):
        ratios = []
        storage = make().storage_kb
        for spec in suite:
            trace = _cached_workload(spec)
            units = _cached_units(spec, 64)
            warm = int(spec.n_instructions * 0.4)
            base = simulate(trace, NullPrefetcher(), units=units,
                            warmup_instructions=warm).stats
            stats = simulate(trace, make(), units=units,
                             warmup_instructions=warm).stats
            ratios.append(stats.ipc / base.ipc)
        rows[label] = (storage, geometric_mean(ratios))
    return rows


def test_ext_split_table(benchmark, suite):
    rows = benchmark.pedantic(_evaluate, args=(suite,), rounds=1, iterations=1)
    print()
    print("Extension — split vs unified Entangled table (low budget)")
    for label, (storage, speedup) in rows.items():
        print(f"  {label:16s} {storage:6.2f} KB  geomean speedup {speedup:.3f}")

    unified_kb, unified_speedup = rows["unified-2K"]
    split_kb, split_speedup = rows["split-1K+2Ksz"]
    bigger_kb, bigger_speedup = rows["split-2K+4Ksz"]
    # The split design is cheaper and still delivers a solid speedup; on
    # our workloads the benefit is roughly storage-proportional (the
    # paper's conjectured low-budget advantage does not clearly
    # materialize -- see EXPERIMENTS.md).
    assert split_kb < unified_kb
    assert split_speedup > 1.0
    assert split_speedup > unified_speedup - 0.08
    # Growing the split structures recovers most of the unified speedup.
    assert bigger_speedup > unified_speedup - 0.03
