"""Tests for gshare, BTB, RAS, and the indirect target cache."""

import pytest

from repro.sim.branch_predictor import GsharePredictor
from repro.sim.btb import BranchTargetBuffer
from repro.sim.indirect import IndirectTargetCache
from repro.sim.ras import ReturnAddressStack


class TestGshare:
    def test_history_wider_than_table_rejected(self):
        with pytest.raises(ValueError):
            GsharePredictor(table_bits=4, history_bits=8)

    def test_learns_always_taken(self):
        bp = GsharePredictor(table_bits=10, history_bits=4)
        pc = 0x1000
        for _ in range(8):
            bp.update(pc, True)
        assert bp.predict(pc)

    def test_learns_never_taken(self):
        bp = GsharePredictor(table_bits=10, history_bits=4)
        pc = 0x1000
        for _ in range(8):
            bp.update(pc, False)
        assert not bp.predict(pc)

    def test_learns_alternating_pattern_via_history(self):
        bp = GsharePredictor(table_bits=12, history_bits=8)
        pc = 0x2000
        # Train the T,N,T,N pattern long enough for history correlation.
        outcome = True
        for _ in range(400):
            bp.update(pc, outcome)
            outcome = not outcome
        correct = 0
        for _ in range(100):
            if bp.predict(pc) == outcome:
                correct += 1
            bp.update(pc, outcome)
            outcome = not outcome
        assert correct > 90

    def test_history_shifts(self):
        bp = GsharePredictor(table_bits=10, history_bits=4)
        bp.update(0, True)
        bp.update(0, False)
        bp.update(0, True)
        assert bp.history == 0b101

    def test_storage_bits(self):
        bp = GsharePredictor(table_bits=10, history_bits=4)
        assert bp.storage_bits() == 2 * 1024 + 4


class TestBtb:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(sets=16, ways=2)
        assert btb.lookup(0x1000) is None
        btb.update(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000

    def test_update_overwrites_target(self):
        btb = BranchTargetBuffer(sets=16, ways=2)
        btb.update(0x1000, 0x2000)
        btb.update(0x1000, 0x3000)
        assert btb.lookup(0x1000) == 0x3000

    def test_lru_eviction(self):
        btb = BranchTargetBuffer(sets=1, ways=2)
        btb.update(0x0, 1)
        btb.update(0x4, 2)
        btb.lookup(0x0)            # protect 0x0
        btb.update(0x8, 3)         # evicts 0x4
        assert btb.lookup(0x4) is None
        assert btb.lookup(0x0) == 1

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(sets=0, ways=2)

    def test_storage_positive(self):
        assert BranchTargetBuffer(16, 2).storage_bits() > 0


class TestRas:
    def test_push_pop(self):
        ras = ReturnAddressStack(4)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100
        assert ras.pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_peek(self):
        ras = ReturnAddressStack(4)
        assert ras.peek() is None
        ras.push(7)
        assert ras.peek() == 7
        assert len(ras) == 1

    def test_top_entries(self):
        ras = ReturnAddressStack(8)
        for addr in (1, 2, 3):
            ras.push(addr)
        assert ras.top_entries(2) == (2, 3)
        assert ras.top_entries(10) == (1, 2, 3)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)


class TestIndirectTargetCache:
    def test_cold_predict_is_none(self):
        itc = IndirectTargetCache(table_bits=6)
        assert itc.predict(0x1000) is None

    def test_learns_target(self):
        itc = IndirectTargetCache(table_bits=6, history_bits=0)
        itc.update(0x1000, 0x5000)
        assert itc.predict(0x1000) == 0x5000

    def test_history_disambiguates(self):
        itc = IndirectTargetCache(table_bits=10, history_bits=4)
        # An update shifts the history, so the same branch may index a
        # different slot afterwards; the structure must keep answering.
        itc.update(0x1000, 0xAAAA)
        assert itc.predict(0x1000) in (0xAAAA, None)
        itc.update(0x1000, 0xBBBB)
        assert itc.predict(0x1000) in (0xAAAA, 0xBBBB, None)

    def test_stable_pattern_learned(self):
        itc = IndirectTargetCache(table_bits=10, history_bits=4)
        # A repeating dispatch cycle becomes predictable once the history
        # pattern recurs.
        targets = [0x10, 0x20, 0x30]
        for _ in range(20):
            for t in targets:
                itc.update(0x1000, t)
        correct = 0
        for _ in range(5):
            for t in targets:
                if itc.predict(0x1000) == t:
                    correct += 1
                itc.update(0x1000, t)
        assert correct >= 10

    def test_storage_positive(self):
        assert IndirectTargetCache().storage_bits() > 0
