"""Tests for the deterministic filesystem fault injector.

The contract under test: ``REPRO_FSFAULT`` rules parse strictly (a typo
must fail loudly, not silently disable chaos); fault selection is a pure
function of ``(seed, mode, op, basename, count)`` — two identical runs
inject identical faults; each mode does what it says at the seam
(enospc/eio raise, torn-rename tears the staging file so the checksum
catches it downstream, slow only sleeps); scopes restrict rules to one
seam family; and the seams in :mod:`repro.check.artifacts`,
the store, the checkpoint manifest, and the event ledger all actually
cross the injector — plus the zero-cost contract: chaos off means the
module is never even imported.
"""

import errno
import json
import os
import subprocess
import sys

import pytest

from repro.check.fsfault import (
    FaultRule,
    FsFaultInjector,
    active_injector,
    parse_rules,
    reset_fault_state,
    set_fsfault,
)

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


@pytest.fixture(autouse=True)
def _clean_injector():
    reset_fault_state()
    yield
    reset_fault_state()


class TestParseRules:
    def test_single_rule(self):
        assert parse_rules("enospc:0.05") == [FaultRule("enospc", 0.05)]

    def test_multiple_rules_with_scope(self):
        rules = parse_rules("enospc:0.05,torn-rename:0.1:cache")
        assert rules == [
            FaultRule("enospc", 0.05),
            FaultRule("torn-rename", 0.1, "cache"),
        ]

    def test_blank_chunks_skipped(self):
        assert parse_rules(" , enospc:1.0 ,") == [FaultRule("enospc", 1.0)]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            parse_rules("rm-rf:0.5")

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError, match="not a number"):
            parse_rules("eio:lots")

    def test_out_of_range_fraction_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            parse_rules("eio:1.5")

    def test_missing_fraction_rejected(self):
        with pytest.raises(ValueError, match="mode:fraction"):
            parse_rules("enospc")


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        decisions = []
        for _round in range(2):
            injector = FsFaultInjector(parse_rules("eio:0.3"), seed=7)
            fired = []
            for i in range(200):
                try:
                    injector.check("write", f"/x/{i % 5}.json")
                    fired.append(False)
                except OSError:
                    fired.append(True)
            decisions.append(fired)
        assert decisions[0] == decisions[1]
        assert any(decisions[0]) and not all(decisions[0])

    def test_different_seed_different_sequence(self):
        def run(seed):
            injector = FsFaultInjector(parse_rules("eio:0.3"), seed=seed)
            out = []
            for i in range(200):
                try:
                    injector.check("write", f"/x/{i % 5}.json")
                    out.append(False)
                except OSError:
                    out.append(True)
            return out

        assert run(1) != run(2)

    def test_fraction_roughly_respected(self):
        injector = FsFaultInjector(parse_rules("eio:0.2"), seed=0)
        fired = 0
        for i in range(1000):
            try:
                injector.check("write", f"/x/{i}.json")
            except OSError:
                fired += 1
        assert 100 < fired < 300  # 20% +- generous slop, deterministic


class TestModes:
    def test_enospc_raises_with_errno(self):
        injector = FsFaultInjector(parse_rules("enospc:1.0"))
        with pytest.raises(OSError) as excinfo:
            injector.check("write", "/x/a.json")
        assert excinfo.value.errno == errno.ENOSPC
        assert injector.injected["enospc"] == 1

    def test_eio_raises_with_errno(self):
        injector = FsFaultInjector(parse_rules("eio:1.0"))
        with pytest.raises(OSError) as excinfo:
            injector.check("write", "/x/a.json")
        assert excinfo.value.errno == errno.EIO

    def test_torn_rename_truncates_staging_file(self, tmp_path):
        tmp = os.path.join(str(tmp_path), "entry.json.1.2.tmp")
        with open(tmp, "w") as fh:
            fh.write("A" * 100)
        injector = FsFaultInjector(parse_rules("torn-rename:1.0"))
        injector.check("rename", os.path.join(str(tmp_path), "entry.json"),
                       tmp=tmp)
        assert os.path.getsize(tmp) == 50
        assert injector.injected["torn-rename"] == 1

    def test_torn_rename_ignores_non_rename_ops(self, tmp_path):
        injector = FsFaultInjector(parse_rules("torn-rename:1.0"))
        injector.check("write", "/x/a.json")  # no tmp, no raise, no count
        assert injector.injected["torn-rename"] == 0

    def test_slow_sleeps_but_never_raises(self):
        injector = FsFaultInjector(parse_rules("slow:1.0"))
        injector.check("write", "/x/a.json")
        assert injector.injected["slow"] == 1

    def test_scope_restricts_rule(self):
        injector = FsFaultInjector(parse_rules("enospc:1.0:ledger"))
        injector.check("write", "/x/a.json", scope="cache")  # no raise
        with pytest.raises(OSError):
            injector.check("append", "/x/events.jsonl", scope="ledger")


class TestEnvArming:
    def test_env_arms_and_caches_injector(self, monkeypatch):
        monkeypatch.setenv("REPRO_FSFAULT", "slow:0.0")
        first = active_injector()
        assert first is not None
        assert active_injector() is first  # cached per env value
        monkeypatch.setenv("REPRO_FSFAULT", "slow:0.1")
        assert active_injector() is not first  # re-armed on change

    def test_programmatic_injector_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_FSFAULT", "slow:0.0")
        mine = FsFaultInjector([], seed=0)
        set_fsfault(mine)
        assert active_injector() is mine
        set_fsfault(None)
        assert active_injector() is not mine

    def test_no_env_no_injector(self, monkeypatch):
        monkeypatch.delenv("REPRO_FSFAULT", raising=False)
        assert active_injector() is None

    def test_bad_seed_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_FSFAULT", "eio:0.1")
        monkeypatch.setenv("REPRO_FSFAULT_SEED", "yesterday")
        with pytest.raises(ValueError, match="REPRO_FSFAULT_SEED"):
            active_injector()


class TestSeams:
    def test_atomic_write_enospc_raises(self, tmp_path, monkeypatch):
        from repro.check.artifacts import atomic_write_bytes

        monkeypatch.setenv("REPRO_FSFAULT", "enospc:1.0")
        path = os.path.join(str(tmp_path), "out.json")
        with pytest.raises(OSError) as excinfo:
            atomic_write_bytes(path, b"{}")
        assert excinfo.value.errno == errno.ENOSPC
        assert not os.path.exists(path)

    def test_atomic_write_torn_rename_caught_by_store(self, tmp_path,
                                                      monkeypatch):
        """The end-to-end chaos contract: a torn rename publishes a
        damaged entry, and the store's checksum refuses to serve it."""
        from repro.analysis.store import ShardedRunStore

        monkeypatch.setenv("REPRO_FSFAULT", "torn-rename:1.0:cache")
        store = ShardedRunStore(str(tmp_path), reap_on_open=False)
        key = "ab" + "0" * 30
        assert store.publish(key, {"stats": {"x": 1}})  # write "succeeds"
        monkeypatch.delenv("REPRO_FSFAULT")
        reset_fault_state()
        data, status = store.load(key)
        assert (data, status) == (None, "corrupt")

    def test_ledger_append_survives_eio(self, tmp_path, monkeypatch):
        from repro.obs.events import EventLedger, TelemetryEvent

        monkeypatch.setenv("REPRO_FSFAULT", "eio:1.0:ledger")
        ledger = EventLedger(os.path.join(str(tmp_path), "events.jsonl"))
        ledger.append(TelemetryEvent(type="run_started", seq=1, ts=0.0, pid=1))
        assert ledger.dropped == 1
        assert ledger.appended == 0

    def test_checkpoint_append_survives_enospc(self, tmp_path, monkeypatch):
        from repro.analysis.checkpoint import CheckpointManifest

        monkeypatch.setenv("REPRO_FSFAULT", "enospc:1.0:checkpoint")
        manifest = CheckpointManifest(
            os.path.join(str(tmp_path), "ckpt.json"), resume=False
        )
        manifest.mark_done("k" * 32, "cfg", "wl")  # no raise
        assert manifest.marked == 1
        assert manifest._write_failed

    def test_zero_cost_when_disarmed(self):
        """Chaos off => repro.check.fsfault is never imported, even
        after a full cached run (the observability zero-cost contract)."""
        code = (
            "import sys, repro.analysis.store as s, tempfile\n"
            "st = s.ShardedRunStore(tempfile.mkdtemp())\n"
            "st.publish('a'*32, {'stats': {}})\n"
            "st.load('a'*32)\n"
            "assert 'repro.check.fsfault' not in sys.modules\n"
        )
        env = {k: v for k, v in os.environ.items() if k != "REPRO_FSFAULT"}
        env["PYTHONPATH"] = SRC
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert result.returncode == 0, result.stderr


class TestStressHelpers:
    def test_stress_payload_is_deterministic(self):
        from repro.check.fsfault import _stress_key, _stress_payload

        assert _stress_key(0, 1) == _stress_key(0, 1)
        assert _stress_key(0, 1) != _stress_key(0, 2)
        a = _stress_payload(3, 4, 256)
        b = _stress_payload(3, 4, 256)
        assert a == b
        assert len(a["stats"]["blob"]) == 256
        assert json.dumps(a)  # JSON-serializable
