"""Tests for crash-safe artifact IO (repro.check.artifacts) and its
adoption by the exporters, the trajectory writer, and bench-check."""

import csv
import io
import json
import os

import pytest

from repro.analysis.export import (
    export_evaluation_csv,
    export_metrics_csv,
    export_metrics_json,
    export_metrics_prometheus,
)
from repro.analysis.regression import (
    check_trajectory,
    load_trajectory,
    save_trajectory,
)
from repro.check.artifacts import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    load_json_guarded,
)
from repro.obs.registry import MetricsRegistry


def _no_tmp_leftovers(directory):
    return [n for n in os.listdir(directory) if n.endswith(".tmp")] == []


class TestAtomicWrite:
    def test_bytes_roundtrip_and_no_staging_leftovers(self, tmp_path):
        path = str(tmp_path / "artifact.bin")
        atomic_write_bytes(path, b"\x00\x01payload")
        assert open(path, "rb").read() == b"\x00\x01payload"
        assert _no_tmp_leftovers(tmp_path)

    def test_overwrite_replaces_whole_file(self, tmp_path):
        path = str(tmp_path / "artifact.txt")
        atomic_write_text(path, "a much longer first version\n")
        atomic_write_text(path, "short\n")
        assert open(path).read() == "short\n"
        assert _no_tmp_leftovers(tmp_path)

    def test_text_is_byte_exact(self, tmp_path):
        # CSV writers emit \r\n; atomic_write_text must not translate it.
        path = str(tmp_path / "rows.csv")
        atomic_write_text(path, "a,b\r\n1,2\r\n")
        assert open(path, "rb").read() == b"a,b\r\n1,2\r\n"

    def test_json_parses_back(self, tmp_path):
        path = str(tmp_path / "artifact.json")
        atomic_write_json(path, {"x": [1, 2], "y": "z"})
        assert json.load(open(path)) == {"x": [1, 2], "y": "z"}
        assert open(path).read().endswith("\n")

    def test_failed_write_leaves_no_staging_file(self, tmp_path):
        path = str(tmp_path / "artifact.json")
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        assert not os.path.exists(path)
        assert _no_tmp_leftovers(tmp_path)


class TestGuardedLoad:
    def test_missing_file_returns_default_without_error(self, tmp_path):
        payload, error = load_json_guarded(str(tmp_path / "absent.json"), default=[])
        assert payload == [] and error is None

    def test_corrupt_file_returns_default_with_error(self, tmp_path):
        path = str(tmp_path / "torn.json")
        open(path, "w").write('{"entries": [')
        payload, error = load_json_guarded(path, default={}, label="trajectory")
        assert payload == {}
        assert error is not None and "trajectory" in error and path in error

    def test_valid_file_returns_payload(self, tmp_path):
        path = str(tmp_path / "ok.json")
        atomic_write_json(path, {"n": 5})
        payload, error = load_json_guarded(path)
        assert payload == {"n": 5} and error is None


class TestExportersAreAtomic:
    def _registry(self):
        registry = MetricsRegistry()
        registry.register("repro_test_gauge", 1.25, kind="gauge", help="x")
        return registry

    def test_metrics_json_path_output_parses(self, tmp_path):
        path = str(tmp_path / "metrics.json")
        export_metrics_json(self._registry(), path)
        assert json.load(open(path))["metrics"]
        assert _no_tmp_leftovers(tmp_path)

    def test_metrics_csv_path_matches_file_object_output(self, tmp_path):
        path = str(tmp_path / "metrics.csv")
        export_metrics_csv(self._registry(), path)
        buffer = io.StringIO()
        export_metrics_csv(self._registry(), buffer)
        assert open(path, newline="").read() == buffer.getvalue()
        rows = list(csv.reader(open(path, newline="")))
        assert rows[0][0] == "name"

    def test_metrics_prometheus_path_output(self, tmp_path):
        path = str(tmp_path / "metrics.prom")
        export_metrics_prometheus(self._registry(), path)
        assert "repro_test_gauge" in open(path).read()
        assert _no_tmp_leftovers(tmp_path)


class TestTrajectoryIO:
    def _entry(self, seq=1):
        return {
            "runs": [
                {
                    "config": "entangling_4k",
                    "workload": "wl",
                    "instrs_per_sec": 1000.0 * seq,
                    "cycles": 500,
                    "instructions": 400,
                }
            ],
            "aggregate": {"instrs_per_sec": 1000.0 * seq},
        }

    def test_save_is_atomic_and_reloads(self, tmp_path):
        path = str(tmp_path / "BENCH_throughput.json")
        save_trajectory(path, [self._entry(1), self._entry(2)], retention=10)
        assert _no_tmp_leftovers(tmp_path)
        assert len(load_trajectory(path)) == 2

    def test_strict_load_raises_on_torn_file(self, tmp_path):
        path = str(tmp_path / "BENCH_throughput.json")
        open(path, "w").write('{"schema_version": 2, "entries": [{')
        with pytest.raises(ValueError, match="unreadable"):
            load_trajectory(path)

    def test_tolerant_load_starts_fresh_on_torn_file(self, tmp_path, caplog):
        path = str(tmp_path / "BENCH_throughput.json")
        open(path, "w").write("not json at all")
        with caplog.at_level("WARNING"):
            assert load_trajectory(path, tolerant=True) == []
        assert any("unreadable" in r.message for r in caplog.records)

    def test_tolerant_load_still_reads_good_files(self, tmp_path):
        path = str(tmp_path / "BENCH_throughput.json")
        save_trajectory(path, [self._entry()], retention=10)
        assert len(load_trajectory(path, tolerant=True)) == 1


class TestSentinelSkipsMalformedRecords:
    def _entry(self, ips=1000.0, cycles=500):
        return {
            "runs": [
                {
                    "config": "c",
                    "workload": "w",
                    "instrs_per_sec": ips,
                    "cycles": cycles,
                    "instructions": 400,
                }
            ],
        }

    def test_malformed_newest_record_is_quarantined(self):
        torn = self._entry()
        torn["runs"][0]["instrs_per_sec"] = "garbage"
        report = check_trajectory([self._entry(), self._entry(), torn])
        assert report.malformed == ["c/w"]
        assert report.checked == 0
        assert "malformed" in report.format()

    def test_malformed_history_record_is_excluded_from_baseline(self):
        torn = self._entry()
        torn["runs"][0]["cycles"] = "garbage"
        report = check_trajectory([torn, self._entry(), self._entry()])
        # The torn history entry is dropped; the remaining one still
        # supplies a baseline and the clean pair compares fine.
        assert report.checked == 1
        assert report.ok

    def test_clean_records_still_gate(self):
        slow = self._entry(ips=100.0)
        report = check_trajectory([self._entry(), self._entry(), slow])
        assert not report.ok
        assert report.regressions
