"""Tests for the experiment drivers, reporting, and figure functions.

Uses very small workloads so the whole module stays fast.
"""

import pytest

from repro.analysis.experiments import (
    EvaluationResult,
    default_suite,
    resolve_config,
    run_prefetcher_on_suite,
    run_suite,
)
from repro.analysis.figures import (
    fig1_fig2_oracle,
    fig6_ipc_vs_storage,
    fig11_ablation,
    fig16_cloudsuite,
    figs12_to_15_internals,
    per_workload_curves,
    render_curves,
    render_fig1,
    render_fig2,
    render_fig6,
    render_fig11,
    render_fig16,
    render_figs12_to_15,
    render_sec4e,
    render_tab1_tab2,
    render_tab4,
    sec4e_physical,
    tab1_tab2_modes,
    tab4_energy,
)
from repro.analysis.reporting import format_series, format_table
from repro.sim.config import SimConfig
from repro.workloads.generators import WorkloadSpec

TINY_SUITE = [
    WorkloadSpec(name="t_int", category="int", seed=3, n_instructions=30_000),
    WorkloadSpec(name="t_srv", category="srv", seed=4, n_instructions=30_000),
]


class TestResolveConfig:
    def test_plain_prefetcher(self):
        pf, config = resolve_config("next_line", SimConfig())
        assert pf.name == "NextLine"
        assert config == SimConfig()

    def test_large_l1i_pseudo_configs(self):
        _pf, config = resolve_config("l1i_64kb", SimConfig())
        assert config.l1i_size == 64 * 1024

    def test_physical_suffix(self):
        _pf, config = resolve_config("entangling_4k_phys", SimConfig())
        assert config.physical_addresses


class TestRunSuite:
    def test_baseline_included(self):
        ev = run_suite(TINY_SUITE, ["next_line"])
        assert "no" in ev.runs
        assert "next_line" in ev.runs

    def test_workloads_and_configs(self):
        ev = run_suite(TINY_SUITE, ["next_line"])
        assert ev.workloads() == ["t_int", "t_srv"]
        assert set(ev.configs()) == {"no", "next_line"}

    def test_normalized_ipc_baseline_is_one(self):
        ev = run_suite(TINY_SUITE, ["next_line"])
        for value in ev.normalized_ipc("no").values():
            assert value == pytest.approx(1.0)

    def test_metric_dicts_cover_workloads(self):
        ev = run_suite(TINY_SUITE, ["next_line"])
        for getter in (ev.coverage, ev.accuracy, ev.miss_ratio):
            assert set(getter("next_line")) == {"t_int", "t_srv"}

    def test_geomean_speedup_positive(self):
        ev = run_suite(TINY_SUITE, ["entangling_2k"])
        assert ev.geomean_speedup("entangling_2k") > 0.9

    def test_run_prefetcher_on_suite_returns_results(self):
        results = run_prefetcher_on_suite(TINY_SUITE, "no", warmup_instructions=0)
        for spec in TINY_SUITE:
            assert results[spec.name].stats.instructions == spec.n_instructions

    def test_bad_workload_is_quarantined_not_fatal(self):
        suite = TINY_SUITE[:1] + [
            WorkloadSpec(name="t_bad", category="bogus", seed=1,
                         n_instructions=1_000)
        ]
        ev = run_suite(suite, ["next_line"], jobs=1, cache=None,
                       checkpoint=None)
        # The good workload still ran everywhere; the broken one is
        # quarantined into the fault report instead of killing the suite.
        assert ev.runs["no"]["t_int"].stats.instructions > 0
        assert "t_bad" not in ev.runs["no"]
        assert ev.faults is not None
        labels = [failure.label for failure in ev.faults.quarantined]
        assert labels == ["no/t_bad", "next_line/t_bad"]
        assert "unknown category" in ev.faults.quarantined[0].error
        assert not ev.is_complete()
        assert ("no", "t_bad") in ev.missing_pairs()


class TestDefaultSuite:
    def test_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUITE_SCALE", "2")
        assert len(default_suite(per_category=1)) == 8

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SUITE_SCALE", raising=False)
        assert len(default_suite(per_category=1)) == 4


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "v"], [["a", 1.5], ["long-name", 2.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]

    def test_format_series_chunks(self):
        text = format_series("curve", [0.1] * 25, per_line=10)
        assert text.count("\n") == 3  # name line + 3 chunks - 1


class TestFigureDrivers:
    def test_tab1_tab2(self):
        modes = tab1_tab2_modes()
        assert len(modes["virtual"]) == 6
        assert len(modes["physical"]) == 4
        text = render_tab1_tab2()
        assert "Table I" in text and "Table II" in text

    def test_fig1_fig2(self):
        results = fig1_fig2_oracle(TINY_SUITE[:1])
        assert results[0].workload == "t_int"
        assert set(results[0].timely_fraction) == set(range(1, 11))
        assert "Fig 1" in render_fig1(results)
        assert "Fig 2" in render_fig2(results)

    def test_fig6(self):
        rows, ev = fig6_ipc_vs_storage(TINY_SUITE, configs=("next_line", "ideal"))
        assert [r.config for r in rows] == ["next_line", "ideal"]
        assert all(r.geomean_speedup > 0 for r in rows)
        assert "Fig 6" in render_fig6(rows)

    def test_curves(self):
        _rows, ev = fig6_ipc_vs_storage(TINY_SUITE, configs=("next_line",))
        curves = per_workload_curves(ev, "ipc", configs=("next_line",))
        assert len(curves["next_line"]) == 2
        assert curves["next_line"] == sorted(curves["next_line"])
        for metric in ("miss_ratio", "coverage", "accuracy"):
            per_workload_curves(ev, metric, configs=("next_line",))
        with pytest.raises(ValueError):
            per_workload_curves(ev, "bogus", configs=("next_line",))
        assert "next_line" in render_curves("Fig 7", curves)

    def test_tab4(self):
        rows, _ev = tab4_energy(TINY_SUITE, configs=("next_line",))
        assert rows[0][0] == "no"
        assert rows[0][-1] == 1.0
        assert "Table IV" in render_tab4(rows)

    def test_fig11(self):
        data = fig11_ablation(TINY_SUITE[:1], sizes=(4096,))
        assert set(data) == {"BB", "BBEnt", "BBEntBB", "Ent", "BBEntBB-Merge"}
        assert all(4096 in sizes for sizes in data.values())
        assert "Fig 11" in render_fig11(data)

    def test_figs12_to_15(self):
        result = figs12_to_15_internals(TINY_SUITE)
        assert set(result.avg_destinations) == {"int", "srv"}
        assert all(v >= 0 for v in result.avg_src_bb_size.values())
        assert "Fig 13" in render_figs12_to_15(result)

    def test_sec4e(self):
        speedups = sec4e_physical(TINY_SUITE[:1])
        assert set(speedups) == {
            "entangling_2k_phys", "entangling_4k_phys", "entangling_8k_phys"
        }
        assert "IV-E" in render_sec4e(speedups)

    def test_fig16(self):
        specs = [
            WorkloadSpec(name="c1", category="cloud", seed=5,
                         n_instructions=30_000,
                         params=TINY_SUITE[1].resolve_params()),
        ]
        data, _ev = fig16_cloudsuite(specs, configs=("next_line",))
        assert data["next_line"]["c1"] > 0
        assert "Fig 16" in render_fig16(data)


class TestPartialEvaluation:
    """Regression: quarantined (missing) or zero-IPC runs used to crash
    normalized-IPC aggregation with KeyError / ValueError."""

    @staticmethod
    def _result(name, cycles):
        from repro.sim.simulator import SimResult
        from repro.sim.stats import SimStats

        stats = SimStats()
        stats.instructions = 1000
        stats.cycles = cycles
        return SimResult(
            trace_name=name, category="srv", prefetcher_name="x", stats=stats
        )

    def _partial(self):
        # Baseline run for workload "b" was quarantined; "c" faulted to
        # a zero-cycle (zero-IPC) baseline.
        return EvaluationResult(
            runs={
                "no": {"a": self._result("a", 1000),
                       "c": self._result("c", 0)},
                "entangling_4k": {"a": self._result("a", 500),
                                  "b": self._result("b", 500),
                                  "c": self._result("c", 500)},
            },
            categories={"a": "srv", "b": "srv", "c": "srv"},
        )

    def test_normalized_ipc_flags_missing_pairs_as_zero(self):
        evaluation = self._partial()
        assert not evaluation.is_complete()
        normalized = evaluation.normalized_ipc("entangling_4k")
        assert normalized["a"] == pytest.approx(2.0)
        assert normalized["b"] == 0.0  # baseline quarantined
        assert normalized["c"] == 0.0  # baseline has zero IPC

    def test_geomean_speedup_skips_and_flags(self):
        evaluation = self._partial()
        with pytest.warns(RuntimeWarning):
            value = evaluation.geomean_speedup("entangling_4k")
        assert value == pytest.approx(2.0)

    def test_csv_export_renders_partial_result(self):
        import io

        from repro.analysis.export import export_evaluation_csv

        buffer = io.StringIO()
        export_evaluation_csv(self._partial(), buffer)
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == 1 + 2 + 3  # header + no(2) + entangling(3)
        assert any(line.startswith("entangling_4k,b,") for line in lines)
