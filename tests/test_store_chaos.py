"""Acceptance tests for the chaos-hardened shared run store.

The PR's acceptance criteria, pinned end-to-end through the real
evaluation engine:

* **Stampede dedup** — four concurrent evaluator *processes* sharing one
  cache directory over an identical suite perform exactly as many unique
  simulations as a single process would (the lease protocol coalesces
  every in-flight run key), and every process's results are bit-identical
  to the uncached serial reference.
* **Graceful degradation** — injected ENOSPC on the store flips it to
  read-only; the suite completes uncached with identical results instead
  of failing.
* **Chaos harness** — the multi-process stress (`repro chaos`) holds its
  invariants with and without injected faults, and a SIGKILLed lease
  owner is stolen from.
"""

import json
import multiprocessing
import os

import pytest

from repro.analysis.experiments import run_suite
from repro.analysis.runcache import RunCache
from repro.check.fsfault import (
    lease_steal_check,
    reset_fault_state,
    run_store_stress,
)
from repro.workloads.generators import WorkloadSpec

SUITE = [
    WorkloadSpec(name="ch_int", category="int", seed=41, n_instructions=20_000),
    WorkloadSpec(name="ch_srv", category="srv", seed=42, n_instructions=20_000),
]
CONFIGS = ["next_line", "entangling_2k"]


def _signatures(evaluation) -> dict:
    return {
        config: {
            workload: json.dumps(
                evaluation.runs[config][workload].stats.signature(),
                sort_keys=True,
            )
            for workload in evaluation.runs[config]
        }
        for config in evaluation.runs
    }


def _evaluator(cache_dir: str, report_path: str) -> None:
    cache = RunCache(disk_dir=cache_dir)
    evaluation = run_suite(SUITE, CONFIGS, jobs=2, cache=cache)
    report = {
        "stores": cache.stores,
        "coalesced": cache.coalesced,
        "lease_steals": cache.lease_steals,
        "degraded": bool(cache.store and cache.store.read_only),
        "signatures": _signatures(evaluation),
    }
    with open(report_path, "w") as fh:
        json.dump(report, fh)


@pytest.fixture(scope="module")
def serial_reference():
    return _signatures(run_suite(SUITE, CONFIGS, cache=None))


class TestStampedeDedup:
    def test_four_evaluators_share_one_simulation_each(
        self, tmp_path, serial_reference
    ):
        """The headline acceptance criterion: 4 concurrent evaluators,
        one shared cache dir, total unique simulations == the
        single-process count, results bit-identical to uncached serial."""
        cache_dir = os.path.join(str(tmp_path), "cache")
        reports = [
            os.path.join(str(tmp_path), f"report-{i}.json") for i in range(4)
        ]
        ctx = multiprocessing.get_context()
        procs = [
            ctx.Process(target=_evaluator, args=(cache_dir, path))
            for path in reports
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=600)
        assert all(proc.exitcode == 0 for proc in procs)

        loaded = []
        for path in reports:
            with open(path) as fh:
                loaded.append(json.load(fh))
        # Every process saw bit-identical stats to the serial reference.
        for report in loaded:
            assert report["signatures"] == serial_reference
            assert not report["degraded"]
        # Unique simulations across the whole fleet == one process's
        # worth: each (config, workload) pair — baseline included — was
        # simulated exactly once *somewhere*, everyone else coalesced or
        # read the disk entry.
        single_process_count = sum(
            len(workloads) for workloads in serial_reference.values()
        )
        total_stores = sum(r["stores"] for r in loaded)
        assert total_stores == single_process_count, loaded

    def test_warm_cache_second_fleet_simulates_nothing(
        self, tmp_path, serial_reference
    ):
        cache_dir = os.path.join(str(tmp_path), "cache")
        first = os.path.join(str(tmp_path), "first.json")
        _evaluator(cache_dir, first)
        second = os.path.join(str(tmp_path), "second.json")
        _evaluator(cache_dir, second)
        with open(second) as fh:
            report = json.load(fh)
        assert report["stores"] == 0
        assert report["signatures"] == serial_reference


class TestDegradation:
    def test_enospc_degrades_to_read_only_and_suite_completes(
        self, tmp_path, serial_reference, monkeypatch
    ):
        """Injected ENOSPC on every cache write: the store goes
        read-only, nothing is cached, and the evaluation still produces
        bit-identical results."""
        monkeypatch.setenv("REPRO_FSFAULT", "enospc:1.0:cache")
        reset_fault_state()
        try:
            cache = RunCache(disk_dir=os.path.join(str(tmp_path), "cache"))
            evaluation = run_suite(SUITE, CONFIGS, jobs=2, cache=cache)
        finally:
            monkeypatch.delenv("REPRO_FSFAULT")
            reset_fault_state()
        assert _signatures(evaluation) == serial_reference
        assert cache.store.read_only
        assert "DEGRADED" in cache.stats_line()
        # Nothing made it to disk; a fresh store sees an empty corpus.
        fresh = RunCache(disk_dir=os.path.join(str(tmp_path), "cache"))
        assert fresh.store.total_bytes() == 0


class TestChaosHarness:
    def test_stress_fault_free_dedups_perfectly(self, tmp_path):
        result = run_store_stress(
            os.path.join(str(tmp_path), "store"),
            writers=3, readers=1, entries=25, seconds=10.0,
            payload_bytes=512, seed=1,
        )
        assert result["ok"], result
        assert result["worker_failures"] == []
        assert result["verify_failures"] == 0
        # Perfect stampede dedup: each of the 25 keys simulated once
        # across all three writers.
        assert result["simulated"] == 25

    def test_stress_with_torn_renames_never_serves_damage(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FSFAULT", "torn-rename:0.3:cache")
        monkeypatch.setenv("REPRO_FSFAULT_SEED", "3")
        reset_fault_state()
        try:
            result = run_store_stress(
                os.path.join(str(tmp_path), "store"),
                writers=2, readers=2, entries=15, seconds=10.0,
                payload_bytes=512, seed=2,
            )
        finally:
            reset_fault_state()
        assert result["ok"], result
        assert result["verify_failures"] == 0
        # The injection actually bit: some reads saw (and rejected) a
        # torn entry rather than serving it.
        assert result["torn_rejected"] > 0

    def test_stress_with_enospc_degrades_not_fails(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_FSFAULT", "enospc:1.0:cache")
        reset_fault_state()
        try:
            result = run_store_stress(
                os.path.join(str(tmp_path), "store"),
                writers=2, readers=1, entries=10, seconds=10.0,
                payload_bytes=512, seed=3, expect_degraded=True,
            )
        finally:
            reset_fault_state()
        assert result["ok"], result
        assert result["degraded_workers"]  # read-only, not dead
        assert result["worker_failures"] == []

    def test_budget_respected_under_stress(self, tmp_path):
        budget = 6_000
        result = run_store_stress(
            os.path.join(str(tmp_path), "store"),
            writers=2, readers=1, entries=30, seconds=10.0,
            payload_bytes=512, max_bytes=budget, seed=4,
        )
        assert result["ok"], result
        assert result["budget_ok"]
        assert result["final_bytes"] <= budget

    def test_sigkilled_owner_is_stolen_from(self, tmp_path):
        result = lease_steal_check(os.path.join(str(tmp_path), "store"))
        assert result["ok"], result
        assert result["owner_sigkilled"]
        assert result["stolen"]
