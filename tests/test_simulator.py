"""Tests for the cycle-based front-end simulator."""

import pytest

from repro.prefetchers.base import InstructionPrefetcher, NullPrefetcher, PrefetchRequest
from repro.prefetchers.ideal import IdealPrefetcher
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulator, simulate
from repro.workloads.trace import BranchType, Instruction, Trace, trace_from_pcs

from tests.conftest import make_line_trace


class ScriptedPrefetcher(InstructionPrefetcher):
    """Issues a fixed set of prefetches on the very first demand access."""

    name = "scripted"

    def __init__(self, lines, fire_on=0):
        self.lines = list(lines)
        self.fire_on = fire_on
        self._accesses = 0
        self.feedback = []

    def on_demand_access(self, line_addr, hit, cycle):
        self._accesses += 1
        if self._accesses - 1 != self.fire_on:
            return ()
        return [PrefetchRequest(line, src_meta=("s", line)) for line in self.lines]

    def on_prefetch_useful(self, line_addr, src_meta, cycle):
        self.feedback.append(("useful", line_addr))

    def on_prefetch_late(self, line_addr, src_meta, cycle):
        self.feedback.append(("late", line_addr))

    def on_evict_unused(self, line_addr, src_meta, cycle):
        self.feedback.append(("wrong", line_addr))


class TestBasicExecution:
    def test_all_instructions_retire(self, sequential_trace):
        result = simulate(sequential_trace, NullPrefetcher())
        assert result.stats.instructions == len(sequential_trace)

    def test_ipc_bounded_by_retire_width(self, sequential_trace, default_config):
        result = simulate(sequential_trace, NullPrefetcher(), config=default_config)
        assert 0 < result.stats.ipc <= default_config.retire_width

    def test_empty_trace(self):
        result = simulate(Trace("empty", []), NullPrefetcher())
        assert result.stats.instructions == 0
        assert result.stats.cycles == 0

    def test_deterministic(self, small_srv_trace):
        a = simulate(small_srv_trace, NullPrefetcher()).stats
        b = simulate(small_srv_trace, NullPrefetcher()).stats
        assert a.cycles == b.cycles
        assert a.l1i_demand_misses == b.l1i_demand_misses

    def test_result_identity(self, sequential_trace):
        result = simulate(sequential_trace, NullPrefetcher())
        assert result.trace_name == "seq"
        assert result.prefetcher_name == "no"
        assert result.ipc == result.stats.ipc


class TestCacheBehaviour:
    def test_cold_lines_miss_once(self, sequential_trace):
        result = simulate(sequential_trace, NullPrefetcher())
        # 4 distinct lines => 4 cold misses, no repeats.
        assert result.stats.l1i_demand_misses == 4

    def test_repeated_lines_hit(self):
        trace = make_line_trace([0x40, 0x41, 0x40, 0x41, 0x40, 0x41])
        result = simulate(trace, NullPrefetcher())
        assert result.stats.l1i_demand_misses == 2
        assert result.stats.l1i_demand_hits >= 4

    def test_capacity_misses(self, tiny_config):
        # 4KB 4-way L1I = 64 lines; stream 128 lines twice.
        lines = list(range(0x100, 0x180))
        trace = make_line_trace(lines + lines)
        result = simulate(trace, NullPrefetcher(), config=tiny_config)
        assert result.stats.l1i_demand_misses > 128  # second pass misses too

    def test_miss_costs_cycles(self):
        hit_trace = make_line_trace([0x40] * 50)
        miss_trace = make_line_trace(list(range(0x40, 0x40 + 50)))
        hit_cycles = simulate(hit_trace, NullPrefetcher()).stats.cycles
        miss_cycles = simulate(miss_trace, NullPrefetcher()).stats.cycles
        assert miss_cycles > hit_cycles


class TestPrefetchFlow:
    def test_useful_prefetch(self):
        # Warm line 0x40 region, then a long dwell, then jump to 0x500.
        trace = make_line_trace([0x40] * 200 + [0x500])
        pf = ScriptedPrefetcher([0x500])
        result = simulate(trace, pf)
        assert result.stats.useful_prefetches == 1
        assert ("useful", 0x500) in pf.feedback
        assert result.stats.l1i_demand_misses == 1  # only line 0x40

    def test_wrong_prefetch_detected_on_eviction(self, tiny_config):
        # Prefetch a line never used; stream enough lines to evict it.
        lines = list(range(0x100, 0x200))
        trace = make_line_trace(lines)
        pf = ScriptedPrefetcher([0x999])
        result = simulate(trace, pf, config=tiny_config)
        assert result.stats.wrong_prefetches == 1
        assert ("wrong", 0x999) in pf.feedback

    def test_late_prefetch(self):
        # Prefetch fired on the third access (line 0x40 already warm); the
        # demand for 0x41 arrives a cycle later -- after the prefetch was
        # issued but long before its fill.
        trace = make_line_trace([0x40, 0x40, 0x40, 0x41])
        pf = ScriptedPrefetcher([0x41], fire_on=2)
        result = simulate(trace, pf)
        assert result.stats.late_prefetches == 1
        assert ("late", 0x41) in pf.feedback

    def test_prefetch_of_resident_line_dropped(self):
        trace = make_line_trace([0x40, 0x40, 0x41])
        pf = ScriptedPrefetcher([0x40])  # fires at first access (miss), 0x40 in flight
        result = simulate(trace, pf)
        assert result.stats.prefetches_dropped_in_flight == 1

    def test_prefetch_reduces_cycles(self, tiny_config, small_srv_trace):
        from repro.core import make_entangling

        base = simulate(small_srv_trace, NullPrefetcher(), config=tiny_config).stats
        ent = simulate(small_srv_trace, make_entangling(4096), config=tiny_config).stats
        assert ent.cycles < base.cycles


class TestIdealPrefetcher:
    def test_ideal_never_misses(self, small_srv_trace):
        result = simulate(small_srv_trace, IdealPrefetcher())
        assert result.stats.l1i_demand_misses == 0
        assert result.stats.l1i_miss_ratio == 0.0

    def test_ideal_still_loads_l2(self, small_srv_trace):
        result = simulate(small_srv_trace, IdealPrefetcher())
        assert result.stats.cache_accesses["L2C"].reads > 0

    def test_ideal_is_fastest(self, small_srv_trace):
        ideal = simulate(small_srv_trace, IdealPrefetcher()).stats
        base = simulate(small_srv_trace, NullPrefetcher()).stats
        assert ideal.cycles < base.cycles


class TestBranchHandling:
    def _branchy_trace(self, taken_pattern):
        """Conditional at the end of line 0x40 jumping to 0x80 or falling
        through, repeated per the pattern."""
        insts = []
        for taken in taken_pattern:
            insts.append(Instruction(pc=0x1000))
            insts.append(
                Instruction(
                    pc=0x1004,
                    branch_type=BranchType.CONDITIONAL,
                    taken=taken,
                    target=0x2000,
                )
            )
            if taken:
                insts.append(Instruction(pc=0x2000))
                insts.append(
                    Instruction(
                        pc=0x2004,
                        branch_type=BranchType.DIRECT_JUMP,
                        taken=True,
                        target=0x1000,
                    )
                )
            else:
                insts.append(
                    Instruction(
                        pc=0x1008,
                        branch_type=BranchType.DIRECT_JUMP,
                        taken=True,
                        target=0x1000,
                    )
                )
        return Trace("branchy", insts)

    def test_branches_counted(self):
        trace = self._branchy_trace([True, False] * 10)
        result = simulate(trace, NullPrefetcher())
        assert result.stats.branches == 40  # 2 branches per iteration

    def test_predictable_branches_stop_mispredicting(self):
        trace = self._branchy_trace([True] * 200)
        result = simulate(trace, NullPrefetcher())
        # After warm-up the all-taken conditional is learned.
        assert result.stats.branch_mispredictions < 20

    def test_random_pattern_mispredicts_more(self):
        import random

        rng = random.Random(1)
        pattern = [rng.random() < 0.5 for _ in range(200)]
        random_trace = self._branchy_trace(pattern)
        steady_trace = self._branchy_trace([True] * 200)
        r1 = simulate(random_trace, NullPrefetcher()).stats
        r2 = simulate(steady_trace, NullPrefetcher()).stats
        assert r1.branch_mispredictions > r2.branch_mispredictions

    def test_mispredictions_cost_cycles(self):
        import random

        rng = random.Random(1)
        pattern = [rng.random() < 0.5 for _ in range(200)]
        r1 = simulate(self._branchy_trace(pattern), NullPrefetcher()).stats
        r2 = simulate(self._branchy_trace([True] * 200), NullPrefetcher()).stats
        assert r1.cycles > r2.cycles

    def test_btb_miss_redirects_counted(self):
        trace = self._branchy_trace([True] * 50)
        result = simulate(trace, NullPrefetcher())
        assert result.stats.btb_miss_redirects >= 1


class TestWarmup:
    def test_warmup_excludes_cold_misses(self, small_srv_trace):
        cold = simulate(small_srv_trace, NullPrefetcher()).stats
        warm = simulate(
            small_srv_trace, NullPrefetcher(), warmup_instructions=30_000
        ).stats
        # Retirement advances a few instructions per cycle, so the reset
        # lands within one retire group of the requested boundary.
        assert abs(warm.instructions - (cold.instructions - 30_000)) <= 8
        assert warm.l1i_mpki < cold.l1i_mpki

    def test_warmup_zero_equals_full(self, small_srv_trace):
        a = simulate(small_srv_trace, NullPrefetcher(), warmup_instructions=0).stats
        b = simulate(small_srv_trace, NullPrefetcher()).stats
        assert a.cycles == b.cycles


class TestPhysicalAddresses:
    def test_physical_mode_runs(self, small_srv_trace):
        config = SimConfig().with_physical_addresses()
        result = simulate(small_srv_trace, NullPrefetcher(), config=config)
        assert result.stats.instructions == len(small_srv_trace)

    def test_physical_changes_cache_indexing(self, small_srv_trace):
        virt = simulate(small_srv_trace, NullPrefetcher()).stats
        phys = simulate(
            small_srv_trace,
            NullPrefetcher(),
            config=SimConfig().with_physical_addresses(),
        ).stats
        # The L1I index bits fit inside the page offset, so L1I behaviour
        # is unchanged -- but the L2/LLC index from translated lines makes
        # the runs observably different.
        virt_sig = (virt.cycles, virt.cache_accesses["L2C"].writes,
                    virt.cache_accesses["LLC"].writes)
        phys_sig = (phys.cycles, phys.cache_accesses["L2C"].writes,
                    phys.cache_accesses["LLC"].writes)
        assert virt_sig != phys_sig


class TestConfigVariants:
    def test_larger_l1i_reduces_misses(self, small_srv_trace):
        base = simulate(small_srv_trace, NullPrefetcher()).stats
        big = simulate(
            small_srv_trace, NullPrefetcher(), config=SimConfig().with_l1i_kb(96)
        ).stats
        assert big.l1i_demand_misses < base.l1i_demand_misses

    def test_with_l1i_kb_geometry(self):
        config = SimConfig().with_l1i_kb(64)
        assert config.l1i_size == 64 * 1024
        assert config.l1i_ways == 16
        assert config.l1i_sets == SimConfig().l1i_sets

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(l1i_size=1000)  # not divisible into ways x lines
