"""Tests for the prefetcher interface types."""

from repro.prefetchers.base import (
    FillInfo,
    InstructionPrefetcher,
    NullPrefetcher,
    PrefetchRequest,
)


class TestPrefetchRequest:
    def test_frozen_value_type(self):
        a = PrefetchRequest(10, src_meta=("s", 10))
        b = PrefetchRequest(10, src_meta=("s", 10))
        assert a == b

    def test_default_meta(self):
        assert PrefetchRequest(10).src_meta is None


class TestFillInfo:
    def _info(self, **overrides):
        base = dict(
            line_addr=7,
            fill_cycle=120,
            issue_cycle=100,
            is_demand=True,
            was_prefetch=False,
            demand_cycle=100,
        )
        base.update(overrides)
        return FillInfo(**base)

    def test_latency(self):
        assert self._info().latency == 20

    def test_demand_miss_is_not_late(self):
        assert not self._info().is_late_prefetch

    def test_late_prefetch_flag(self):
        info = self._info(was_prefetch=True, is_demand=True, demand_cycle=110)
        assert info.is_late_prefetch

    def test_pure_prefetch_not_late(self):
        info = self._info(was_prefetch=True, is_demand=False, demand_cycle=None)
        assert not info.is_late_prefetch


class TestBaseClassDefaults:
    def test_default_hooks_are_silent(self):
        pf = InstructionPrefetcher()
        assert list(pf.on_demand_access(1, True, 0)) == []
        assert list(pf.on_fill(FillInfo(1, 10, 0, True, False, 0))) == []
        pf.on_prefetch_useful(1, None, 0)
        pf.on_prefetch_late(1, None, 0)
        pf.on_evict_unused(1, None, 0)
        assert pf.storage_bits() == 0

    def test_storage_kb(self):
        class EightKb(InstructionPrefetcher):
            def storage_bits(self):
                return 8 * 8192

        assert EightKb().storage_kb == 8.0

    def test_repr(self):
        assert "no" in repr(NullPrefetcher())
