"""Tests for the observability layer (repro.obs) and its zero-cost contract.

The load-bearing property is that observability is *optional*: a run with
no tracer/profiler attached must be bit-identical to a run in a process
that never even imports ``repro.obs`` — and a run *with* the tracer
attached must still produce the same architectural counters, because the
tracer is a passive observer.
"""

import csv
import io
import json
import os
import re
import subprocess
import sys
import textwrap

import pytest

from repro.analysis.export import (
    export_metrics_csv,
    export_metrics_json,
    export_metrics_prometheus,
)
from repro.analysis.experiments import run_suite
from repro.obs import (
    EVENT_KINDS,
    MetricsRegistry,
    PhaseProfiler,
    PrefetchTracer,
    TimelinessReport,
    TraceEvent,
    get_stage_profiler,
    registry_for_run,
    set_stage_profiler,
    stage,
)
from repro.obs.profiler import SIM_PHASES
from repro.obs.registry import registry_from_sim_stats
from repro.prefetchers.registry import make_prefetcher
from repro.sim.simulator import simulate
from repro.sim.stats import SimStats
from repro.workloads.generators import WorkloadSpec, make_workload

SPEC = WorkloadSpec(name="obs_wl", category="srv", seed=11, n_instructions=30_000)
WARMUP = 10_000


def traced_run(capacity=1 << 20, sample=1, profiler=None):
    tracer = PrefetchTracer(capacity=capacity, sample=sample)
    result = simulate(
        make_workload(SPEC),
        make_prefetcher("entangling_4k"),
        warmup_instructions=WARMUP,
        tracer=tracer,
        profiler=profiler,
    )
    return result, tracer


class TestTracerMechanics:
    def test_ring_buffer_overflow(self):
        tracer = PrefetchTracer(capacity=4)
        for cycle in range(10):
            tracer.emit("fill", cycle, cycle)
        assert len(tracer) == 4
        assert tracer.emitted == 10
        assert tracer.overflowed
        assert not tracer.is_exact
        # The ring keeps the *newest* events.
        assert [e.cycle for e in tracer.events()] == [6, 7, 8, 9]

    def test_sampling_keeps_lifecycles_coherent(self):
        tracer = PrefetchTracer(sample=2)
        for line in range(200):
            tracer.emit("pf_issued", 0, line)
            tracer.emit("fill", 1, line)
        per_line = {}
        for event in tracer.events():
            per_line[event.line_addr] = per_line.get(event.line_addr, 0) + 1
        # Every sampled line kept its whole lifecycle; no partial lines.
        assert per_line and all(count == 2 for count in per_line.values())
        assert tracer.emitted + tracer.sampled_out == 400
        assert tracer.sampled_out > 0
        # Decisions are stable (same hash, same answer).
        assert all(tracer.wants(line) for line in per_line)

    def test_clear_resets_counters(self):
        tracer = PrefetchTracer()
        tracer.emit("fill", 0, 1)
        tracer.clear()
        assert len(tracer) == 0 and tracer.emitted == 0
        assert tracer.is_exact

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            PrefetchTracer(capacity=0)
        with pytest.raises(ValueError):
            PrefetchTracer(sample=0)


class TestTracedRun:
    def test_totals_match_simstats_counters(self):
        result, tracer = traced_run()
        assert tracer.is_exact
        counts = tracer.counts_by_kind()
        stats = result.stats
        assert counts.get("pf_useful", 0) == stats.useful_prefetches
        assert counts.get("pf_late", 0) == stats.late_prefetches
        assert counts.get("pf_wrong", 0) == stats.wrong_prefetches
        assert counts.get("pf_issued", 0) == stats.prefetches_sent
        assert counts.get("demand_access", 0) == stats.l1i_demand_accesses
        report = TimelinessReport.from_tracer(tracer)
        assert (report.useful, report.late, report.wrong) == (
            stats.useful_prefetches,
            stats.late_prefetches,
            stats.wrong_prefetches,
        )
        assert report.demand_hits == stats.l1i_demand_hits

    def test_event_ordering(self):
        # No warm-up: the measurement reset clears the tracer, so a
        # warmed run can legitimately issue prefetches whose enqueue
        # event predates the cleared buffer.
        tracer = PrefetchTracer()
        simulate(
            make_workload(SPEC),
            make_prefetcher("entangling_4k"),
            tracer=tracer,
        )
        events = tracer.events()
        assert events, "a traced Entangling run must produce events"
        seen_kinds = {event.kind for event in events}
        assert seen_kinds <= set(EVENT_KINDS)
        # Per-line lifecycle order: issue requires a prior enqueue, a
        # useful mark requires a prior fill of the same line.
        enqueued, issued, filled = set(), set(), set()
        for event in events:
            line = event.line_addr
            if event.kind == "pf_enqueued":
                enqueued.add(line)
            elif event.kind == "pf_issued":
                assert line in enqueued
                issued.add(line)
            elif event.kind == "fill":
                filled.add(line)
            elif event.kind == "pf_useful":
                assert line in filled
        assert issued and filled

    def test_cycles_monotonic(self):
        _result, tracer = traced_run()
        cycles = [event.cycle for event in tracer.events()]
        assert all(a <= b for a, b in zip(cycles, cycles[1:]))

    def test_pair_provenance_recorded(self):
        _result, tracer = traced_run()
        report = TimelinessReport.from_tracer(tracer)
        # Entangling prefetches carry (src, dst) provenance into the
        # feedback events, so the per-pair breakdown is populated.
        assert report.per_pair
        for (src, dst), counts in report.per_pair.items():
            assert len(counts) == 3 and sum(counts) > 0
        text = report.format()
        assert "useful margin" in text and "worst (src, dst) pairs" in text

    def test_report_totals_cross_check_per_pair(self):
        _result, tracer = traced_run()
        report = TimelinessReport.from_tracer(tracer)
        pair_useful = sum(c[0] for c in report.per_pair.values())
        pair_late = sum(c[1] for c in report.per_pair.values())
        pair_wrong = sum(c[2] for c in report.per_pair.values())
        # Every feedback event with pair provenance is attributed; events
        # without provenance (demand fills evicted, etc.) only make the
        # per-pair totals a lower bound.
        assert pair_useful <= report.useful
        assert pair_late <= report.late
        assert pair_wrong <= report.wrong


class TestBitIdentity:
    def test_tracer_attached_does_not_change_signature(self):
        plain = simulate(
            make_workload(SPEC),
            make_prefetcher("entangling_4k"),
            warmup_instructions=WARMUP,
        )
        traced, _tracer = traced_run(profiler=PhaseProfiler())
        assert traced.stats.signature() == plain.stats.signature()

    def test_sampled_overflowing_tracer_still_identical(self):
        plain = simulate(
            make_workload(SPEC),
            make_prefetcher("entangling_4k"),
            warmup_instructions=WARMUP,
        )
        traced, tracer = traced_run(capacity=64, sample=4)
        assert tracer.overflowed or tracer.sampled_out > 0
        assert traced.stats.signature() == plain.stats.signature()

    def test_signature_identical_to_process_never_importing_obs(self, tmp_path):
        """The acceptance check: a process that never imports repro.obs
        produces the same architectural counters as a traced run here."""
        script = tmp_path / "never_imports_obs.py"
        script.write_text(textwrap.dedent(
            """
            import json
            import sys

            from repro.workloads.generators import WorkloadSpec, make_workload
            from repro.sim.simulator import simulate
            from repro.prefetchers.registry import make_prefetcher

            assert "repro.obs" not in sys.modules, "obs leaked into the hot path"
            spec = WorkloadSpec(
                name="obs_wl", category="srv", seed=11, n_instructions=30000
            )
            result = simulate(
                make_workload(spec),
                make_prefetcher("entangling_4k"),
                warmup_instructions=10000,
            )
            assert "repro.obs" not in sys.modules
            print(json.dumps(result.stats.signature()))
            """
        ))
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env = dict(os.environ, PYTHONPATH=src)
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        theirs = json.loads(proc.stdout)
        traced, _tracer = traced_run(profiler=PhaseProfiler())
        # Round-trip ours through JSON so tuples normalize to lists.
        ours = json.loads(json.dumps(traced.stats.signature()))
        assert ours == theirs

    def test_span_traced_suite_identical_to_process_never_importing_spans(
        self, tmp_path
    ):
        """Span-layer extension of the acceptance check: a serial
        ``run_suite`` in a process that never imports the span/heartbeat
        modules produces the same per-pair signatures as a span-traced
        parallel ``run_suite`` here."""
        script = tmp_path / "never_imports_spans.py"
        script.write_text(textwrap.dedent(
            """
            import json
            import sys

            from repro.analysis.experiments import run_suite
            from repro.workloads.generators import WorkloadSpec

            suite = [WorkloadSpec(
                name="obs_wl", category="srv", seed=11, n_instructions=30000
            )]
            evaluation = run_suite(
                suite, ["entangling_4k"], warmup_instructions=10000,
                jobs=1, cache=None, checkpoint=None,
            )
            # The engine ran untraced: the span and heartbeat modules must
            # never have been imported (repro.obs itself is fine — its
            # eager members are the profiler/registry/tracer; the span
            # layer is a lazy PEP 562 export).
            for module in ("repro.obs.spans", "repro.obs.heartbeat"):
                assert module not in sys.modules, (
                    module + " leaked into the untraced engine"
                )
            sigs = {
                config: {
                    workload: result.stats.signature()
                    for workload, result in per_workload.items()
                }
                for config, per_workload in evaluation.runs.items()
            }
            print(json.dumps(sigs))
            """
        ))
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env = dict(os.environ, PYTHONPATH=src)
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        theirs = json.loads(proc.stdout)

        trace_path = tmp_path / "suite_trace.json"
        evaluation = run_suite(
            [SPEC], ["entangling_4k"], warmup_instructions=WARMUP,
            jobs=2, cache=None, checkpoint=None, trace_path=str(trace_path),
        )
        ours = json.loads(json.dumps({
            config: {
                workload: result.stats.signature()
                for workload, result in per_workload.items()
            }
            for config, per_workload in evaluation.runs.items()
        }))
        assert ours == theirs
        # And the trace actually materialized.
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]


class TestMetricsRegistry:
    def _stats(self):
        stats = SimStats()
        stats.instructions = 1000
        stats.cycles = 2000
        stats.useful_prefetches = 7
        stats.prefetches_sent = 10
        stats.phase_seconds = {"fills": 0.25, "retire": 0.75}
        return stats

    def test_values_and_kinds(self):
        registry = registry_from_sim_stats(self._stats())
        assert registry.value("repro_sim_instructions") == 1000
        assert registry.value("repro_sim_ipc") == pytest.approx(0.5)
        assert registry.value(
            "repro_sim_phase_seconds", {"phase": "retire"}
        ) == pytest.approx(0.75)
        by_name = {m.name: m for m in registry.metrics()}
        assert by_name["repro_sim_instructions"].kind == "counter"
        assert by_name["repro_sim_ipc"].kind == "gauge"

    def test_relabel_rekeys_lookup(self):
        registry = registry_from_sim_stats(self._stats())
        registry.relabel({"config": "x"})
        assert registry.value(
            "repro_sim_instructions", {"config": "x"}
        ) == 1000
        with pytest.raises(KeyError):
            registry.value("repro_sim_instructions")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            MetricsRegistry().register("m", 1, kind="histogram")

    def test_json_exporter_parses(self):
        registry = registry_from_sim_stats(self._stats())
        buffer = io.StringIO()
        export_metrics_json(registry, buffer)
        payload = json.loads(buffer.getvalue())
        names = {m["name"] for m in payload["metrics"]}
        assert "repro_sim_useful_prefetches" in names

    def test_csv_exporter_parses(self):
        registry = registry_from_sim_stats(self._stats())
        buffer = io.StringIO()
        export_metrics_csv(registry, buffer)
        rows = list(csv.reader(io.StringIO(buffer.getvalue())))
        assert rows[0] == ["name", "labels", "kind", "value"]
        assert len(rows) == len(registry) + 1

    def test_prometheus_exporter_format(self):
        registry = registry_from_sim_stats(self._stats())
        registry.relabel({"workload": "w1"})
        buffer = io.StringIO()
        export_metrics_prometheus(registry, buffer)
        lines = buffer.getvalue().splitlines()
        sample = re.compile(
            r'^[a-z_][a-z0-9_]*(\{[a-z0-9_]+="[^"]*"(,[a-z0-9_]+="[^"]*")*\})? '
            r"-?[0-9.e+-]+$"
        )
        type_lines = [l for l in lines if l.startswith("# TYPE")]
        for line in lines:
            if line.startswith("#"):
                assert line.startswith(("# HELP", "# TYPE"))
            else:
                assert sample.match(line), line
        # One TYPE declaration per metric family, not per sample.
        assert len(type_lines) == len(set(type_lines))
        assert 'repro_sim_instructions{workload="w1"} 1000' in lines

    def test_registry_for_run_includes_prefetcher_internals(self):
        result, _tracer = traced_run()
        registry = registry_for_run(result, labels={"config": "entangling_4k"})
        names = set(registry.names())
        assert any(n.startswith("repro_entangling_") for n in names)
        assert any(n.startswith("repro_table_") for n in names)
        assert registry.value(
            "repro_sim_useful_prefetches", {"config": "entangling_4k"}
        ) == result.stats.useful_prefetches


class TestPhaseProfiler:
    def test_wrap_times_and_counts(self):
        profiler = PhaseProfiler()
        fn = profiler.wrap("work", lambda x: x + 1)
        assert [fn(i) for i in range(5)] == [1, 2, 3, 4, 5]
        assert profiler.calls["work"] == 5
        assert profiler.seconds["work"] >= 0.0

    def test_stage_and_merge(self):
        a, b = PhaseProfiler(), PhaseProfiler()
        with a.stage("s"):
            pass
        with b.stage("s"):
            pass
        a.merge(b)
        assert a.calls["s"] == 2
        assert "s" in a.format()

    def test_simulator_phases_recorded(self):
        profiler = PhaseProfiler()
        result, _tracer = traced_run(profiler=profiler)
        assert set(result.stats.phase_seconds) == set(SIM_PHASES)
        assert set(profiler.seconds) == set(SIM_PHASES)
        assert all(s >= 0.0 for s in result.stats.phase_seconds.values())
        # Telemetry stays out of the architectural signature.
        assert "phase_seconds" not in result.stats.signature()

    def test_stage_profiler_slot_set_and_restore(self):
        assert get_stage_profiler() is None
        profiler = PhaseProfiler()
        previous = set_stage_profiler(profiler)
        try:
            assert previous is None
            with stage("unit"):
                pass
            assert profiler.calls["unit"] == 1
        finally:
            set_stage_profiler(previous)
        assert get_stage_profiler() is None
        with stage("noop"):  # no profiler installed: a plain no-op
            pass
        assert "noop" not in profiler.calls


class TestTimelinessReport:
    def test_margins_and_buckets_from_synthetic_events(self):
        events = [
            TraceEvent("fill", 100, 1, None, (False, True, 30)),
            TraceEvent("pf_useful", 103, 1, (7, 1), None),
            TraceEvent("pf_late", 110, 2, (7, 2), None),
            TraceEvent("fill", 122, 2, None, (True, True, 12)),
            TraceEvent("fill", 130, 3, None, (False, True, 30)),
            TraceEvent("pf_wrong", 200, 3, (9, 3), None),
            TraceEvent("demand_access", 103, 1, None, True),
            TraceEvent("demand_access", 110, 2, None, False),
        ]
        report = TimelinessReport.from_events(events)
        assert (report.useful, report.late, report.wrong) == (1, 1, 1)
        assert report.demand_accesses == 2 and report.demand_hits == 1
        assert report.useful_margins == {"3-4": 1}   # demanded 3 cycles later
        assert report.late_margins == {"9-16": 1}    # waited 12 cycles
        assert report.wrong_lifetimes == {"65-128": 1}
        assert report.per_pair == {
            (7, 1): [1, 0, 0], (7, 2): [0, 1, 0], (9, 3): [0, 0, 1]
        }
        worst = report.worst_pairs(limit=2)
        assert [pair for pair, _counts in worst] == [(7, 2), (9, 3)]


class TestTraceCli:
    def test_trace_subcommand_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = str(tmp_path / "w.trc")
        assert main([
            "gen", trace_path, "--category", "srv", "--seed", "5",
            "--instructions", "40000",
        ]) == 0
        prefix = str(tmp_path / "metrics")
        code = main([
            "trace", trace_path, "--prefetcher", "entangling_4k",
            "--warmup", "10000", "--profile", "--export", prefix,
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "cross-check vs SimStats: OK" in out
        assert "Prefetch timeliness (traced)" in out
        assert "Simulator phase profile" in out
        payload = json.loads(open(prefix + ".json").read())
        assert payload["metrics"]
        rows = list(csv.reader(open(prefix + ".csv")))
        assert rows[0] == ["name", "labels", "kind", "value"]
        prom = open(prefix + ".prom").read()
        assert "# TYPE repro_sim_instructions counter" in prom

    def test_trace_subcommand_sampled(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = str(tmp_path / "w.trc")
        main(["gen", trace_path, "--seed", "5", "--instructions", "20000"])
        code = main([
            "trace", trace_path, "--sample", "4", "--capacity", "4096",
        ])
        out = capsys.readouterr().out
        assert code == 0
        # A sampled run is not exact, so no cross-check is claimed.
        assert "cross-check" not in out
        assert "sampled" in out
