"""Regression tests for the append-only checkpoint manifest (format v2).

The bug under test (satellite of the chaos-hardening PR): format v1
rewrote the whole manifest on every mark, so two processes resuming the
same interrupted sweep raced rewrite-vs-rewrite and the loser erased the
winner's finished keys — work already done was re-simulated.  v2 appends
one complete JSONL line per mark with a single ``os.write`` on an
``O_APPEND`` descriptor (kernel-serialized), and loading merges every
line.  These tests pin: merge-on-load, the multi-process union (no lost
marks), legacy v1 loading and in-place upgrade, and torn-tail tolerance.
"""

import json
import multiprocessing
import os

from repro.analysis.checkpoint import (
    CheckpointManifest,
    _MANIFEST_FORMAT_VERSION,
)


def _mark_range(path: str, start: int, count: int) -> None:
    manifest = CheckpointManifest(path, resume=True)
    for i in range(start, start + count):
        manifest.mark_done(f"{i:032x}", f"cfg{i % 3}", f"wl{i % 5}")
    manifest.close()


class TestAppendOnlyFormat:
    def test_each_mark_is_one_jsonl_line(self, tmp_path):
        path = os.path.join(str(tmp_path), "ckpt.json")
        manifest = CheckpointManifest(path, resume=False)
        manifest.mark_done("a" * 32, "cfg", "wl")
        manifest.mark_done("b" * 32, "cfg2", "wl2")
        manifest.close()
        with open(path) as fh:
            lines = [json.loads(line) for line in fh if line.strip()]
        assert len(lines) == 2
        assert all(
            line["format"] == _MANIFEST_FORMAT_VERSION for line in lines
        )
        assert lines[0]["key"] == "a" * 32
        assert lines[1] == {
            "format": _MANIFEST_FORMAT_VERSION,
            "key": "b" * 32,
            "config": "cfg2",
            "workload": "wl2",
        }

    def test_duplicate_mark_not_reappended(self, tmp_path):
        path = os.path.join(str(tmp_path), "ckpt.json")
        manifest = CheckpointManifest(path, resume=False)
        manifest.mark_done("a" * 32, "cfg", "wl")
        manifest.mark_done("a" * 32, "cfg", "wl")
        manifest.close()
        with open(path) as fh:
            assert sum(1 for line in fh if line.strip()) == 1
        assert manifest.marked == 1

    def test_merge_on_load_round_trip(self, tmp_path):
        path = os.path.join(str(tmp_path), "ckpt.json")
        _mark_range(path, 0, 10)
        resumed = CheckpointManifest(path, resume=True)
        assert len(resumed) == 10
        assert resumed.resumed == 10
        assert f"{3:032x}" in resumed
        assert resumed.done[f"{3:032x}"] == {"config": "cfg0",
                                             "workload": "wl3"}

    def test_interleaved_writers_merge(self, tmp_path):
        """Two manifests open on one file (the concurrent --resume
        scenario, in-process): every mark from both survives a reload."""
        path = os.path.join(str(tmp_path), "ckpt.json")
        a = CheckpointManifest(path, resume=True)
        b = CheckpointManifest(path, resume=True)
        for i in range(50):
            (a if i % 2 else b).mark_done(f"{i:032x}", "cfg", "wl")
        a.close()
        b.close()
        merged = CheckpointManifest(path, resume=True)
        assert len(merged) == 50


class TestConcurrentProcesses:
    def test_no_marks_lost_across_processes(self, tmp_path):
        """The v1 bug, pinned dead: N processes each mark a disjoint
        range; the union must be complete — no lost keys."""
        path = os.path.join(str(tmp_path), "ckpt.json")
        ctx = multiprocessing.get_context()
        procs = [
            ctx.Process(target=_mark_range, args=(path, w * 100, 100))
            for w in range(4)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
        assert all(proc.exitcode == 0 for proc in procs)
        merged = CheckpointManifest(path, resume=True)
        assert len(merged) == 400
        for i in range(400):
            assert f"{i:032x}" in merged


class TestLegacyUpgrade:
    def _write_v1(self, path: str, keys) -> None:
        with open(path, "w") as fh:
            json.dump(
                {
                    "format": 1,
                    "done": {
                        key: {"config": "old", "workload": f"w{n}"}
                        for n, key in enumerate(keys)
                    },
                },
                fh,
            )

    def test_v1_whole_file_loads(self, tmp_path):
        path = os.path.join(str(tmp_path), "ckpt.json")
        self._write_v1(path, ["a" * 32, "b" * 32])
        manifest = CheckpointManifest(path, resume=True)
        assert len(manifest) == 2
        assert manifest.done["a" * 32]["config"] == "old"

    def test_v1_upgraded_in_place_by_append(self, tmp_path):
        """Appending to a v1 file (which has no trailing newline) must
        start a fresh line, and a reload must see the union."""
        path = os.path.join(str(tmp_path), "ckpt.json")
        self._write_v1(path, ["a" * 32])
        manifest = CheckpointManifest(path, resume=True)
        manifest.mark_done("b" * 32, "new", "wl")
        manifest.close()
        merged = CheckpointManifest(path, resume=True)
        assert len(merged) == 2
        assert merged.done["a" * 32]["config"] == "old"
        assert merged.done["b" * 32]["config"] == "new"


class TestDamageTolerance:
    def test_torn_tail_skipped_silently(self, tmp_path):
        path = os.path.join(str(tmp_path), "ckpt.json")
        _mark_range(path, 0, 5)
        with open(path, "ab") as fh:
            fh.write(b'{"format": 2, "key": "trunc')  # crash mid-append
        manifest = CheckpointManifest(path, resume=True)
        assert len(manifest) == 5  # torn record dropped, rest intact

    def test_mid_file_corruption_skipped(self, tmp_path):
        path = os.path.join(str(tmp_path), "ckpt.json")
        _mark_range(path, 0, 2)
        with open(path, "a") as fh:
            fh.write("GARBAGE LINE\n")
        _mark_range(path, 2, 2)
        manifest = CheckpointManifest(path, resume=True)
        assert len(manifest) == 4

    def test_unknown_schema_line_skipped(self, tmp_path):
        path = os.path.join(str(tmp_path), "ckpt.json")
        _mark_range(path, 0, 2)
        with open(path, "a") as fh:
            fh.write(json.dumps({"format": 99, "key": "x" * 32}) + "\n")
        manifest = CheckpointManifest(path, resume=True)
        assert len(manifest) == 2

    def test_resume_false_truncates_only_on_first_mark(self, tmp_path):
        path = os.path.join(str(tmp_path), "ckpt.json")
        _mark_range(path, 0, 3)
        fresh = CheckpointManifest(path, resume=False)
        assert len(fresh) == 0
        # File untouched until the first mark...
        assert len(CheckpointManifest(path, resume=True)) == 3
        fresh.mark_done("f" * 32, "cfg", "wl")
        fresh.close()
        # ...which starts the manifest over.
        assert len(CheckpointManifest(path, resume=True)) == 1
