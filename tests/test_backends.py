"""Bit-identity and selection tests for the simulator backends.

The staged and numpy cores (``repro.sim.stages``) promise *bit-identical*
:meth:`~repro.sim.stats.SimStats.signature` results against the
reference per-cycle simulator — not "statistically close", identical.
These tests pin that contract across the feature axes that select
different code paths inside the fast cores:

* workload category (branchy int vs. loopy fp vs. miss-heavy srv);
* prefetcher kind (passive ``no`` → the monolithic passive loop and the
  numpy span fast path; active ``next_line``/``entangling_4k`` → the
  active streak loop);
* L1I replacement policy (LRU move-to-end vs. FIFO insertion order);
* address translation (a mapper disables the streak loops entirely,
  forcing the staged per-stage path);
* warmup (mid-run stats reset must land on the same cycle);
* attached observers (tracer event streams must match event-for-event,
  and the sanitizer must stay green on the fast cores).

Selection tests cover ``resolve_backend`` precedence (config beats
``REPRO_BACKEND`` beats default) and the env-var validation error.
"""

from __future__ import annotations

import pytest

from repro.check.sanitize import Sanitizer
from repro.obs.tracer import PrefetchTracer
from repro.prefetchers.registry import make_prefetcher
from repro.sim.config import BACKENDS, SimConfig
from repro.sim.simulator import Simulator, simulate
from repro.sim.stages import StagedSimulator, backend_from_env, resolve_backend
from repro.sim.stages import vector
from repro.workloads.generators import WorkloadSpec, make_workload

#: Backends under test beyond the reference anchor.  The numpy core is
#: exercised only when numpy is importable; resolve_backend's fallback
#: is covered separately.
FAST_BACKENDS = ("staged",) + (("numpy",) if vector.NUMPY_AVAILABLE else ())

N_INSTRUCTIONS = 12_000


def _trace(category: str, seed: int = 7):
    spec = WorkloadSpec(
        name=f"bk_{category}",
        category=category,
        seed=seed,
        n_instructions=N_INSTRUCTIONS,
    )
    return make_workload(spec)


def _signature(
    trace,
    prefetcher_name: str,
    config: SimConfig,
    warmup: int = 0,
    tracer=None,
    checker=None,
):
    result = simulate(
        trace,
        make_prefetcher(prefetcher_name),
        config=config,
        warmup_instructions=warmup,
        tracer=tracer,
        checker=checker,
    )
    return result.stats.signature()


@pytest.fixture(autouse=True)
def _no_env_backend(monkeypatch):
    """Keep the suite hermetic: an outer REPRO_BACKEND (e.g. the CI
    backend-matrix job) must not override the per-test config choices."""
    monkeypatch.delenv("REPRO_BACKEND", raising=False)


@pytest.mark.parametrize("backend", FAST_BACKENDS)
@pytest.mark.parametrize("category", ("int", "fp", "srv"))
@pytest.mark.parametrize("prefetcher", ("no", "next_line", "entangling_4k"))
def test_backend_bit_identical(backend, category, prefetcher):
    trace = _trace(category)
    reference = _signature(trace, prefetcher, SimConfig())
    fast = _signature(trace, prefetcher, SimConfig(backend=backend))
    assert fast == reference


@pytest.mark.parametrize("backend", FAST_BACKENDS)
@pytest.mark.parametrize("prefetcher", ("no", "entangling_4k"))
def test_backend_bit_identical_fifo(backend, prefetcher):
    trace = _trace("crypto")
    config = SimConfig(l1i_replacement="fifo")
    reference = _signature(trace, prefetcher, config)
    fast = _signature(trace, prefetcher, config.with_backend(backend))
    assert fast == reference


@pytest.mark.parametrize("backend", FAST_BACKENDS)
def test_backend_bit_identical_physical_addresses(backend):
    # A non-None address mapper disables the monolithic streak loops, so
    # this pins the staged per-stage path (and the numpy core's
    # inheritance of it) rather than the batch fast paths.
    trace = _trace("int")
    config = SimConfig().with_physical_addresses()
    reference = _signature(trace, "entangling_4k", config)
    fast = _signature(trace, "entangling_4k", config.with_backend(backend))
    assert fast == reference


@pytest.mark.parametrize("backend", FAST_BACKENDS)
@pytest.mark.parametrize("warmup", (1, N_INSTRUCTIONS // 3))
def test_backend_bit_identical_with_warmup(backend, warmup):
    trace = _trace("srv")
    reference = _signature(trace, "no", SimConfig(), warmup=warmup)
    fast = _signature(trace, "no", SimConfig(backend=backend), warmup=warmup)
    assert fast == reference


@pytest.mark.parametrize("backend", FAST_BACKENDS)
def test_backend_identical_tracer_stream(backend):
    # A tracer also disables the streak loops; beyond the signature, the
    # emitted event stream itself must match event-for-event.
    trace = _trace("fp")
    ref_tracer = PrefetchTracer()
    fast_tracer = PrefetchTracer()
    reference = _signature(trace, "entangling_4k", SimConfig(), tracer=ref_tracer)
    fast = _signature(
        trace, "entangling_4k", SimConfig(backend=backend), tracer=fast_tracer
    )
    assert fast == reference
    assert fast_tracer.events() == ref_tracer.events()


@pytest.mark.parametrize("backend", FAST_BACKENDS)
def test_backend_sanitizer_clean(backend):
    trace = _trace("int")
    checker = Sanitizer(fatal=True)
    _signature(
        trace, "entangling_4k", SimConfig(backend=backend), checker=checker
    )
    report = checker.report()
    assert report.ok, report.summary_line()


# -- backend selection ----------------------------------------------------


def test_resolve_backend_default_is_reference():
    assert resolve_backend(None) is Simulator
    assert resolve_backend("reference") is Simulator


def test_resolve_backend_staged():
    assert resolve_backend("staged") is StagedSimulator


def test_resolve_backend_numpy():
    cls = resolve_backend("numpy")
    if vector.NUMPY_AVAILABLE:
        assert cls is vector.NumpySimulator
    else:
        assert cls is StagedSimulator


def test_env_backend_fills_in(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "staged")
    assert backend_from_env() == "staged"
    assert resolve_backend(None) is StagedSimulator
    # The env value is normalized (case, whitespace).
    monkeypatch.setenv("REPRO_BACKEND", "  Staged ")
    assert backend_from_env() == "staged"


def test_config_backend_beats_env(monkeypatch):
    # An *explicit non-default* config choice wins over the env; the
    # default "reference" lets the env fill in (that is the documented
    # contract: REPRO_BACKEND applies when the config keeps the default).
    monkeypatch.setenv("REPRO_BACKEND", "staged")
    assert resolve_backend("reference") is StagedSimulator
    assert resolve_backend("staged") is StagedSimulator
    monkeypatch.setenv("REPRO_BACKEND", "reference")
    assert resolve_backend("staged") is StagedSimulator
    assert resolve_backend(None) is Simulator


def test_env_backend_unset_or_blank(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert backend_from_env() is None
    monkeypatch.setenv("REPRO_BACKEND", "   ")
    assert backend_from_env() is None


def test_env_backend_invalid_raises(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "turbo")
    with pytest.raises(ValueError, match="REPRO_BACKEND must be one of"):
        backend_from_env()
    with pytest.raises(ValueError, match="'turbo'"):
        resolve_backend(None)


def test_config_rejects_unknown_backend():
    with pytest.raises(ValueError, match="not one of"):
        SimConfig(backend="turbo")


def test_backends_constant_shape():
    assert BACKENDS == ("reference", "staged", "numpy")


def test_cli_run_backend_flag(tmp_path, capsys):
    # `repro run --backend` routes through REPRO_BACKEND (so guarded
    # worker processes inherit it), reports the resolved engine, and
    # prints statistics identical to the reference run.
    from repro.cli import main

    trace_path = str(tmp_path / "cli.trc")
    assert main([
        "gen", trace_path, "--category", "int", "--seed", "3",
        "--instructions", "20000",
    ]) == 0
    capsys.readouterr()

    outputs = {}
    for argv_tail in ([], ["--backend", "staged"]):
        assert main([
            "run", trace_path, "--prefetcher", "entangling_4k",
            "--warmup", "5000", *argv_tail,
        ]) == 0
        outputs[tuple(argv_tail)] = capsys.readouterr().out

    reference_out = outputs[()]
    staged_out = outputs[("--backend", "staged")]
    assert "backend:    reference" in reference_out
    assert "backend:    staged" in staged_out
    # Identical architectural statistics, different engine label and
    # wall-clock telemetry.
    strip = lambda text: [
        line for line in text.splitlines()
        if not line.startswith(("backend:", "sim speed:"))
    ]
    assert strip(staged_out) == strip(reference_out)
