"""Tests for the runtime invariant sanitizer (repro.check.sanitize).

Two load-bearing properties:

* **bit identity** — a sanitized run produces the same
  ``SimStats.signature()`` as an unsanitized run in a process that never
  imports ``repro.check.sanitize`` (the checker observes, never steers);
* **detection** — a corrupted structure (out-of-range confidence,
  oversized basic block, non-monotonic history) raises
  :class:`InvariantViolation` with the invariant name and state context,
  or collects it in non-fatal mode.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.check import (
    InvariantViolation,
    sanitize_mode_from_env,
    sanitizer_from_env,
)
from repro.check.sanitize import Sanitizer
from repro.core.entangled_table import EntangledTable
from repro.core.history import HistoryBuffer
from repro.prefetchers.registry import make_prefetcher
from repro.sim.simulator import simulate
from repro.workloads.generators import WorkloadSpec, make_workload

SPEC = WorkloadSpec(name="san_wl", category="srv", seed=11, n_instructions=30_000)
WARMUP = 10_000


def sanitized_run(prefetcher="entangling_4k", fatal=True):
    checker = Sanitizer(fatal=fatal)
    result = simulate(
        make_workload(SPEC),
        make_prefetcher(prefetcher),
        warmup_instructions=WARMUP,
        checker=checker,
    )
    return result, checker


class TestBitIdentity:
    def test_sanitized_run_matches_plain_run(self):
        plain = simulate(
            make_workload(SPEC),
            make_prefetcher("entangling_4k"),
            warmup_instructions=WARMUP,
        )
        checked, checker = sanitized_run()
        assert checker.checks > 0
        assert not checker.violations
        assert checked.stats.signature() == plain.stats.signature()

    def test_sanitizer_covers_prefetchers_without_table(self):
        # next_line has no table/history; attach() must degrade to the
        # simulator-level hooks only.
        result, checker = sanitized_run(prefetcher="next_line")
        assert checker.checks > 0
        assert not checker.violations
        assert result.stats.instructions > 0

    def test_unsanitized_process_never_imports_sanitizer(self, tmp_path):
        """The acceptance check: a plain run keeps repro.check.sanitize
        out of sys.modules entirely and its counters are bit-identical
        to a sanitized run here."""
        script = tmp_path / "never_imports_sanitize.py"
        script.write_text(textwrap.dedent(
            """
            import json
            import sys

            from repro.workloads.generators import WorkloadSpec, make_workload
            from repro.sim.simulator import simulate
            from repro.prefetchers.registry import make_prefetcher

            spec = WorkloadSpec(
                name="san_wl", category="srv", seed=11, n_instructions=30000
            )
            result = simulate(
                make_workload(spec),
                make_prefetcher("entangling_4k"),
                warmup_instructions=10000,
            )
            assert "repro.check.sanitize" not in sys.modules, (
                "the sanitizer leaked into an unsanitized run"
            )
            print(json.dumps(result.stats.signature()))
            """
        ))
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env = {
            k: v for k, v in os.environ.items() if k != "REPRO_SANITIZE"
        }
        env["PYTHONPATH"] = src
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        theirs = json.loads(proc.stdout)
        checked, _checker = sanitized_run()
        ours = json.loads(json.dumps(checked.stats.signature()))
        assert ours == theirs


class TestDetection:
    def _table_with_pair(self):
        table = EntangledTable(entries=64, ways=16)
        table.add_dest(0x100, 0x140)
        return table

    def test_out_of_range_confidence_is_fatal(self):
        table = self._table_with_pair()
        table.checker = Sanitizer()
        table.peek(0x100).dsts[0][1] = 7  # 2-bit counter cannot hold 7
        with pytest.raises(InvariantViolation, match="confidence 7") as excinfo:
            table.update_bb_size(0x100, 5)
        assert excinfo.value.invariant == "confidence_range"
        assert excinfo.value.context["src_line"] == 0x100

    def test_oversized_basic_block_is_fatal(self):
        table = self._table_with_pair()
        table.checker = Sanitizer()
        table.peek(0x100).bb_size = 99  # 6-bit field caps at 63
        with pytest.raises(InvariantViolation, match="99"):
            table.add_dest(0x100, 0x180)

    def test_corrupt_destination_fails_roundtrip(self):
        table = self._table_with_pair()
        checker = Sanitizer(fatal=False)
        # An address outside the virtual scheme's 58-bit line space can
        # neither re-encode nor round-trip.
        table.peek(0x100).dsts[0][0] = 1 << 60
        checker.check_entry(table, table.peek(0x100))
        assert not checker.report().ok
        assert checker.violations[0].invariant in ("dst_fit", "compression_roundtrip")

    def test_non_fatal_mode_collects_instead_of_raising(self):
        table = self._table_with_pair()
        checker = Sanitizer(fatal=False)
        table.checker = checker
        table.peek(0x100).dsts[0][1] = 0  # zero must have been invalidated
        table.update_bb_size(0x100, 5)
        assert len(checker.violations) == 1
        report = checker.report()
        assert not report.ok
        assert "confidence 0" in report.summary_line()

    def test_history_monotonicity_violation(self):
        history = HistoryBuffer(size=8)
        history.checker = Sanitizer()
        history.push(0x10, timestamp=100)
        with pytest.raises(InvariantViolation, match="backwards"):
            history.push(0x20, timestamp=50)

    def test_clean_structures_pass(self):
        table = self._table_with_pair()
        checker = Sanitizer()
        table.checker = checker
        table.add_dest(0x100, 0x180)
        table.decrease_confidence(0x100, 0x140)
        table.increase_confidence(0x100, 0x140)
        table.update_bb_size(0x100, 12)
        assert checker.checks >= 4
        assert not checker.violations


class TestEnvWiring:
    def test_mode_parsing(self):
        for raw in ("", "0", "off", "OFF", "false", "no"):
            assert sanitize_mode_from_env(raw) is None
        for raw in ("report", "collect", "warn", "REPORT"):
            assert sanitize_mode_from_env(raw) == "report"
        for raw in ("1", "on", "fatal", "yes"):
            assert sanitize_mode_from_env(raw) == "fatal"

    def test_disabled_env_builds_no_sanitizer(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert sanitizer_from_env() is None
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert sanitizer_from_env() is None

    def test_enabled_env_builds_sanitizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        checker = sanitizer_from_env()
        assert checker is not None and checker.fatal
        monkeypatch.setenv("REPRO_SANITIZE", "report")
        checker = sanitizer_from_env()
        assert checker is not None and not checker.fatal


class TestCliCheck:
    def test_run_check_prints_sanitizer_summary(self, tmp_path):
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env = dict(os.environ, PYTHONPATH=src)
        trace_path = str(tmp_path / "wl.trace")
        gen = subprocess.run(
            [sys.executable, "-m", "repro.cli", "gen", trace_path,
             "--category", "int", "--instructions", "3000", "--seed", "5"],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert gen.returncode == 0, gen.stderr
        run = subprocess.run(
            [sys.executable, "-m", "repro.cli", "run", trace_path,
             "--prefetcher", "entangling_4k", "--check"],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert run.returncode == 0, run.stderr
        assert "sanitizer:" in run.stdout
        assert "no violations" in run.stdout
