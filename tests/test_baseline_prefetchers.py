"""Tests for the baseline prefetchers (NextLine, SN4L, MANA, RDIP, D-JOLT,
FNL+MMA, Ideal) and the registry."""

import pytest

from repro.prefetchers import (
    DJoltPrefetcher,
    FnlMmaPrefetcher,
    IdealPrefetcher,
    ManaPrefetcher,
    NextLinePrefetcher,
    NullPrefetcher,
    RdipPrefetcher,
    SN4LPrefetcher,
    available_prefetchers,
    make_prefetcher,
)
from repro.workloads.trace import BranchType


def lines(requests):
    return [r.line_addr for r in requests]


class TestNextLine:
    def test_prefetches_next_line(self):
        pf = NextLinePrefetcher()
        assert lines(pf.on_demand_access(100, True, 0)) == [101]

    def test_degree(self):
        pf = NextLinePrefetcher(degree=3)
        assert lines(pf.on_demand_access(100, False, 0)) == [101, 102, 103]

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(degree=0)

    def test_no_storage(self):
        assert NextLinePrefetcher().storage_bits() == 0


class TestSN4L:
    def test_untrained_vector_prefetches_nothing(self):
        pf = SN4LPrefetcher()
        assert lines(pf.on_demand_access(100, True, 0)) == []

    def test_miss_trains_worthiness(self):
        pf = SN4LPrefetcher()
        pf.on_demand_access(101, False, 0)      # 101 missed: worth prefetching
        assert lines(pf.on_demand_access(100, True, 1)) == [101]

    def test_prefetches_up_to_four_lines(self):
        pf = SN4LPrefetcher()
        for line in (101, 102, 103, 104, 105):
            pf.on_demand_access(line, False, 0)
        out = lines(pf.on_demand_access(100, True, 1))
        assert out == [101, 102, 103, 104]      # 105 beyond the window

    def test_wrong_prefetch_clears_bit(self):
        pf = SN4LPrefetcher()
        pf.on_demand_access(101, False, 0)
        pf.on_evict_unused(101, ("sn4l", 101), 5)
        assert lines(pf.on_demand_access(100, True, 6)) == []

    def test_storage_close_to_published(self):
        assert SN4LPrefetcher().storage_kb == pytest.approx(2.06, abs=0.1)


class TestMana:
    def test_records_spatial_footprint(self):
        pf = ManaPrefetcher(entries=64)
        pf.on_demand_access(100, False, 0)      # region trigger
        pf.on_demand_access(101, False, 1)
        pf.on_demand_access(103, False, 2)
        pf.on_demand_access(500, False, 3)      # new region
        # Revisit the first trigger: footprint lines are prefetched.
        out = lines(pf.on_demand_access(100, True, 10))
        assert 101 in out and 103 in out

    def test_successor_chain_prefetched(self):
        pf = ManaPrefetcher(entries=64, lookahead_regions=2)
        pf.on_demand_access(100, False, 0)
        pf.on_demand_access(500, False, 1)
        pf.on_demand_access(900, False, 2)
        out = lines(pf.on_demand_access(100, True, 10))
        assert 500 in out and 900 in out

    def test_within_region_access_does_not_trigger(self):
        pf = ManaPrefetcher(entries=64)
        pf.on_demand_access(100, False, 0)
        assert lines(pf.on_demand_access(104, False, 1)) == []

    def test_capacity_fifo(self):
        pf = ManaPrefetcher(entries=2)
        for trigger in (0, 100, 200, 300):
            pf.on_demand_access(trigger, False, 0)
        assert len(pf._table) == 2

    def test_published_storage(self):
        assert ManaPrefetcher(entries=2048).storage_kb == pytest.approx(9.0)
        assert ManaPrefetcher(entries=4096).storage_kb == pytest.approx(17.25)
        assert ManaPrefetcher(entries=8192).storage_kb == pytest.approx(74.18)

    def test_name_by_size(self):
        assert ManaPrefetcher(entries=2048).name == "MANA-2K"


def _call(pf, pc, target):
    return pf.on_branch(pc, BranchType.DIRECT_CALL, True, target, 0)


def _ret(pf, pc, target):
    return pf.on_branch(pc, BranchType.RETURN, True, target, 0)


class TestRdip:
    def test_misses_attributed_and_replayed(self):
        pf = RdipPrefetcher()
        _call(pf, 0x1000, 0x9000)               # establish a signature
        pf.on_demand_access(700, False, 1)       # misses under that signature
        pf.on_demand_access(703, False, 2)
        _ret(pf, 0x9100, 0x1004)                 # leave the context
        out = lines(_call(pf, 0x1000, 0x9000))   # re-enter the same context
        assert 700 in out and 703 in out

    def test_non_call_branches_ignored(self):
        pf = RdipPrefetcher()
        out = pf.on_branch(0x100, BranchType.CONDITIONAL, True, 0x200, 0)
        assert list(out) == []

    def test_region_limit(self):
        pf = RdipPrefetcher(max_regions=2)
        _call(pf, 0x1000, 0x9000)
        for line in (100, 300, 500):             # three distant regions
            pf.on_demand_access(line, False, 0)
        _ret(pf, 0x9100, 0x1004)
        out = lines(_call(pf, 0x1000, 0x9000))
        assert 500 not in out                    # third region dropped

    def test_hits_not_recorded(self):
        pf = RdipPrefetcher()
        _call(pf, 0x1000, 0x9000)
        pf.on_demand_access(700, True, 1)        # a hit, not a miss
        _ret(pf, 0x9100, 0x1004)
        assert lines(_call(pf, 0x1000, 0x9000)) == []

    def test_published_storage(self):
        assert RdipPrefetcher().storage_kb == pytest.approx(63.0)


class TestDJolt:
    def test_dual_lookahead_replay(self):
        pf = DJoltPrefetcher(short_lookahead=1, long_lookahead=3)

        def run_chain():
            requests = []
            for i in range(6):
                requests.extend(
                    lines(_call(pf, 0x1000 + 16 * i, 0x9000 + 0x100 * i))
                )
            return requests

        run_chain()                       # iteration 1: signatures first seen
        run_chain()                       # iteration 2: recurring signatures
        pf.on_demand_access(777, False, 0)  # miss attributed to them
        # Iteration 3 revisits the same signatures and must prefetch 777
        # the configured number of call events in advance.
        assert 777 in run_chain()

    def test_published_storage(self):
        assert DJoltPrefetcher().storage_kb == pytest.approx(125.0)

    def test_tables_split_capacity(self):
        pf = DJoltPrefetcher(entries=100)
        assert pf.short_table.entries == 50
        assert pf.long_table.entries == 50


class TestFnlMma:
    def test_fnl_learns_follower_lines(self):
        pf = FnlMmaPrefetcher()
        pf.on_demand_access(100, True, 0)
        pf.on_demand_access(102, True, 1)        # 102 follows 100 closely
        out = lines(pf.on_demand_access(100, True, 10))
        assert 102 in out

    def test_mma_predicts_nth_next_miss(self):
        pf = FnlMmaPrefetcher(miss_ahead=2)
        for line in (100, 300, 500, 700):        # miss stream
            pf.on_demand_access(line, False, 0)
        # 500 is the 2nd miss after 100; revisiting miss 100 prefetches it.
        out = lines(pf.on_demand_access(100, False, 10))
        assert 500 in out

    def test_published_storage(self):
        assert FnlMmaPrefetcher().storage_kb == pytest.approx(97.0)


class TestIdealAndNull:
    def test_ideal_flag(self):
        assert IdealPrefetcher().is_ideal
        assert not NullPrefetcher().is_ideal

    def test_null_never_prefetches(self):
        pf = NullPrefetcher()
        assert list(pf.on_demand_access(100, False, 0)) == []
        assert list(pf.on_branch(0, BranchType.RETURN, True, 0, 0)) == []


class TestRegistry:
    def test_known_names_construct(self):
        for name in available_prefetchers():
            pf = make_prefetcher(name)
            assert pf.storage_bits() >= 0

    def test_fresh_instances(self):
        assert make_prefetcher("next_line") is not make_prefetcher("next_line")

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown prefetcher"):
            make_prefetcher("hal9000")

    def test_expected_names_present(self):
        names = available_prefetchers()
        for expected in ("no", "next_line", "sn4l", "mana_4k", "rdip",
                         "djolt", "fnl_mma", "epi", "entangling_4k", "ideal"):
            assert expected in names
