"""Tests for the PIF temporal-stream prefetcher."""

from repro.prefetchers.pif import PifPrefetcher


def lines(requests):
    return [r.line_addr for r in requests]


class TestStreamRecording:
    def test_replays_the_stream_after_a_trigger(self):
        pf = PifPrefetcher(stream_length=4)
        stream = [100, 200, 300, 400, 500]
        for line in stream:
            pf.on_demand_access(line, False, 0)
        # Re-encounter the first trigger: the following stream replays.
        out = lines(pf.on_demand_access(100, True, 10))
        for expected in (200, 300, 400):
            assert expected in out

    def test_footprint_lines_included(self):
        pf = PifPrefetcher(stream_length=2)
        pf.on_demand_access(100, False, 0)
        pf.on_demand_access(200, False, 1)   # new region
        pf.on_demand_access(202, False, 2)   # inside region 200
        pf.on_demand_access(300, False, 3)   # new region (logs 200+footprint)
        pf.on_demand_access(900, False, 4)   # logs 300
        out = lines(pf.on_demand_access(100, True, 10))
        assert 200 in out and 202 in out

    def test_within_region_accesses_do_not_trigger(self):
        pf = PifPrefetcher()
        pf.on_demand_access(100, False, 0)
        assert lines(pf.on_demand_access(102, False, 1)) == []

    def test_unknown_trigger_prefetches_nothing(self):
        pf = PifPrefetcher()
        assert lines(pf.on_demand_access(100, False, 0)) == []

    def test_stream_length_bounds_replay(self):
        pf = PifPrefetcher(stream_length=2)
        for line in (100, 200, 300, 400, 500, 600):
            pf.on_demand_access(line, False, 0)
        out = lines(pf.on_demand_access(100, True, 10))
        assert 200 in out and 300 in out
        assert 400 not in out

    def test_history_wraps(self):
        pf = PifPrefetcher(history_entries=4, index_entries=4, stream_length=2)
        for line in range(100, 2000, 100):
            pf.on_demand_access(line, False, 0)
        # Old triggers age out of the small history.
        assert lines(pf.on_demand_access(100, True, 10)) == []


class TestStorageAndRegistry:
    def test_storage_is_large(self):
        """PIF's storage exceeds every Figure 6 budget (why the paper
        excludes it)."""
        assert PifPrefetcher().storage_kb > 128.0

    def test_registry_constructs_pif(self):
        from repro.prefetchers import make_prefetcher

        assert make_prefetcher("pif").name == "PIF"

    def test_pif_improves_ipc(self, small_srv_trace):
        from repro.prefetchers import NullPrefetcher
        from repro.sim import simulate

        base = simulate(small_srv_trace, NullPrefetcher(),
                        warmup_instructions=20_000).stats
        pif = simulate(small_srv_trace, PifPrefetcher(),
                       warmup_instructions=20_000).stats
        assert pif.ipc > base.ipc
