"""Integrity tests for the on-disk run cache.

The contract under test: a corrupted, truncated, tampered, or
wrong-version disk entry is detected on load and treated as a miss
(logged, re-simulated) — never raised, never silently served; concurrent
writers sharing a cache directory cannot publish interleaved garbage;
and ``run_key`` is a stable canonical fingerprint, pinned here so
accidental drift (repr changes, field reordering, cross-version
differences) fails loudly.
"""

import json
import os
import threading

from repro.analysis.experiments import run_cached
from repro.analysis.runcache import (
    RunCache,
    _CACHE_FORMAT_VERSION,
    _canonical_json,
    run_key,
)
from repro.sim.config import SimConfig
from repro.sim.simulator import SimResult
from repro.sim.stats import SimStats
from repro.workloads.generators import WorkloadSpec

SPEC = WorkloadSpec(name="rc_int", category="int", seed=31, n_instructions=12_000)


def _make_result(instructions: int = 1000) -> SimResult:
    stats = SimStats(instructions=instructions, cycles=2 * instructions)
    return SimResult(
        trace_name="t", category="int", prefetcher_name="no", stats=stats
    )


class TestRunKeyCanonical:
    def test_pinned_key_for_known_input(self):
        """Guards against fingerprint drift: a changed key silently
        invalidates (or collides with) every on-disk cache entry.  If
        this fails because the key derivation *deliberately* changed,
        bump ``_CACHE_FORMAT_VERSION`` and re-pin."""
        spec = WorkloadSpec(
            name="pin", category="int", seed=7, n_instructions=50_000
        )
        assert (
            run_key(spec, "next_line", SimConfig(), 20_000)
            == "caabd219ce55b3f435ade75e223883d6"
        )

    def test_key_distinguishes_every_component(self):
        base = SimConfig()
        key = run_key(SPEC, "next_line", base, 1000)
        assert key != run_key(SPEC, "entangling_2k", base, 1000)
        assert key != run_key(SPEC, "next_line", base, 0)
        assert key != run_key(SPEC, "next_line", base.with_l1i_kb(64), 1000)
        other = WorkloadSpec(
            name="rc_int", category="int", seed=32, n_instructions=12_000
        )
        assert key != run_key(other, "next_line", base, 1000)
        assert key == run_key(SPEC, "next_line", SimConfig(), 1000)

    def test_mixed_type_dict_keys_do_not_crash(self):
        """Canonicalization sorts dict keys by ``str(k)``: a mapping that
        mixes int and str keys (e.g. a mode-whitelist keyed by degree)
        must serialize deterministically instead of raising TypeError on
        the ``int < str`` comparison."""
        mixed = {1: "a", "b": 2, 10: "c"}
        text = _canonical_json(mixed)
        assert text == _canonical_json({"b": 2, 10: "c", 1: "a"})
        assert json.loads(text) == {"1": "a", "10": "c", "b": 2}


class TestFromCacheStamp:
    def test_served_copy_is_stamped(self):
        cache = RunCache()
        cache.put("k" * 32, _make_result())
        served = cache.get("k" * 32)
        assert served.stats.from_cache is True

    def test_stored_copy_stays_unstamped(self):
        """Re-putting a served result must not freeze the stamp into the
        cache: every *store* records a fresh simulation."""
        cache = RunCache()
        cache.put("k" * 32, _make_result())
        served = cache.get("k" * 32)
        cache.put("m" * 32, served)
        round_tripped = cache._mem["m" * 32]
        assert round_tripped.stats.from_cache is False
        assert cache.get("m" * 32).stats.from_cache is True

    def test_stamp_excluded_from_signature(self):
        cache = RunCache()
        original = _make_result()
        cache.put("k" * 32, original)
        served = cache.get("k" * 32)
        assert served.stats.signature() == original.stats.signature()

    def test_disk_round_trip_stamped(self, tmp_path):
        writer = RunCache(disk_dir=str(tmp_path))
        writer.put("k" * 32, _make_result())
        reader = RunCache(disk_dir=str(tmp_path))
        served = reader.get("k" * 32)
        assert served is not None
        assert served.stats.from_cache is True

    def test_cross_backend_disk_hit_is_stamped(self, tmp_path):
        """run_key drops ``backend`` (all backends are bit-identical), so
        a result simulated by one backend serves requests from another —
        exactly the case where the cached wall-clock is *most* misleading
        and the stamp must travel with the disk entry."""
        ref_key = run_key(SPEC, "no", SimConfig(backend="reference"), 1000)
        staged_key = run_key(SPEC, "no", SimConfig(backend="staged"), 1000)
        assert ref_key == staged_key
        writer = RunCache(disk_dir=str(tmp_path))
        writer.put(ref_key, _make_result())
        reader = RunCache(disk_dir=str(tmp_path))
        served = reader.get(staged_key)
        assert served is not None
        assert served.stats.from_cache is True


class TestDiskIntegrity:
    def _path(self, cache: RunCache, key: str) -> str:
        # v4 layout: entries live under 256 shard dirs keyed by key[:2].
        return cache.store.path_for(key)

    def _seed_entry(self, tmp_path):
        writer = RunCache(disk_dir=str(tmp_path))
        writer.put("k" * 32, _make_result())
        return writer, self._path(writer, "k" * 32)

    def test_roundtrip_with_checksum(self, tmp_path):
        _writer, path = self._seed_entry(tmp_path)
        with open(path) as fh:
            data = json.load(fh)
        assert data["format"] == _CACHE_FORMAT_VERSION
        assert "checksum" in data
        reader = RunCache(disk_dir=str(tmp_path))
        loaded = reader.get("k" * 32)
        assert loaded is not None
        assert loaded.stats.instructions == 1000
        assert reader.disk_hits == 1
        assert reader.disk_corrupt == 0

    def test_truncated_json_is_a_miss(self, tmp_path):
        _writer, path = self._seed_entry(tmp_path)
        with open(path) as fh:
            text = fh.read()
        with open(path, "w") as fh:
            fh.write(text[: len(text) // 2])
        reader = RunCache(disk_dir=str(tmp_path))
        assert reader.get("k" * 32) is None
        assert reader.misses == 1
        assert reader.disk_corrupt == 1

    def test_wrong_schema_is_a_miss(self, tmp_path):
        _writer, path = self._seed_entry(tmp_path)
        with open(path, "w") as fh:
            json.dump([1, 2, 3], fh)
        reader = RunCache(disk_dir=str(tmp_path))
        assert reader.get("k" * 32) is None
        assert reader.disk_corrupt == 1

    def test_wrong_format_version_is_a_miss(self, tmp_path):
        _writer, path = self._seed_entry(tmp_path)
        with open(path) as fh:
            data = json.load(fh)
        data["format"] = _CACHE_FORMAT_VERSION + 1
        with open(path, "w") as fh:
            json.dump(data, fh)
        reader = RunCache(disk_dir=str(tmp_path))
        assert reader.get("k" * 32) is None

    def test_tampered_value_fails_checksum(self, tmp_path):
        _writer, path = self._seed_entry(tmp_path)
        with open(path) as fh:
            data = json.load(fh)
        data["stats"]["instructions"] = 999_999  # bit flip / partial write
        with open(path, "w") as fh:
            json.dump(data, fh)
        reader = RunCache(disk_dir=str(tmp_path))
        assert reader.get("k" * 32) is None
        assert reader.disk_corrupt == 1

    def test_missing_stats_key_is_a_miss(self, tmp_path):
        _writer, path = self._seed_entry(tmp_path)
        with open(path) as fh:
            data = json.load(fh)
        del data["stats"]
        del data["checksum"]
        from repro.analysis.runcache import _entry_checksum

        data["checksum"] = _entry_checksum(data)  # checksum passes, key absent
        with open(path, "w") as fh:
            json.dump(data, fh)
        reader = RunCache(disk_dir=str(tmp_path))
        assert reader.get("k" * 32) is None
        assert reader.disk_corrupt == 1

    def test_corrupt_entry_recomputed_and_healed(self, tmp_path):
        """End-to-end: a corrupted entry is re-simulated, not served."""
        cache = RunCache(disk_dir=str(tmp_path))
        original = run_cached(SPEC, "next_line", cache=cache)
        key = run_key(
            SPEC, "next_line", SimConfig(), int(SPEC.n_instructions * 0.4)
        )
        with open(self._path(cache, key), "w") as fh:
            fh.write('{"format": 2, "garbage"')
        fresh = RunCache(disk_dir=str(tmp_path))
        recomputed = run_cached(SPEC, "next_line", cache=fresh)
        assert fresh.disk_corrupt == 1
        assert fresh.stores == 1  # re-simulated and re-stored
        assert recomputed.stats.signature() == original.stats.signature()
        healed = RunCache(disk_dir=str(tmp_path))
        assert healed.get(key) is not None  # the rewrite repaired the entry

    def test_corruption_reported_in_stats_line(self, tmp_path):
        _writer, path = self._seed_entry(tmp_path)
        with open(path, "w") as fh:
            fh.write("not json")
        reader = RunCache(disk_dir=str(tmp_path))
        reader.get("k" * 32)
        assert "corrupt" in reader.stats_line()


class TestConcurrentWriters:
    def test_parallel_writers_never_publish_garbage(self, tmp_path):
        """Two caches hammering the same keys in the same directory (the
        two-parallel-sweeps scenario): every published file must parse
        and pass its checksum — old value or new value, never a blend."""
        keys = ["a" * 32, "b" * 32]
        n_rounds = 100
        errors = []

        def writer(worker: int):
            cache = RunCache(disk_dir=str(tmp_path))
            for i in range(n_rounds):
                for key in keys:
                    cache.put(key, _make_result(1000 + worker * n_rounds + i))

        def reader():
            cache = RunCache(disk_dir=str(tmp_path))
            for _ in range(n_rounds * 2):
                cache._mem.clear()  # force the disk path every time
                for key in keys:
                    try:
                        result = cache.get(key)
                    except Exception as exc:  # noqa: BLE001
                        errors.append(exc)
                        continue
                    if result is not None and result.stats.instructions < 1000:
                        errors.append(
                            ValueError(f"garbage load: {result.stats}")
                        )

        threads = [
            threading.Thread(target=writer, args=(0,)),
            threading.Thread(target=writer, args=(1,)),
            threading.Thread(target=reader),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        final = RunCache(disk_dir=str(tmp_path))
        for key in keys:
            assert final.get(key) is not None
        assert final.disk_corrupt == 0
        leftovers = [
            name
            for _dir, _subdirs, names in os.walk(str(tmp_path))
            for name in names
            if ".tmp" in name
        ]
        assert leftovers == []

    def test_tmp_names_unique_per_write(self):
        from repro.check.artifacts import _tmp_counter

        first = f"x.{os.getpid()}.{next(_tmp_counter)}.tmp"
        second = f"x.{os.getpid()}.{next(_tmp_counter)}.tmp"
        assert first != second


class TestClearSemantics:
    def test_clear_resets_counters(self):
        cache = RunCache()
        cache.put("k" * 32, _make_result())
        cache.get("k" * 32)
        cache.get("m" * 32)
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1
        assert cache.wall_seconds_saved >= 0.0
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0
        assert cache.misses == 0
        assert cache.stores == 0
        assert cache.disk_hits == 0
        assert cache.disk_corrupt == 0
        assert cache.wall_seconds_saved == 0.0
        assert "0 unique simulations" in cache.stats_line()

    def test_clear_keeps_disk_entries(self, tmp_path):
        cache = RunCache(disk_dir=str(tmp_path))
        cache.put("k" * 32, _make_result())
        cache.clear()
        reloaded = cache.get("k" * 32)
        assert reloaded is not None  # served from disk after clear
        assert cache.disk_hits == 1
