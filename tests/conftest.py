"""Shared fixtures: small deterministic traces and programs."""

from __future__ import annotations

import pytest

from repro.sim.config import SimConfig
from repro.workloads.cfg import ProgramBuilder, Terminator, TermKind
from repro.workloads.generators import WorkloadSpec, make_workload
from repro.workloads.trace import Trace, trace_from_pcs


@pytest.fixture
def tiny_config():
    """A small L1I so capacity effects show up with short traces."""
    return SimConfig(l1i_size=4 * 1024, l1i_ways=4)


@pytest.fixture
def default_config():
    return SimConfig()


@pytest.fixture
def sequential_trace():
    """64 sequential instructions spanning 4 cache lines."""
    return trace_from_pcs("seq", [0x1000 + 4 * i for i in range(64)])


@pytest.fixture
def loop_program():
    """A two-function program with a call and a biased loop."""
    return (
        ProgramBuilder(entry="main")
        .function("main")
        .block("entry", 8, Terminator(TermKind.CALL, target="leaf"))
        .block("post", 4, Terminator(TermKind.COND, target="post", taken_prob=0.6))
        .block("exit", 2, Terminator(TermKind.RETURN))
        .function("leaf")
        .block("body", 16, Terminator(TermKind.RETURN))
        .build()
    )


@pytest.fixture
def small_srv_trace():
    """A small server-like workload (fast to simulate, still misses)."""
    spec = WorkloadSpec(
        name="test_srv", category="srv", seed=42, n_instructions=60_000
    )
    return make_workload(spec)


@pytest.fixture
def small_crypto_trace():
    spec = WorkloadSpec(
        name="test_crypto", category="crypto", seed=7, n_instructions=60_000
    )
    return make_workload(spec)


def make_line_trace(line_sequence, instrs_per_line=4, line_size=64):
    """Build a trace that visits the given cache lines in order."""
    pcs = []
    for line in line_sequence:
        base = line * line_size
        pcs.extend(base + 4 * i for i in range(instrs_per_line))
    return trace_from_pcs("lines", pcs)
