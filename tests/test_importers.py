"""External-trace loading: format sniffing, dispatch, and suite plumbing.

Covers :mod:`repro.workloads.importers` (detection and one-stop loading
of the binary/text/ChampSim formats), ``WorkloadSpec.trace_file`` specs
flowing through ``make_workload``/``run_suite`` like generated
workloads, the ``repro import`` / ``repro run --trace-file`` CLI
surface, and the quarantine of text-import failures
(:class:`~repro.workloads.convert.TraceParseError`) in both the serial
and parallel suite paths — the ISSUE 8 satellite.
"""

import gzip
import os
import pathlib

import pytest

from repro.analysis.experiments import run_suite
from repro.check.errors import TraceError, TraceHeaderError
from repro.cli import main
from repro.workloads.champsim import write_champsim_trace
from repro.workloads.convert import write_text_trace
from repro.workloads.generators import WorkloadSpec, make_workload
from repro.workloads.importers import (
    default_trace_name,
    detect_trace_format,
    file_workload_spec,
    load_external_trace,
    trace_file_suite,
)
from repro.workloads.trace import write_trace

GOLDEN = os.path.join(os.path.dirname(__file__), "data", "golden.champsimtrace.gz")


def _trace(n=2000, seed=5, category="int", name="imp"):
    return make_workload(
        WorkloadSpec(name=name, category=category, seed=seed, n_instructions=n)
    )


@pytest.fixture()
def all_formats(tmp_path):
    """One trace written in every supported on-disk form."""
    trace = _trace()
    paths = {
        "binary": str(tmp_path / "t.trc"),
        "text": str(tmp_path / "t.txt"),
        "text.gz": str(tmp_path / "t.txt.gz"),
        "champsim": str(tmp_path / "t.champsimtrace"),
        "champsim.gz": str(tmp_path / "t.champsimtrace.gz"),
    }
    write_trace(trace, paths["binary"])
    write_text_trace(trace, paths["text"])
    write_text_trace(trace, paths["text.gz"])
    write_champsim_trace(trace, paths["champsim"], compress=False)
    write_champsim_trace(trace, paths["champsim.gz"], compress=True)
    return trace, paths


class TestDetection:
    def test_detects_every_format(self, all_formats):
        _trace_obj, paths = all_formats
        assert detect_trace_format(paths["binary"]) == "binary"
        assert detect_trace_format(paths["text"]) == "text"
        assert detect_trace_format(paths["text.gz"]) == "text"
        assert detect_trace_format(paths["champsim"]) == "champsim"
        assert detect_trace_format(paths["champsim.gz"]) == "champsim"

    def test_detection_ignores_extension(self, all_formats, tmp_path):
        _trace_obj, paths = all_formats
        disguised = str(tmp_path / "innocent.txt")
        open(disguised, "wb").write(open(paths["champsim.gz"], "rb").read())
        assert detect_trace_format(disguised) == "champsim"

    def test_default_trace_name(self):
        assert default_trace_name("/a/b/srv.champsimtrace.gz") == "srv"
        assert default_trace_name("x.trace.xz") == "x"
        assert default_trace_name(pathlib.Path("y.txt")) == "y"


class TestLoadDispatch:
    @pytest.mark.parametrize(
        "key", ("binary", "text", "text.gz", "champsim", "champsim.gz")
    )
    def test_pc_stream_identical_across_formats(self, all_formats, key):
        trace, paths = all_formats
        loaded = load_external_trace(paths[key])
        assert [i.pc for i in loaded.instructions] == [
            i.pc for i in trace.instructions
        ]

    def test_name_and_category_overrides(self, all_formats):
        _t, paths = all_formats
        loaded = load_external_trace(
            paths["champsim.gz"], name="renamed", category="srv"
        )
        assert loaded.name == "renamed"
        assert loaded.category == "srv"

    def test_binary_keeps_stored_identity(self, all_formats):
        trace, paths = all_formats
        loaded = load_external_trace(paths["binary"])
        assert loaded.name == trace.name
        assert loaded.category == trace.category

    def test_explicit_format_rejects_unknown(self, all_formats):
        _t, paths = all_formats
        with pytest.raises(ValueError):
            load_external_trace(paths["binary"], fmt="protobuf")

    def test_gzipped_binary_is_diagnosed(self, all_formats, tmp_path):
        _t, paths = all_formats
        wrapped = str(tmp_path / "t.trc.gz")
        open(wrapped, "wb").write(
            gzip.compress(open(paths["binary"], "rb").read())
        )
        with pytest.raises(TraceHeaderError, match="gunzip"):
            load_external_trace(wrapped)


class TestSpecPlumbing:
    def test_file_workload_spec_roundtrip(self, all_formats):
        trace, paths = all_formats
        spec = file_workload_spec(paths["champsim.gz"])
        assert spec.trace_file == os.path.abspath(paths["champsim.gz"])
        assert spec.n_instructions == len(trace)
        loaded = make_workload(spec)
        assert [i.pc for i in loaded.instructions] == [
            i.pc for i in trace.instructions
        ]

    def test_spec_limit_truncates(self, all_formats):
        _t, paths = all_formats
        spec = file_workload_spec(paths["binary"], n_instructions=500)
        assert spec.n_instructions == 500
        assert len(make_workload(spec)) == 500

    def test_trace_file_suite(self, all_formats):
        _t, paths = all_formats
        specs = trace_file_suite(
            [paths["binary"], paths["champsim.gz"]], category="cloud"
        )
        assert len(specs) == 2
        assert all(s.category == "cloud" for s in specs)
        assert len({s.name for s in specs}) == 2

    def test_suite_runs_external_spec(self, all_formats):
        _t, paths = all_formats
        spec = file_workload_spec(paths["binary"], name="ext")
        evaluation = run_suite([spec], ["next_line"], include_baseline=False)
        assert evaluation.runs["next_line"]["ext"].stats.instructions > 0
        assert evaluation.categories["ext"] == "int"


class TestQuarantine:
    """A malformed text trace must quarantine, not kill the suite."""

    @pytest.fixture()
    def mixed_specs(self, tmp_path):
        good = _trace(1500, name="good")
        good_path = str(tmp_path / "good.trc")
        write_trace(good, good_path)
        bad_path = str(tmp_path / "bad.txt")
        open(bad_path, "w").write("0x400000\nnot-a-pc\n")
        return [
            file_workload_spec(good_path, name="good"),
            WorkloadSpec(
                name="bad", category="unknown", seed=0,
                n_instructions=1000, trace_file=bad_path,
            ),
        ]

    def test_serial_quarantine(self, mixed_specs):
        evaluation = run_suite(
            mixed_specs, ["next_line"], include_baseline=False
        )
        assert "good" in evaluation.runs["next_line"]
        assert "bad" not in evaluation.runs["next_line"]
        assert evaluation.faults is not None
        [failure] = evaluation.faults.quarantined
        assert "bad" in failure.label
        assert "TraceParseError" in failure.error

    def test_parallel_quarantine(self, mixed_specs):
        evaluation = run_suite(
            mixed_specs, ["next_line"], include_baseline=False, jobs=2
        )
        assert "good" in evaluation.runs["next_line"]
        assert evaluation.faults is not None
        assert any("bad" in f.label for f in evaluation.faults.quarantined)


class TestCli:
    def test_import_golden_fixture(self, tmp_path, capsys):
        out = str(tmp_path / "g.trc")
        assert main(["import", GOLDEN, out]) == 0
        text = capsys.readouterr().out
        assert "6000 instructions" in text
        assert "champsim" in text
        assert main(["run", out, "--prefetcher", "next_line"]) == 0

    def test_run_trace_file_flag(self, capsys):
        assert main(
            ["run", "--trace-file", GOLDEN, "--prefetcher", "next_line"]
        ) == 0
        assert "golden" in capsys.readouterr().out

    def test_run_rejects_both_trace_args(self, capsys):
        assert main(["run", GOLDEN, "--trace-file", GOLDEN]) == 2

    def test_run_requires_some_trace(self, capsys):
        assert main(["run"]) == 2

    def test_import_missing_source(self, tmp_path, capsys):
        rc = main(["import", str(tmp_path / "nope"), str(tmp_path / "o.trc")])
        assert rc == 2
        assert "import:" in capsys.readouterr().err

    def test_import_damaged_salvage(self, tmp_path, capsys):
        payload = gzip.decompress(open(GOLDEN, "rb").read())
        cut = str(tmp_path / "cut.trace")
        open(cut, "wb").write(payload[:-30])
        out = str(tmp_path / "o.trc")
        assert main(["import", cut, out]) == 2
        assert main(["import", cut, out, "--salvage"]) == 0
        captured = capsys.readouterr()
        assert "salvage" in captured.err
        assert os.path.exists(out)

    def test_import_respects_limit_and_identity(self, tmp_path, capsys):
        out = str(tmp_path / "g.trc")
        assert main([
            "import", GOLDEN, out,
            "--limit", "1000", "--name", "snip", "--category", "srv",
        ]) == 0
        loaded = load_external_trace(out)
        assert len(loaded) == 1000
        assert loaded.name == "snip"
        assert loaded.category == "srv"
