"""Tests for the Entangling prefetcher engine itself.

These drive the prefetcher directly through its event interface with
hand-controlled timing, so every mechanism of Section III is observable:
basic-block tracking, history search by measured latency, triggering,
second-source fallback, merging, confidence feedback, and storage.
"""

import pytest

from repro.core.entangling import EntanglingConfig, EntanglingPrefetcher
from repro.prefetchers.base import FillInfo


def fill(line, fill_cycle, issue_cycle, is_demand=True, was_prefetch=False,
         demand_cycle=None, src_meta=None):
    return FillInfo(
        line_addr=line,
        fill_cycle=fill_cycle,
        issue_cycle=issue_cycle,
        is_demand=is_demand,
        was_prefetch=was_prefetch,
        demand_cycle=demand_cycle if demand_cycle is not None else issue_cycle,
        src_meta=src_meta,
    )


def requested_lines(requests):
    return [r.line_addr for r in requests]


class TestBasicBlockTracking:
    def test_consecutive_lines_grow_block(self):
        pf = EntanglingPrefetcher()
        pf.on_demand_access(100, True, 0)
        pf.on_demand_access(101, True, 1)
        pf.on_demand_access(102, True, 2)
        assert pf._head == 100
        assert pf._size == 2

    def test_same_line_reaccess_ignored(self):
        pf = EntanglingPrefetcher()
        pf.on_demand_access(100, True, 0)
        pf.on_demand_access(100, True, 1)
        assert pf._size == 0

    def test_non_consecutive_starts_new_block(self):
        pf = EntanglingPrefetcher()
        pf.on_demand_access(100, True, 0)
        pf.on_demand_access(101, True, 1)
        pf.on_demand_access(500, True, 2)
        assert pf._head == 500
        assert pf._size == 0
        # Completed block recorded in the table.
        assert pf.table.bb_size_of(100) == 1

    def test_block_size_capped(self):
        config = EntanglingConfig(merge_blocks=False)
        pf = EntanglingPrefetcher(config)
        for i in range(70):
            pf.on_demand_access(100 + i, True, i)
        # Size saturates at 63; line 164 starts a new block.
        assert pf._head == 100 + 64

    def test_heads_pushed_to_history(self):
        pf = EntanglingPrefetcher()
        pf.on_demand_access(100, True, 0)
        pf.on_demand_access(500, True, 10)
        assert [e.line_addr for e in pf.history] == [100, 500]


class TestEntangleOnFill:
    def _miss_and_fill(self, pf, line, miss_cycle, latency):
        pf.on_demand_access(line, False, miss_cycle)
        pf.on_fill(fill(line, miss_cycle + latency, miss_cycle))

    def test_pair_created_with_timely_source(self):
        pf = EntanglingPrefetcher()
        pf.on_demand_access(10, True, 0)       # old head, timestamp 0
        pf.on_demand_access(20, True, 90)      # recent head
        # Miss at cycle 100 with latency 50: deadline is 50, so only the
        # head at timestamp 0 qualifies.
        self._miss_and_fill(pf, 30, 100, 50)
        entry = pf.table.peek(10)
        assert entry is not None
        assert entry.find_dst(30) is not None
        assert pf.table.peek(20).find_dst(30) is None

    def test_most_recent_eligible_source_wins(self):
        pf = EntanglingPrefetcher()
        pf.on_demand_access(10, True, 0)
        pf.on_demand_access(20, True, 40)
        self._miss_and_fill(pf, 30, 100, 50)   # deadline 50: both 0 and 40 ok
        assert pf.table.peek(20).find_dst(30) is not None

    def test_no_source_when_history_too_young(self):
        pf = EntanglingPrefetcher()
        pf.on_demand_access(10, True, 95)
        self._miss_and_fill(pf, 30, 100, 50)
        assert pf.estats.entangle_no_source == 1

    def test_non_head_miss_not_entangled(self):
        pf = EntanglingPrefetcher()
        pf.on_demand_access(10, True, 0)
        pf.on_demand_access(100, False, 50)    # head miss
        pf.on_demand_access(101, False, 51)    # continuation miss
        pf.on_fill(fill(101, 80, 51))
        assert pf.estats.fills_not_head == 1

    def test_prefetch_fill_without_demand_ignored(self):
        pf = EntanglingPrefetcher()
        pf.on_demand_access(10, True, 0)
        pf.on_fill(fill(99, 60, 10, is_demand=False, was_prefetch=True,
                        demand_cycle=None))
        assert pf.estats.entangle_attempts == 0

    def test_self_entangling_avoided(self):
        pf = EntanglingPrefetcher()
        pf.on_demand_access(30, True, 0)       # the miss line itself in history
        pf.on_demand_access(10, True, 5)
        self._miss_and_fill(pf, 30, 100, 50)
        entry = pf.table.peek(30)
        assert entry is None or entry.find_dst(30) is None

    def test_second_source_on_full_first(self):
        pf = EntanglingPrefetcher()
        pf.on_demand_access(10, True, 0)       # older source
        pf.on_demand_access(20, True, 5)       # first (most recent) source
        for d in range(1, 7):                   # fill source 20's array
            pf.table.add_dest(20, 20 + d)
        self._miss_and_fill(pf, 500, 100, 50)
        assert pf.table.peek(10).find_dst(500) is not None
        assert pf.estats.second_source_used == 1

    def test_forced_insert_when_both_full(self):
        pf = EntanglingPrefetcher()
        pf.on_demand_access(10, True, 0)
        pf.on_demand_access(20, True, 5)
        for src in (10, 20):
            for d in range(1, 7):
                pf.table.add_dest(src, src + d)
        self._miss_and_fill(pf, 500, 100, 50)
        assert pf.estats.forced_insertions == 1
        # Forced into the first (most recent eligible) source.
        assert pf.table.peek(20).find_dst(500) is not None


class TestTriggering:
    def _learn_pair(self, pf, src=10, dst=500, dst_size=0):
        pf.table.find_or_allocate(src)
        pf.table.add_dest(src, dst)
        if dst_size:
            pf.table.update_bb_size(dst, dst_size)

    def test_trigger_prefetches_own_block(self):
        pf = EntanglingPrefetcher()
        pf.table.update_bb_size(10, 3)
        requests = list(pf.on_demand_access(10, True, 0))
        assert requested_lines(requests) == [11, 12, 13]

    def test_trigger_prefetches_destinations_with_blocks(self):
        pf = EntanglingPrefetcher()
        self._learn_pair(pf, 10, 500, dst_size=2)
        requests = list(pf.on_demand_access(10, True, 0))
        assert requested_lines(requests) == [500, 501, 502]

    def test_destination_requests_carry_pair_token(self):
        pf = EntanglingPrefetcher()
        self._learn_pair(pf, 10, 500, dst_size=1)
        requests = list(pf.on_demand_access(10, True, 0))
        assert all(r.src_meta == (10, 500) for r in requests)

    def test_no_trigger_on_block_continuation(self):
        pf = EntanglingPrefetcher()
        self._learn_pair(pf, 11, 500)
        pf.on_demand_access(10, True, 0)
        requests = list(pf.on_demand_access(11, True, 1))  # grows block
        assert requests == []

    def test_miss_on_head_also_triggers(self):
        pf = EntanglingPrefetcher()
        self._learn_pair(pf, 10, 500)
        requests = list(pf.on_demand_access(10, False, 0))
        assert 500 in requested_lines(requests)


class TestConfidenceFeedback:
    def test_useful_increments(self):
        pf = EntanglingPrefetcher()
        pf.table.add_dest(10, 500)
        pf.table.decrease_confidence(10, 500)
        pf.on_prefetch_useful(500, (10, 500), 0)
        assert pf.table.peek(10).find_dst(500)[1] == 3

    def test_late_decrements(self):
        pf = EntanglingPrefetcher()
        pf.table.add_dest(10, 500)
        pf.on_prefetch_late(500, (10, 500), 0)
        assert pf.table.peek(10).find_dst(500)[1] == 2

    def test_three_wrongs_invalidate(self):
        pf = EntanglingPrefetcher()
        pf.table.add_dest(10, 500)
        for _ in range(3):
            pf.on_evict_unused(500, (10, 500), 0)
        assert pf.table.peek(10).find_dst(500) is None

    def test_none_meta_ignored(self):
        pf = EntanglingPrefetcher()
        pf.on_prefetch_useful(500, None, 0)
        pf.on_prefetch_late(500, None, 0)
        pf.on_evict_unused(500, None, 0)
        assert pf.table.peek(500) is None


class TestMerging:
    def test_quasi_consecutive_blocks_merge(self):
        pf = EntanglingPrefetcher(EntanglingConfig(merge_distance=8))
        # Block A: 100..102; then C at 103 (abuts A); then far away.
        for i, line in enumerate((100, 101, 102)):
            pf.on_demand_access(line, True, i)
        pf.on_demand_access(103, True, 10)      # completes A; A stays, 103 new head
        # Wait: 103 continues A (100+2+1), so it GROWS A instead.
        pf.on_demand_access(900, True, 20)      # completes A (size 3)
        pf.on_demand_access(101, True, 30)      # head inside A's range
        pf.on_demand_access(990, True, 40)      # completes the 101 block -> merge
        assert pf.estats.blocks_merged >= 1
        # A's history entry was extended, the 101 block dropped from history.
        lines = [e.line_addr for e in pf.history]
        assert 101 not in lines

    def test_merge_disabled(self):
        pf = EntanglingPrefetcher(EntanglingConfig(merge_blocks=False))
        for i, line in enumerate((100, 101, 102, 900, 101, 990)):
            pf.on_demand_access(line, True, 10 * i)
        assert pf.estats.blocks_merged == 0

    def test_merge_respects_size_cap(self):
        pf = EntanglingPrefetcher(EntanglingConfig(merge_distance=8))
        pf.on_demand_access(100, True, 0)
        pf.history.newest().bb_size = 60         # block spans 100..160
        pf.on_demand_access(161, True, 10)       # new head abutting it
        for i in range(10):                       # grow the new block to 10
            pf.on_demand_access(162 + i, True, 11 + i)
        pf.on_demand_access(999, True, 30)       # merged size would be 71
        kept = [e for e in pf.history if e.line_addr == 161]
        assert kept, "block must not merge past 63 lines"
        assert pf.estats.blocks_merged == 0


class TestEntVariantAndConfig:
    def test_no_bb_mode_pushes_every_line(self):
        pf = EntanglingPrefetcher(EntanglingConfig(track_basic_blocks=False,
                                                   prefetch_src_bb=False,
                                                   prefetch_dst_bb=False))
        pf.on_demand_access(100, True, 0)
        pf.on_demand_access(101, True, 1)  # consecutive but still pushed
        assert [e.line_addr for e in pf.history] == [100, 101]

    def test_no_bb_mode_dedupes_same_line(self):
        pf = EntanglingPrefetcher(EntanglingConfig(track_basic_blocks=False))
        pf.on_demand_access(100, True, 0)
        pf.on_demand_access(100, True, 1)
        assert len(pf.history) == 1

    def test_merge_distance_defaults(self):
        assert EntanglingConfig(entries=2048).resolve_merge_distance() == 15
        assert EntanglingConfig(entries=4096).resolve_merge_distance() == 6
        assert EntanglingConfig(entries=8192).resolve_merge_distance() == 5
        assert EntanglingConfig(entries=1024).resolve_merge_distance() == 6

    def test_explicit_merge_distance_wins(self):
        assert EntanglingConfig(merge_distance=3).resolve_merge_distance() == 3

    def test_label(self):
        assert EntanglingConfig(entries=2048).label == "Entangling-2K"


class TestStorage:
    @pytest.mark.parametrize(
        "entries,expected_kb",
        [(2048, 20.87), (4096, 40.74)],
    )
    def test_paper_virtual_totals(self, entries, expected_kb):
        """Section IV-B: 20.87KB and 40.74KB total for 2K and 4K."""
        pf = EntanglingPrefetcher(EntanglingConfig(entries=entries))
        assert pf.storage_kb == pytest.approx(expected_kb, abs=0.1)

    @pytest.mark.parametrize(
        "entries,expected_kb",
        [(2048, 16.59), (4096, 32.21)],
    )
    def test_paper_physical_totals(self, entries, expected_kb):
        """Section III-C4: 16.59KB and 32.21KB for physical training."""
        pf = EntanglingPrefetcher(
            EntanglingConfig(entries=entries, address_space="physical")
        )
        assert pf.storage_kb == pytest.approx(expected_kb, abs=0.15)

    def test_8k_storage_close_to_paper(self):
        """The paper lists 77.44KB for 8K; our 10-bit-tag arithmetic gives
        slightly more (see EXPERIMENTS.md)."""
        pf = EntanglingPrefetcher(EntanglingConfig(entries=8192))
        assert pf.storage_kb == pytest.approx(77.44, rel=0.05)


class TestLatePrefetchDeadline:
    """Regression: the training deadline for a late prefetch must use the
    latency the *demand* observed (fill - demand), not the full in-flight
    latency (fill - issue), which picked needlessly old sources."""

    def test_demand_observed_latency(self):
        info = fill(700, fill_cycle=200, issue_cycle=40, is_demand=True,
                    was_prefetch=True, demand_cycle=190)
        assert info.latency == 160
        assert info.demand_latency == 10

    def test_plain_demand_miss_unchanged(self):
        info = fill(700, fill_cycle=200, issue_cycle=150, is_demand=True,
                    was_prefetch=False, demand_cycle=150)
        assert info.demand_latency == info.latency == 50

    def test_late_fill_entangles_recent_source(self):
        pf = EntanglingPrefetcher()
        # Two candidate source heads: a recent one and an old one.
        pf.history.push(500, 90)
        pf.history.push(600, 150)
        pf._pending[700] = 185  # BB-head demand miss awaiting its fill
        # Late prefetch: issued at 40, demanded at 190, filled at 200.
        # Demand-observed latency 10 -> deadline 180, so the head at 150
        # qualifies.  The old fill-issue formula gave latency 160 ->
        # deadline 30, skipping both heads entirely.
        pf.on_fill(fill(700, fill_cycle=200, issue_cycle=40, is_demand=True,
                        was_prefetch=True, demand_cycle=190))
        assert pf.estats.entangle_no_source == 0
        entry = pf.table.peek(600)
        assert entry is not None and entry.find_dst(700) is not None
        assert pf.table.peek(500) is None
