"""Tests for SimStats derived metrics and SimConfig geometry."""

import pytest

from repro.sim.config import SimConfig
from repro.sim.stats import CacheAccessCounts, SimStats


class TestCacheAccessCounts:
    def test_total(self):
        counts = CacheAccessCounts(reads=3, writes=4)
        assert counts.total == 7


class TestSimStatsDerived:
    def test_ipc_zero_cycles(self):
        assert SimStats().ipc == 0.0

    def test_ipc(self):
        stats = SimStats()
        stats.instructions = 600
        stats.cycles = 200
        assert stats.ipc == pytest.approx(3.0)

    def test_miss_ratio(self):
        stats = SimStats()
        stats.l1i_demand_accesses = 100
        stats.l1i_demand_misses = 25
        assert stats.l1i_miss_ratio == 0.25

    def test_miss_ratio_no_accesses(self):
        assert SimStats().l1i_miss_ratio == 0.0

    def test_mpki(self):
        stats = SimStats()
        stats.instructions = 10_000
        stats.l1i_demand_misses = 50
        assert stats.l1i_mpki == pytest.approx(5.0)

    def test_mpki_no_instructions(self):
        assert SimStats().l1i_mpki == 0.0

    def test_accuracy(self):
        stats = SimStats()
        stats.prefetches_sent = 40
        stats.useful_prefetches = 10
        assert stats.accuracy == 0.25

    def test_accuracy_no_prefetches(self):
        assert SimStats().accuracy == 0.0

    def test_branch_misprediction_rate(self):
        stats = SimStats()
        stats.branches = 200
        stats.branch_mispredictions = 20
        assert stats.branch_misprediction_rate == 0.1
        assert SimStats().branch_misprediction_rate == 0.0

    def test_coverage_vs(self):
        base = SimStats()
        base.l1i_demand_misses = 100
        run = SimStats()
        run.l1i_demand_misses = 30
        assert run.coverage_vs(base) == pytest.approx(0.7)

    def test_coverage_vs_zero_baseline(self):
        assert SimStats().coverage_vs(SimStats()) == 0.0

    def test_coverage_never_negative(self):
        base = SimStats()
        base.l1i_demand_misses = 10
        worse = SimStats()
        worse.l1i_demand_misses = 50
        assert worse.coverage_vs(base) == 0.0

    def test_summary_is_string(self):
        assert "ipc=" in SimStats().summary()

    def test_reset_zeroes_everything(self):
        stats = SimStats()
        stats.instructions = 10
        stats.cache_accesses["L2C"].reads = 5
        stats.reset()
        assert stats.instructions == 0
        assert stats.cache_accesses["L2C"].reads == 0

    def test_reset_keeps_identity(self):
        stats = SimStats()
        counts_before = id(stats.cache_accesses)
        stats.reset()
        # The dict object is replaced but the stats object itself is not;
        # holders of the SimStats reference keep counting into it.
        assert id(stats) == id(stats)
        assert stats.cache_accesses["L1I"].reads == 0


class TestSimConfig:
    def test_default_geometry_matches_paper(self):
        config = SimConfig()
        assert config.l1i_size == 32 * 1024
        assert config.l1i_ways == 8
        assert config.l1i_latency == 4
        assert config.l1i_mshrs == 10
        assert config.prefetch_queue_size == 32

    def test_set_counts(self):
        config = SimConfig()
        assert config.l1i_sets == 64
        assert config.l2_sets == 1024
        assert config.llc_sets == 2048

    def test_with_physical(self):
        config = SimConfig().with_physical_addresses()
        assert config.physical_addresses
        assert not SimConfig().physical_addresses

    def test_with_l1i_kb_96(self):
        config = SimConfig().with_l1i_kb(96)
        assert config.l1i_ways == 24
        assert config.l1i_latency == SimConfig().l1i_latency

    def test_frozen(self):
        with pytest.raises(Exception):
            SimConfig().l1i_size = 1

    def test_latency_ordering(self):
        config = SimConfig()
        assert (config.l1i_latency < config.l2_latency
                < config.llc_latency < config.dram_latency)
