"""Fuzz corpus for trace ingestion (ISSUE 5, satellite c).

Deterministic mutants of valid trace files — single-bit flips and
truncations at seeded positions — must NEVER escape the structured
error taxonomy:

* strict mode: every mutant either raises a :class:`TraceError` or
  loads data identical to the original (no silent wrong data);
* salvage mode: every mutant raises a :class:`TraceError`, or returns a
  trace flagged with ``trace.salvage``, or returns the original data —
  and a truncation salvage is always a *prefix* of the original records.

The corpus is seeded, so a mutant that passes once passes forever; any
new uncaught exception type is a real ingestion-hardening regression.
"""

import random
import struct
import zlib

import pytest

from repro.check.errors import TraceError
from repro.workloads.trace import (
    BranchType,
    Instruction,
    Trace,
    read_trace,
    write_trace,
)

SEED = 0x5EED
RECORD_SIZE = struct.Struct("<QIBBQQ").size  # 30 bytes


def _base_instructions():
    rng = random.Random(SEED)
    insts = []
    pc = 0x400000
    for i in range(50):
        if i % 7 == 3:
            target = pc + rng.randrange(-0x400, 0x400) * 4
            insts.append(
                Instruction(
                    pc=pc,
                    branch_type=BranchType.CONDITIONAL,
                    taken=bool(i % 2),
                    target=max(0, target),
                )
            )
        elif i % 11 == 5:
            insts.append(
                Instruction(pc=pc, is_load=True, data_addr=rng.getrandbits(40))
            )
        else:
            insts.append(Instruction(pc=pc, size=4))
        pc += 4
    return insts


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """(label, pristine bytes, original instructions) per base file."""
    root = tmp_path_factory.mktemp("fuzz")
    insts = _base_instructions()
    bases = []
    for label, compress in (("compressed", True), ("uncompressed", False)):
        path = str(root / f"{label}.trace")
        write_trace(Trace("fuzz", insts, category="int"), path, compress=compress)
        bases.append((label, open(path, "rb").read(), insts))
    return bases


def _bit_flip_offsets(data, per_file=40):
    rng = random.Random(SEED)
    return sorted(rng.sample(range(len(data)), min(per_file, len(data))))


def _truncation_lengths(data):
    """Header bytes, the checksum field, and spread points in the payload."""
    lengths = {0, 1, 3, 4, 5, 6, 8, 12, 20, 24, 25}
    for i in range(1, 9):
        lengths.add(len(data) * i // 9)
    lengths.add(len(data) - 1)
    return sorted(length for length in lengths if length < len(data))


def _mutants(data):
    for offset in _bit_flip_offsets(data):
        for bit in (0, 7):
            mutated = bytearray(data)
            mutated[offset] ^= 1 << bit
            yield f"flip@{offset}.{bit}", bytes(mutated)
    for length in _truncation_lengths(data):
        yield f"trunc@{length}", data[:length]


def _load(path, mutated, salvage):
    open(path, "wb").write(mutated)
    return read_trace(path, salvage=salvage)


class TestFuzzCorpus:
    def test_corpus_is_large_enough(self, corpus):
        total = sum(len(list(_mutants(data))) for _label, data, _insts in corpus)
        assert total >= 100

    def test_strict_mode_never_returns_wrong_data(self, corpus, tmp_path):
        path = str(tmp_path / "mutant.trace")
        for label, data, insts in corpus:
            for name, mutated in _mutants(data):
                try:
                    trace = _load(path, mutated, salvage=False)
                except TraceError:
                    continue
                except Exception as exc:  # noqa: BLE001 - the point of the fuzz
                    pytest.fail(
                        f"{label}/{name}: non-TraceError escaped: "
                        f"{type(exc).__name__}: {exc}"
                    )
                assert trace.instructions == insts, (
                    f"{label}/{name}: strict load succeeded with wrong data"
                )

    def test_salvage_mode_flags_every_recovery(self, corpus, tmp_path):
        path = str(tmp_path / "mutant.trace")
        for label, data, insts in corpus:
            for name, mutated in _mutants(data):
                try:
                    trace = _load(path, mutated, salvage=True)
                except TraceError:
                    continue
                except Exception as exc:  # noqa: BLE001
                    pytest.fail(
                        f"{label}/{name}: non-TraceError escaped in salvage: "
                        f"{type(exc).__name__}: {exc}"
                    )
                if trace.salvage is None:
                    assert trace.instructions == insts, (
                        f"{label}/{name}: unflagged salvage load returned "
                        f"wrong data"
                    )
                elif name.startswith("trunc@"):
                    recovered = trace.instructions
                    assert recovered == insts[: len(recovered)], (
                        f"{label}/{name}: truncation salvage is not a prefix"
                    )

    def test_truncation_salvage_recovers_records(self, corpus, tmp_path):
        """Cutting an uncompressed file mid-block still yields the prefix."""
        path = str(tmp_path / "cut.trace")
        for label, data, insts in corpus:
            if label != "uncompressed":
                continue
            header_len = len(data) - len(insts) * RECORD_SIZE
            cut = header_len + 10 * RECORD_SIZE + 7  # ten whole records + a torn one
            open(path, "wb").write(data[:cut])
            trace = read_trace(path, salvage=True)
            assert trace.instructions == insts[:10]
            assert trace.salvage is not None
            assert trace.salvage.recovered == 10
            assert trace.salvage.expected == len(insts)
            assert not trace.salvage.complete


class TestTargetedRecordCorruption:
    """Record-level damage behind a *recomputed* checksum.

    Random flips are caught by the CRC first; these mutants fix the CRC
    up so the per-record field validation is what fires.
    """

    def _corrupt_record(self, insts, index, **overrides):
        """A v3 uncompressed file whose record ``index`` is damaged."""
        body = bytearray()
        record = struct.Struct("<QIBBQQ")
        for i, inst in enumerate(insts):
            fields = {
                "pc": inst.pc,
                "size": inst.size,
                "flags": int(inst.branch_type)
                | (0x10 if inst.taken else 0)
                | (0x20 if inst.is_load else 0)
                | (0x40 if inst.is_store else 0),
                "target": inst.target,
                "data_addr": inst.data_addr,
            }
            if i == index:
                fields.update(overrides)
            body += record.pack(
                fields["pc"], fields["size"], fields["flags"], 0,
                fields["target"], fields["data_addr"],
            )
        name = b"fuzz"
        cat = b"int"
        header_tail = (
            bytes([3, 0])
            + struct.pack("<H", len(name)) + name
            + struct.pack("<H", len(cat)) + cat
            + struct.pack("<Q", len(insts))
        )
        payload = bytes(body)
        crc = zlib.crc32(payload, zlib.crc32(header_tail))
        return b"EPTR" + header_tail + struct.pack("<I", crc) + payload

    @pytest.mark.parametrize(
        "overrides, reason_fragment",
        [
            ({"flags": 0x80}, "reserved flag"),
            ({"flags": 0x0F}, "branch type"),
            ({"size": 0}, "size 0 out of range"),
            ({"size": 6000}, "size 6000 out of range"),
            ({"pc": 1 << 63}, "exceeds the 62-bit"),
            ({"data_addr": (1 << 62) + 4}, "exceeds the 62-bit"),
        ],
    )
    def test_bad_field_is_diagnosed(self, tmp_path, overrides, reason_fragment):
        insts = _base_instructions()
        data = self._corrupt_record(insts, 17, **overrides)
        path = str(tmp_path / "bad_field.trace")
        open(path, "wb").write(data)
        with pytest.raises(TraceError, match=reason_fragment) as excinfo:
            read_trace(path)
        assert excinfo.value.record_index == 17
        assert excinfo.value.offset == 17 * RECORD_SIZE
        assert "#17" in str(excinfo.value)

    def test_salvage_keeps_prefix_before_bad_record(self, tmp_path):
        insts = _base_instructions()
        data = self._corrupt_record(insts, 17, flags=0x80)
        path = str(tmp_path / "bad_field.trace")
        open(path, "wb").write(data)
        trace = read_trace(path, salvage=True)
        assert trace.instructions == insts[:17]
        assert trace.salvage is not None
        assert trace.salvage.recovered == 17
        assert any("record #17" in r for r in trace.salvage.reasons)
