"""Tests for the category-tuned workload generators."""

import pytest

from repro.workloads.cloudsuite import CLOUDSUITE_PARAMS, cloudsuite_suite
from repro.workloads.generators import (
    CATEGORIES,
    CATEGORY_PARAMS,
    DEFAULT_INSTRUCTIONS,
    ProgramParams,
    WorkloadSpec,
    _ProgramShape,
    build_program,
    cvp_suite,
    make_workload,
    workload_names,
)


class TestProgramParams:
    def test_too_few_functions_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            ProgramParams(n_funcs=5, n_handlers=10, shared_utils=4)

    def test_frozen(self):
        params = ProgramParams()
        with pytest.raises(Exception):
            params.n_funcs = 10


class TestProgramShape:
    def test_partition_is_disjoint_and_complete(self):
        params = ProgramParams(n_funcs=64, n_handlers=8, shared_utils=6)
        shape = _ProgramShape(params)
        all_names = [shape.main] + shape.handlers + shape.utils + shape.internals
        assert len(all_names) == 64
        assert len(set(all_names)) == 64

    def test_segments_cover_internals(self):
        params = ProgramParams(n_funcs=64, n_handlers=8, shared_utils=6)
        shape = _ProgramShape(params)
        covered = [f for seg in shape.segment.values() for f in seg]
        assert sorted(covered) == sorted(shape.internals)

    def test_segment_of_internal(self):
        params = ProgramParams(n_funcs=64, n_handlers=8, shared_utils=6)
        shape = _ProgramShape(params)
        member = shape.internals[0]
        assert member in shape.segment_of(member)


class TestBuildProgram:
    def test_deterministic(self):
        params = CATEGORY_PARAMS["int"]
        a = build_program(params, seed=11)
        b = build_program(params, seed=11)
        assert a.code_bytes == b.code_bytes
        assert sorted(a.functions) == sorted(b.functions)

    def test_different_seed_different_program(self):
        params = CATEGORY_PARAMS["int"]
        a = build_program(params, seed=11)
        b = build_program(params, seed=12)
        assert a.code_bytes != b.code_bytes

    def test_entry_is_dispatcher(self):
        params = ProgramParams(n_funcs=40, n_handlers=4, shared_utils=4)
        program = build_program(params, seed=1)
        main = program.functions[program.entry]
        assert main.blocks[0].label == "dispatch"

    def test_layout_is_shuffled(self):
        # Function f001 should usually not be laid out right after main.
        params = ProgramParams(n_funcs=120, n_handlers=8, shared_utils=6)
        program = build_program(params, seed=3)
        ordered = sorted(
            program.functions, key=lambda n: program.function_address(n)
        )
        assert ordered[1:4] != ["f001", "f002", "f003"]


class TestSuites:
    def test_default_suite_shape(self):
        specs = cvp_suite(per_category=2)
        assert len(specs) == 8
        assert {s.category for s in specs} == set(CATEGORIES)

    def test_default_lengths_per_category(self):
        specs = cvp_suite(per_category=1)
        for spec in specs:
            assert spec.n_instructions == DEFAULT_INSTRUCTIONS[spec.category]

    def test_explicit_length_override(self):
        specs = cvp_suite(per_category=1, n_instructions=1234)
        assert all(s.n_instructions == 1234 for s in specs)

    def test_names_are_unique(self):
        specs = cvp_suite(per_category=4)
        names = workload_names(specs)
        assert len(names) == len(set(names))

    def test_unknown_category_rejected(self):
        spec = WorkloadSpec(name="x", category="bogus", seed=0)
        with pytest.raises(ValueError, match="category"):
            spec.resolve_params()

    def test_cloudsuite_suite(self):
        specs = cloudsuite_suite(n_instructions=1000)
        assert {s.name for s in specs} == set(CLOUDSUITE_PARAMS)
        assert all(s.category == "cloud" for s in specs)


class TestMakeWorkload:
    def test_deterministic(self):
        spec = WorkloadSpec(name="w", category="int", seed=5, n_instructions=5000)
        a = make_workload(spec)
        b = make_workload(spec)
        assert a.instructions == b.instructions

    def test_length(self):
        spec = WorkloadSpec(name="w", category="crypto", seed=5, n_instructions=3000)
        assert len(make_workload(spec)) == 3000

    @pytest.mark.parametrize("category", CATEGORIES)
    def test_footprint_exceeds_l1i(self, category):
        """Every category must thrash a 32KB L1I (>=1 MPKI selection rule)."""
        spec = WorkloadSpec(
            name="w", category=category, seed=3,
            n_instructions=DEFAULT_INSTRUCTIONS[category],
        )
        trace = make_workload(spec)
        assert trace.footprint_lines() * 64 > 32 * 1024

    def test_srv_has_largest_footprint(self):
        traces = {
            c: make_workload(
                WorkloadSpec(name=c, category=c, seed=3,
                             n_instructions=DEFAULT_INSTRUCTIONS[c])
            )
            for c in CATEGORIES
        }
        footprints = {c: t.footprint_lines() for c, t in traces.items()}
        assert footprints["srv"] == max(footprints.values())

    def test_srv_is_branchier_than_fp(self):
        srv = make_workload(
            WorkloadSpec(name="s", category="srv", seed=3, n_instructions=100_000)
        )
        fp = make_workload(
            WorkloadSpec(name="f", category="fp", seed=3, n_instructions=100_000)
        )
        assert srv.branch_fraction() > fp.branch_fraction()
