"""Tests for fail-fast configuration validation (ISSUE 5 tentpole,
ingestion layer): SimConfig.validate() and EntanglingConfig.validate()
raise ConfigError with actionable messages instead of letting a broken
geometry produce silently wrong simulations."""

import dataclasses

import pytest

from repro.check.errors import ConfigError
from repro.core.compression import CompressionScheme
from repro.core.entangling import EntanglingConfig, EntanglingPrefetcher
from repro.sim.config import SimConfig


class TestSimConfigValidation:
    def test_default_config_is_valid(self):
        SimConfig().validate()

    @pytest.mark.parametrize(
        "overrides, fragment",
        [
            ({"line_size": 48}, "power of two"),
            ({"line_size": 0}, "power of two"),
            ({"page_size": 32}, "page"),
            ({"l1i_ways": 0}, "at least one way"),
            ({"l1i_size": 1000}, "divisible"),
            ({"l1i_mshrs": 0}, "l1i_mshrs"),
            ({"mshr_demand_reserve": 10}, "mshr_demand_reserve"),
            ({"mshr_demand_reserve": -1}, "mshr_demand_reserve"),
            ({"prefetch_queue_size": 0}, "prefetch_queue_size"),
            ({"l1i_replacement": "plru"}, "plru"),
            ({"branch_predictor": "tage"}, "tage"),
            ({"gshare_bits": -1}, "gshare_bits"),
            ({"fetch_lines_per_cycle": 0}, "fetch_lines_per_cycle"),
        ],
    )
    def test_bad_values_fail_fast_at_construction(self, overrides, fragment):
        with pytest.raises(ConfigError, match=fragment):
            SimConfig(**overrides)

    def test_config_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            SimConfig(l1i_ways=0)

    def test_replace_revalidates(self):
        config = SimConfig()
        with pytest.raises(ConfigError):
            dataclasses.replace(config, l1i_mshrs=0)


class TestEntanglingConfigValidation:
    def test_paper_variants_are_valid(self):
        for entries in (2048, 4096, 8192):
            for address_space in ("virtual", "physical"):
                EntanglingConfig(
                    entries=entries, address_space=address_space
                ).validate()

    @pytest.mark.parametrize(
        "overrides, fragment",
        [
            ({"entries": 0}, "positive geometry"),
            ({"entries": 4095}, "multiple"),
            ({"entries": 4096, "ways": 4096 // 3}, "multiple"),
            ({"entries": 3072, "ways": 16}, "power of two"),
            ({"address_space": "banana"}, "address_space"),
            ({"history_size": 0}, "history_size"),
            ({"merge_distance": -2}, "merge_distance"),
            ({"bb_size_policy": "median"}, "bb_size_policy"),
            ({"commit_delay_accesses": -1}, "commit_delay_accesses"),
        ],
    )
    def test_bad_variants_are_rejected(self, overrides, fragment):
        with pytest.raises(ConfigError, match=fragment):
            EntanglingConfig(**overrides).validate()

    def test_prefetcher_construction_validates(self):
        with pytest.raises(ConfigError, match="power of two"):
            EntanglingPrefetcher(EntanglingConfig(entries=3072, ways=16))

    def test_bit_budget_matches_paper_tables(self):
        # The cross-check target: 3-bit mode + 60-bit payload = 63 bits
        # (virtual, Table I), 2 + 44 = 46 bits (physical, Table II).
        assert CompressionScheme("virtual").entry_dst_field_bits == 63
        assert CompressionScheme("physical").entry_dst_field_bits == 46

    def test_bit_budget_cross_check_fires_on_mismatch(self, monkeypatch):
        monkeypatch.setattr(
            EntanglingConfig,
            "EXPECTED_DST_FIELD_BITS",
            {"virtual": 64, "physical": 46},
        )
        with pytest.raises(ConfigError, match="64 bits"):
            EntanglingConfig().validate()
