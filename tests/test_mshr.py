"""Tests for the MSHR file and its timing metadata."""

import pytest

from repro.sim.mshr import MshrEntry, MshrFile


class TestMshrEntry:
    def test_demand_entry_has_demand_cycle(self):
        entry = MshrEntry(1, issue_cycle=10, ready_cycle=30, is_demand=True)
        assert entry.demand_cycle == 10
        assert not entry.was_prefetch
        assert not entry.is_late_prefetch

    def test_prefetch_entry_starts_undemanded(self):
        entry = MshrEntry(1, issue_cycle=10, ready_cycle=30, is_demand=False)
        assert entry.demand_cycle is None
        assert entry.was_prefetch

    def test_mark_demanded_flips_access_bit(self):
        entry = MshrEntry(1, 10, 30, is_demand=False)
        entry.mark_demanded(20)
        assert entry.is_demand
        assert entry.demand_cycle == 20
        assert entry.is_late_prefetch

    def test_mark_demanded_idempotent(self):
        entry = MshrEntry(1, 10, 30, is_demand=True)
        entry.mark_demanded(25)
        assert entry.demand_cycle == 10  # first demand wins


class TestMshrFile:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            MshrFile(0)

    def test_allocate_and_lookup(self):
        mshr = MshrFile(2)
        mshr.allocate(5, 0, 20, True)
        assert mshr.lookup(5) is not None
        assert mshr.lookup(6) is None

    def test_full(self):
        mshr = MshrFile(2)
        mshr.allocate(1, 0, 10, True)
        assert not mshr.full
        mshr.allocate(2, 0, 10, True)
        assert mshr.full

    def test_allocate_when_full_raises(self):
        mshr = MshrFile(1)
        mshr.allocate(1, 0, 10, True)
        with pytest.raises(RuntimeError, match="full"):
            mshr.allocate(2, 0, 10, True)

    def test_duplicate_allocation_raises(self):
        mshr = MshrFile(4)
        mshr.allocate(1, 0, 10, True)
        with pytest.raises(RuntimeError, match="duplicate"):
            mshr.allocate(1, 5, 20, False)

    def test_pop_ready_removes_completed(self):
        mshr = MshrFile(4)
        mshr.allocate(1, 0, 10, True)
        mshr.allocate(2, 0, 20, True)
        ready = mshr.pop_ready(15)
        assert [e.line_addr for e in ready] == [1]
        assert mshr.lookup(1) is None
        assert mshr.lookup(2) is not None

    def test_pop_ready_sorted_by_fill_time(self):
        mshr = MshrFile(4)
        mshr.allocate(1, 0, 30, True)
        mshr.allocate(2, 0, 10, True)
        ready = mshr.pop_ready(100)
        assert [e.line_addr for e in ready] == [2, 1]

    def test_next_ready_cycle(self):
        mshr = MshrFile(4)
        assert mshr.next_ready_cycle() is None
        mshr.allocate(1, 0, 30, True)
        mshr.allocate(2, 0, 10, True)
        assert mshr.next_ready_cycle() == 10

    def test_len(self):
        mshr = MshrFile(4)
        assert len(mshr) == 0
        mshr.allocate(1, 0, 10, True)
        assert len(mshr) == 1
