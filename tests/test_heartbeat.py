"""Tests for live progress heartbeats (repro.obs.heartbeat).

The monitor's state machine is driven with a fake clock and a plain
``queue.Queue`` so transitions, staleness, and throttled rendering are
deterministic; integration tests check the status line surfaces through
``run_suite(..., progress=...)`` and that stale flags fold into the
``FaultReport`` as advisory telemetry.
"""

import io
import os
import queue
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.analysis.experiments import run_suite
from repro.obs.heartbeat import (
    DEFAULT_HEARTBEAT_INTERVAL,
    HeartbeatMonitor,
    HeartbeatPulse,
    emit_event,
    heartbeat_interval_from_env,
    stale_after_from_env,
    stream_supports_rewrite,
)
from repro.workloads.generators import WorkloadSpec

SPEC = WorkloadSpec(name="hb_wl", category="int", seed=9, n_instructions=20_000)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _event(kind, label, when, **payload):
    return (kind, label, 12345, when, payload)


class FakeTTY(io.StringIO):
    """A StringIO that claims to be an interactive terminal."""

    def isatty(self):
        return True


class TestEmitEvent:
    def test_puts_tuple_on_queue(self):
        q = queue.Queue()
        emit_event(q, "started", "cfg/w", attempt=1)
        kind, label, pid, when, payload = q.get_nowait()
        assert (kind, label, payload) == ("started", "cfg/w", {"attempt": 1})
        assert pid > 0 and when > 0

    def test_broken_queue_is_swallowed(self):
        class Broken:
            def put(self, item):
                raise RuntimeError("queue torn down")

        emit_event(Broken(), "heartbeat", "cfg/w")  # must not raise


class TestEnvParsing:
    def test_interval_default_and_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_HEARTBEAT_INTERVAL", raising=False)
        assert heartbeat_interval_from_env() == DEFAULT_HEARTBEAT_INTERVAL
        monkeypatch.setenv("REPRO_HEARTBEAT_INTERVAL", "0.25")
        assert heartbeat_interval_from_env() == 0.25
        monkeypatch.setenv("REPRO_HEARTBEAT_INTERVAL", "-3")
        assert heartbeat_interval_from_env() == DEFAULT_HEARTBEAT_INTERVAL
        monkeypatch.setenv("REPRO_HEARTBEAT_INTERVAL", "soon")
        with pytest.raises(ValueError):
            heartbeat_interval_from_env()

    def test_stale_after_prefers_env_then_timeout(self, monkeypatch):
        monkeypatch.delenv("REPRO_HEARTBEAT_STALE", raising=False)
        # Half the task timeout, floored at two beats.
        assert stale_after_from_env(1.0, task_timeout=60.0) == 30.0
        assert stale_after_from_env(1.0, task_timeout=1.0) == 2.0
        # No timeout: four beats.
        assert stale_after_from_env(0.5) == 2.0
        monkeypatch.setenv("REPRO_HEARTBEAT_STALE", "7.5")
        assert stale_after_from_env(1.0, task_timeout=60.0) == 7.5


class TestHeartbeatPulse:
    def test_beats_until_stopped(self):
        q = queue.Queue()
        pulse = HeartbeatPulse(q, "cfg/w", interval=0.01)
        pulse.start()
        kind, label, _pid, _when, _payload = q.get(timeout=2.0)
        assert (kind, label) == ("heartbeat", "cfg/w")
        pulse.stop()
        assert not pulse.is_alive()


class TestHeartbeatMonitor:
    def _monitor(self, total=3, stream=None, stale_after=10.0):
        clock = FakeClock()
        monitor = HeartbeatMonitor(
            total, stream=stream, stale_after=stale_after,
            throttle=0.0, clock=clock,
        )
        monitor.attach_queue(queue.Queue())
        return monitor, clock

    def test_lifecycle_counters_and_status_line(self):
        monitor, clock = self._monitor(total=3)
        monitor.queue.put(_event("started", "a", clock.now, attempt=0))
        monitor.queue.put(_event("started", "b", clock.now, attempt=0))
        monitor.pump()
        assert monitor.running == 2
        clock.advance(2.0)
        monitor.queue.put(_event("finished", "a", clock.now))
        monitor.pump()
        assert (monitor.done, monitor.running, monitor.failed) == (1, 1, 0)
        line = monitor.status_line()
        assert line.startswith("progress: 1/3 done, 1 running, 0 failed")
        # ETA: 1 done in 2s -> 2 remaining at 2s each.
        assert "ETA 4s" in line

    def test_failed_attempt_returns_task_to_pending(self):
        monitor, clock = self._monitor()
        monitor.queue.put(_event("started", "a", clock.now, attempt=0))
        monitor.queue.put(_event("failed", "a", clock.now, attempt=0))
        monitor.pump()
        assert monitor.running == 0
        assert monitor.failed == 0  # the executor may still retry it
        monitor.queue.put(_event("started", "a", clock.now, attempt=1))
        monitor.queue.put(_event("finished", "a", clock.now, attempt=1))
        monitor.pump()
        assert monitor.done == 1

    def test_cache_hits_and_quarantine_are_parent_side(self):
        monitor, _clock = self._monitor(total=2)
        monitor.note_cache_hit("a")
        monitor.note_quarantined("b")
        assert (monitor.done, monitor.cache_hits, monitor.failed) == (1, 1, 1)
        assert "1 cached" in monitor.status_line()
        monitor.note_quarantined("b")  # idempotent
        assert monitor.failed == 1

    def test_duplicate_finished_counts_once(self):
        monitor, clock = self._monitor()
        monitor.queue.put(_event("finished", "a", clock.now))
        monitor.queue.put(_event("finished", "a", clock.now))
        monitor.pump()
        assert monitor.done == 1

    def test_eta_unknown_before_first_completion(self):
        monitor, _clock = self._monitor()
        assert monitor.eta_seconds() is None
        assert "ETA ?" in monitor.status_line()

    def test_stale_detection_and_heartbeat_refresh(self):
        monitor, clock = self._monitor(stale_after=5.0)
        monitor.queue.put(_event("started", "slow", clock.now, attempt=0))
        monitor.pump()
        clock.advance(4.0)
        monitor.queue.put(_event("heartbeat", "slow", clock.now))
        monitor.pump()
        assert monitor.stale_tasks == []  # the beat refreshed last_seen
        clock.advance(5.1)
        monitor.pump()
        assert monitor.stale_tasks == ["slow"]
        assert "1 stale (slow)" in monitor.status_line()
        clock.advance(10.0)
        monitor.pump()
        assert monitor.stale_tasks == ["slow"]  # flagged once, not per pump

    def test_done_tasks_never_go_stale(self):
        monitor, clock = self._monitor(stale_after=5.0)
        monitor.queue.put(_event("started", "quick", clock.now, attempt=0))
        monitor.queue.put(_event("finished", "quick", clock.now))
        monitor.pump()
        clock.advance(60.0)
        monitor.pump()
        assert monitor.stale_tasks == []

    def test_render_is_throttled_and_change_only(self):
        stream = io.StringIO()
        clock = FakeClock()
        monitor = HeartbeatMonitor(
            2, stream=stream, stale_after=60.0, throttle=1.0, clock=clock
        )
        monitor.attach_queue(queue.Queue())
        monitor.queue.put(_event("started", "a", clock.now, attempt=0))
        monitor.pump()
        clock.advance(0.1)
        monitor.pump()  # inside the throttle window: no second line
        assert stream.getvalue().count("progress:") == 1
        clock.advance(2.0)
        monitor.pump()  # outside the window but the line is unchanged
        assert stream.getvalue().count("progress:") == 1
        monitor.queue.put(_event("finished", "a", clock.now))
        clock.advance(2.0)
        monitor.pump()
        assert stream.getvalue().count("progress:") == 2

    def test_malformed_event_is_ignored(self):
        monitor, _clock = self._monitor()
        monitor.queue.put("not-an-event")
        monitor.queue.put(("started",))
        monitor.pump()  # must not raise
        assert monitor.running == 0

    def test_closed_stream_does_not_raise(self):
        stream = io.StringIO()
        clock = FakeClock()
        monitor = HeartbeatMonitor(1, stream=stream, throttle=0.0, clock=clock)
        stream.close()
        monitor.queue = queue.Queue()
        monitor.queue.put(_event("started", "a", clock.now, attempt=0))
        monitor.pump()


class TestStreamRewrite:
    def test_tty_gets_carriage_return_rewriting(self, monkeypatch):
        monkeypatch.delenv("NO_COLOR", raising=False)
        monkeypatch.setenv("TERM", "xterm-256color")
        stream = FakeTTY()
        assert stream_supports_rewrite(stream)
        clock = FakeClock()
        monitor = HeartbeatMonitor(2, stream=stream, throttle=0.0,
                                   clock=clock)
        monitor.attach_queue(queue.Queue())
        monitor.queue.put(_event("started", "a", clock.now, attempt=0))
        monitor.pump()
        clock.advance(1.0)
        monitor.queue.put(_event("finished", "a", clock.now))
        monitor.pump()
        out = stream.getvalue()
        assert out.startswith("\r")
        assert out.count("\r") == 2  # rewritten in place, not stacked
        assert "\n" not in out  # the newline belongs to close()
        monitor.close()
        assert stream.getvalue().endswith("\n")

    def test_rewrite_pads_over_longer_previous_line(self, monkeypatch):
        monkeypatch.delenv("NO_COLOR", raising=False)
        monkeypatch.setenv("TERM", "xterm")
        stream = FakeTTY()
        clock = FakeClock()
        monitor = HeartbeatMonitor(2, stream=stream, throttle=0.0,
                                   clock=clock)
        monitor.attach_queue(queue.Queue())
        monitor._line_width = 0
        monitor._render(force=True)
        first_len = len(monitor._last_line)
        monitor._last_line = ""  # force a re-render of a shorter line
        monitor._line_width = first_len + 20
        monitor._render(force=True)
        chunks = stream.getvalue().split("\r")
        assert len(chunks[-1]) >= first_len + 20  # blank-padded residue

    def test_non_tty_gets_newline_lines(self):
        stream = io.StringIO()  # isatty() is False
        assert not stream_supports_rewrite(stream)
        clock = FakeClock()
        monitor = HeartbeatMonitor(1, stream=stream, throttle=0.0,
                                   clock=clock)
        monitor.attach_queue(queue.Queue())
        monitor.queue.put(_event("started", "a", clock.now, attempt=0))
        monitor.pump()
        monitor.close()
        out = stream.getvalue()
        assert "\r" not in out
        assert all(line.startswith("progress:")
                   for line in out.strip().splitlines())

    def test_no_color_and_dumb_term_disable_rewrite(self, monkeypatch):
        stream = FakeTTY()
        monkeypatch.setenv("NO_COLOR", "1")
        assert not stream_supports_rewrite(stream)
        monkeypatch.delenv("NO_COLOR", raising=False)
        monkeypatch.setenv("TERM", "dumb")
        assert not stream_supports_rewrite(stream)
        monkeypatch.setenv("TERM", "xterm")
        assert stream_supports_rewrite(stream)

    def test_exotic_isatty_failure_is_not_a_tty(self):
        class Exotic:
            def isatty(self):
                raise OSError("no fd")

        assert not stream_supports_rewrite(Exotic())

    def test_close_always_emits_final_summary(self):
        # Throttling suppressed every intermediate render; the final
        # summary line must still appear so logs record the outcome.
        stream = io.StringIO()
        clock = FakeClock()
        monitor = HeartbeatMonitor(1, stream=stream, throttle=1e9,
                                   clock=clock)
        monitor.attach_queue(queue.Queue())
        monitor.queue.put(_event("started", "a", clock.now, attempt=0))
        monitor.queue.put(_event("finished", "a", clock.now))
        monitor.pump()
        monitor.pump()
        monitor.close()
        out = stream.getvalue()
        assert "1/1 done" in out


class TestMonitorSink:
    def test_sink_sees_every_drained_event(self):
        monitor, clock = TestHeartbeatMonitor()._monitor()
        seen = []
        monitor.sink = seen.append
        started = _event("started", "a", clock.now, attempt=0)
        finished = _event("finished", "a", clock.now)
        monitor.queue.put(started)
        monitor.queue.put(finished)
        monitor.pump()
        assert seen == [started, finished]

    def test_sink_failure_never_breaks_the_pump(self):
        monitor, clock = TestHeartbeatMonitor()._monitor()

        def explode(event):
            raise RuntimeError("sink bug")

        monitor.sink = explode
        monitor.queue.put(_event("finished", "a", clock.now))
        monitor.pump()  # must not raise
        assert monitor.done == 1

    def test_note_shortcuts_bypass_the_sink(self):
        monitor, _clock = TestHeartbeatMonitor()._monitor()
        seen = []
        monitor.sink = seen.append
        monitor.note_cache_hit("a")
        monitor.note_quarantined("b")
        assert seen == []  # parent-side notes have their own publishers


class TestCleanShutdown:
    def test_close_tolerates_dead_queue_and_closed_stream(self):
        stream = io.StringIO()
        clock = FakeClock()
        monitor = HeartbeatMonitor(1, stream=stream, throttle=0.0,
                                   clock=clock)

        class DeadQueue:
            def get_nowait(self):
                raise ConnectionResetError("manager is gone")

        monitor.attach_queue(DeadQueue())
        stream.close()
        monitor.close()  # must not raise

    def test_sigint_mid_suite_exits_without_tracebacks(self, tmp_path):
        """A parent killed mid-``run_suite`` must shut the Manager queue
        down cleanly: no atexit tracebacks from the manager process, no
        BrokenPipe noise from the monitor thread."""
        script = tmp_path / "victim.py"
        script.write_text(textwrap.dedent(
            """
            import io, sys
            from repro.analysis.experiments import run_suite
            from repro.workloads.generators import WorkloadSpec

            specs = [
                WorkloadSpec(name=f"sig_{i}", category="srv", seed=i,
                             n_instructions=800_000)
                for i in range(4)
            ]
            print("READY", flush=True)
            try:
                run_suite(
                    specs, ["no", "next_line"], warmup_instructions=100_000,
                    include_baseline=False, jobs=2, cache=None,
                    checkpoint=None, progress=io.StringIO(),
                )
            except KeyboardInterrupt:
                print("interrupted", file=sys.stderr, flush=True)
                sys.exit(130)
            sys.exit(0)
            """
        ))
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env = dict(os.environ, PYTHONPATH=src)
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env,
        )
        try:
            assert proc.stdout.readline().strip() == "READY"
            import time

            time.sleep(1.5)  # let the suite get into flight
            proc.send_signal(signal.SIGINT)
            _out, err = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        # Finishing before the signal (rc 0) is acceptable on a very
        # fast machine; an interrupt must exit 130 with clean stderr.
        assert proc.returncode in (0, 130), err
        assert "Traceback" not in err, err


class TestRunSuiteProgress:
    def test_progress_stream_gets_status_lines(self):
        stream = io.StringIO()
        evaluation = run_suite(
            [SPEC], ["next_line"], jobs=1, cache=None, checkpoint=None,
            progress=stream,
        )
        assert evaluation.is_complete()
        output = stream.getvalue()
        assert "progress:" in output
        # The final (forced) render reports everything done.
        assert "2/2 done" in output.splitlines()[-1]

    def test_progress_env_var_enables_monitor(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_PROGRESS", "1")
        evaluation = run_suite(
            [SPEC], ["next_line"], include_baseline=False, jobs=1,
            cache=None, checkpoint=None,
        )
        assert evaluation.is_complete()
        assert "progress:" in capsys.readouterr().err

    def test_progress_off_by_default_no_heartbeat_import_needed(self):
        stream = io.StringIO()
        evaluation = run_suite(
            [SPEC], ["next_line"], include_baseline=False, jobs=1,
            cache=None, checkpoint=None,
        )
        assert evaluation.is_complete()
        assert stream.getvalue() == ""

    def test_stale_flags_fold_into_fault_report(self):
        """Deterministic fold check: a monitor that has flagged stale
        tasks contributes them to the FaultReport as advisory fields."""
        from repro.analysis.parallel import run_tasks_parallel

        clock = FakeClock()
        monitor = HeartbeatMonitor(
            1, stream=None, stale_after=60.0, throttle=0.0, clock=clock
        )
        monitor.stale_tasks.append("next_line/hb_wl")
        outcome = run_tasks_parallel(
            [SPEC], ["next_line"], jobs=1, cache=None, checkpoint=None,
            monitor=monitor,
        )
        report = outcome.report
        assert report.heartbeat_stale == 1
        assert report.stale_tasks == ["next_line/hb_wl"]
        # Advisory only: a stale flag alone does not dirty the report.
        assert report.clean
        assert "1 stale heartbeats" in report.summary_line()

    def test_monitored_run_signature_matches_unmonitored(self):
        baseline = run_suite(
            [SPEC], ["next_line"], include_baseline=False, jobs=1,
            cache=None, checkpoint=None,
        )
        monitored = run_suite(
            [SPEC], ["next_line"], include_baseline=False, jobs=1,
            cache=None, checkpoint=None, progress=io.StringIO(),
        )
        a = baseline.runs["next_line"]["hb_wl"].stats.signature()
        b = monitored.runs["next_line"]["hb_wl"].stats.signature()
        assert a == b
