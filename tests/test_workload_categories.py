"""Statistical-shape tests on the generated workload categories.

These pin the properties DESIGN.md claims the synthetic categories
reproduce from the paper's workload characterization.
"""

import pytest

from repro.workloads.cloudsuite import cloudsuite_suite
from repro.workloads.generators import (
    CATEGORIES,
    DEFAULT_INSTRUCTIONS,
    WorkloadSpec,
    make_workload,
)
from repro.workloads.trace import BranchType


@pytest.fixture(scope="module")
def category_traces():
    return {
        category: make_workload(
            WorkloadSpec(
                name=category,
                category=category,
                seed=11,
                n_instructions=min(150_000, DEFAULT_INSTRUCTIONS[category]),
            )
        )
        for category in CATEGORIES
    }


class TestCategoryShape:
    def test_srv_has_indirect_calls(self, category_traces):
        srv = category_traces["srv"]
        indirect = sum(
            1 for i in srv if i.branch_type == BranchType.INDIRECT_CALL
        )
        assert indirect > 100

    def test_crypto_mostly_direct_control_flow(self, category_traces):
        crypto = category_traces["crypto"]
        branches = [i for i in crypto if i.is_branch]
        indirect = sum(1 for b in branches if b.branch_type.is_indirect)
        # The dispatcher is indirect, but handler bodies are direct.
        assert indirect / len(branches) < 0.25

    def test_calls_and_returns_balance(self, category_traces):
        for category, trace in category_traces.items():
            calls = sum(1 for i in trace if i.branch_type.is_call and i.taken)
            rets = sum(1 for i in trace if i.branch_type == BranchType.RETURN)
            assert abs(calls - rets) < max(60, 0.1 * calls), category

    def test_fp_runs_are_long(self, category_traces):
        """fp has the longest straight-line runs (basis of Figure 14)."""

        def mean_run_length(trace):
            runs, current = [], 1
            prev_line = None
            for inst in trace:
                line = inst.pc // 64
                if prev_line is None or line in (prev_line, prev_line + 1):
                    current += 1
                else:
                    runs.append(current)
                    current = 1
                prev_line = line
                if inst.taken:
                    runs.append(current)
                    current = 1
                    prev_line = None
            return sum(runs) / max(1, len(runs))

        assert mean_run_length(category_traces["fp"]) > mean_run_length(
            category_traces["srv"]
        )

    def test_all_branch_targets_within_code(self, category_traces):
        for category, trace in category_traces.items():
            pcs = {i.pc for i in trace}
            lo, hi = min(pcs), max(pcs)
            for inst in trace:
                if inst.taken:
                    assert lo <= inst.target <= hi + 64, category

    def test_memory_instruction_density(self, category_traces):
        for category, trace in category_traces.items():
            mem = sum(1 for i in trace if i.is_load or i.is_store)
            frac = mem / len(trace)
            assert 0.1 < frac < 0.5, (category, frac)


class TestCloudSuiteShape:
    def test_four_distinct_applications(self):
        specs = cloudsuite_suite(n_instructions=50_000)
        traces = [make_workload(spec) for spec in specs]
        footprints = {t.name: t.footprint_lines() for t in traces}
        assert len(set(footprints.values())) == 4  # all different

    def test_cassandra_larger_than_streaming(self):
        specs = {s.name: s for s in cloudsuite_suite(n_instructions=100_000)}
        cassandra = make_workload(specs["cassandra"])
        streaming = make_workload(specs["streaming"])
        assert cassandra.footprint_lines() > streaming.footprint_lines()
