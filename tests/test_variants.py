"""Tests for the Entangling configuration variants and ablations."""

import pytest

from repro.core.variants import (
    ABLATION_NAMES,
    ablation_variants,
    entangling_sweep,
    make_ablation,
    make_entangling,
    make_epi,
)


class TestMakeEntangling:
    @pytest.mark.parametrize("entries", [2048, 4096, 8192])
    def test_sizes(self, entries):
        pf = make_entangling(entries)
        assert pf.config.entries == entries
        assert pf.name == f"Entangling-{entries // 1024}K"

    def test_physical(self):
        pf = make_entangling(4096, address_space="physical")
        assert pf.table.scheme.kind == "physical"

    def test_sweep(self):
        sweep = entangling_sweep()
        assert [p.config.entries for p in sweep] == [2048, 4096, 8192]


class TestAblations:
    def test_bb_disables_entangling(self):
        pf = make_ablation("BB")
        assert pf.config.prefetch_src_bb
        assert not pf.config.prefetch_dsts
        assert not pf.config.merge_blocks

    def test_bbent_disables_dst_blocks(self):
        pf = make_ablation("BBEnt")
        assert pf.config.prefetch_dsts
        assert not pf.config.prefetch_dst_bb

    def test_bbentbb_disables_merging_only(self):
        pf = make_ablation("BBEntBB")
        assert pf.config.prefetch_dst_bb
        assert not pf.config.merge_blocks

    def test_ent_disables_block_tracking(self):
        pf = make_ablation("Ent")
        assert not pf.config.track_basic_blocks
        assert not pf.config.prefetch_src_bb

    def test_full_variant_is_default_config(self):
        pf = make_ablation("BBEntBB-Merge")
        assert pf.config.merge_blocks
        assert pf.config.prefetch_dst_bb

    def test_names_include_size(self):
        assert make_ablation("BB", 2048).name == "BB-2K"

    def test_unknown_variant(self):
        with pytest.raises(ValueError, match="unknown ablation"):
            make_ablation("BBQ")

    def test_all_variants_constructible(self):
        variants = ablation_variants(4096)
        assert set(variants) == set(ABLATION_NAMES)


class TestEpi:
    def test_epi_is_large(self):
        pf = make_epi()
        assert pf.config.history_size == 1024
        assert pf.config.ways == 34
        assert pf.config.entries > 8192
        assert pf.name == "EPI"

    def test_epi_storage_exceeds_8k(self):
        assert make_epi().storage_kb > make_entangling(8192).storage_kb
