"""Fault-tolerance tests for the resilient evaluation engine.

The contract under test: with worker faults injected (crash, hang,
corrupt result, pool-killing exit), ``run_suite`` still returns a
complete — or explicitly partial — ``EvaluationResult`` whose stats are
bit-identical to a clean serial run, and an interrupted evaluation
resumes from its checkpoint manifest re-simulating only missing pairs.

Fault injection is driven by ``REPRO_FAULT_INJECT=mode:fraction[:scope]``
(see :class:`repro.analysis.parallel.FaultInjector`); victims are chosen
by hashing the task label, so every process and attempt agrees on them.
"""

import pytest

from repro.analysis.checkpoint import (
    CheckpointManifest,
    get_checkpoint,
    set_checkpoint,
)
from repro.analysis.experiments import run_suite
from repro.analysis.parallel import (
    FaultInjector,
    RetryPolicy,
    map_resilient,
)
from repro.analysis.reporting import format_timing_table
from repro.analysis.runcache import RunCache
from repro.workloads.generators import WorkloadSpec

SMALL_SUITE = [
    WorkloadSpec(name="ft_int", category="int", seed=21, n_instructions=12_000),
    WorkloadSpec(name="ft_srv", category="srv", seed=22, n_instructions=12_000),
]
CONFIGS = ["next_line"]
#: (config, workload) pairs run_suite evaluates (includes the "no" baseline).
ALL_PAIRS = [
    (config, spec.name)
    for config in ["no"] + CONFIGS
    for spec in SMALL_SUITE
]

FAST_BACKOFF = RetryPolicy(retries=2, timeout=None, backoff_base=0.01)


@pytest.fixture(scope="module")
def clean_eval():
    return run_suite(SMALL_SUITE, CONFIGS, jobs=1, cache=None, checkpoint=None)


@pytest.fixture(autouse=True)
def _no_global_checkpoint():
    previous = set_checkpoint(None)
    yield
    set_checkpoint(previous)


def assert_identical(evaluation, reference):
    assert list(evaluation.runs) == list(reference.runs)
    for config in reference.runs:
        assert list(evaluation.runs[config]) == list(reference.runs[config])
        for workload in reference.runs[config]:
            assert (
                evaluation.runs[config][workload].stats.signature()
                == reference.runs[config][workload].stats.signature()
            ), (config, workload)


class TestFaultInjection:
    def test_crash_20_percent_first_attempt(self, monkeypatch, clean_eval):
        """The acceptance scenario: 20% of pairs crash on attempt 0."""
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:0.2")
        evaluation = run_suite(
            SMALL_SUITE, CONFIGS, jobs=2, cache=None,
            retry_policy=FAST_BACKOFF,
        )
        assert evaluation.is_complete()
        assert_identical(evaluation, clean_eval)
        injector = FaultInjector.from_env()
        victims = [
            f"{config}/{workload}"
            for config, workload in ALL_PAIRS
            if injector.selects(f"{config}/{workload}")
        ]
        assert evaluation.faults.task_errors == len(victims)
        assert evaluation.faults.retries == len(victims)

    def test_crash_every_pair_retried_to_success(self, monkeypatch, clean_eval):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:1.0")
        evaluation = run_suite(
            SMALL_SUITE, CONFIGS, jobs=2, cache=None,
            retry_policy=FAST_BACKOFF,
        )
        assert evaluation.is_complete()
        assert_identical(evaluation, clean_eval)
        assert evaluation.faults.task_errors == len(ALL_PAIRS)
        assert len(evaluation.faults.quarantined) == 0
        # retried runs record their attempt count as telemetry
        assert all(
            evaluation.runs[c][w].stats.attempts == 2 for c, w in ALL_PAIRS
        )

    def test_corrupt_results_rejected_and_retried(self, monkeypatch, clean_eval):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "corrupt:1.0")
        evaluation = run_suite(
            SMALL_SUITE, CONFIGS, jobs=2, cache=None,
            retry_policy=FAST_BACKOFF,
        )
        assert evaluation.is_complete()
        assert_identical(evaluation, clean_eval)
        assert evaluation.faults.invalid_results == len(ALL_PAIRS)

    def test_hung_worker_times_out_and_retries(self, monkeypatch, clean_eval):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "hang:1.0")
        monkeypatch.setenv("REPRO_FAULT_HANG_SECONDS", "3")
        evaluation = run_suite(
            SMALL_SUITE, CONFIGS, jobs=2, cache=None,
            retry_policy=RetryPolicy(retries=2, timeout=0.5, backoff_base=0.01),
        )
        assert evaluation.is_complete()
        assert_identical(evaluation, clean_eval)
        assert evaluation.faults.timeouts >= 1

    def test_broken_pool_degrades_to_serial(self, monkeypatch, clean_eval):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "exit:1.0")
        evaluation = run_suite(
            SMALL_SUITE, CONFIGS, jobs=2, cache=None,
            retry_policy=FAST_BACKOFF,
        )
        assert evaluation.is_complete()
        assert_identical(evaluation, clean_eval)
        assert evaluation.faults.pool_breaks >= 1
        assert evaluation.faults.serial_fallback

    def test_persistent_failures_quarantined_not_fatal(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:1.0:all")
        evaluation = run_suite(
            SMALL_SUITE, CONFIGS, jobs=2, cache=None,
            retry_policy=RetryPolicy(retries=1, backoff_base=0.01),
        )
        assert not evaluation.is_complete()
        assert sorted(evaluation.missing_pairs()) == sorted(ALL_PAIRS)
        assert len(evaluation.faults.quarantined) == len(ALL_PAIRS)
        for failure in evaluation.faults.quarantined:
            assert failure.attempts == 2
            assert "injected crash" in failure.error

    def test_injection_selection_is_deterministic(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:0.5")
        injector = FaultInjector.from_env()
        labels = [f"{c}/{w}" for c, w in ALL_PAIRS]
        assert [injector.selects(l) for l in labels] == [
            injector.selects(l) for l in labels
        ]
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:0.0")
        assert not any(
            FaultInjector.from_env().selects(l) for l in labels
        )
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:1.0")
        assert all(FaultInjector.from_env().selects(l) for l in labels)

    def test_bad_injection_spec_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "meltdown:1.0")
        with pytest.raises(ValueError, match="REPRO_FAULT_INJECT"):
            FaultInjector.from_env()
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:1.0:sometimes")
        with pytest.raises(ValueError, match="scope"):
            FaultInjector.from_env()


class TestRetryPolicy:
    def test_policy_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_RETRIES", "5")
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "12.5")
        policy = RetryPolicy.from_env()
        assert policy.retries == 5
        assert policy.timeout == 12.5

    def test_policy_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_TASK_RETRIES", raising=False)
        monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
        policy = RetryPolicy.from_env()
        assert policy.retries == 2
        assert policy.timeout is None

    def test_bad_env_values_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_RETRIES", "lots")
        with pytest.raises(ValueError, match="REPRO_TASK_RETRIES"):
            RetryPolicy.from_env()
        monkeypatch.delenv("REPRO_TASK_RETRIES")
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "soon")
        with pytest.raises(ValueError, match="REPRO_TASK_TIMEOUT"):
            RetryPolicy.from_env()

    def test_backoff_caps(self):
        policy = RetryPolicy(backoff_base=0.5, backoff_cap=2.0)
        assert policy.backoff(1) == 0.5
        assert policy.backoff(2) == 1.0
        assert policy.backoff(3) == 2.0
        assert policy.backoff(10) == 2.0


def _flaky_square(task, attempt, in_process=False):
    if task % 2 and attempt == 0:
        raise RuntimeError("first-attempt failure")
    return task * task


class TestMapResilient:
    def test_serial_retries(self):
        outcome = map_resilient(
            _flaky_square, [1, 2, 3], ["a", "b", "c"], jobs=1,
            policy=RetryPolicy(retries=1, backoff_base=0.0),
        )
        assert outcome.results == [1, 4, 9]
        assert outcome.attempts == [2, 1, 2]
        assert outcome.report.task_errors == 2

    def test_serial_quarantine(self):
        outcome = map_resilient(
            lambda t, a, in_process=False: 1 / 0, [1], ["boom"], jobs=1,
            policy=RetryPolicy(retries=1, backoff_base=0.0),
        )
        assert outcome.results == [None]
        assert len(outcome.report.quarantined) == 1
        assert "ZeroDivisionError" in outcome.report.quarantined[0].error

    def test_validator_rejections_counted(self):
        outcome = map_resilient(
            lambda t, a, in_process=False: t, [1, 2], ["x", "y"], jobs=1,
            policy=RetryPolicy(retries=0, backoff_base=0.0),
            validate=lambda r: r != 2,
        )
        assert outcome.results == [1, None]
        assert outcome.report.invalid_results == 1


class TestCheckpointResume:
    def test_interrupted_run_resumes_only_missing_pairs(self, tmp_path):
        """The acceptance scenario: interrupt, resume, re-simulate only
        the pairs the first run never finished."""
        cache_dir = str(tmp_path / "cache")
        manifest_path = str(tmp_path / "checkpoint.json")

        # "Interrupted" first run: only the baseline config completed.
        cache = RunCache(disk_dir=cache_dir)
        ckpt = CheckpointManifest(manifest_path)
        partial = run_suite(
            SMALL_SUITE, [], include_baseline=True, jobs=1,
            cache=cache, checkpoint=ckpt,
        )
        assert partial.is_complete()
        done_first = ckpt.marked
        assert done_first == len(SMALL_SUITE)  # the "no" pairs

        # Resume with the full config set: a fresh process would build a
        # fresh cache object (disk entries persist) and reload the manifest.
        cache2 = RunCache(disk_dir=cache_dir)
        ckpt2 = CheckpointManifest(manifest_path)
        assert ckpt2.resumed == done_first
        full = run_suite(
            SMALL_SUITE, CONFIGS, jobs=1, cache=cache2, checkpoint=ckpt2,
        )
        assert full.is_complete()
        # only the missing (next_line, *) pairs re-simulated ...
        assert cache2.stores == len(SMALL_SUITE) * len(CONFIGS)
        # ... and every resumed pair was served from the disk cache.
        assert ckpt2.resumed_hits == done_first
        assert ckpt2.marked == len(SMALL_SUITE) * len(CONFIGS)
        assert len(ckpt2) == len(ALL_PAIRS)

        # A third run resumes everything: zero new simulations.
        cache3 = RunCache(disk_dir=cache_dir)
        ckpt3 = CheckpointManifest(manifest_path)
        again = run_suite(
            SMALL_SUITE, CONFIGS, jobs=1, cache=cache3, checkpoint=ckpt3,
        )
        assert again.is_complete()
        assert cache3.stores == 0
        assert ckpt3.resumed_hits == len(ALL_PAIRS)
        assert ckpt3.marked == 0

    def test_checkpointed_results_identical_to_clean_run(
        self, tmp_path, clean_eval
    ):
        cache = RunCache(disk_dir=str(tmp_path))
        ckpt = CheckpointManifest(str(tmp_path / "ckpt.json"))
        evaluation = run_suite(
            SMALL_SUITE, CONFIGS, jobs=2, cache=cache, checkpoint=ckpt,
        )
        assert_identical(evaluation, clean_eval)

    def test_corrupt_manifest_loads_empty(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text('{"format": 1, "done": {"k"')  # truncated
        ckpt = CheckpointManifest(str(path))
        assert ckpt.resumed == 0
        path.write_text('{"format": 99, "done": {}}')  # wrong version
        assert CheckpointManifest(str(path)).resumed == 0
        path.write_text('[1, 2, 3]')  # wrong schema
        assert CheckpointManifest(str(path)).resumed == 0

    def test_fresh_start_ignores_existing_manifest(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        first = CheckpointManifest(path)
        first.mark_done("key1", "no", "w1")
        fresh = CheckpointManifest(path, resume=False)
        assert "key1" not in fresh
        assert fresh.resumed == 0

    def test_global_checkpoint_slot(self, tmp_path):
        assert get_checkpoint() is None
        ckpt = CheckpointManifest(str(tmp_path / "ckpt.json"))
        previous = set_checkpoint(ckpt)
        try:
            assert get_checkpoint() is ckpt
        finally:
            set_checkpoint(previous)


class TestFaultReporting:
    def test_timing_table_includes_fault_summary(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:1.0")
        evaluation = run_suite(
            SMALL_SUITE[:1], CONFIGS, jobs=2, cache=None,
            retry_policy=FAST_BACKOFF,
        )
        text = format_timing_table(
            evaluation.timing_entries(), faults=evaluation.faults
        )
        assert "tries" in text
        assert "faults:" in text
        assert "2 retries" in text

    def test_clean_run_renders_no_fault_footer(self, clean_eval):
        text = format_timing_table(clean_eval.timing_entries())
        assert "faults:" not in text
