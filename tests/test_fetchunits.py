"""Tests for trace preprocessing into fetch units."""

from repro.sim.fetchunits import build_fetch_units, units_instruction_count
from repro.workloads.trace import BranchType, Instruction, Trace, trace_from_pcs


class TestUnitSplitting:
    def test_one_line_sequential(self):
        trace = trace_from_pcs("t", [0x1000 + 4 * i for i in range(16)])
        units = build_fetch_units(trace)
        assert len(units) == 1
        assert units[0].n_instrs == 16
        assert units[0].branch is None
        assert units[0].line_addr == 0x1000 // 64

    def test_line_boundary_splits(self):
        trace = trace_from_pcs("t", [0x1000 + 4 * i for i in range(32)])
        units = build_fetch_units(trace)
        assert len(units) == 2
        assert [u.line_addr for u in units] == [0x40, 0x41]

    def test_branch_splits_unit(self):
        insts = [
            Instruction(pc=0x1000),
            Instruction(
                pc=0x1004,
                branch_type=BranchType.CONDITIONAL,
                taken=False,
                target=0x2000,
            ),
            Instruction(pc=0x1008),
        ]
        units = build_fetch_units(Trace("t", insts))
        assert len(units) == 2
        assert units[0].n_instrs == 2
        assert units[0].branch is not None
        assert units[0].branch[1] == BranchType.CONDITIONAL
        assert units[1].branch is None

    def test_taken_branch_to_same_line_creates_new_unit(self):
        insts = [
            Instruction(
                pc=0x1000,
                branch_type=BranchType.DIRECT_JUMP,
                taken=True,
                target=0x1010,
            ),
            Instruction(pc=0x1010),
        ]
        units = build_fetch_units(Trace("t", insts))
        assert len(units) == 2
        assert units[0].line_addr == units[1].line_addr

    def test_instruction_count_preserved(self, small_srv_trace):
        units = build_fetch_units(small_srv_trace)
        assert units_instruction_count(units) == len(small_srv_trace)

    def test_every_unit_has_at_least_one_instruction(self, small_srv_trace):
        units = build_fetch_units(small_srv_trace)
        assert all(u.n_instrs >= 1 for u in units)

    def test_branch_is_last_instruction_of_unit(self, small_srv_trace):
        """Units never contain instructions after their branch."""
        units = build_fetch_units(small_srv_trace)
        idx = 0
        insts = small_srv_trace.instructions
        for unit in units:
            last = insts[idx + unit.n_instrs - 1]
            if unit.branch is not None:
                assert last.pc == unit.branch[0]
            idx += unit.n_instrs

    def test_empty_trace(self):
        assert build_fetch_units(Trace("t", [])) == []


class TestDataLines:
    def test_loads_recorded(self):
        insts = [
            Instruction(pc=0x1000, is_load=True, data_addr=0x8000),
            Instruction(pc=0x1004, is_store=True, data_addr=0x9000),
        ]
        units = build_fetch_units(Trace("t", insts))
        assert units[0].data_lines == ((0x8000 // 64, False), (0x9000 // 64, True))

    def test_non_memory_instructions_record_nothing(self):
        insts = [Instruction(pc=0x1000), Instruction(pc=0x1004)]
        units = build_fetch_units(Trace("t", insts))
        assert units[0].data_lines == ()
