"""Tests for storage accounting and the look-ahead oracle."""

import pytest

from repro.analysis.oracle import LookaheadOracle, OracleObserver
from repro.analysis.storage import (
    paper_reference_storage_kb,
    prefetcher_storage_kb,
    storage_table,
)


class TestStorageAccounting:
    @pytest.mark.parametrize(
        "name,tolerance",
        [
            ("next_line", 0.01),
            ("sn4l", 0.1),
            ("mana_2k", 0.01),
            ("mana_4k", 0.01),
            ("mana_8k", 0.01),
            ("rdip", 0.01),
            ("djolt", 0.01),
            ("fnl_mma", 0.01),
            ("entangling_2k", 0.1),
            ("entangling_4k", 0.1),
            ("entangling_2k_phys", 0.15),
            ("entangling_4k_phys", 0.15),
        ],
    )
    def test_matches_paper_reference(self, name, tolerance):
        reference = paper_reference_storage_kb()[name]
        assert prefetcher_storage_kb(name) == pytest.approx(reference, abs=tolerance)

    def test_large_l1i_budgets(self):
        assert prefetcher_storage_kb("l1i_64kb") == 32.0
        assert prefetcher_storage_kb("l1i_96kb") == 64.0

    def test_storage_table_sorted(self):
        rows = storage_table(["entangling_4k", "next_line", "rdip"])
        budgets = [kb for _name, kb in rows]
        assert budgets == sorted(budgets)

    def test_entangling_8k_within_tolerance(self):
        """Our first-principles arithmetic lands within ~4% of the paper's
        77.44KB for the 8K configuration (documented deviation)."""
        assert prefetcher_storage_kb("entangling_8k") == pytest.approx(77.44, rel=0.05)


def observer_with(misses, disc_times, disc_targets=None):
    obs = OracleObserver()
    obs.misses = misses
    obs.discontinuity_times = disc_times
    obs.discontinuity_targets = disc_targets or [0x40] * len(disc_times)
    return obs


class TestOracleMinDistance:
    def test_recent_disc_is_too_late(self):
        # Miss at t=100 with latency 50: a disc at t=80 is too recent; the
        # one at t=40 works at distance 2.
        obs = observer_with([(100, 50, 7)], [40, 80])
        oracle = LookaheadOracle(obs, cycles=200)
        assert oracle.min_distance(100, 50) == 2

    def test_immediate_disc_works_for_short_latency(self):
        obs = observer_with([(100, 10, 7)], [40, 80])
        oracle = LookaheadOracle(obs, cycles=200)
        assert oracle.min_distance(100, 10) == 1

    def test_all_discs_too_recent(self):
        # No recorded discontinuity is old enough: infeasible within the
        # studied range, reported uniformly as max_distance + 1.
        obs = observer_with([(100, 99, 7)], [95, 98])
        oracle = LookaheadOracle(obs, cycles=200, max_distance=10)
        assert oracle.min_distance(100, 99) == 11


class TestOracleReplay:
    def test_timely_fraction_monotone_in_distance(self):
        misses = [(100 * i, 30, i) for i in range(2, 30)]
        discs = list(range(0, 3000, 10))
        obs = observer_with(misses, discs, [d % 64 for d in discs])
        oracle = LookaheadOracle(obs, cycles=3000)
        result = oracle.replay("w")
        fractions = [result.timely_fraction[d] for d in range(1, 11)]
        assert all(b >= a for a, b in zip(fractions, fractions[1:]))

    def test_histogram_counts_all_misses(self):
        misses = [(100 * i, 30, i) for i in range(2, 12)]
        discs = list(range(0, 1200, 10))
        obs = observer_with(misses, discs, [d % 64 for d in discs])
        oracle = LookaheadOracle(obs, cycles=1200)
        result = oracle.replay("w")
        assert sum(result.min_distance_histogram.values()) == len(misses)
        assert result.total_misses == len(misses)

    def test_divergent_paths_reduce_accuracy(self):
        # One discontinuity target followed by two different miss lines in
        # alternation: at any distance, predictions are 50% right.
        misses = []
        discs = []
        targets = []
        for i in range(40):
            discs.append(100 * i)
            targets.append(0x40)                # same context every time
            misses.append((100 * i + 50, 30, 7 if i % 2 else 9))
        obs = observer_with(misses, discs, targets)
        oracle = LookaheadOracle(obs, cycles=5000)
        result = oracle.replay("w")
        assert result.accuracy[1] < 0.7

    def test_deterministic_path_keeps_accuracy(self):
        misses = []
        discs = []
        targets = []
        for i in range(40):
            discs.append(100 * i)
            targets.append(0x40 + (i % 4))      # 4 contexts ...
            misses.append((100 * i + 50, 30, 100 + (i % 4)))  # ... 1 miss each
        obs = observer_with(misses, discs, targets)
        oracle = LookaheadOracle(obs, cycles=5000)
        result = oracle.replay("w")
        assert result.accuracy[1] > 0.9

    def test_empty_observer(self):
        oracle = LookaheadOracle(observer_with([], []), cycles=100)
        result = oracle.replay("w")
        assert result.total_misses == 0
        assert result.timely_fraction[1] == 0.0


class TestOracleProperties:
    def test_min_distance_monotone_in_latency(self):
        """Longer miss latencies require equal-or-older trigger points."""
        from hypothesis import given, strategies as st

        @given(
            demand=st.integers(min_value=100, max_value=10_000),
            lat_a=st.integers(min_value=1, max_value=500),
            lat_b=st.integers(min_value=1, max_value=500),
        )
        def check(demand, lat_a, lat_b):
            discs = list(range(0, 10_000, 37))
            obs = observer_with([(demand, max(lat_a, lat_b), 7)], discs,
                                [d % 64 for d in discs])
            oracle = LookaheadOracle(obs, cycles=10_000)
            short, long_ = sorted((lat_a, lat_b))
            assert oracle.min_distance(demand, long_) >= (
                oracle.min_distance(demand, short)
            )

        check()

    def test_timely_plus_untimely_is_total(self):
        misses = [(200 * i + 50, 40, i % 13) for i in range(1, 25)]
        discs = list(range(0, 6000, 25))
        obs = observer_with(misses, discs, [d % 64 for d in discs])
        result = LookaheadOracle(obs, cycles=6000).replay("w")
        # The min-distance histogram partitions the misses exactly.
        assert sum(result.min_distance_histogram.values()) == len(misses)
