"""Tests for analysis metrics."""

import pytest

from repro.analysis.metrics import (
    accuracy,
    category_means,
    coverage,
    geometric_mean,
    normalized_ipc,
    percentile_curve,
    speedup_percent,
)
from repro.sim.stats import SimStats


def stats(instructions=1000, cycles=1000, misses=0, accesses=0,
          useful=0, sent=0):
    s = SimStats()
    s.instructions = instructions
    s.cycles = cycles
    s.l1i_demand_misses = misses
    s.l1i_demand_accesses = accesses
    s.useful_prefetches = useful
    s.prefetches_sent = sent
    return s


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_single(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_less_than_arithmetic(self):
        values = [1.0, 2.0, 9.0]
        assert geometric_mean(values) < sum(values) / 3


class TestIpcMetrics:
    def test_normalized_ipc(self):
        fast = stats(cycles=500)
        slow = stats(cycles=1000)
        assert normalized_ipc(fast, slow) == pytest.approx(2.0)

    def test_speedup_percent(self):
        fast = stats(cycles=800)
        slow = stats(cycles=1000)
        assert speedup_percent(fast, slow) == pytest.approx(25.0)

    def test_zero_baseline(self):
        assert normalized_ipc(stats(), SimStats()) == 0.0


class TestCoverageAccuracy:
    def test_coverage(self):
        base = stats(misses=100)
        run = stats(misses=40)
        assert coverage(run, base) == pytest.approx(0.6)

    def test_coverage_clamped_at_zero(self):
        base = stats(misses=100)
        worse = stats(misses=150)
        assert coverage(worse, base) == 0.0

    def test_coverage_of_empty_baseline(self):
        assert coverage(stats(), stats(misses=0)) == 0.0

    def test_accuracy(self):
        run = stats(useful=30, sent=60)
        assert accuracy(run) == pytest.approx(0.5)

    def test_accuracy_no_prefetches(self):
        assert accuracy(stats()) == 0.0


class TestCurvesAndGroups:
    def test_percentile_curve_sorts(self):
        assert percentile_curve([3.0, 1.0, 2.0]) == [1.0, 2.0, 3.0]

    def test_category_means(self):
        values = {"a1": 1.0, "a2": 3.0, "b1": 10.0}
        categories = {"a1": "a", "a2": "a", "b1": "b"}
        means = category_means(values, categories)
        assert means == {"a": 2.0, "b": 10.0}


class TestGeomeanNormalizedIpc:
    def test_matches_manual_computation(self):
        from repro.analysis.metrics import geomean_normalized_ipc

        fast = stats(cycles=500)
        slow = stats(cycles=1000)
        per_workload = {"a": fast, "b": slow}
        baselines = {"a": slow, "b": slow}
        # ratios: a = 2.0, b = 1.0 -> geomean sqrt(2)
        value = geomean_normalized_ipc(per_workload, baselines)
        assert value == pytest.approx(2.0 ** 0.5)

    def test_single_workload(self):
        from repro.analysis.metrics import geomean_normalized_ipc

        fast = stats(cycles=800)
        slow = stats(cycles=1000)
        assert geomean_normalized_ipc({"w": fast}, {"w": slow}) == pytest.approx(1.25)


class TestRobustGeometricMean:
    """Regression: a zero-IPC run from a partial (faulted) evaluation used
    to crash every downstream geomean with a ValueError."""

    def test_skips_and_flags_nonpositive(self):
        from repro.analysis.metrics import robust_geometric_mean

        with pytest.warns(RuntimeWarning, match="skipped 1 non-positive"):
            value = robust_geometric_mean([1.0, 0.0, 4.0], context="unit")
        assert value == pytest.approx(2.0)

    def test_all_nonpositive_returns_zero(self):
        from repro.analysis.metrics import robust_geometric_mean

        with pytest.warns(RuntimeWarning):
            assert robust_geometric_mean([0.0, -1.0]) == 0.0

    def test_empty_is_silent_zero(self):
        from repro.analysis.metrics import robust_geometric_mean

        assert robust_geometric_mean([]) == 0.0

    def test_clean_inputs_match_strict_geomean(self):
        from repro.analysis.metrics import robust_geometric_mean

        values = [0.5, 2.0, 8.0]
        assert robust_geometric_mean(values) == pytest.approx(
            geometric_mean(values)
        )

    def test_strict_geomean_still_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_geomean_normalized_ipc_with_missing_baseline(self):
        from repro.analysis.metrics import geomean_normalized_ipc

        fast = stats(cycles=500)
        slow = stats(cycles=1000)
        with pytest.warns(RuntimeWarning, match="no baseline"):
            value = geomean_normalized_ipc(
                {"a": fast, "b": fast}, {"a": slow}
            )
        assert value == pytest.approx(2.0)

    def test_geomean_normalized_ipc_with_zero_ipc_run(self):
        from repro.analysis.metrics import geomean_normalized_ipc

        fast = stats(cycles=500)
        slow = stats(cycles=1000)
        dead = stats(cycles=0)  # faulted run: no cycles, IPC 0
        with pytest.warns(RuntimeWarning):
            value = geomean_normalized_ipc(
                {"a": fast, "b": dead}, {"a": slow, "b": slow}
            )
        assert value == pytest.approx(2.0)
