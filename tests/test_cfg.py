"""Tests for the CFG program model: validation, layout, builder."""

import pytest

from repro.workloads.cfg import (
    INSTRUCTION_SIZE,
    BasicBlock,
    Function,
    Program,
    ProgramBuilder,
    Terminator,
    TermKind,
)


def _ret():
    return Terminator(TermKind.RETURN)


class TestTerminator:
    def test_cond_requires_target(self):
        with pytest.raises(ValueError, match="target"):
            Terminator(TermKind.COND)

    def test_jump_requires_target(self):
        with pytest.raises(ValueError):
            Terminator(TermKind.JUMP)

    def test_call_requires_target(self):
        with pytest.raises(ValueError):
            Terminator(TermKind.CALL)

    def test_indirect_requires_candidates(self):
        with pytest.raises(ValueError, match="candidates"):
            Terminator(TermKind.INDIRECT_CALL)

    def test_taken_prob_range(self):
        with pytest.raises(ValueError, match="taken_prob"):
            Terminator(TermKind.COND, target="b0", taken_prob=1.5)

    def test_valid_cond(self):
        term = Terminator(TermKind.COND, target="b1", taken_prob=0.25)
        assert term.taken_prob == 0.25


class TestBasicBlock:
    def test_needs_one_instruction(self):
        with pytest.raises(ValueError):
            BasicBlock("b0", 0, _ret())

    def test_memory_fractions_bounded(self):
        with pytest.raises(ValueError):
            BasicBlock("b0", 4, _ret(), load_frac=0.7, store_frac=0.5)


class TestFunction:
    def test_needs_blocks(self):
        with pytest.raises(ValueError, match="no blocks"):
            Function("f", [])

    def test_duplicate_labels_rejected(self):
        blocks = [BasicBlock("b0", 1, _ret()), BasicBlock("b0", 1, _ret())]
        with pytest.raises(ValueError, match="duplicate"):
            Function("f", blocks)

    def test_entry_is_first_block(self):
        f = Function("f", [BasicBlock("a", 1, _ret()), BasicBlock("b", 1, _ret())])
        assert f.entry.label == "a"

    def test_block_index(self):
        f = Function("f", [BasicBlock("a", 1, _ret()), BasicBlock("b", 1, _ret())])
        assert f.block_index("b") == 1
        with pytest.raises(KeyError):
            f.block_index("zzz")

    def test_n_instructions(self):
        f = Function("f", [BasicBlock("a", 3, _ret()), BasicBlock("b", 5, _ret())])
        assert f.n_instructions == 8


class TestProgram:
    def _program(self):
        return (
            ProgramBuilder(entry="main", base_address=0x1000)
            .function("main")
            .block("b0", 4, Terminator(TermKind.CALL, target="leaf"))
            .block("b1", 2, _ret())
            .function("leaf")
            .block("b0", 8, _ret())
            .build()
        )

    def test_entry_must_exist(self):
        f = Function("f", [BasicBlock("b0", 1, _ret())])
        with pytest.raises(ValueError, match="entry"):
            Program([f], entry="missing")

    def test_duplicate_function_names(self):
        f1 = Function("f", [BasicBlock("b0", 1, _ret())])
        f2 = Function("f", [BasicBlock("b0", 1, _ret())])
        with pytest.raises(ValueError, match="duplicate"):
            Program([f1, f2], entry="f")

    def test_unknown_branch_target_rejected(self):
        blocks = [
            BasicBlock("b0", 2, Terminator(TermKind.JUMP, target="nope")),
            BasicBlock("b1", 1, _ret()),
        ]
        with pytest.raises(ValueError, match="not in function"):
            Program([Function("f", blocks)], entry="f")

    def test_unknown_callee_rejected(self):
        blocks = [
            BasicBlock("b0", 2, Terminator(TermKind.CALL, target="ghost")),
            BasicBlock("b1", 1, _ret()),
        ]
        with pytest.raises(ValueError, match="not defined"):
            Program([Function("f", blocks)], entry="f")

    def test_unknown_indirect_callee_rejected(self):
        blocks = [
            BasicBlock(
                "b0", 2, Terminator(TermKind.INDIRECT_CALL, candidates=[("ghost", 1.0)])
            ),
            BasicBlock("b1", 1, _ret()),
        ]
        with pytest.raises(ValueError, match="not defined"):
            Program([Function("f", blocks)], entry="f")

    def test_layout_is_sequential_within_function(self):
        program = self._program()
        b0 = program.block_address("main", "b0")
        b1 = program.block_address("main", "b1")
        assert b1 == b0 + 4 * INSTRUCTION_SIZE

    def test_functions_are_aligned(self):
        program = self._program()
        assert program.function_address("leaf") % 64 == 0

    def test_function_address_is_entry_block(self):
        program = self._program()
        assert program.function_address("main") == program.block_address("main", "b0")

    def test_base_address_respected(self):
        program = self._program()
        assert program.function_address("main") == 0x1000

    def test_code_bytes_positive(self):
        program = self._program()
        assert program.code_bytes >= (4 + 2 + 8) * INSTRUCTION_SIZE

    def test_functions_do_not_overlap(self):
        program = self._program()
        main_end = program.block_address("main", "b1") + 2 * INSTRUCTION_SIZE
        assert program.function_address("leaf") >= main_end


class TestProgramBuilder:
    def test_block_before_function_raises(self):
        builder = ProgramBuilder()
        with pytest.raises(ValueError, match="function"):
            builder.block("b0", 1, _ret())

    def test_build_produces_program(self):
        program = (
            ProgramBuilder(entry="m")
            .function("m")
            .block("b0", 1, _ret())
            .build()
        )
        assert program.entry == "m"
        assert "m" in program.functions
