"""Tests for the CLI and the external-trace converter."""

import io

import pytest

from repro.cli import main
from repro.workloads.convert import (
    TraceParseError,
    parse_text_trace,
    read_text_trace,
    write_text_trace,
)
from repro.workloads.trace import BranchType, Instruction, Trace, read_trace


class TestMinimalTextForm:
    def test_sequential_pcs(self):
        trace = parse_text_trace(["0x1000", "0x1004", "0x1008"])
        assert len(trace) == 3
        assert all(not i.is_branch for i in trace)

    def test_discontinuity_inferred(self):
        trace = parse_text_trace(["0x1000", "0x2000"])
        assert trace[0].branch_type == BranchType.DIRECT_JUMP
        assert trace[0].target == 0x2000

    def test_decimal_pcs(self):
        trace = parse_text_trace(["4096", "4100"])
        assert trace[0].pc == 4096

    def test_comments_and_blanks_ignored(self):
        trace = parse_text_trace(["# header", "", "0x1000", "  ", "0x1004"])
        assert len(trace) == 2

    def test_bad_number(self):
        with pytest.raises(TraceParseError, match="line 1"):
            parse_text_trace(["zzz"])


class TestExtendedTextForm:
    def test_full_record(self):
        trace = parse_text_trace(
            ["0x1000,call,1,0x5000,load,0x9000"]
        )
        inst = trace[0]
        assert inst.branch_type == BranchType.DIRECT_CALL
        assert inst.taken and inst.target == 0x5000
        assert inst.is_load and inst.data_addr == 0x9000

    def test_four_field_record(self):
        trace = parse_text_trace(["0x1000,cond,0,0x5000"])
        assert trace[0].branch_type == BranchType.CONDITIONAL
        assert not trace[0].taken

    def test_mixed_forms(self):
        trace = parse_text_trace(["0x1000", "0x1004,ret,1,0x9000"])
        assert len(trace) == 2
        assert trace[1].branch_type == BranchType.RETURN

    def test_unknown_branch_type(self):
        with pytest.raises(TraceParseError, match="unknown branch"):
            parse_text_trace(["0x1000,hop,1,0x2000"])

    def test_bad_taken_flag(self):
        with pytest.raises(TraceParseError, match="taken"):
            parse_text_trace(["0x1000,cond,yes,0x2000"])

    def test_non_branch_marked_taken(self):
        with pytest.raises(TraceParseError, match="non-branch"):
            parse_text_trace(["0x1000,-,1,0x2000"])

    def test_wrong_field_count(self):
        with pytest.raises(TraceParseError, match="fields"):
            parse_text_trace(["0x1000,cond,0"])


class TestRoundtrip:
    def test_write_read_text(self):
        original = Trace(
            "t",
            [
                Instruction(pc=0x1000, is_load=True, data_addr=0x42),
                Instruction(
                    pc=0x1004,
                    branch_type=BranchType.INDIRECT_CALL,
                    taken=True,
                    target=0x2000,
                ),
            ],
            category="srv",
        )
        buffer = io.StringIO()
        write_text_trace(original, buffer)
        buffer.seek(0)
        loaded = read_text_trace(buffer, name="t")
        assert loaded.instructions == original.instructions

    def test_file_paths(self, tmp_path):
        original = Trace("t", [Instruction(pc=0x1000)])
        path = str(tmp_path / "trace.txt")
        write_text_trace(original, path)
        loaded = read_text_trace(path)
        assert loaded.instructions == original.instructions


def _rich_trace():
    return Trace(
        "rt",
        [
            Instruction(pc=0x1000, is_load=True, data_addr=0x42),
            Instruction(
                pc=0x1004,
                branch_type=BranchType.CONDITIONAL,
                taken=True,
                target=0x2000,
            ),
            Instruction(pc=0x2000, is_store=True, data_addr=0x9008),
            Instruction(
                pc=0x2004, branch_type=BranchType.RETURN, taken=True,
                target=0x1008,
            ),
        ],
        category="srv",
    )


class TestConvertBugfixRegressions:
    """The three ISSUE 8 convert.py satellite bugs, pinned."""

    def test_pathlib_path_accepted(self, tmp_path):
        # Regression: pathlib.Path fell into the open-file branch and
        # crashed with AttributeError on .write/iteration.
        original = _rich_trace()
        path = tmp_path / "trace.txt"  # a pathlib.Path, not str
        write_text_trace(original, path)
        loaded = read_text_trace(path)
        assert loaded.instructions == original.instructions

    def test_gz_paths_roundtrip(self, tmp_path):
        original = _rich_trace()
        path = tmp_path / "trace.txt.gz"
        write_text_trace(original, path)
        import gzip

        assert open(path, "rb").read()[:2] == b"\x1f\x8b"
        with gzip.open(path, "rt") as fh:
            assert fh.readline().startswith("#")
        loaded = read_text_trace(path)
        assert loaded.instructions == original.instructions

    def test_roundtrip_bit_identical(self, tmp_path):
        # Equal traces must produce byte-identical files (gzip included:
        # mtime is pinned to 0), so text exports diff cleanly.
        original = _rich_trace()
        for suffix in ("a.txt", "a.txt.gz"):
            p1, p2 = tmp_path / ("1" + suffix), tmp_path / ("2" + suffix)
            write_text_trace(original, p1)
            write_text_trace(original, p2)
            assert open(p1, "rb").read() == open(p2, "rb").read()

    def test_write_is_atomic(self, tmp_path, monkeypatch):
        # Regression: a bare open(path, "w") could leave a torn file; the
        # crash-safe artifact layer writes tmp + fsync + rename, so a
        # failure mid-write must leave the original intact.
        path = tmp_path / "trace.txt"
        write_text_trace(_rich_trace(), path)
        before = open(path, "rb").read()

        import repro.check.artifacts as artifacts

        real_fsync = artifacts.os.fsync

        def exploding_fsync(fd):
            real_fsync(fd)
            raise OSError("disk gone")

        monkeypatch.setattr(artifacts.os, "fsync", exploding_fsync)
        with pytest.raises(OSError):
            write_text_trace(Trace("other", [Instruction(pc=0x1)]), path)
        assert open(path, "rb").read() == before
        leftovers = [p for p in path.parent.iterdir() if p.name != path.name]
        assert not leftovers  # no orphaned temp files

    def test_parse_error_is_trace_error(self, tmp_path):
        # Regression: TraceParseError was a standalone ValueError outside
        # the TraceError taxonomy, bypassing structured CLI handling and
        # suite quarantine.
        from repro.check.errors import TraceError

        assert issubclass(TraceParseError, TraceError)
        assert issubclass(TraceParseError, ValueError)
        path = tmp_path / "bad.txt"
        path.write_text("0x1000\ngarbage line\n")
        with pytest.raises(TraceParseError) as exc:
            read_text_trace(path)
        err = exc.value
        assert err.line_no == 2
        assert err.path == str(path)
        assert err.record_index == 1
        assert str(path) in str(err)


class TestCli:
    def test_gen_and_run(self, tmp_path, capsys):
        out = str(tmp_path / "w.trc")
        assert main(["gen", out, "--category", "int", "--seed", "3",
                     "--instructions", "20000"]) == 0
        generated = read_trace(out)
        assert len(generated) == 20000
        assert main(["run", out, "--prefetcher", "entangling_2k"]) == 0
        captured = capsys.readouterr().out
        assert "IPC:" in captured
        assert "Entangling-2K" in captured or "entangling" in captured.lower()

    def test_sweep(self, tmp_path, capsys):
        out = str(tmp_path / "w.trc")
        main(["gen", out, "--category", "crypto", "--seed", "1",
              "--instructions", "20000"])
        assert main(["sweep", out, "--prefetchers", "no,next_line"]) == 0
        captured = capsys.readouterr().out
        assert "next_line" in captured
        assert "coverage" in captured

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_run_unknown_prefetcher(self, tmp_path):
        out = str(tmp_path / "w.trc")
        main(["gen", out, "--category", "fp", "--seed", "1",
              "--instructions", "5000"])
        with pytest.raises(KeyError):
            main(["run", out, "--prefetcher", "hal9000"])


class TestCommitStaging:
    def test_staged_pairs_install_after_delay(self):
        from repro.core.entangling import EntanglingConfig, EntanglingPrefetcher

        pf = EntanglingPrefetcher(EntanglingConfig(commit_delay_accesses=2))
        pf.on_demand_access(10, True, 0)
        pf.on_demand_access(30, False, 100)
        from tests.test_entangling import fill

        pf.on_fill(fill(30, 150, 100))
        # Pair is staged, not yet in the table.
        assert pf.table.peek(10) is None or pf.table.peek(10).find_dst(30) is None
        pf.on_demand_access(40, True, 200)
        pf.on_demand_access(50, True, 210)
        pf.on_demand_access(60, True, 220)
        assert pf.table.peek(10).find_dst(30) is not None

    def test_zero_delay_installs_immediately(self):
        from repro.core.entangling import EntanglingConfig, EntanglingPrefetcher
        from tests.test_entangling import fill

        pf = EntanglingPrefetcher(EntanglingConfig(commit_delay_accesses=0))
        pf.on_demand_access(10, True, 0)
        pf.on_demand_access(30, False, 100)
        pf.on_fill(fill(30, 150, 100))
        assert pf.table.peek(10).find_dst(30) is not None
