"""Tests for the parameter-sweep helpers."""

import pytest

from repro.analysis.sweeps import (
    render_sweep,
    sweep_entangling_parameter,
    sweep_sim_parameter,
)
from repro.workloads.generators import WorkloadSpec

TINY = [WorkloadSpec(name="sw_srv", category="srv", seed=13, n_instructions=30_000)]


class TestSimSweep:
    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="no field"):
            sweep_sim_parameter(TINY, "flux_capacitor", [1])

    def test_points_carry_values(self):
        points = sweep_sim_parameter(TINY, "prefetch_queue_size", [16, 64])
        assert [p.value for p in points] == [16, 64]
        assert all(p.geomean_speedup > 0 for p in points)

    def test_bigger_pq_drops_fewer(self):
        """The paper's Section IV-D observation, quantified."""
        points = sweep_sim_parameter(TINY, "prefetch_queue_size", [8, 128])
        assert points[0].mean_pq_drops >= points[1].mean_pq_drops

    def test_custom_prefetcher_factory(self):
        from repro.prefetchers import NextLinePrefetcher

        points = sweep_sim_parameter(
            TINY, "l1i_mshrs", [8], make_prefetcher=NextLinePrefetcher
        )
        assert len(points) == 1


class TestEntanglingSweep:
    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="no field"):
            sweep_entangling_parameter(TINY, "bogus", [1])

    def test_table_size_sweep(self):
        points = sweep_entangling_parameter(TINY, "entries", [1024, 4096])
        assert [p.value for p in points] == [1024, 4096]
        assert all(0 <= p.mean_coverage <= 1 for p in points)

    def test_render(self):
        points = sweep_entangling_parameter(TINY, "history_size", [16])
        text = render_sweep("history sweep", points)
        assert "history sweep" in text
        assert "speedup=" in text
