"""Tests for the parameter-sweep helpers."""

import pytest

from repro.analysis.sweeps import (
    render_sweep,
    sweep_entangling_parameter,
    sweep_sim_parameter,
)
from repro.workloads.generators import WorkloadSpec

TINY = [WorkloadSpec(name="sw_srv", category="srv", seed=13, n_instructions=30_000)]


class TestSimSweep:
    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="no field"):
            sweep_sim_parameter(TINY, "flux_capacitor", [1])

    def test_points_carry_values(self):
        points = sweep_sim_parameter(TINY, "prefetch_queue_size", [16, 64])
        assert [p.value for p in points] == [16, 64]
        assert all(p.geomean_speedup > 0 for p in points)

    def test_bigger_pq_drops_fewer(self):
        """The paper's Section IV-D observation, quantified."""
        points = sweep_sim_parameter(TINY, "prefetch_queue_size", [8, 128])
        assert points[0].mean_pq_drops >= points[1].mean_pq_drops

    def test_custom_prefetcher_factory(self):
        from repro.prefetchers import NextLinePrefetcher

        points = sweep_sim_parameter(
            TINY, "l1i_mshrs", [8], make_prefetcher=NextLinePrefetcher
        )
        assert len(points) == 1


class TestEntanglingSweep:
    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="no field"):
            sweep_entangling_parameter(TINY, "bogus", [1])

    def test_table_size_sweep(self):
        points = sweep_entangling_parameter(TINY, "entries", [1024, 4096])
        assert [p.value for p in points] == [1024, 4096]
        assert all(0 <= p.mean_coverage <= 1 for p in points)

    def test_render(self):
        points = sweep_entangling_parameter(TINY, "history_size", [16])
        text = render_sweep("history sweep", points)
        assert "history sweep" in text
        assert "speedup=" in text


class TestEvaluateRobustness:
    def test_zero_ipc_baseline_skipped_and_flagged(self, monkeypatch):
        """A degenerate baseline must not poison the geomean (or crash)."""
        import repro.analysis.sweeps as sweeps_mod

        class _DeadStats:
            ipc = 0.0

        class _DeadResult:
            stats = _DeadStats()

        monkeypatch.setattr(
            sweeps_mod, "run_cached", lambda *a, **kw: _DeadResult()
        )
        points = sweep_sim_parameter(TINY, "prefetch_queue_size", [16])
        assert points[0].failures == len(TINY)
        assert points[0].geomean_speedup == 0.0

    def test_raising_workload_skipped_and_flagged(self, monkeypatch):
        import repro.analysis.sweeps as sweeps_mod

        def boom(*args, **kwargs):
            raise RuntimeError("injected baseline fault")

        monkeypatch.setattr(sweeps_mod, "run_cached", boom)
        points = sweep_sim_parameter(TINY, "prefetch_queue_size", [16])
        assert points[0].failures == len(TINY)
        assert points[0].geomean_speedup == 0.0

    def test_warmup_resolved_through_shared_helper(self, monkeypatch):
        """Both sweep legs must share resolve_warmup's window, not a
        hardcoded fraction that could drift from the cached baselines."""
        import repro.analysis.sweeps as sweeps_mod
        from repro.analysis.experiments import resolve_warmup

        calls = []

        def spy(spec, warmup_instructions):
            calls.append((spec.name, warmup_instructions))
            return resolve_warmup(spec, warmup_instructions)

        monkeypatch.setattr(sweeps_mod, "resolve_warmup", spy)
        sweep_sim_parameter(TINY, "prefetch_queue_size", [16, 32])
        # One resolution per (point, workload), always deferring to the
        # suite-wide default (None).
        assert calls == [(spec.name, None) for _ in range(2) for spec in TINY]
