"""Golden-output tests for the timing table renderer.

``format_timing_table`` composes a table, a phase breakdown, a fault
summary, per-quarantine lines, and a stale-heartbeat footer; these tests
pin the exact rendered text (modulo trailing ljust padding) so the
footers keep composing deterministically — same inputs, same output,
stable alignment, sorted ordering everywhere.
"""

from repro.analysis.parallel import FaultReport, TaskFailure
from repro.analysis.reporting import format_table, format_timing_table
from repro.sim.stats import SimStats


def _stats(instructions, cycles, wall_seconds, attempts=1, phases=None):
    stats = SimStats()
    stats.instructions = instructions
    stats.cycles = cycles
    stats.wall_seconds = wall_seconds
    stats.attempts = attempts
    stats.phase_seconds = dict(phases or {})
    return stats


def _rstripped(text):
    """Per-line rstrip: ljust pads the last column with trailing blanks."""
    return "\n".join(line.rstrip() for line in text.splitlines())


ENTRIES = [
    ("no", "w_a", _stats(100_000, 200_000, 2.0, attempts=1,
                         phases={"simulate": 1.5, "workload": 0.5})),
    ("ent", "w_b", _stats(50_000, 50_000, 0.5, attempts=3,
                          phases={"simulate": 0.25, "fetch_units": 0.25})),
]


class TestFormatTimingTableGolden:
    def test_table_with_phase_breakdown(self):
        golden = """\
Simulation timing
config   workload  wall s  kcycles/s  kinstr/s  tries
-------  --------  ------  ---------  --------  -----
no       w_a       2.00    100.00     50.00     1
ent      w_b       0.50    100.00     100.00    3
(total)            2.50    100.00     60.00     4
phase breakdown: simulate=1.75s (70%)  workload=0.50s (20%)  fetch_units=0.25s (10%)"""
        assert _rstripped(format_timing_table(ENTRIES)) == golden

    def test_full_footer_composition(self):
        """Phase breakdown + fault summary + quarantines + stale heartbeats
        stack in a fixed order with sorted, deduplicated content."""
        faults = FaultReport(
            attempts=5, retries=2, timeouts=1, task_errors=2,
            quarantined=[
                # Deliberately unsorted input; output must sort by label.
                TaskFailure("no/w_z", 3, "RuntimeError: boom"),
                TaskFailure("ent/w_a", 3, "timed out after 5s"),
            ],
            heartbeat_stale=2,
            stale_tasks=["no/w_a", "ent/w_b", "no/w_a"],  # dup collapses
        )
        golden = """\
Simulation timing
config   workload  wall s  kcycles/s  kinstr/s  tries
-------  --------  ------  ---------  --------  -----
no       w_a       2.00    100.00     50.00     1
ent      w_b       0.50    100.00     100.00    3
(total)            2.50    100.00     60.00     4
phase breakdown: simulate=1.75s (70%)  workload=0.50s (20%)  fetch_units=0.25s (10%)
faults: 5 attempts, 2 retries, 1 timeouts, 2 errors, 2 stale heartbeats, 2 quarantined
  quarantined ent/w_a (3 attempts): timed out after 5s
  quarantined no/w_z (3 attempts): RuntimeError: boom
  stale heartbeats: ent/w_b, no/w_a"""
        rendered = format_timing_table(ENTRIES, faults=faults)
        assert _rstripped(rendered) == golden

    def test_clean_fault_report_renders_no_footer(self):
        plain = format_timing_table(ENTRIES)
        with_clean = format_timing_table(ENTRIES, faults=FaultReport(attempts=2))
        assert with_clean == plain

    def test_stale_only_report_still_gets_footer(self):
        # Stale heartbeats are advisory (the report is clean) but worth
        # surfacing: they alone trigger the fault footer.
        faults = FaultReport(
            attempts=2, heartbeat_stale=1, stale_tasks=["no/w_a"]
        )
        assert faults.clean
        rendered = format_timing_table(ENTRIES, faults=faults)
        assert "faults: 2 attempts, 0 retries, 0 timeouts, 0 errors, " \
               "1 stale heartbeats, 0 quarantined" in rendered
        assert rendered.endswith("  stale heartbeats: no/w_a")

    def test_phase_ties_break_by_name(self):
        entries = [
            ("no", "w", _stats(1_000, 1_000, 1.0,
                               phases={"zeta": 0.5, "alpha": 0.5})),
        ]
        rendered = format_timing_table(entries)
        assert "phase breakdown: alpha=0.50s (50%)  zeta=0.50s (50%)" in rendered

    def test_total_row_aggregates_throughput(self):
        # The (total) row is total work over total wall-clock, not a mean
        # of per-row rates.
        rendered = _rstripped(format_timing_table(ENTRIES))
        total_line = [
            line for line in rendered.splitlines()
            if line.startswith("(total)")
        ][0]
        # 250,000 cycles / 2.5 s = 100 kcycles/s; 150,000 instrs -> 60.
        assert total_line.split() == ["(total)", "2.50", "100.00", "60.00", "4"]

    def test_zero_wall_clock_renders_zero_rates(self):
        rendered = format_timing_table([("no", "w", _stats(10, 10, 0.0))])
        assert "0.00" in rendered  # no ZeroDivisionError

    def test_empty_entries(self):
        rendered = format_timing_table([])
        assert rendered.startswith("Simulation timing")
        assert "(total)" not in rendered


class TestCachedRuns:
    """Cache-served rows render flagged and stay out of every aggregate."""

    def _entries_with_cached(self):
        cached = _stats(80_000, 160_000, 9.0, attempts=2,
                        phases={"simulate": 8.0})
        cached.from_cache = True
        return ENTRIES + [("ent", "w_c", cached)]

    def test_golden_with_cached_row(self):
        golden = """\
Simulation timing
config   workload  wall s  kcycles/s  kinstr/s  tries
-------  --------  ------  ---------  --------  ------
no       w_a       2.00    100.00     50.00     1
ent      w_b       0.50    100.00     100.00    3
ent      w_c       9.00    17.78      8.89      cached
(total)            2.50    100.00     60.00     4
(1 run(s) served from the run cache; their timing reflects the original simulations and is excluded from the total row)
phase breakdown: simulate=1.75s (70%)  workload=0.50s (20%)  fetch_units=0.25s (10%)"""
        rendered = _rstripped(format_timing_table(self._entries_with_cached()))
        assert rendered == golden

    def test_cached_row_excluded_from_total(self):
        # The cached row's 9.0 s belongs to the original simulation; the
        # (total) row must match the uncached-only rendering exactly.
        with_cached = _rstripped(
            format_timing_table(self._entries_with_cached())
        )
        total = [l for l in with_cached.splitlines()
                 if l.startswith("(total)")][0]
        assert total.split() == ["(total)", "2.50", "100.00", "60.00", "4"]

    def test_cached_phases_excluded_from_breakdown(self):
        rendered = format_timing_table(self._entries_with_cached())
        breakdown = [l for l in rendered.splitlines()
                     if l.startswith("phase breakdown")][0]
        # 8.0 s of cached "simulate" must not inflate the 1.75 s total.
        assert "simulate=1.75s" in breakdown

    def test_all_cached_renders_zero_total(self):
        cached = _stats(10_000, 20_000, 1.0)
        cached.from_cache = True
        rendered = format_timing_table([("ent", "w", cached)])
        assert "cached" in rendered
        assert "1 run(s) served from the run cache" in rendered
        total = [l for l in rendered.splitlines()
                 if l.startswith("(total)")][0]
        assert total.split()[1] == "0.00"


class TestFormatTable:
    def test_alignment_and_float_format(self):
        golden = """\
name  value
----  -----
ab    1.235
c     2"""
        rendered = format_table(
            ["name", "value"], [["ab", 1.23456], ["c", "2"]],
            float_format="{:.3f}",
        )
        assert _rstripped(rendered) == golden
