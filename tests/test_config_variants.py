"""Tests for the configurable replacement policy and branch predictor."""

import pytest

from repro.prefetchers import NullPrefetcher
from repro.sim.branch_predictor import (
    BimodalPredictor,
    GsharePredictor,
    make_direction_predictor,
)
from repro.sim.config import SimConfig
from repro.sim.simulator import simulate


class TestBimodal:
    def test_learns_bias(self):
        bp = BimodalPredictor(table_bits=8)
        for _ in range(4):
            bp.update(0x100, False)
        assert not bp.predict(0x100)

    def test_cannot_learn_alternation(self):
        bp = BimodalPredictor(table_bits=8)
        outcome = True
        correct = 0
        for _ in range(200):
            if bp.predict(0x100) == outcome:
                correct += 1
            bp.update(0x100, outcome)
            outcome = not outcome
        # Bimodal flaps on T/N/T/N: far from the >90% gshare achieves.
        assert correct < 150

    def test_storage(self):
        assert BimodalPredictor(table_bits=10).storage_bits() == 2048


class TestFactory:
    def test_gshare(self):
        assert isinstance(make_direction_predictor("gshare", 10, 4), GsharePredictor)

    def test_bimodal(self):
        assert isinstance(make_direction_predictor("bimodal", 10, 4), BimodalPredictor)

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown branch predictor"):
            make_direction_predictor("tage", 10, 4)


class TestSimulatorWithVariants:
    def test_bimodal_runs_and_differs(self, small_srv_trace):
        gshare = simulate(small_srv_trace, NullPrefetcher()).stats
        bimodal = simulate(
            small_srv_trace,
            NullPrefetcher(),
            config=SimConfig(branch_predictor="bimodal"),
        ).stats
        assert bimodal.instructions == gshare.instructions
        # The two predictors genuinely disagree on this workload.  (Which
        # one wins depends on path repetition: gshare needs per-history
        # training that low-repetition server code may not provide.)
        assert bimodal.branch_mispredictions != gshare.branch_mispredictions

    def test_fifo_l1i_runs(self, small_srv_trace):
        stats = simulate(
            small_srv_trace,
            NullPrefetcher(),
            config=SimConfig(l1i_replacement="fifo"),
        ).stats
        assert stats.instructions == len(small_srv_trace)

    def test_fifo_l1i_differs_from_lru(self, small_srv_trace):
        lru = simulate(small_srv_trace, NullPrefetcher()).stats
        fifo = simulate(
            small_srv_trace,
            NullPrefetcher(),
            config=SimConfig(l1i_replacement="fifo"),
        ).stats
        assert lru.l1i_demand_misses != fifo.l1i_demand_misses

    def test_invalid_replacement_rejected(self, small_srv_trace):
        with pytest.raises(ValueError):
            simulate(
                small_srv_trace,
                NullPrefetcher(),
                config=SimConfig(l1i_replacement="plru"),
            )
