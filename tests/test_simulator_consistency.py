"""Cross-cutting consistency checks on the simulator."""

from repro.prefetchers import NullPrefetcher, make_prefetcher
from repro.sim.fetchunits import build_fetch_units
from repro.sim.simulator import simulate


class TestUnitsParameter:
    def test_precomputed_units_equivalent(self, small_srv_trace):
        units = build_fetch_units(small_srv_trace)
        direct = simulate(small_srv_trace, NullPrefetcher()).stats
        precomputed = simulate(small_srv_trace, NullPrefetcher(), units=units).stats
        assert direct.cycles == precomputed.cycles
        assert direct.l1i_demand_misses == precomputed.l1i_demand_misses

    def test_units_are_not_mutated(self, small_srv_trace):
        units = build_fetch_units(small_srv_trace)
        before = [(u.line_addr, u.n_instrs, u.branch) for u in units]
        simulate(small_srv_trace, make_prefetcher("entangling_2k"), units=units)
        after = [(u.line_addr, u.n_instrs, u.branch) for u in units]
        assert before == after

    def test_units_reusable_across_prefetchers(self, small_srv_trace):
        """The experiment driver reuses units across configs; a second run
        with the same units must match a fresh run."""
        units = build_fetch_units(small_srv_trace)
        simulate(small_srv_trace, make_prefetcher("next_line"), units=units)
        reused = simulate(small_srv_trace, NullPrefetcher(), units=units).stats
        fresh = simulate(small_srv_trace, NullPrefetcher()).stats
        assert reused.cycles == fresh.cycles


class TestCounterConsistency:
    def test_prefetch_accounting_balances(self, small_srv_trace):
        stats = simulate(small_srv_trace, make_prefetcher("entangling_4k")).stats
        assert stats.prefetches_requested == (
            stats.prefetches_enqueued
            + stats.prefetches_dropped_pq_full
            + stats.prefetches_dropped_in_cache
            + stats.prefetches_dropped_in_flight
        )
        # Everything issued was first enqueued (minus what is still queued
        # or filtered at issue time).
        assert stats.prefetches_sent <= stats.prefetches_enqueued

    def test_useful_bounded_by_sent(self, small_srv_trace):
        stats = simulate(small_srv_trace, make_prefetcher("entangling_4k")).stats
        assert stats.useful_prefetches <= stats.prefetches_sent
        assert stats.wrong_prefetches <= stats.prefetches_sent

    def test_hits_plus_misses_equals_accesses(self, small_srv_trace):
        for config_name in ("no", "next_line", "entangling_2k"):
            stats = simulate(small_srv_trace, make_prefetcher(config_name)).stats
            assert stats.l1i_demand_hits + stats.l1i_demand_misses == (
                stats.l1i_demand_accesses
            )

    def test_stall_accounting_covers_idle_cycles(self, small_srv_trace):
        stats = simulate(small_srv_trace, NullPrefetcher()).stats
        busy_upper_bound = stats.instructions  # <= retire_width per cycle
        assert stats.fetch_stall_cycles + stats.ftq_empty_cycles <= stats.cycles
        assert stats.cycles <= busy_upper_bound + (
            stats.fetch_stall_cycles + stats.ftq_empty_cycles
        )
