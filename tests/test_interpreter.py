"""Tests for the CFG interpreter: control-transfer semantics."""

import pytest

from repro.workloads.cfg import ProgramBuilder, Terminator, TermKind
from repro.workloads.synthetic import CfgInterpreter, generate_trace
from repro.workloads.trace import BranchType


def _ret():
    return Terminator(TermKind.RETURN)


def _straightline_program():
    return (
        ProgramBuilder(entry="main")
        .function("main")
        .block("b0", 4, Terminator(TermKind.FALLTHROUGH))
        .block("b1", 4, _ret())
        .build()
    )


class TestFallthrough:
    def test_fallthrough_emits_no_branch(self):
        program = _straightline_program()
        out = CfgInterpreter(program).run(8)[:8]
        assert all(not inst.is_branch for inst in out[:4])

    def test_pcs_are_sequential_across_fallthrough(self):
        program = _straightline_program()
        out = CfgInterpreter(program).run(8)[:8]
        pcs = [inst.pc for inst in out]
        assert pcs == [pcs[0] + 4 * i for i in range(8)]


class TestCallsAndReturns:
    def _call_program(self):
        return (
            ProgramBuilder(entry="main")
            .function("main")
            .block("b0", 2, Terminator(TermKind.CALL, target="leaf"))
            .block("b1", 2, _ret())
            .function("leaf")
            .block("b0", 3, _ret())
            .build()
        )

    def test_call_targets_callee_entry(self):
        program = self._call_program()
        out = CfgInterpreter(program).run(4)
        call = out[1]
        assert call.branch_type == BranchType.DIRECT_CALL
        assert call.target == program.function_address("leaf")

    def test_return_goes_back_to_caller(self):
        program = self._call_program()
        out = CfgInterpreter(program).run(8)
        ret = out[4]  # 2 main + 3 leaf => index 4 is leaf's return
        assert ret.branch_type == BranchType.RETURN
        assert ret.target == program.block_address("main", "b1")

    def test_return_from_entry_restarts(self):
        program = self._call_program()
        interp = CfgInterpreter(program)
        interp.run(30)
        assert interp.restarts >= 1

    def test_depth_limit_demotes_calls(self):
        program = (
            ProgramBuilder(entry="main")
            .function("main")
            .block("b0", 2, Terminator(TermKind.CALL, target="main"))
            .block("b1", 2, _ret())
            .build()
        )
        interp = CfgInterpreter(program, max_call_depth=3)
        out = interp.run(50)
        calls = [i for i in out if i.branch_type == BranchType.DIRECT_CALL]
        # Depth-bounded: only 3 real calls can be outstanding at once.
        assert calls, "some calls must be taken"
        plain_at_call_pc = [
            i for i in out if not i.is_branch and i.pc == calls[0].pc
        ]
        assert plain_at_call_pc, "calls beyond the depth limit are demoted"


class TestConditionals:
    def test_always_taken_cond(self):
        program = (
            ProgramBuilder(entry="main")
            .function("main")
            .block("b0", 2, Terminator(TermKind.COND, target="b0", taken_prob=1.0))
            .block("b1", 1, _ret())
            .build()
        )
        out = CfgInterpreter(program).run(20)
        branches = [i for i in out if i.is_branch]
        assert all(b.taken for b in branches)

    def test_never_taken_cond_falls_through(self):
        program = (
            ProgramBuilder(entry="main")
            .function("main")
            .block("b0", 2, Terminator(TermKind.COND, target="b0", taken_prob=0.0))
            .block("b1", 2, _ret())
            .build()
        )
        out = CfgInterpreter(program).run(4)
        cond = out[1]
        assert cond.branch_type == BranchType.CONDITIONAL
        assert not cond.taken
        assert out[2].pc == program.block_address("main", "b1")

    def test_biased_cond_statistics(self):
        program = (
            ProgramBuilder(entry="main")
            .function("main")
            .block("b0", 2, Terminator(TermKind.COND, target="b0", taken_prob=0.8))
            .block("b1", 1, _ret())
            .build()
        )
        out = CfgInterpreter(program, seed=1).run(6000)
        branches = [i for i in out if i.branch_type == BranchType.CONDITIONAL]
        taken_frac = sum(b.taken for b in branches) / len(branches)
        assert 0.7 < taken_frac < 0.9


class TestIndirect:
    def test_indirect_call_picks_candidates(self):
        program = (
            ProgramBuilder(entry="main")
            .function("main")
            .block(
                "b0",
                2,
                Terminator(
                    TermKind.INDIRECT_CALL,
                    candidates=[("a", 1.0), ("b", 1.0)],
                ),
            )
            .block("b1", 1, _ret())
            .function("a")
            .block("b0", 1, _ret())
            .function("b")
            .block("b0", 1, _ret())
            .build()
        )
        out = CfgInterpreter(program, seed=3).run(4000)
        targets = {
            i.target for i in out if i.branch_type == BranchType.INDIRECT_CALL
        }
        expected = {program.function_address("a"), program.function_address("b")}
        assert targets == expected

    def test_indirect_jump_stays_in_function(self):
        program = (
            ProgramBuilder(entry="main")
            .function("main")
            .block(
                "b0",
                2,
                Terminator(TermKind.INDIRECT_JUMP, candidates=[("b1", 1.0)]),
            )
            .block("b1", 2, _ret())
            .build()
        )
        out = CfgInterpreter(program).run(4)
        jump = out[1]
        assert jump.branch_type == BranchType.INDIRECT_JUMP
        assert jump.target == program.block_address("main", "b1")


class TestDataAccesses:
    def test_loads_and_stores_emitted(self):
        program = (
            ProgramBuilder(entry="main")
            .function("main")
            .block("b0", 50, _ret(), load_frac=0.5, store_frac=0.3)
            .build()
        )
        out = CfgInterpreter(program, seed=5).run(2000)
        loads = sum(1 for i in out if i.is_load)
        stores = sum(1 for i in out if i.is_store)
        assert loads > 0 and stores > 0
        assert loads > stores

    def test_memory_ops_have_addresses(self):
        program = (
            ProgramBuilder(entry="main")
            .function("main")
            .block("b0", 20, _ret(), load_frac=0.9, store_frac=0.0)
            .build()
        )
        out = CfgInterpreter(program, seed=5).run(100)
        for inst in out:
            if inst.is_load or inst.is_store:
                assert inst.data_addr > 0


class TestDeterminism:
    def test_same_seed_same_trace(self, loop_program):
        a = CfgInterpreter(loop_program, seed=9).run(500)
        b = CfgInterpreter(loop_program, seed=9).run(500)
        assert a == b

    def test_different_seed_different_path(self, loop_program):
        a = CfgInterpreter(loop_program, seed=9).run(500)
        b = CfgInterpreter(loop_program, seed=10).run(500)
        assert a != b


class TestGenerateTrace:
    def test_exact_length(self, loop_program):
        trace = generate_trace(loop_program, 123, name="t")
        assert len(trace) == 123

    def test_metadata(self, loop_program):
        trace = generate_trace(loop_program, 10, name="t", category="fp")
        assert trace.name == "t"
        assert trace.category == "fp"
