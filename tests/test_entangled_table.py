"""Tests for the Entangled table: allocation, replacement, destinations,
confidence, and the paper's exact storage arithmetic."""

import pytest

from repro.core.compression import CompressionScheme
from repro.core.entangled_table import (
    MAX_BB_SIZE,
    MAX_CONFIDENCE,
    EntangledTable,
)


def small_table(entries=64, ways=4):
    return EntangledTable(entries=entries, ways=ways)


class TestConstruction:
    def test_entries_must_divide_by_ways(self):
        with pytest.raises(ValueError):
            EntangledTable(entries=100, ways=16)

    def test_geometry(self):
        table = EntangledTable(entries=4096, ways=16)
        assert table.sets == 256


class TestAllocation:
    def test_find_or_allocate_idempotent(self):
        table = small_table()
        a = table.find_or_allocate(0x100)
        b = table.find_or_allocate(0x100)
        assert a is b
        assert table.stats.allocations == 1

    def test_lookup_counts(self):
        table = small_table()
        table.lookup(0x100)
        table.find_or_allocate(0x100)
        table.lookup(0x100)
        assert table.stats.lookups == 2
        assert table.stats.hits == 1

    def test_peek_does_not_count(self):
        table = small_table()
        table.peek(0x100)
        assert table.stats.lookups == 0

    def test_set_capacity_enforced(self):
        table = EntangledTable(entries=8, ways=2)  # 4 sets x 2 ways
        # Fill one set beyond capacity: indices colliding into a set.
        lines = []
        target_set = table._index(0)
        line = 0
        while len(lines) < 4:
            if table._index(line) == target_set:
                lines.append(line)
            line += 1
        for l in lines:
            table.find_or_allocate(l)
        resident = [s for s in table.resident_sources() if table._index(s) == target_set]
        assert len(resident) == 2
        assert table.stats.evictions == 2


class TestEnhancedFifo:
    def test_pairless_entry_sacrificed_first(self):
        table = EntangledTable(entries=2, ways=2)  # one set
        a = table.find_or_allocate(0)
        table.add_dest(0, 1)           # a holds a pair
        table.find_or_allocate(2)      # b: pair-less, younger
        table.find_or_allocate(4)      # forces an eviction
        sources = table.resident_sources()
        assert 0 in sources            # FIFO victim a was spared
        assert 2 not in sources        # pair-less b evicted instead

    def test_plain_fifo_when_all_have_pairs(self):
        table = EntangledTable(entries=2, ways=2)
        table.add_dest(0, 1)
        table.add_dest(2, 3)
        table.find_or_allocate(4)
        sources = table.resident_sources()
        assert 0 not in sources        # oldest evicted
        assert table.stats.evictions_with_pairs == 1


class TestBasicBlockSizes:
    def test_max_policy(self):
        table = small_table()
        table.update_bb_size(0x10, 5)
        table.update_bb_size(0x10, 3)
        assert table.bb_size_of(0x10) == 5

    def test_latest_policy(self):
        table = small_table()
        table.update_bb_size(0x10, 5, policy="latest")
        table.update_bb_size(0x10, 3, policy="latest")
        assert table.bb_size_of(0x10) == 3

    def test_size_capped_at_63(self):
        table = small_table()
        table.update_bb_size(0x10, 1000)
        assert table.bb_size_of(0x10) == MAX_BB_SIZE

    def test_unknown_head_size_zero(self):
        assert small_table().bb_size_of(0x999) == 0


class TestDestinations:
    def test_add_and_refresh(self):
        table = small_table()
        assert table.add_dest(0x10, 0x20) == "added"
        assert table.add_dest(0x10, 0x20) == "exists"
        entry = table.peek(0x10)
        assert entry.dsts == [[0x20, MAX_CONFIDENCE]]

    def test_full_without_evict(self):
        table = small_table()
        src = 0x100
        for d in range(1, 7):
            assert table.add_dest(src, src + d) == "added"
        assert table.add_dest(src, src + 7) == "full"

    def test_full_with_evict_replaces_weakest(self):
        table = small_table()
        src = 0x100
        for d in range(1, 7):
            table.add_dest(src, src + d)
        table.decrease_confidence(src, src + 3)
        assert table.add_dest(src, src + 7, evict_if_full=True) == "added"
        entry = table.peek(src)
        dst_lines = entry.dst_lines()
        assert src + 7 in dst_lines
        assert src + 3 not in dst_lines

    def test_wide_destination_limits_count(self):
        table = small_table()
        src = 0x100
        far = src ^ (1 << 20)  # needs 21 bits -> mode 2 -> capacity 2
        assert table.add_dest(src, far) == "added"
        assert table.add_dest(src, src + 1) == "added"
        assert table.add_dest(src, src + 2) == "full"

    def test_can_add_dest(self):
        table = small_table()
        src = 0x100
        assert table.can_add_dest(src, src + 1)
        for d in range(1, 7):
            table.add_dest(src, src + d)
        assert not table.can_add_dest(src, src + 9)
        assert table.can_add_dest(src, src + 3)  # already present

    def test_format_stats_recorded(self):
        table = small_table()
        table.add_dest(0x100, 0x101)
        assert sum(table.stats.format_bits.values()) == 1

    def test_total_pairs(self):
        table = small_table()
        table.add_dest(0x100, 0x101)
        table.add_dest(0x200, 0x201)
        table.add_dest(0x200, 0x202)
        assert table.total_pairs() == 3


class TestConfidence:
    def test_increase_capped(self):
        table = small_table()
        table.add_dest(0x10, 0x20)
        table.increase_confidence(0x10, 0x20)
        assert table.peek(0x10).find_dst(0x20)[1] == MAX_CONFIDENCE

    def test_decrease_invalidates_at_zero(self):
        table = small_table()
        table.add_dest(0x10, 0x20)
        for _ in range(MAX_CONFIDENCE):
            table.decrease_confidence(0x10, 0x20)
        assert table.peek(0x10).find_dst(0x20) is None
        assert table.stats.pairs_invalidated == 1

    def test_confidence_on_missing_entry_is_noop(self):
        table = small_table()
        table.increase_confidence(0x10, 0x20)
        table.decrease_confidence(0x10, 0x20)
        assert table.peek(0x10) is None


class TestStorage:
    def test_paper_table_storage_virtual(self):
        """Section III-C3: 19.81KB / 39.63KB for the 2K / 4K tables."""
        for entries, expected_kb in ((2048, 19.81), (4096, 39.63)):
            table = EntangledTable(entries=entries, ways=16)
            assert table.storage_bits() / 8192 == pytest.approx(expected_kb, abs=0.02)

    def test_physical_table_smaller(self):
        virt = EntangledTable(entries=4096, ways=16)
        phys = EntangledTable(
            entries=4096, ways=16, scheme=CompressionScheme.physical()
        )
        assert phys.storage_bits() < virt.storage_bits()


class TestIndexing:
    def test_index_in_range(self):
        table = EntangledTable(entries=4096, ways=16)
        for line in (0, 1, 0xFFFF, 1 << 57, 123456789):
            assert 0 <= table._index(line) < table.sets

    def test_index_uses_high_bits(self):
        """XOR folding: lines that differ only in high bits map differently."""
        table = EntangledTable(entries=4096, ways=16)
        indexes = {table._index(0x100 + (i << 30)) for i in range(16)}
        assert len(indexes) > 1
