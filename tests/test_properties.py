"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.compression import CompressionScheme
from repro.core.entangled_table import MAX_BB_SIZE, MAX_CONFIDENCE, EntangledTable
from repro.core.history import HistoryBuffer
from repro.prefetchers.base import NullPrefetcher
from repro.sim.cache import SetAssociativeCache
from repro.sim.mshr import MshrFile
from repro.sim.prefetch_queue import PrefetchQueue
from repro.sim.simulator import simulate
from repro.workloads.trace import Instruction, Trace, read_trace, write_trace

lines = st.integers(min_value=0, max_value=(1 << 40) - 1)


class TestCacheProperties:
    @given(st.lists(lines, max_size=200), st.integers(1, 8), st.integers(1, 8))
    def test_occupancy_bounded(self, addresses, sets, ways):
        cache = SetAssociativeCache(sets, ways)
        for addr in addresses:
            cache.insert(addr)
        assert cache.occupancy() <= sets * ways
        for cache_set in cache._sets:
            assert len(cache_set) <= ways

    @given(st.lists(lines, min_size=1, max_size=100))
    def test_inserted_line_resident_until_evicted(self, addresses):
        cache = SetAssociativeCache(4, 4)
        evicted = set()
        for addr in addresses:
            victim = cache.insert(addr)
            evicted.discard(addr)
            if victim is not None:
                evicted.add(victim.line_addr)
        for addr in set(addresses):
            assert cache.contains(addr) != (addr in evicted)


class TestPrefetchQueueProperties:
    @given(st.lists(st.tuples(st.booleans(), lines), max_size=100))
    def test_never_exceeds_capacity_and_no_duplicates(self, ops):
        pq = PrefetchQueue(8)
        for is_push, addr in ops:
            if is_push:
                pq.push(addr)
            else:
                pq.pop()
            assert len(pq) <= 8
            queued = [a for a, _m in pq._queue]
            assert len(queued) == len(set(queued))


class TestMshrProperties:
    @given(st.lists(st.tuples(lines, st.integers(0, 100)), max_size=60))
    def test_pop_ready_only_returns_completed(self, requests):
        mshr = MshrFile(64)
        seen = set()
        for addr, ready in requests:
            if addr in seen:
                continue
            seen.add(addr)
            mshr.allocate(addr, 0, ready, True)
        popped = mshr.pop_ready(50)
        assert all(e.ready_cycle <= 50 for e in popped)
        assert all(
            e.ready_cycle > 50
            for e in [mshr.lookup(a) for a in seen]
            if e is not None
        )


class TestHistoryProperties:
    @given(st.lists(st.tuples(lines, st.integers(0, 10_000)), max_size=60))
    def test_bounded_and_source_respects_deadline(self, pushes):
        history = HistoryBuffer(16)
        timestamp = 0
        for addr, delta in pushes:
            timestamp += delta
            history.push(addr, timestamp)
        assert len(history) <= 16
        deadline = timestamp // 2
        found = history.find_source(deadline)
        if found is not None:
            assert found.timestamp <= deadline


class TestEntangledTableProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 500), st.integers(0, 500)),
            max_size=150,
        )
    )
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_invariants_under_random_operations(self, pairs):
        table = EntangledTable(entries=32, ways=4)
        for src, dst in pairs:
            table.add_dest(src, dst, evict_if_full=(src % 2 == 0))
        scheme = table.scheme
        for table_set in table._sets:
            assert len(table_set) <= table.ways
            for entry in table_set.values():
                # Destination arrays always fit their compression mode.
                assert scheme.fits(entry.src_line, entry.dst_lines())
                # Confidence stays in [1, MAX]; zero-confidence pairs die.
                assert all(1 <= c <= MAX_CONFIDENCE for _d, c in entry.dsts)
                assert 0 <= entry.bb_size <= MAX_BB_SIZE
                # No duplicate destinations.
                dsts = entry.dst_lines()
                assert len(dsts) == len(set(dsts))

    @given(st.lists(st.tuples(st.integers(0, 300), st.integers(0, 63)), max_size=80))
    def test_bb_sizes_bounded(self, updates):
        table = EntangledTable(entries=32, ways=4)
        for src, size in updates:
            table.update_bb_size(src, size * 3)  # may exceed the cap
        for src, _size in updates:
            assert 0 <= table.bb_size_of(src) <= MAX_BB_SIZE


class TestCompressionProperties:
    @given(
        src=st.integers(0, (1 << 58) - 1),
        dsts=st.lists(st.integers(0, (1 << 58) - 1), min_size=1, max_size=6),
    )
    def test_mode_consistency(self, src, dsts):
        scheme = CompressionScheme.virtual()
        widths = [scheme.significant_bits(src, d) for d in dsts]
        mode = scheme.mode_for_widths(widths)
        if mode is not None:
            assert mode >= len(dsts)
            assert all(w <= scheme.modes[mode].addr_bits or mode == 1 for w in widths)


class TestTraceProperties:
    instruction_strategy = st.builds(
        Instruction,
        pc=st.integers(0, (1 << 48) - 1),
        size=st.just(4),
        taken=st.booleans(),
        target=st.integers(0, (1 << 48) - 1),
        is_load=st.booleans(),
        data_addr=st.integers(0, (1 << 48) - 1),
    )

    @given(st.lists(instruction_strategy, max_size=50))
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_io_roundtrip(self, instructions):
        import tempfile, os

        trace = Trace("prop", instructions, category="int")
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "t.bin")
            write_trace(trace, path)
            loaded = read_trace(path)
        assert loaded.instructions == trace.instructions


class TestSimulatorConservation:
    @given(st.lists(st.integers(0, 200), min_size=1, max_size=120), st.booleans())
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_all_instructions_retire_and_counters_consistent(self, line_seq, tiny):
        from tests.conftest import make_line_trace
        from repro.sim.config import SimConfig

        trace = make_line_trace(line_seq)
        config = SimConfig(l1i_size=4 * 1024, l1i_ways=4) if tiny else SimConfig()
        stats = simulate(trace, NullPrefetcher(), config=config).stats
        assert stats.instructions == len(trace)
        assert stats.l1i_demand_hits + stats.l1i_demand_misses == (
            stats.l1i_demand_accesses
        )
        assert stats.cycles >= len(trace) // config.retire_width
        assert 0.0 <= stats.l1i_miss_ratio <= 1.0
