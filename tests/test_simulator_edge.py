"""Edge-case tests for the simulator: resource limits and odd traces."""

from repro.prefetchers.base import InstructionPrefetcher, NullPrefetcher, PrefetchRequest
from repro.sim.config import SimConfig
from repro.sim.simulator import simulate
from repro.workloads.trace import BranchType, Instruction, Trace

from tests.conftest import make_line_trace


class FloodPrefetcher(InstructionPrefetcher):
    """Requests a burst of useless lines on every demand access."""

    name = "flood"

    def __init__(self, burst=64):
        self.burst = burst
        self._base = 0x10_0000

    def on_demand_access(self, line_addr, hit, cycle):
        self._base += self.burst
        return [PrefetchRequest(self._base + i) for i in range(self.burst)]


class TestResourceLimits:
    def test_pq_full_drops_counted(self):
        trace = make_line_trace(list(range(0x100, 0x140)))
        result = simulate(trace, FloodPrefetcher(burst=64))
        assert result.stats.prefetches_dropped_pq_full > 0
        # Drops are bounded: requested = enqueued + all drop categories.
        s = result.stats
        assert s.prefetches_requested == (
            s.prefetches_enqueued
            + s.prefetches_dropped_pq_full
            + s.prefetches_dropped_in_cache
            + s.prefetches_dropped_in_flight
        )

    def test_prefetches_respect_mshr_reserve(self):
        config = SimConfig(l1i_mshrs=4, mshr_demand_reserve=2)
        trace = make_line_trace(list(range(0x100, 0x180)))
        result = simulate(trace, FloodPrefetcher(burst=16), config=config)
        # The run completes (no deadlock) and demand misses were served.
        assert result.stats.instructions == len(trace)
        assert result.stats.l1i_demand_misses > 0

    def test_tiny_mshr_file_still_completes(self):
        from repro.workloads.trace import trace_from_pcs

        config = SimConfig(l1i_mshrs=1, mshr_demand_reserve=0)
        # Branch-free sequential code: the predict stage runs ahead and
        # piles misses onto the single MSHR.
        trace = trace_from_pcs("seq", [0x4000 + 4 * i for i in range(1024)])
        result = simulate(trace, NullPrefetcher(), config=config)
        assert result.stats.instructions == len(trace)
        assert result.stats.mshr_full_events > 0

    def test_tiny_ftq_still_completes(self):
        config = SimConfig(ftq_size=2)
        trace = make_line_trace(list(range(0x100, 0x140)))
        result = simulate(trace, NullPrefetcher(), config=config)
        assert result.stats.instructions == len(trace)

    def test_small_ftq_is_slower(self):
        trace = make_line_trace(list(range(0x100, 0x180)) * 2)
        wide = simulate(trace, NullPrefetcher(), config=SimConfig(ftq_size=64)).stats
        narrow = simulate(trace, NullPrefetcher(), config=SimConfig(ftq_size=2)).stats
        assert narrow.cycles >= wide.cycles


class TestOddTraces:
    def test_trace_ending_in_taken_branch(self):
        insts = [
            Instruction(pc=0x1000),
            Instruction(pc=0x1004, branch_type=BranchType.DIRECT_JUMP,
                        taken=True, target=0x2000),
        ]
        result = simulate(Trace("t", insts), NullPrefetcher())
        assert result.stats.instructions == 2

    def test_single_instruction(self):
        result = simulate(Trace("t", [Instruction(pc=0x1000)]), NullPrefetcher())
        assert result.stats.instructions == 1
        assert result.stats.l1i_demand_misses == 1

    def test_return_without_call(self):
        insts = [
            Instruction(pc=0x1000, branch_type=BranchType.RETURN,
                        taken=True, target=0x2000),
            Instruction(pc=0x2000),
        ]
        result = simulate(Trace("t", insts), NullPrefetcher())
        # An empty-RAS return is simply a mispredict, not a crash.
        assert result.stats.instructions == 2
        assert result.stats.branch_mispredictions >= 1

    def test_dense_branches_one_per_instruction(self):
        insts = []
        pc = 0x1000
        for i in range(50):
            target = 0x1000 + 0x100 * ((i + 1) % 7)
            insts.append(
                Instruction(pc=pc, branch_type=BranchType.DIRECT_JUMP,
                            taken=True, target=target)
            )
            pc = target
        result = simulate(Trace("t", insts), NullPrefetcher())
        assert result.stats.instructions == 50
        assert result.stats.branches == 50


class TestDataPath:
    def test_l1d_accesses_counted(self):
        insts = [
            Instruction(pc=0x1000, is_load=True, data_addr=0x9000),
            Instruction(pc=0x1004, is_store=True, data_addr=0xA000),
        ]
        result = simulate(Trace("t", insts), NullPrefetcher())
        counts = result.stats.cache_accesses["L1D"]
        assert counts.reads >= 1
        assert counts.writes >= 1

    def test_repeated_loads_hit_l1d(self):
        insts = [
            Instruction(pc=0x1000 + 4 * i, is_load=True, data_addr=0x9000)
            for i in range(10)
        ]
        result = simulate(Trace("t", insts), NullPrefetcher())
        # Only the first load misses into L2.
        assert result.stats.cache_accesses["L2C"].reads <= 2


class TestMshrRetryLruIsolation:
    """Regression: an access retried on a full MSHR file used to probe the
    L1I with an LRU-updating lookup every retry cycle, multi-touching hot
    lines and perturbing replacement under MSHR pressure."""

    class CountingCache:
        """Wraps the L1I, counting LRU promotions by mechanism."""

        def __init__(self, inner):
            self._inner = inner
            self.touches = 0
            self.updating_hits = 0

        def lookup(self, line_addr, update_lru=True):
            entry = self._inner.lookup(line_addr, update_lru=update_lru)
            if update_lru and entry is not None:
                self.updating_hits += 1
            return entry

        def touch(self, entry):
            self.touches += 1
            self._inner.touch(entry)

        def __getattr__(self, name):
            return getattr(self._inner, name)

    def test_one_promotion_per_demand_hit(self):
        from repro.sim.simulator import Simulator
        from repro.workloads.trace import trace_from_pcs

        config = SimConfig(l1i_mshrs=1, mshr_demand_reserve=0)
        # Sequential code loops twice: plenty of hits and, with a single
        # MSHR, plenty of full-MSHR retries.
        pcs = [0x4000 + 4 * i for i in range(512)] * 2
        trace = trace_from_pcs("seq2", pcs)
        sim = Simulator(trace, NullPrefetcher(), config=config)
        counting = self.CountingCache(sim.l1i)
        sim.l1i = counting
        stats = sim.run()
        assert stats.mshr_full_events > 0
        assert stats.l1i_demand_hits > 0
        # Exactly one LRU promotion per architectural demand hit, and
        # none from the probe path (retries promote nothing).
        assert counting.touches == stats.l1i_demand_hits
        assert counting.updating_hits == 0

    def test_retry_heavy_run_is_deterministic(self):
        from repro.workloads.trace import trace_from_pcs

        config = SimConfig(l1i_mshrs=1, mshr_demand_reserve=0)
        pcs = [0x4000 + 4 * i for i in range(512)] * 2
        first = simulate(trace_from_pcs("seq2", pcs), NullPrefetcher(),
                         config=config)
        second = simulate(trace_from_pcs("seq2", pcs), NullPrefetcher(),
                          config=config)
        assert first.stats.signature() == second.stats.signature()
