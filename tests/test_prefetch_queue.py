"""Tests for the prefetch queue."""

import pytest

from repro.sim.prefetch_queue import PrefetchQueue


class TestPrefetchQueue:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            PrefetchQueue(0)

    def test_fifo_order(self):
        pq = PrefetchQueue(4)
        pq.push(1)
        pq.push(2)
        assert pq.pop() == (1, None)
        assert pq.pop() == (2, None)

    def test_pop_empty_returns_none(self):
        assert PrefetchQueue(4).pop() is None

    def test_metadata_travels(self):
        pq = PrefetchQueue(4)
        pq.push(1, src_meta=("a", "b"))
        assert pq.pop() == (1, ("a", "b"))

    def test_full_drops(self):
        pq = PrefetchQueue(2)
        assert pq.push(1)
        assert pq.push(2)
        assert not pq.push(3)
        assert len(pq) == 2

    def test_duplicate_suppression(self):
        pq = PrefetchQueue(4)
        assert pq.push(1)
        assert not pq.push(1)
        assert len(pq) == 1

    def test_duplicate_allowed_after_pop(self):
        pq = PrefetchQueue(4)
        pq.push(1)
        pq.pop()
        assert pq.push(1)

    def test_peek_does_not_remove(self):
        pq = PrefetchQueue(4)
        pq.push(1)
        assert pq.peek() == (1, None)
        assert len(pq) == 1

    def test_peek_empty(self):
        assert PrefetchQueue(4).peek() is None

    def test_clear(self):
        pq = PrefetchQueue(4)
        pq.push(1)
        pq.push(2)
        pq.clear()
        assert len(pq) == 0
        assert pq.push(1)  # dedupe state also cleared

    def test_full_property(self):
        pq = PrefetchQueue(1)
        assert not pq.full
        pq.push(9)
        assert pq.full
