"""Tests for the L2/LLC/DRAM hierarchy and the page mapper."""

from repro.sim.config import SimConfig
from repro.sim.memory import MemoryHierarchy, PageMapper
from repro.sim.stats import SimStats


def _hierarchy():
    config = SimConfig()
    stats = SimStats()
    return MemoryHierarchy(config, stats), config, stats


class TestLatencies:
    def test_cold_miss_costs_dram(self):
        mem, config, _ = _hierarchy()
        done = mem.request_instruction(100, cycle=0)
        assert done == config.dram_latency

    def test_second_access_hits_l2(self):
        mem, config, _ = _hierarchy()
        mem.request_instruction(100, cycle=0)
        done = mem.request_instruction(100, cycle=1000)
        assert done == 1000 + config.l2_latency

    def test_llc_hit_after_l2_eviction(self):
        mem, config, _ = _hierarchy()
        mem.request_instruction(100, cycle=0)
        # Flood the L2 set containing line 100 so it gets evicted there
        # but stays in the much larger LLC.
        conflicting = [100 + i * config.l2_sets for i in range(1, config.l2_ways + 1)]
        for line in conflicting:
            mem.request_instruction(line, cycle=0)
        done = mem.request_instruction(100, cycle=5000)
        assert done == 5000 + config.llc_latency

    def test_data_and_instruction_share_hierarchy(self):
        mem, config, _ = _hierarchy()
        mem.request_data(100, cycle=0)
        done = mem.request_instruction(100, cycle=10)
        assert done == 10 + config.l2_latency


class TestAccessCounting:
    def test_counts_reads_and_fills(self):
        mem, _, stats = _hierarchy()
        mem.request_instruction(100, cycle=0)    # DRAM: read+fill both levels
        assert stats.cache_accesses["L2C"].reads == 1
        assert stats.cache_accesses["L2C"].writes == 1
        assert stats.cache_accesses["LLC"].reads == 1
        assert stats.cache_accesses["LLC"].writes == 1

    def test_l2_hit_counts_only_l2(self):
        mem, _, stats = _hierarchy()
        mem.request_instruction(100, cycle=0)
        before_llc = stats.cache_accesses["LLC"].reads
        mem.request_instruction(100, cycle=10)
        assert stats.cache_accesses["LLC"].reads == before_llc


class TestPageMapper:
    def test_deterministic(self):
        a = PageMapper(seed=1, page_size=4096, line_size=64)
        b = PageMapper(seed=1, page_size=4096, line_size=64)
        lines = [0, 1, 63, 64, 65, 1000]
        assert [a.translate_line(l) for l in lines] == [
            b.translate_line(l) for l in lines
        ]

    def test_offsets_preserved_within_page(self):
        mapper = PageMapper(seed=1, page_size=4096, line_size=64)
        lines_per_page = 4096 // 64
        base = mapper.translate_line(0)
        assert mapper.translate_line(1) == base + 1
        assert mapper.translate_line(lines_per_page - 1) == base + lines_per_page - 1

    def test_consecutive_pages_not_consecutive(self):
        """The §IV-E property: physical pages break virtual contiguity."""
        mapper = PageMapper(seed=1, page_size=4096, line_size=64)
        lines_per_page = 4096 // 64
        breaks = 0
        for page in range(50):
            end_of_page = mapper.translate_line((page + 1) * lines_per_page - 1)
            start_of_next = mapper.translate_line((page + 1) * lines_per_page)
            if start_of_next != end_of_page + 1:
                breaks += 1
        assert breaks > 25

    def test_stable_mapping_per_page(self):
        mapper = PageMapper(seed=1, page_size=4096, line_size=64)
        first = mapper.translate_line(5)
        for _ in range(10):
            assert mapper.translate_line(5) == first

    def test_frames_never_alias(self):
        """Regression: random frame draws used to collide, mapping two
        virtual pages onto one physical frame and merging their lines."""
        mapper = PageMapper(seed=3, page_size=4096, line_size=64)
        lines_per_page = 4096 // 64
        frames = set()
        pages = 5000  # far past the birthday bound of the old 20-bit draw
        for page in range(pages):
            frames.add(mapper.translate_line(page * lines_per_page))
        assert len(frames) == pages

    def test_distinct_pages_distinct_lines(self):
        mapper = PageMapper(seed=9, page_size=4096, line_size=64)
        lines_per_page = 4096 // 64
        translated = [
            mapper.translate_line(page * lines_per_page + 7)
            for page in range(3000)
        ]
        assert len(set(translated)) == len(translated)

    def test_aliasing_fix_stays_seed_deterministic(self):
        lines = [page * 64 + (page % 64) for page in range(500)]
        a = PageMapper(seed=42, page_size=4096, line_size=64)
        b = PageMapper(seed=42, page_size=4096, line_size=64)
        assert [a.translate_line(l) for l in lines] == [
            b.translate_line(l) for l in lines
        ]
        c = PageMapper(seed=43, page_size=4096, line_size=64)
        assert [a.translate_line(l) for l in lines] != [
            c.translate_line(l) for l in lines
        ]
