"""Tests for the destination compression scheme (paper Tables I and II)."""

import pytest

from repro.core.compression import (
    CONFIDENCE_BITS,
    MODE_FIELD_BITS,
    CompressionScheme,
    mode_table,
)


class TestModeTables:
    def test_table_i_virtual(self):
        """Table I: 1-6 destinations in 60 bits."""
        rows = {mode: bits for mode, _cap, bits in mode_table("virtual")}
        assert rows == {1: 58, 2: 28, 3: 18, 4: 13, 5: 10, 6: 8}

    def test_table_ii_physical(self):
        """Table II: 1-4 destinations in 44 bits."""
        rows = {mode: bits for mode, _cap, bits in mode_table("physical")}
        assert rows == {1: 42, 2: 20, 3: 12, 4: 9}

    def test_capacity_equals_mode(self):
        for kind in ("virtual", "physical"):
            for mode, capacity, _bits in mode_table(kind):
                assert capacity == mode

    def test_slots_fit_payload(self):
        for kind in ("virtual", "physical"):
            scheme = CompressionScheme(kind)
            for spec in scheme.modes.values():
                if spec.mode == 1:
                    continue  # mode 1 stores the full address
                total = spec.capacity * (spec.addr_bits + CONFIDENCE_BITS)
                assert total <= scheme.payload_bits

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            CompressionScheme("oracle")

    def test_mode_field_bits(self):
        assert MODE_FIELD_BITS["virtual"] == 3
        assert MODE_FIELD_BITS["physical"] == 2

    def test_entry_dst_field_bits(self):
        assert CompressionScheme.virtual().entry_dst_field_bits == 63
        assert CompressionScheme.physical().entry_dst_field_bits == 46


class TestSignificantBits:
    def test_identical_lines_need_one_bit(self):
        scheme = CompressionScheme.virtual()
        assert scheme.significant_bits(0x1000, 0x1000) == 1

    def test_adjacent_lines(self):
        scheme = CompressionScheme.virtual()
        assert scheme.significant_bits(0x1000, 0x1001) == 1

    def test_small_distance(self):
        scheme = CompressionScheme.virtual()
        # 0x1000 ^ 0x1014 = 0x14 -> 5 bits
        assert scheme.significant_bits(0x1000, 0x1014) == 5

    def test_far_destination(self):
        scheme = CompressionScheme.virtual()
        assert scheme.significant_bits(0x1000, 0x100_0000) > 20

    def test_symmetric(self):
        scheme = CompressionScheme.virtual()
        assert scheme.significant_bits(5, 900) == scheme.significant_bits(900, 5)


class TestFitting:
    def test_single_far_destination_always_fits(self):
        scheme = CompressionScheme.virtual()
        assert scheme.fits(0, [1 << 57])

    def test_six_near_destinations_fit_virtual(self):
        scheme = CompressionScheme.virtual()
        src = 0x1000
        dsts = [src + d for d in range(1, 7)]  # all within 8 bits
        assert scheme.fits(src, dsts)

    def test_seventh_destination_does_not_fit(self):
        scheme = CompressionScheme.virtual()
        src = 0x1000
        dsts = [src + d for d in range(1, 8)]
        assert not scheme.fits(src, dsts)

    def test_two_far_destinations_do_not_fit(self):
        scheme = CompressionScheme.virtual()
        # Each needs >28 bits, so only mode 1 (capacity 1) would hold them.
        dsts = [1 << 40, 1 << 41]
        assert not scheme.fits(0, dsts)

    def test_wide_dst_limits_capacity(self):
        scheme = CompressionScheme.virtual()
        src = 0x1000
        near = [src + 1, src + 2]
        far = src ^ (1 << 20)  # needs 21 bits -> mode 2 (28-bit slots)
        assert scheme.capacity_for_widths(
            [scheme.significant_bits(src, d) for d in near + [far]]
        ) == 2

    def test_physical_capacity_is_four(self):
        scheme = CompressionScheme.physical()
        src = 0x1000
        dsts = [src + d for d in range(1, 5)]
        assert scheme.fits(src, dsts)
        assert not scheme.fits(src, dsts + [src + 5])

    def test_mode_for_widths_empty(self):
        scheme = CompressionScheme.virtual()
        assert scheme.mode_for_widths([]) == 6

    def test_encoded_addr_bits(self):
        scheme = CompressionScheme.virtual()
        src = 0x1000
        assert scheme.encoded_addr_bits(src, [src + 1]) == 8
        far = src ^ (1 << 17)  # 18 significant bits -> mode 3
        assert scheme.encoded_addr_bits(src, [far]) == 18

    def test_encoded_addr_bits_raises_when_overfull(self):
        scheme = CompressionScheme.virtual()
        src = 0x1000
        with pytest.raises(ValueError):
            scheme.encoded_addr_bits(src, [src + d for d in range(1, 8)])


class TestHypothesisProperties:
    def test_fits_is_monotone_under_removal(self):
        from hypothesis import given, strategies as st

        @given(
            src=st.integers(min_value=0, max_value=(1 << 58) - 1),
            dsts=st.lists(
                st.integers(min_value=0, max_value=(1 << 58) - 1),
                min_size=1,
                max_size=6,
            ),
        )
        def check(src, dsts):
            scheme = CompressionScheme.virtual()
            if scheme.fits(src, dsts):
                assert scheme.fits(src, dsts[:-1])

        check()

    def test_single_destination_always_fits(self):
        from hypothesis import given, strategies as st

        @given(
            src=st.integers(min_value=0, max_value=(1 << 58) - 1),
            dst=st.integers(min_value=0, max_value=(1 << 58) - 1),
        )
        def check(src, dst):
            assert CompressionScheme.virtual().fits(src, [dst])
            assert CompressionScheme.physical().fits(src % (1 << 42), [dst % (1 << 42)])

        check()

    def test_significant_bits_bounds(self):
        from hypothesis import given, strategies as st

        @given(
            src=st.integers(min_value=0, max_value=(1 << 58) - 1),
            dst=st.integers(min_value=0, max_value=(1 << 58) - 1),
        )
        def check(src, dst):
            bits = CompressionScheme.virtual().significant_bits(src, dst)
            assert 1 <= bits <= 58

        check()
