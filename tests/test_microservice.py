"""Cloud-microservice workload family (ISSUE 8 tentpole, part 2).

Covers the RPC-chain program generator (multi-megabyte footprints, deep
call stacks, determinism), the multi-tenant interleaver (determinism,
tenant-region disjointness, full stream preservation, context-switch
schedule), suite registration of the first-class ``microservice``
category, and bit-identical execution across the simulator backends.
"""

import pytest

from repro.analysis.experiments import run_suite
from repro.prefetchers.registry import make_prefetcher
from repro.sim.config import SimConfig
from repro.sim.simulator import simulate
from repro.sim.stages import vector
from repro.workloads.generators import ALL_CATEGORIES, WorkloadSpec, make_workload
from repro.workloads.microservice import (
    MICROSERVICE_PARAMS,
    SERVICE_NAMES,
    TENANT_BASE,
    TENANT_STRIDE,
    build_rpc_program,
    interleave_traces,
    make_microservice_workload,
    microservice_suite,
)
from repro.workloads.synthetic import generate_trace

FAST_BACKENDS = ("staged",) + (("numpy",) if vector.NUMPY_AVAILABLE else ())


def _spec(tenants, n=60_000, seed=4, name="ms"):
    return WorkloadSpec(
        name=name,
        category="microservice",
        seed=seed,
        n_instructions=n,
        tenants=tenants,
    )


class TestRpcPrograms:
    @pytest.mark.parametrize("service", SERVICE_NAMES)
    def test_footprint_is_multi_megabyte_scale(self, service):
        program = build_rpc_program(MICROSERVICE_PARAMS[service], seed=1)
        assert program.code_bytes > 900_000, service

    def test_deterministic(self):
        params = MICROSERVICE_PARAMS["social"]
        a = generate_trace(build_rpc_program(params, seed=9), 20_000, "a",
                           seed=3, max_call_depth=params.call_depth)
        b = generate_trace(build_rpc_program(params, seed=9), 20_000, "b",
                           seed=3, max_call_depth=params.call_depth)
        assert a.instructions == b.instructions

    def test_call_chains_reach_tier_depth(self):
        """Returns prove the chain actually descends through the tiers."""
        params = MICROSERVICE_PARAMS["social"]
        trace = generate_trace(
            build_rpc_program(params, seed=2), 40_000, "d",
            seed=5, max_call_depth=params.call_depth,
        )
        depth = max_depth = 0
        for inst in trace.instructions:
            if inst.branch_type.is_call:
                depth += 1
                max_depth = max(max_depth, depth)
            elif inst.branch_type.name == "RETURN":
                depth = max(0, depth - 1)
        assert max_depth >= params.tiers

    def test_base_address_relocates(self):
        params = MICROSERVICE_PARAMS["bank"]
        base = TENANT_BASE + 2 * TENANT_STRIDE
        program = build_rpc_program(params, seed=1, base_address=base)
        assert program.base_address == base


class TestInterleaver:
    def _tenants(self, n=3, share=15_000):
        traces = []
        for i, service in enumerate(SERVICE_NAMES[:n]):
            params = MICROSERVICE_PARAMS[service]
            traces.append(
                generate_trace(
                    build_rpc_program(
                        params, seed=i, base_address=TENANT_BASE + i * TENANT_STRIDE
                    ),
                    share, service, seed=i, max_call_depth=params.call_depth,
                )
            )
        return traces

    def test_deterministic(self):
        tenants = self._tenants()
        a = interleave_traces(tenants, quantum=4000, seed=7)
        b = interleave_traces(self._tenants(), quantum=4000, seed=7)
        assert a.instructions == b.instructions

    def test_preserves_every_tenant_instruction(self):
        tenants = self._tenants()
        merged = interleave_traces(tenants, quantum=4000, seed=7)
        assert len(merged) == sum(len(t) for t in tenants)
        # Each tenant's sub-stream keeps its retire order.
        for i, tenant in enumerate(tenants):
            region = (TENANT_BASE + i * TENANT_STRIDE) >> 28
            sub = [x for x in merged.instructions if x.pc >> 28 == region]
            assert sub == tenant.instructions

    def test_actually_context_switches(self):
        merged = interleave_traces(self._tenants(), quantum=2000, seed=1)
        regions = [x.pc >> 28 for x in merged.instructions]
        switches = sum(1 for a, b in zip(regions, regions[1:]) if a != b)
        assert switches >= 10

    def test_rejects_empty_and_bad_quantum(self):
        with pytest.raises(ValueError):
            interleave_traces([])
        with pytest.raises(ValueError):
            interleave_traces(self._tenants(1), quantum=0)


class TestWorkloadFamily:
    def test_category_is_first_class(self):
        assert "microservice" in ALL_CATEGORIES

    def test_make_workload_dispatch(self):
        trace = make_workload(_spec(("social", "search")))
        assert trace.category == "microservice"
        assert len(trace) == 60_000
        assert {i.pc >> 28 for i in trace.instructions} == {0, 1}

    def test_deterministic_via_make_workload(self):
        spec = _spec(("media", "bank"), seed=12)
        assert make_workload(spec).instructions == make_workload(spec).instructions

    def test_default_mix_is_seeded(self):
        a = make_microservice_workload(_spec(None, seed=21))
        b = make_microservice_workload(_spec(None, seed=21))
        c = make_microservice_workload(_spec(None, seed=22))
        assert a.instructions == b.instructions
        assert a.instructions != c.instructions

    def test_unknown_service_rejected(self):
        with pytest.raises(ValueError, match="unknown microservice"):
            make_workload(_spec(("monolith",)))

    def test_suite_shape(self):
        specs = microservice_suite()
        assert all(s.category == "microservice" for s in specs)
        names = {s.name for s in specs}
        assert len(names) == len(specs)
        sizes = sorted(len(s.tenants) for s in specs)
        assert sizes[:len(SERVICE_NAMES)] == [1] * len(SERVICE_NAMES)
        assert sizes[-1] >= 4  # at least one 4-tenant mix

    def test_suite_runs_and_reports_category(self):
        specs = [
            WorkloadSpec(
                name=s.name, category=s.category, seed=s.seed,
                n_instructions=20_000, tenants=s.tenants,
            )
            for s in microservice_suite()[:2]
        ]
        evaluation = run_suite(specs, ["next_line"], include_baseline=False)
        assert set(evaluation.categories.values()) == {"microservice"}
        for spec in specs:
            assert evaluation.runs["next_line"][spec.name].stats.instructions > 0


class TestBackendIdentity:
    @pytest.fixture(autouse=True)
    def _no_env_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_multitenant_bit_identical(self, backend):
        trace = make_workload(_spec(("social", "search", "media"), n=40_000))
        reference = simulate(
            trace, make_prefetcher("entangling_4k"), config=SimConfig(),
            warmup_instructions=8_000,
        ).stats.signature()
        fast = simulate(
            trace, make_prefetcher("entangling_4k"),
            config=SimConfig(backend=backend), warmup_instructions=8_000,
        ).stats.signature()
        assert fast == reference
