"""Tests for the instruction-trace representation and file IO."""

import pytest

from repro.workloads.trace import (
    BranchType,
    Instruction,
    Trace,
    read_trace,
    trace_from_pcs,
    write_trace,
)


class TestBranchType:
    def test_calls_are_calls(self):
        assert BranchType.DIRECT_CALL.is_call
        assert BranchType.INDIRECT_CALL.is_call

    def test_non_calls(self):
        for bt in (BranchType.CONDITIONAL, BranchType.RETURN, BranchType.DIRECT_JUMP):
            assert not bt.is_call

    def test_indirect_classification(self):
        assert BranchType.INDIRECT_JUMP.is_indirect
        assert BranchType.INDIRECT_CALL.is_indirect
        assert not BranchType.DIRECT_JUMP.is_indirect

    def test_unconditional_classification(self):
        assert BranchType.DIRECT_JUMP.is_unconditional
        assert BranchType.RETURN.is_unconditional
        assert not BranchType.CONDITIONAL.is_unconditional
        assert not BranchType.NOT_BRANCH.is_unconditional


class TestInstruction:
    def test_defaults_are_not_branch(self):
        inst = Instruction(pc=0x400000)
        assert not inst.is_branch
        assert inst.next_pc == 0x400004

    def test_taken_branch_next_pc(self):
        inst = Instruction(
            pc=0x1000,
            branch_type=BranchType.DIRECT_JUMP,
            taken=True,
            target=0x2000,
        )
        assert inst.next_pc == 0x2000

    def test_not_taken_branch_falls_through(self):
        inst = Instruction(
            pc=0x1000,
            branch_type=BranchType.CONDITIONAL,
            taken=False,
            target=0x2000,
        )
        assert inst.next_pc == 0x1004

    def test_instruction_is_frozen(self):
        inst = Instruction(pc=0x1000)
        with pytest.raises(AttributeError):
            inst.pc = 0x2000


class TestTrace:
    def test_len_and_iteration(self):
        trace = Trace("t", [Instruction(pc=4 * i) for i in range(10)])
        assert len(trace) == 10
        assert [i.pc for i in trace] == [4 * i for i in range(10)]

    def test_indexing(self):
        trace = Trace("t", [Instruction(pc=0), Instruction(pc=4)])
        assert trace[1].pc == 4

    def test_footprint_lines(self):
        # 32 instructions over two 64-byte lines.
        trace = Trace("t", [Instruction(pc=4 * i) for i in range(32)])
        assert trace.footprint_lines() == 2

    def test_branch_fraction_empty(self):
        assert Trace("t", []).branch_fraction() == 0.0

    def test_branch_fraction(self):
        insts = [Instruction(pc=0)] * 3 + [
            Instruction(pc=12, branch_type=BranchType.DIRECT_JUMP, taken=True, target=0)
        ]
        assert Trace("t", insts).branch_fraction() == 0.25

    def test_taken_branch_count(self):
        insts = [
            Instruction(pc=0, branch_type=BranchType.CONDITIONAL, taken=True, target=8),
            Instruction(pc=8, branch_type=BranchType.CONDITIONAL, taken=False, target=0),
        ]
        assert Trace("t", insts).taken_branch_count() == 1

    def test_repr_mentions_name(self):
        assert "mytrace" in repr(Trace("mytrace", []))


class TestTraceFromPcs:
    def test_sequential_pcs_have_no_branches(self):
        trace = trace_from_pcs("t", [0, 4, 8, 12])
        assert all(not inst.is_branch for inst in trace)

    def test_discontinuity_becomes_taken_jump(self):
        trace = trace_from_pcs("t", [0, 4, 0x100])
        assert trace[1].branch_type == BranchType.DIRECT_JUMP
        assert trace[1].taken
        assert trace[1].target == 0x100

    def test_next_pc_chain_is_consistent(self):
        pcs = [0, 4, 0x100, 0x104, 0x40]
        trace = trace_from_pcs("t", pcs)
        for i in range(len(pcs) - 1):
            assert trace[i].next_pc == pcs[i + 1]


class TestTraceIO:
    def _roundtrip(self, trace, tmp_path, compress=True):
        path = str(tmp_path / "trace.bin")
        write_trace(trace, path, compress=compress)
        return read_trace(path)

    def test_roundtrip_preserves_everything(self, tmp_path):
        insts = [
            Instruction(pc=0x400000, size=4),
            Instruction(
                pc=0x400004,
                branch_type=BranchType.INDIRECT_CALL,
                taken=True,
                target=0x500000,
            ),
            Instruction(pc=0x500000, is_load=True, data_addr=0xDEAD00),
            Instruction(pc=0x500004, is_store=True, data_addr=0xBEEF00),
        ]
        original = Trace("w", insts, category="srv")
        loaded = self._roundtrip(original, tmp_path)
        assert loaded.name == "w"
        assert loaded.category == "srv"
        assert loaded.instructions == insts

    def test_roundtrip_uncompressed(self, tmp_path):
        original = Trace("w", [Instruction(pc=4 * i) for i in range(100)])
        loaded = self._roundtrip(original, tmp_path, compress=False)
        assert loaded.instructions == original.instructions

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOPE" + b"\x00" * 64)
        with pytest.raises(ValueError, match="magic"):
            read_trace(str(path))

    def test_truncated_payload_raises(self, tmp_path):
        path = str(tmp_path / "trace.bin")
        write_trace(Trace("w", [Instruction(pc=0)] * 8), path, compress=False)
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[:-10])
        with pytest.raises(ValueError, match="truncated"):
            read_trace(path)

    def test_empty_trace_roundtrip(self, tmp_path):
        loaded = self._roundtrip(Trace("empty", []), tmp_path)
        assert len(loaded) == 0

    def test_large_addresses_roundtrip(self, tmp_path):
        inst = Instruction(
            pc=(1 << 48) - 4,
            branch_type=BranchType.RETURN,
            taken=True,
            target=(1 << 47) + 64,
        )
        loaded = self._roundtrip(Trace("big", [inst]), tmp_path)
        assert loaded[0] == inst
