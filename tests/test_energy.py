"""Tests for the cache-energy model."""

import pytest

from repro.energy.cacti import CacheEnergyParams, all_levels, cacti_params_for
from repro.energy.model import EnergyModel, EnergyReport
from repro.sim.stats import SimStats


def stats_with(cycles=1000, l1i_reads=0, l1i_writes=0, l2_reads=0, llc_reads=0):
    stats = SimStats()
    stats.cycles = cycles
    stats.cache_accesses["L1I"].reads = l1i_reads
    stats.cache_accesses["L1I"].writes = l1i_writes
    stats.cache_accesses["L2C"].reads = l2_reads
    stats.cache_accesses["LLC"].reads = llc_reads
    return stats


class TestCactiParams:
    def test_all_levels_present(self):
        assert set(all_levels()) == {"L1I", "L1D", "L2C", "LLC"}

    def test_unknown_level(self):
        with pytest.raises(KeyError):
            cacti_params_for("L5")

    def test_larger_arrays_cost_more_per_access(self):
        assert cacti_params_for("LLC").read_nj > cacti_params_for("L1I").read_nj

    def test_leakage_dominated_by_large_arrays(self):
        """Table IV's L2/LLC trend requires leakage to dominate there."""
        assert (
            cacti_params_for("LLC").leakage_nj_per_cycle
            > cacti_params_for("L1I").leakage_nj_per_cycle * 50
        )


class TestEnergyModel:
    def test_dynamic_energy_accumulates(self):
        model = EnergyModel()
        a = model.report(stats_with(l1i_reads=1000))
        b = model.report(stats_with(l1i_reads=2000))
        assert b["L1I"] > a["L1I"]

    def test_leakage_scales_with_cycles(self):
        model = EnergyModel()
        short = model.report(stats_with(cycles=1000))
        long = model.report(stats_with(cycles=2000))
        assert long["L2C"] == pytest.approx(2 * short["L2C"])

    def test_exact_arithmetic(self):
        params = {
            level: CacheEnergyParams(read_nj=1.0, write_nj=2.0, leakage_nj_per_cycle=0.5)
            for level in ("L1I", "L1D", "L2C", "LLC")
        }
        model = EnergyModel(params)
        report = model.report(stats_with(cycles=10, l1i_reads=3, l1i_writes=4))
        assert report["L1I"] == pytest.approx(3 * 1.0 + 4 * 2.0 + 10 * 0.5)

    def test_missing_level_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            EnergyModel({"L1I": cacti_params_for("L1I")})

    def test_total(self):
        report = EnergyReport(per_level={"L1I": 1.0, "L1D": 2.0, "L2C": 3.0, "LLC": 4.0})
        assert report.total_nj == 10.0

    def test_normalization(self):
        a = EnergyReport(per_level={"L1I": 5.0, "L1D": 0, "L2C": 0, "LLC": 0})
        b = EnergyReport(per_level={"L1I": 10.0, "L1D": 0, "L2C": 0, "LLC": 0})
        assert a.normalized_to(b) == 0.5

    def test_fewer_cycles_lower_hierarchy_energy(self):
        """A faster run (prefetching) spends less leakage at L2/LLC."""
        model = EnergyModel()
        slow = model.report(stats_with(cycles=10_000, l2_reads=100))
        fast = model.report(stats_with(cycles=6_000, l2_reads=150))
        assert fast["L2C"] < slow["L2C"]

    def test_normalized_to_zero_baseline(self):
        zero = EnergyReport(per_level={"L1I": 0, "L1D": 0, "L2C": 0, "LLC": 0})
        some = EnergyReport(per_level={"L1I": 5.0, "L1D": 0, "L2C": 0, "LLC": 0})
        assert some.normalized_to(zero) == 0.0
