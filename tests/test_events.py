"""Tests for the unified telemetry bus (repro.obs.events) and friends.

Covers the event schema contract (versioned, round-trippable), the
append-only JSONL run ledger (rotation, torn-tail tolerance, concurrent
multi-process appenders), the crash flight recorder, the status
aggregator, the stdlib metrics endpoint, the ``repro events`` /
``repro top`` CLIs — and the two load-bearing integration properties:
every engine occurrence appears in the ledger *exactly once*, and a run
without telemetry never imports this machinery (the zero-cost contract,
pinned with a subprocess) and stays bit-identical.
"""

import json
import multiprocessing
import os
import subprocess
import sys
import textwrap
import time
import urllib.error
import urllib.request

import pytest

from repro.analysis.experiments import run_suite
from repro.analysis.runcache import RunCache
from repro.obs.events import (
    DEFAULT_FLIGHT_EVENTS,
    EVENT_TYPES,
    SCHEMA_VERSION,
    EventBus,
    EventLedger,
    FlightRecorder,
    StatusAggregator,
    TelemetryEvent,
    event_matches,
    flight_artifact_name,
    follow_events,
    open_bus,
    read_events,
    rotated_path,
    set_event_bus,
    summarize_events,
)
from repro.workloads.generators import WorkloadSpec

SPEC_A = WorkloadSpec(name="ev_a", category="srv", seed=21, n_instructions=30_000)
SPEC_B = WorkloadSpec(name="ev_b", category="srv", seed=22, n_instructions=30_000)
WARMUP = 10_000

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _repro(args, env_extra=None, timeout=300):
    env = dict(os.environ, PYTHONPATH=SRC)
    env.update(env_extra or {})
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, timeout=timeout,
    )


class TestEventSchema:
    def test_round_trip(self):
        event = TelemetryEvent(
            type="task_finished", seq=7, ts=123.5, pid=42,
            run="cafe" * 8, config="entangling_4k", workload="srv_0",
            attempt=2, cycle=9001, payload={"ipc": 1.5},
        )
        back = TelemetryEvent.from_dict(json.loads(event.to_json_line()))
        assert back == event
        assert back.schema_version == SCHEMA_VERSION

    def test_label_joins_config_and_workload(self):
        event = TelemetryEvent(type="heartbeat", config="no", workload="w")
        assert event.label == "no/w"
        assert TelemetryEvent(type="heartbeat", config="no").label == "no"

    def test_rejects_wrong_schema_version(self):
        data = TelemetryEvent(type="heartbeat").to_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            TelemetryEvent.from_dict(data)

    def test_rejects_missing_type_and_non_dict(self):
        with pytest.raises(ValueError):
            TelemetryEvent.from_dict({"schema_version": SCHEMA_VERSION})
        with pytest.raises(ValueError):
            TelemetryEvent.from_dict(["not", "a", "dict"])

    def test_bus_emissions_use_known_types(self, tmp_path):
        bus = open_bus(str(tmp_path / "ev.jsonl"))
        for type_ in EVENT_TYPES:
            bus.emit(type_, label="cfg/w")
        bus.close()
        read = read_events(str(tmp_path / "ev.jsonl"))
        assert [e.type for e in read.events] == list(EVENT_TYPES)
        # seq is strictly monotonic and 1-based.
        assert [e.seq for e in read.events] == list(
            range(1, len(EVENT_TYPES) + 1)
        )


class TestLedgerDurability:
    def test_append_read_round_trip(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        ledger = EventLedger(path)
        events = [
            TelemetryEvent(type="task_started", seq=i, ts=float(i),
                           config="no", workload=f"w{i}")
            for i in range(1, 6)
        ]
        for event in events:
            ledger.append(event)
        ledger.close()
        read = read_events(path)
        assert read.ok and read.events == events

    def test_torn_tail_is_tolerated_and_counted(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        ledger = EventLedger(path)
        ledger.append(TelemetryEvent(type="heartbeat", seq=1))
        ledger.close()
        # A writer died mid-append: no trailing newline, half a record.
        with open(path, "ab") as fh:
            fh.write(b'{"schema_version": 1, "type": "task_fin')
        read = read_events(path)
        assert len(read.events) == 1
        assert read.torn == 1
        assert read.invalid == 0
        assert not read.ok

    def test_mid_file_garbage_counts_invalid(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with open(path, "w") as fh:
            fh.write(TelemetryEvent(type="heartbeat", seq=1).to_json_line())
            fh.write("\n")
            fh.write("%% not json at all %%\n")
            fh.write(TelemetryEvent(type="heartbeat", seq=2).to_json_line())
            fh.write("\n")
        read = read_events(path)
        assert [e.seq for e in read.events] == [1, 2]
        assert read.invalid == 1 and read.torn == 0

    def test_missing_file_is_an_empty_read(self, tmp_path):
        read = read_events(str(tmp_path / "never_written.jsonl"))
        assert read.ok and read.events == [] and read.files == []

    def test_rotation_keeps_both_files_readable(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        ledger = EventLedger(path, max_bytes=400)
        for i in range(1, 21):
            ledger.append(TelemetryEvent(type="heartbeat", seq=i))
        ledger.close()
        assert ledger.rotations >= 1
        assert os.path.exists(rotated_path(path))
        read = read_events(path)
        # Rotation drops at most the pre-`.1` generations, never records
        # within a file; the surviving stream is contiguous and ordered.
        seqs = [e.seq for e in read.events]
        assert seqs == sorted(seqs) and seqs[-1] == 20
        assert set(read.files) == {rotated_path(path), path}

    def test_follow_survives_rotation_mid_follow(self, tmp_path):
        """Regression: ``repro events --follow`` used to go silent when
        an appender rotated the ledger (the follower kept polling the
        renamed-away ``.1`` inode).  The follower must drain the old
        inode to EOF — including records appended *between its last poll
        and the swap* — then reopen the new file, losing nothing."""
        path = str(tmp_path / "ledger.jsonl")

        def append(seq):
            with open(path, "a") as fh:
                fh.write(TelemetryEvent(type="heartbeat", seq=seq)
                         .to_json_line() + "\n")

        append(1)
        append(2)
        gen = follow_events(path, duration=60.0, poll=0.01)
        try:
            assert next(gen).seq == 1
            assert next(gen).seq == 2
            # Rotation mid-follow: one more record lands on the old
            # inode, then the swap, then new records on the new inode.
            append(3)
            os.replace(path, rotated_path(path))
            append(4)
            append(5)
            assert [next(gen).seq for _ in range(3)] == [3, 4, 5]
            # A second rotation on the same follow: still no loss.
            os.replace(path, rotated_path(path))
            append(6)
            assert next(gen).seq == 6
        finally:
            gen.close()

    def test_follow_survives_in_place_truncation(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")

        def append(seq):
            with open(path, "a") as fh:
                fh.write(TelemetryEvent(type="heartbeat", seq=seq)
                         .to_json_line() + "\n")

        append(1)
        append(2)
        gen = follow_events(path, duration=60.0, poll=0.01)
        try:
            assert next(gen).seq == 1
            assert next(gen).seq == 2
            with open(path, "w"):
                pass  # truncated in place (same inode), now shorter
            append(3)
            assert next(gen).seq == 3
        finally:
            gen.close()

    def test_follow_waits_out_vanished_path(self, tmp_path):
        """A rotation's tiny window where ``path`` does not exist (or a
        late-starting follower) must not kill the follow."""
        path = str(tmp_path / "ledger.jsonl")
        gen = follow_events(path, duration=60.0, poll=0.01)
        try:
            with open(path, "a") as fh:
                fh.write(TelemetryEvent(type="heartbeat", seq=9)
                         .to_json_line() + "\n")
            assert next(gen).seq == 9
        finally:
            gen.close()

    def test_max_bytes_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_EVENTS_MAX_BYTES", "123")
        assert EventLedger(str(tmp_path / "l.jsonl")).max_bytes == 123
        monkeypatch.setenv("REPRO_EVENTS_MAX_BYTES", "-5")
        ledger = EventLedger(str(tmp_path / "l2.jsonl"))
        assert ledger.max_bytes > 123  # non-positive falls back
        monkeypatch.setenv("REPRO_EVENTS_MAX_BYTES", "junk")
        with pytest.raises(ValueError):
            EventLedger(str(tmp_path / "l3.jsonl"))

    def test_concurrent_appenders_never_interleave(self, tmp_path):
        path = str(tmp_path / "shared.jsonl")
        n_procs, n_records = 4, 50
        ctx = multiprocessing.get_context("spawn")
        procs = [
            ctx.Process(target=_append_worker, args=(path, pid, n_records))
            for pid in range(n_procs)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        read = read_events(path)
        # Every record from every process survives, intact: O_APPEND +
        # one os.write per record means no interleaving mid-line.
        assert read.torn == 0 and read.invalid == 0
        assert len(read.events) == n_procs * n_records
        per_writer = {}
        for event in read.events:
            per_writer.setdefault(event.payload["writer"], []).append(
                event.payload["i"]
            )
        for writer, seen in per_writer.items():
            assert seen == list(range(n_records)), f"writer {writer}"


def _append_worker(path, writer, n_records):
    sys.path.insert(0, SRC)
    from repro.obs.events import EventLedger, TelemetryEvent

    ledger = EventLedger(path)
    for i in range(n_records):
        ledger.append(TelemetryEvent(
            type="heartbeat", seq=i, pid=os.getpid(),
            payload={"writer": writer, "i": i, "pad": "x" * 64},
        ))
    ledger.close()


class TestFlightRecorder:
    def test_ring_is_bounded_and_keeps_newest(self):
        flight = FlightRecorder(capacity=4)
        for i in range(10):
            flight.record(TelemetryEvent(type="heartbeat", seq=i))
        snap = flight.snapshot()
        assert [e.seq for e in snap] == [6, 7, 8, 9]
        assert flight.total_seen == 10

    def test_default_capacity_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLIGHT_EVENTS", raising=False)
        assert FlightRecorder().capacity == DEFAULT_FLIGHT_EVENTS
        monkeypatch.setenv("REPRO_FLIGHT_EVENTS", "7")
        assert FlightRecorder().capacity == 7

    def test_dump_writes_loadable_envelope(self, tmp_path):
        flight = FlightRecorder(capacity=8)
        flight.record(TelemetryEvent(type="task_started", seq=1,
                                     config="no", workload="w"))
        path = str(tmp_path / flight_artifact_name("no/w"))
        flight.dump(path, reason="injected crash", label="no/w", attempt=1)
        data = json.load(open(path))
        assert data["kind"] == "flight_recording"
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["reason"] == "injected crash"
        assert data["label"] == "no/w" and data["attempt"] == 1
        assert len(data["events"]) == 1
        # The embedded events round-trip through the schema.
        assert TelemetryEvent.from_dict(data["events"][0]).seq == 1

    def test_artifact_name_sanitizes_labels(self):
        assert flight_artifact_name("no/w") == "flight-no_w.json"
        assert flight_artifact_name("") == "flight-task.json"


class TestStatusAggregator:
    def _feed(self, status, *events):
        for event in events:
            status.handle(event)

    def test_lifecycle_counts(self):
        status = StatusAggregator()
        self._feed(
            status,
            TelemetryEvent(type="suite_started", ts=1.0,
                           payload={"n_tasks": 3}),
            TelemetryEvent(type="task_started", ts=1.0, config="no",
                           workload="a"),
            TelemetryEvent(type="task_finished", ts=2.0, config="no",
                           workload="a"),
            TelemetryEvent(type="task_started", ts=2.0, config="no",
                           workload="b"),
        )
        assert (status.total, status.done, status.running) == (3, 1, 1)
        assert status.eta_seconds() is not None
        assert status.status_line().startswith("status: 1/3 done, 1 running")

    def test_quarantine_and_cache(self):
        status = StatusAggregator()
        self._feed(
            status,
            TelemetryEvent(type="quarantined", ts=1.0, config="no",
                           workload="a"),
            TelemetryEvent(type="cache_hit", ts=1.0, config="no",
                           workload="b"),
            TelemetryEvent(type="cache_hit", ts=1.0),  # unlabeled (tune)
        )
        assert (status.failed, status.cached, status.done) == (1, 2, 1)

    def test_enrichment_events_do_not_invent_rows(self):
        status = StatusAggregator()
        self._feed(
            status,
            TelemetryEvent(type="sanitizer", ts=1.0, config="no",
                           workload="a"),
            TelemetryEvent(type="cache_store", ts=1.0, config="no",
                           workload="b"),
            TelemetryEvent(type="flight_dump", ts=1.0, config="no",
                           workload="c"),
        )
        assert status.rows() == []


class TestEventBus:
    def test_subscriber_exceptions_are_swallowed(self, tmp_path):
        bus = open_bus(str(tmp_path / "ev.jsonl"))
        seen = []

        def bad(event):
            raise RuntimeError("subscriber bug")

        bus.subscribe(bad)
        bus.subscribe(seen.append)
        bus.emit("heartbeat", label="no/w")
        bus.close()
        assert [e.type for e in seen] == ["heartbeat"]
        assert len(read_events(str(tmp_path / "ev.jsonl")).events) == 1

    def test_label_splits_into_config_and_workload(self, tmp_path):
        path = str(tmp_path / "ev.jsonl")
        bus = open_bus(path)
        bus.emit("task_started", label="entangling_4k/srv_3")
        bus.emit("task_started", label="plain")
        bus.close()
        first, second = read_events(path).events
        assert (first.config, first.workload) == ("entangling_4k", "srv_3")
        assert (second.config, second.workload) == ("plain", "")

    def test_set_event_bus_returns_previous(self):
        bus = EventBus()
        previous = set_event_bus(bus)
        try:
            assert set_event_bus(previous) is bus
        finally:
            set_event_bus(previous)

    def test_event_matches_filters(self):
        event = TelemetryEvent(type="task_failed", ts=10.0, run="k1",
                               config="no", workload="w")
        assert event_matches(event, types=["task_failed"])
        assert not event_matches(event, types=["heartbeat"])
        assert event_matches(event, run="k1") and not event_matches(
            event, run="k2"
        )
        assert event_matches(event, since=5.0, until=15.0)
        assert not event_matches(event, since=11.0)
        assert not event_matches(event, until=9.0)


class TestRunSuiteIntegration:
    def _counts(self, path):
        return summarize_events(read_events(path))["counts"]

    def test_exactly_once_parallel(self, tmp_path):
        path = str(tmp_path / "ev.jsonl")
        evaluation = run_suite(
            [SPEC_A, SPEC_B], ["no", "next_line"],
            warmup_instructions=WARMUP, include_baseline=False, jobs=2,
            cache=None, checkpoint=None, events_path=path,
        )
        assert evaluation.is_complete()
        counts = self._counts(path)
        assert counts["suite_started"] == 1
        assert counts["suite_finished"] == 1
        assert counts["task_started"] == 4
        assert counts["task_finished"] == 4
        assert "task_failed" not in counts and "quarantined" not in counts
        read = read_events(path)
        assert read.ok
        # Provenance: every task event carries the run key of its task.
        runs = {e.label: e.run for e in read.events
                if e.type == "task_started"}
        assert len(runs) == 4 and all(
            len(key) == 32 for key in runs.values()
        )

    def test_exactly_once_serial(self, tmp_path):
        path = str(tmp_path / "ev.jsonl")
        evaluation = run_suite(
            [SPEC_A], ["no"], warmup_instructions=WARMUP,
            include_baseline=False, jobs=1, cache=None, checkpoint=None,
            events_path=path,
        )
        assert evaluation.is_complete()
        counts = self._counts(path)
        assert counts["task_started"] == 1
        assert counts["task_finished"] == 1
        assert counts["suite_started"] == counts["suite_finished"] == 1

    def test_repro_events_env_var_enables_ledger(self, tmp_path, monkeypatch):
        path = str(tmp_path / "env.jsonl")
        monkeypatch.setenv("REPRO_EVENTS", path)
        run_suite(
            [SPEC_A], ["no"], warmup_instructions=WARMUP,
            include_baseline=False, jobs=1, cache=None, checkpoint=None,
        )
        assert self._counts(path)["task_finished"] == 1

    def test_cache_hits_surface_exactly_once(self, tmp_path):
        path = str(tmp_path / "ev.jsonl")
        cache = RunCache()
        for _ in range(2):
            run_suite(
                [SPEC_A], ["no"], warmup_instructions=WARMUP,
                include_baseline=False, jobs=2, cache=cache,
                checkpoint=None, events_path=path,
            )
        counts = self._counts(path)
        assert counts["cache_miss"] == 1
        assert counts["cache_store"] == 1
        assert counts["cache_hit"] == 1
        assert counts["task_started"] == 1  # second pass never simulated

    def test_sanitizer_reports_reach_the_ledger(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "report")
        path = str(tmp_path / "ev.jsonl")
        run_suite(
            [SPEC_A], ["next_line"], warmup_instructions=WARMUP,
            include_baseline=False, jobs=2, cache=None, checkpoint=None,
            events_path=path,
        )
        reports = [e for e in read_events(path).events
                   if e.type == "sanitizer"]
        assert len(reports) == 1
        payload = reports[0].payload
        assert payload["ok"] and payload["checks"] > 0
        assert reports[0].workload == SPEC_A.name

    def test_injected_crash_dumps_flight_recording(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:1.0:all")
        monkeypatch.setenv("REPRO_TASK_RETRIES", "1")
        monkeypatch.setenv("REPRO_TASK_BACKOFF", "0.01")
        path = str(tmp_path / "ev.jsonl")
        evaluation = run_suite(
            [SPEC_A], ["no"], warmup_instructions=WARMUP,
            include_baseline=False, jobs=2, cache=None, checkpoint=None,
            events_path=path,
        )
        assert not evaluation.is_complete()
        counts = self._counts(path)
        assert counts["quarantined"] == len(evaluation.faults.quarantined) == 1
        assert counts["attempt_failed"] == 2  # initial attempt + 1 retry
        # The flight artifact is linked from the FaultReport, exists,
        # and replays the task's last events.
        assert list(evaluation.faults.flight_recordings) == ["no/ev_a"]
        artifact = evaluation.faults.flight_recordings["no/ev_a"]
        data = json.load(open(artifact))
        assert data["kind"] == "flight_recording"
        assert "quarantined" in data["reason"]
        assert data["events"]
        # flight_dump events in the ledger point at the artifact.
        dumps = [e for e in read_events(path).events
                 if e.type == "flight_dump"]
        assert any(e.payload["path"] == artifact for e in dumps)


class TestZeroCost:
    def test_untelemetered_suite_identical_and_never_imports_events(
        self, tmp_path
    ):
        script = tmp_path / "plain.py"
        script.write_text(textwrap.dedent(
            """
            import json, sys
            from repro.analysis.experiments import run_suite
            from repro.workloads.generators import WorkloadSpec

            spec = WorkloadSpec(
                name="ev_a", category="srv", seed=21, n_instructions=30000
            )
            evaluation = run_suite(
                [spec], ["no"], warmup_instructions=10000,
                include_baseline=False, jobs=2, cache=None, checkpoint=None,
            )
            assert "repro.obs.events" not in sys.modules, "bus leaked"
            assert "repro.obs.exporthttp" not in sys.modules, "http leaked"
            print(json.dumps(
                evaluation.runs["no"]["ev_a"].stats.signature()
            ))
            """
        ))
        env = dict(os.environ, PYTHONPATH=SRC)
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        theirs = json.loads(proc.stdout)

        evaluation = run_suite(
            [SPEC_A], ["no"], warmup_instructions=WARMUP,
            include_baseline=False, jobs=2, cache=None, checkpoint=None,
            events_path=str(tmp_path / "ev.jsonl"),
        )
        ours = json.loads(json.dumps(
            evaluation.runs["no"]["ev_a"].stats.signature()
        ))
        assert ours == theirs


class TestMetricsEndpoint:
    def _scrape(self, url):
        return urllib.request.urlopen(url, timeout=10).read().decode()

    def _assert_prometheus_text(self, body):
        import re

        for line in body.splitlines():
            if not line or line.startswith("#"):
                continue
            assert re.match(
                r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+0-9.eE]+$", line
            ), line

    def test_bus_source_serves_live_gauges(self):
        from repro.obs.exporthttp import MetricsHTTPServer, bus_metrics_source

        bus = open_bus(None)
        bus.emit("suite_started", payload={"n_tasks": 2})
        bus.emit("task_started", label="no/w")
        bus.emit("task_finished", label="no/w")
        server = MetricsHTTPServer(bus_metrics_source(bus), port=0)
        server.start()
        try:
            body = self._scrape(server.url)
        finally:
            server.stop()
            bus.close()
        self._assert_prometheus_text(body)
        assert "repro_engine_tasks_total 2" in body
        assert "repro_engine_done 1" in body
        assert 'repro_events_total{type="task_finished"} 1' in body

    def test_ledger_source_and_health_endpoints(self, tmp_path):
        from repro.obs.exporthttp import (
            MetricsHTTPServer,
            ledger_metrics_source,
        )

        path = str(tmp_path / "ev.jsonl")
        bus = open_bus(path)
        bus.emit("task_started", label="no/w")
        bus.emit("quarantined", label="no/w")
        bus.close()
        server = MetricsHTTPServer(ledger_metrics_source(path), port=0)
        server.start()
        try:
            body = self._scrape(server.url)
            base = server.url.rsplit("/", 1)[0]
            health = self._scrape(base + "/healthz")
            with pytest.raises(urllib.error.HTTPError):
                self._scrape(base + "/nope")
        finally:
            server.stop()
        self._assert_prometheus_text(body)
        assert "repro_engine_failed 1" in body
        assert "repro_events_torn 0" in body
        assert health == "ok\n"

    def test_failing_source_degrades_to_comment(self):
        from repro.obs.exporthttp import MetricsHTTPServer

        def broken():
            raise RuntimeError("source exploded")

        server = MetricsHTTPServer(broken, port=0)
        server.start()
        try:
            body = self._scrape(server.url)
        finally:
            server.stop()
        assert body.startswith("# metrics source failed:")


class TestEventsCLI:
    def _ledger(self, tmp_path):
        path = str(tmp_path / "ev.jsonl")
        bus = open_bus(path)
        bus.emit("suite_started", ts=100.0, payload={"n_tasks": 2})
        bus.emit("task_started", label="no/w1", ts=101.0)
        bus.emit("task_finished", label="no/w1", ts=102.0)
        bus.emit("task_started", label="next_line/w1", ts=103.0)
        bus.emit("quarantined", label="next_line/w1", ts=104.0)
        bus.emit("suite_finished", ts=105.0, payload={"completed": True})
        bus.close()
        return path

    def test_summary_counts(self, tmp_path, capsys):
        from repro.cli import main

        path = self._ledger(tmp_path)
        assert main(["events", path, "--summary"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["counts"]["quarantined"] == 1
        assert summary["total"] == 6
        assert summary["torn"] == 0

    def test_type_and_config_filters(self, tmp_path, capsys):
        from repro.cli import main

        path = self._ledger(tmp_path)
        assert main(["events", path, "--type", "task_started",
                     "--config", "no"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["workload"] == "w1"

    def test_follow_bounded_by_duration(self, tmp_path, capsys):
        from repro.cli import main

        path = self._ledger(tmp_path)
        start = time.time()
        assert main(["events", path, "--follow", "--duration", "0.3"]) == 0
        assert time.time() - start < 10
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 6  # existing records stream out immediately

    def test_missing_path_is_exit_2(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("REPRO_EVENTS", raising=False)
        assert main(["events", "--summary"]) == 2
        assert "REPRO_EVENTS" in capsys.readouterr().err

    def test_top_once_renders_table(self, tmp_path, capsys):
        from repro.cli import main

        path = self._ledger(tmp_path)
        assert main(["top", path, "--once"]) == 0
        out = capsys.readouterr().out
        assert "status: 1/2 done" in out
        assert "1 failed" in out
        assert "next_line/w1" in out and "quarantined" in out

    def test_metrics_serve_scrapes(self, tmp_path):
        import re

        path = self._ledger(tmp_path)
        env = dict(os.environ, PYTHONPATH=SRC)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "metrics-serve", path,
             "--port", "0", "--duration", "10"],
            stderr=subprocess.PIPE, text=True, env=env,
        )
        try:
            line = proc.stderr.readline()
            match = re.search(r"http://\S+", line)
            assert match, f"no URL announced: {line!r}"
            body = urllib.request.urlopen(match.group(0), timeout=10).read()
            assert b"repro_engine_failed 1" in body
        finally:
            proc.kill()
            proc.wait(timeout=30)


class TestCLITelemetry:
    def test_run_writes_ledger_and_sanitizer_event(self, tmp_path):
        trace = str(tmp_path / "t.trc")
        gen = _repro(["gen", "--category", "srv", "--seed", "4",
                      "--instructions", "40000", trace])
        assert gen.returncode == 0, gen.stderr
        path = str(tmp_path / "ev.jsonl")
        run = _repro(["run", trace, "--prefetcher", "next_line",
                      "--warmup", "10000", "--check", "--events", path])
        assert run.returncode == 0, run.stderr
        counts = summarize_events(read_events(path))["counts"]
        assert counts["task_started"] == counts["task_finished"] == 1
        assert counts["sanitizer"] == 1
        assert counts["suite_started"] == counts["suite_finished"] == 1

    def test_sweep_quarantine_dumps_flight_recording(self, tmp_path):
        trace = str(tmp_path / "t.trc")
        gen = _repro(["gen", "--category", "srv", "--seed", "4",
                      "--instructions", "40000", trace])
        assert gen.returncode == 0, gen.stderr
        path = str(tmp_path / "ev.jsonl")
        sweep = _repro(
            ["sweep", trace, "--prefetchers", "no,bogus_config",
             "--warmup", "10000", "--retries", "0", "--events", path],
            env_extra={"REPRO_TASK_BACKOFF": "0.01"},
        )
        assert sweep.returncode == 0, sweep.stderr  # one config survived
        counts = summarize_events(read_events(path))["counts"]
        assert counts["quarantined"] == 1
        artifact = tmp_path / flight_artifact_name("bogus_config")
        assert artifact.exists()
        data = json.load(open(artifact))
        assert data["kind"] == "flight_recording"
        assert "flight recording" in sweep.stderr
