"""Tests for the confidence counter and History buffer."""

import pytest

from repro.core.confidence import SaturatingCounter
from repro.core.history import HistoryBuffer, HistoryEntry


class TestSaturatingCounter:
    def test_defaults_to_max(self):
        counter = SaturatingCounter(bits=2)
        assert counter.value == 3
        assert counter.is_max

    def test_saturates_high(self):
        counter = SaturatingCounter(bits=2)
        counter.increment()
        assert counter.value == 3

    def test_saturates_low(self):
        counter = SaturatingCounter(bits=2, initial=0)
        counter.decrement()
        assert counter.value == 0
        assert counter.is_zero

    def test_up_down(self):
        counter = SaturatingCounter(bits=2, initial=1)
        assert counter.increment() == 2
        assert counter.decrement() == 1
        assert counter.decrement() == 0

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)

    def test_invalid_initial(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=2, initial=9)

    def test_int_conversion(self):
        assert int(SaturatingCounter(bits=3, initial=5)) == 5


class TestHistoryEntry:
    def test_covers_or_abuts(self):
        entry = HistoryEntry(line_addr=100, timestamp=0, bb_size=3)
        # Block covers 100..103, plus the directly-following line 104.
        for line in range(100, 105):
            assert entry.covers_or_abuts(line)
        assert not entry.covers_or_abuts(99)
        assert not entry.covers_or_abuts(105)


class TestHistoryBuffer:
    def test_bounded_size(self):
        history = HistoryBuffer(size=4)
        for i in range(10):
            history.push(i, timestamp=i)
        assert len(history) == 4
        assert [e.line_addr for e in history] == [6, 7, 8, 9]

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            HistoryBuffer(0)

    def test_newest(self):
        history = HistoryBuffer(4)
        assert history.newest() is None
        history.push(1, 10)
        history.push(2, 20)
        assert history.newest().line_addr == 2

    def test_remove(self):
        history = HistoryBuffer(4)
        entry = history.push(1, 10)
        history.push(2, 20)
        history.remove(entry)
        assert [e.line_addr for e in history] == [2]

    def test_remove_aged_out_entry_is_noop(self):
        history = HistoryBuffer(2)
        entry = history.push(1, 10)
        history.push(2, 20)
        history.push(3, 30)  # entry for line 1 aged out
        history.remove(entry)
        assert len(history) == 2

    def test_find_source_picks_most_recent_eligible(self):
        history = HistoryBuffer(8)
        history.push(10, timestamp=100)
        history.push(20, timestamp=200)
        history.push(30, timestamp=300)
        found = history.find_source(deadline=250)
        assert found.line_addr == 20

    def test_find_source_none_when_all_too_young(self):
        history = HistoryBuffer(8)
        history.push(10, timestamp=100)
        assert history.find_source(deadline=50) is None

    def test_find_source_excludes_line(self):
        history = HistoryBuffer(8)
        history.push(10, timestamp=100)
        history.push(20, timestamp=150)
        found = history.find_source(deadline=200, exclude_line=20)
        assert found.line_addr == 10

    def test_sources_iterate_newest_first(self):
        history = HistoryBuffer(8)
        for i, ts in enumerate((10, 20, 30)):
            history.push(i, ts)
        lines = [e.line_addr for e in history.sources_not_younger_than(100)]
        assert lines == [2, 1, 0]

    def test_merge_candidate_found(self):
        history = HistoryBuffer(8)
        a = history.push(100, 10)
        a.bb_size = 2  # covers 100..102, abuts 103
        history.push(500, 20)
        candidate = history.find_merge_candidate(103, merge_distance=4)
        assert candidate is a

    def test_merge_candidate_respects_distance(self):
        history = HistoryBuffer(8)
        a = history.push(100, 10)
        a.bb_size = 2
        for i in range(4):
            history.push(1000 + 10 * i, 20 + i)
        # Distance 2 only scans the two most recent entries.
        assert history.find_merge_candidate(103, merge_distance=2) is None
        assert history.find_merge_candidate(103, merge_distance=8) is a

    def test_merge_candidate_excludes_self(self):
        history = HistoryBuffer(8)
        entry = history.push(100, 10)
        entry.bb_size = 2
        assert history.find_merge_candidate(
            101, merge_distance=4, exclude=entry
        ) is None
