"""End-to-end integration tests: the paper's headline claims in miniature.

These use one small workload per category, so they are slower than unit
tests but still complete in tens of seconds.  They pin down the *shape* of
the results, the property the reproduction is graded on.
"""

import pytest

from repro.analysis.experiments import run_suite
from repro.core import make_entangling
from repro.prefetchers import IdealPrefetcher, NullPrefetcher, make_prefetcher
from repro.sim import SimConfig, simulate
from repro.workloads.generators import WorkloadSpec

SUITE = [
    WorkloadSpec(name="i_crypto", category="crypto", seed=21, n_instructions=120_000),
    WorkloadSpec(name="i_int", category="int", seed=22, n_instructions=120_000),
    WorkloadSpec(name="i_fp", category="fp", seed=23, n_instructions=120_000),
    WorkloadSpec(name="i_srv", category="srv", seed=24, n_instructions=120_000),
]

CONFIGS = ["next_line", "sn4l", "rdip", "mana_4k", "entangling_4k", "ideal"]


@pytest.fixture(scope="module")
def evaluation():
    return run_suite(SUITE, CONFIGS)


class TestHeadlineClaims:
    def test_entangling_speeds_up_every_workload(self, evaluation):
        """The paper: Entangling never degrades below no-prefetch."""
        for workload, ratio in evaluation.normalized_ipc("entangling_4k").items():
            assert ratio >= 0.99, f"{workload} degraded: {ratio}"

    def test_entangling_beats_rdip(self, evaluation):
        assert evaluation.geomean_speedup("entangling_4k") > (
            evaluation.geomean_speedup("rdip")
        )

    def test_entangling_beats_sn4l(self, evaluation):
        assert evaluation.geomean_speedup("entangling_4k") > (
            evaluation.geomean_speedup("sn4l")
        )

    def test_entangling_beats_mana_at_similar_budget(self, evaluation):
        """Entangling-4K (40.7KB) vs MANA-4K (17.25KB): the paper shows
        Entangling ahead even against MANA's larger configurations."""
        assert evaluation.geomean_speedup("entangling_4k") > (
            evaluation.geomean_speedup("mana_4k")
        )

    def test_ideal_is_upper_bound(self, evaluation):
        ideal = evaluation.geomean_speedup("ideal")
        for config in CONFIGS:
            if config == "ideal":
                continue
            assert evaluation.geomean_speedup(config) <= ideal + 1e-9

    def test_entangling_has_best_accuracy(self, evaluation):
        """Figure 10: Entangling achieves the highest accuracy."""
        import statistics

        mean_acc = {
            c: statistics.mean(evaluation.accuracy(c).values())
            for c in ("next_line", "sn4l", "rdip", "mana_4k", "entangling_4k")
        }
        best = max(mean_acc, key=mean_acc.get)
        assert best == "entangling_4k", mean_acc

    def test_entangling_coverage_dominates_nextline(self, evaluation):
        import statistics

        ent = statistics.mean(evaluation.coverage("entangling_4k").values())
        nl = statistics.mean(evaluation.coverage("next_line").values())
        assert ent > nl

    def test_entangling_reduces_miss_ratio(self, evaluation):
        for workload in evaluation.workloads():
            ent = evaluation.stats("entangling_4k", workload).l1i_miss_ratio
            base = evaluation.stats("no", workload).l1i_miss_ratio
            assert ent < base


class TestTableSizeScaling:
    def test_larger_tables_never_much_worse(self):
        """Entangling-8K should be at least on par with 2K (Figure 6)."""
        suite = [SUITE[3]]  # srv: the capacity-pressure category
        ev = run_suite(suite, ["entangling_2k", "entangling_8k"])
        small = ev.geomean_speedup("entangling_2k")
        large = ev.geomean_speedup("entangling_8k")
        assert large >= small * 0.97


class TestEntanglingInternalShape:
    def test_fp_has_larger_blocks_than_srv(self):
        """Figure 14: fp triggers the biggest basic blocks, srv the smallest."""
        sizes = {}
        for spec in (SUITE[2], SUITE[3]):  # fp, srv
            from repro.analysis.experiments import _cached_units, _cached_workload

            pf = make_entangling(4096)
            simulate(
                _cached_workload(spec), pf,
                units=_cached_units(spec, 64),
                warmup_instructions=40_000,
            )
            sizes[spec.category] = pf.estats.avg_src_bb_size
        assert sizes["fp"] > sizes["srv"]

    def test_timeliness_late_fraction_small(self):
        """Entangling's design goal: far fewer late prefetches than NextLine."""
        from repro.analysis.experiments import _cached_units, _cached_workload

        spec = SUITE[3]
        ent = simulate(
            _cached_workload(spec), make_entangling(4096),
            units=_cached_units(spec, 64), warmup_instructions=40_000,
        ).stats
        nl = simulate(
            _cached_workload(spec), make_prefetcher("next_line"),
            units=_cached_units(spec, 64), warmup_instructions=40_000,
        ).stats
        ent_late_frac = ent.late_prefetches / max(1, ent.prefetches_sent)
        nl_late_frac = nl.late_prefetches / max(1, nl.prefetches_sent)
        assert ent_late_frac < nl_late_frac
