"""Tests for the multi-objective configuration tuner (``repro tune``).

Three guarantees matter most and are asserted end-to-end on tiny
workloads: seeded searches are bit-reproducible, a resumed search serves
every previously finished genome from the disk cache without
re-simulating, and the emitted front is mutually nondominated.
"""

import os

import pytest

from repro.analysis.checkpoint import CheckpointManifest
from repro.analysis.pareto import dominates
from repro.analysis.runcache import RunCache
from repro.analysis.tune import (
    DEFAULT_SPACE,
    GeneticTuner,
    GridTuner,
    RandomTuner,
    TunableParam,
    genome_configs,
    genome_name,
    make_tuner,
    split_suite,
)
from repro.check.errors import ConfigError
from repro.sim.config import SimConfig
from repro.workloads.generators import WorkloadSpec

TINY = [
    WorkloadSpec(name="tn_srv", category="srv", seed=3, n_instructions=12_000),
    WorkloadSpec(name="tn_int", category="int", seed=5, n_instructions=12_000),
]

#: Small space so grid/genetic tests stay fast while still exercising
#: both parameter kinds (entangling + sim).
SMALL_SPACE = (
    TunableParam("entries", "entangling", (1024, 4096)),
    TunableParam("history_size", "entangling", (8, 16)),
    TunableParam("prefetch_queue_size", "sim", (16, 32)),
)


class TestGenomeName:
    def test_stable_and_prefixed(self):
        genome = {"entries": 2048, "allowed_modes": (1, 2, 3, 4)}
        name = genome_name(genome)
        assert name.startswith("tuned:")
        assert len(name) == len("tuned:") + 16
        assert genome_name(genome) == name

    def test_key_order_irrelevant(self):
        a = genome_name({"entries": 2048, "ways": 8})
        b = genome_name({"ways": 8, "entries": 2048})
        assert a == b

    def test_tuple_and_list_values_agree(self):
        # JSON has no tuples; both spellings must hash identically or a
        # resumed search (JSON round-trip) would rename every genome.
        a = genome_name({"allowed_modes": (1, 3, 6)})
        b = genome_name({"allowed_modes": [1, 3, 6]})
        assert a == b

    def test_distinct_genomes_distinct_names(self):
        assert genome_name({"entries": 1024}) != genome_name({"entries": 2048})


class TestGenomeConfigs:
    def test_split_by_kind(self):
        ent, sim = genome_configs(
            {"entries": 4096, "prefetch_queue_size": 64},
            SimConfig(),
        )
        assert ent.entries == 4096
        assert sim.prefetch_queue_size == 64

    def test_pq_and_mshr_mirrored_into_entangling(self):
        ent, sim = genome_configs(
            {"prefetch_queue_size": 64, "l1i_mshrs": 16}, SimConfig()
        )
        assert ent.pq_entries == sim.prefetch_queue_size == 64
        assert ent.mshr_entries == sim.l1i_mshrs == 16

    def test_unset_params_keep_defaults(self):
        default = SimConfig()
        ent, sim = genome_configs({"entries": 1024}, default)
        assert sim.l1i_mshrs == default.l1i_mshrs
        assert ent.history_size == type(ent)().history_size

    def test_unknown_param_rejected(self):
        with pytest.raises(ConfigError, match="not in the space"):
            genome_configs({"flux_capacitor": 1}, SimConfig())

    def test_invalid_combination_rejected(self):
        space = (TunableParam("entries", "entangling", (999,)),)
        with pytest.raises(ConfigError):
            genome_configs({"entries": 999}, SimConfig(), space)


class TestSplitSuite:
    def _suite(self, n):
        return [
            WorkloadSpec(
                name=f"w{i:02d}", category="srv", seed=i, n_instructions=1_000
            )
            for i in range(n)
        ]

    def test_deterministic_and_order_independent(self):
        suite = self._suite(8)
        a = split_suite(suite, 0.75, seed=7)
        b = split_suite(list(reversed(suite)), 0.75, seed=7)
        assert [s.name for s in a[0]] == [s.name for s in b[0]]
        assert [s.name for s in a[1]] == [s.name for s in b[1]]

    def test_partition_covers_suite(self):
        suite = self._suite(8)
        train, test = split_suite(suite, 0.75, seed=0)
        assert len(train) == 6 and len(test) == 2
        assert sorted(s.name for s in train + test) == [
            s.name for s in suite
        ]

    def test_different_seeds_differ(self):
        suite = self._suite(10)
        names = {
            tuple(s.name for s in split_suite(suite, 0.5, seed)[0])
            for seed in range(6)
        }
        assert len(names) > 1

    def test_full_fraction_tests_in_sample(self):
        suite = self._suite(4)
        train, test = split_suite(suite, 1.0, seed=0)
        assert [s.name for s in train] == [s.name for s in test]

    def test_single_workload_tests_in_sample(self):
        suite = self._suite(1)
        train, test = split_suite(suite, 0.75, seed=0)
        assert train == test
        assert len(train) == 1

    def test_train_side_never_empty(self):
        suite = self._suite(2)
        train, _test = split_suite(suite, 0.01, seed=0)
        assert len(train) >= 1


class TestTunerEvaluation:
    def test_grid_covers_the_whole_space(self):
        tuner = GridTuner(
            TINY, objectives=("ipc", "storage"), space=SMALL_SPACE,
            seed=1, train_fraction=1.0,
        )
        result = tuner.search()
        assert result.evaluated == 2 * 2 * 2
        assert result.front, "a full grid always yields a front"

    def test_grid_max_evals_truncates(self):
        tuner = GridTuner(
            TINY, objectives=("ipc", "storage"), space=SMALL_SPACE,
            seed=1, train_fraction=1.0, max_evals=3,
        )
        assert tuner.search().evaluated == 3

    def test_duplicate_genomes_share_one_evaluation(self):
        tuner = GridTuner(
            TINY, objectives=("ipc", "storage"), space=SMALL_SPACE,
            seed=1, train_fraction=1.0,
        )
        genome = {"entries": 1024, "history_size": 8}
        first, second = tuner.evaluate([genome, dict(genome)])
        assert first is second

    def test_invalid_genome_counted_not_fatal(self):
        space = SMALL_SPACE + (
            TunableParam("ways", "entangling", (8, 3)),  # 3 : not a power of two
        )
        tuner = GridTuner(
            TINY, objectives=("ipc", "storage"), space=space,
            seed=1, train_fraction=1.0,
        )
        good = {"entries": 1024, "history_size": 8, "ways": 8}
        bad = {"entries": 1024, "history_size": 8, "ways": 3}
        results = tuner.evaluate([good, bad])
        assert results[0] is not None
        assert results[1] is None
        assert tuner.invalid == 1

    def test_storage_objective_tracks_entries(self):
        tuner = GridTuner(
            TINY, objectives=("ipc", "storage"), space=SMALL_SPACE,
            seed=1, train_fraction=1.0,
        )
        small, large = tuner.evaluate(
            [
                {"entries": 1024, "history_size": 8},
                {"entries": 4096, "history_size": 8},
            ]
        )
        assert 0 < small.storage_bits < large.storage_bits


class TestDeterminism:
    def test_same_seed_same_front(self):
        fronts = []
        for _ in range(2):
            tuner = GeneticTuner(
                TINY, space=SMALL_SPACE, seed=7, train_fraction=1.0,
                cache=RunCache(), population=4, generations=2,
            )
            result = tuner.search()
            fronts.append(
                [(r.name, sorted(r.genome.items()), r.speedup, r.energy,
                  r.storage_bits) for r in result.front]
            )
        assert fronts[0] == fronts[1]

    def test_different_seeds_explore_differently(self):
        evaluated = set()
        for seed in (1, 2, 3):
            tuner = RandomTuner(
                TINY, space=SMALL_SPACE, seed=seed, train_fraction=1.0,
                cache=RunCache(), samples=4,
            )
            tuner._search()
            evaluated.add(tuple(sorted(tuner._results)))
        assert len(evaluated) > 1


class TestFrontQuality:
    def test_genetic_front_mutually_nondominated(self):
        tuner = GeneticTuner(
            TINY, space=SMALL_SPACE, seed=7, train_fraction=1.0,
            cache=RunCache(), population=4, generations=2,
        )
        result = tuner.search()
        assert len(result.front) >= 1
        vectors = [
            r.objective_vector(result.objectives) for r in result.front
        ]
        for a in vectors:
            for b in vectors:
                assert not dominates(a, b)
        # Front points carry held-out scores; here test == train.
        assert all(r.test_speedup is not None for r in result.front)

    def test_nothing_evaluated_dominates_the_front(self):
        tuner = GridTuner(
            TINY, objectives=("ipc", "storage"), space=SMALL_SPACE,
            seed=1, train_fraction=1.0,
        )
        result = tuner.search()
        front_vectors = [
            r.objective_vector(result.objectives) for r in result.front
        ]
        for scored in tuner._results.values():
            vector = scored.objective_vector(result.objectives)
            assert not any(dominates(vector, f) for f in front_vectors)


class TestResume:
    def test_second_run_resimulates_nothing(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        manifest_path = os.path.join(cache_dir, "tune_checkpoint.json")

        def run(resume):
            cache = RunCache(disk_dir=cache_dir)
            manifest = CheckpointManifest(manifest_path, resume=resume)
            tuner = GeneticTuner(
                TINY, space=SMALL_SPACE, seed=7, train_fraction=1.0,
                cache=cache, checkpoint=manifest,
                population=4, generations=2,
            )
            return tuner.search(), cache, manifest

        first, cache1, man1 = run(resume=False)
        assert cache1.stores > 0
        assert man1.marked > 0

        second, cache2, man2 = run(resume=True)
        assert cache2.stores == 0, "resume must not re-simulate"
        assert man2.marked == 0
        assert man2.resumed_hits > 0
        assert man2.resumed == man1.marked

        key = lambda r: (r.name, r.speedup, r.energy, r.storage_bits)
        assert [key(r) for r in first.front] == [key(r) for r in second.front]

    def test_fresh_manifest_discards_prior_progress(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        manifest = CheckpointManifest(path, resume=False)
        manifest.mark_done("k1", "tuned:abc", "w0")
        reloaded = CheckpointManifest(path, resume=False)
        assert "k1" not in reloaded
        assert reloaded.resumed == 0
        # The flag only gates what this process *trusts*; the file itself
        # is untouched until the next mark_done, so a later resume=True
        # open still sees the original progress.
        resumed = CheckpointManifest(path, resume=True)
        assert resumed.resumed == 1


class TestMakeTuner:
    def test_known_strategies(self):
        for strategy, cls in (
            ("grid", GridTuner),
            ("random", RandomTuner),
            ("genetic", GeneticTuner),
        ):
            tuner = make_tuner(strategy, TINY, space=SMALL_SPACE)
            assert isinstance(tuner, cls)
            assert tuner.strategy == strategy

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            make_tuner("simulated-annealing", TINY)

    def test_unknown_objective(self):
        with pytest.raises(ValueError, match="unknown objectives"):
            make_tuner("grid", TINY, objectives=("ipc", "latency"))

    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError, match="at least one workload"):
            make_tuner("grid", [])


class TestDefaultSpace:
    def test_covers_both_kinds(self):
        kinds = {param.kind for param in DEFAULT_SPACE}
        assert kinds == {"entangling", "sim"}

    def test_every_param_has_choices(self):
        for param in DEFAULT_SPACE:
            assert len(param.values) >= 2, param.name

    def test_param_validation(self):
        with pytest.raises(ValueError):
            TunableParam("entries", "quantum", (1,))
        with pytest.raises(ValueError):
            TunableParam("entries", "entangling", ())
