"""Tests for suite-level span tracing (repro.obs.spans + chrometrace).

Covers the span recorder and its process-wide slot, the worker-side
stage bridge, cross-process batch pickling, clock-offset normalization,
Chrome trace-event rendering, and the end-to-end contract: a traced
parallel ``run_suite`` writes a valid merged trace containing spans from
multiple worker pids, and a fault-injected run still produces a
well-formed trace whose error-tagged spans match the ``FaultReport``.
"""

import io
import json
import os
import pickle
import time

import pytest

from repro.analysis.experiments import run_suite
from repro.analysis.parallel import FaultInjector, RetryPolicy
from repro.obs.chrometrace import to_chrome_trace, write_chrome_trace
from repro.obs.spans import (
    Span,
    SpanBatch,
    SpanRecorder,
    SpanStages,
    SuiteSpanCollector,
    get_span_recorder,
    normalize_batch,
    set_span_recorder,
    span,
    worker_span_scope,
)
from repro.workloads.generators import WorkloadSpec

SUITE = [
    WorkloadSpec(name="span_int", category="int", seed=3, n_instructions=20_000),
    WorkloadSpec(name="span_srv", category="srv", seed=4, n_instructions=20_000),
    WorkloadSpec(name="span_fp", category="fp", seed=5, n_instructions=20_000),
]


@pytest.fixture(autouse=True)
def _clean_recorder_slot():
    previous = set_span_recorder(None)
    yield
    set_span_recorder(previous)


class TestSpanRecorder:
    def test_add_and_duration(self):
        recorder = SpanRecorder(role="suite")
        s = recorder.add("work", 10.0, 10.5, cat="executor", label="x")
        assert len(recorder) == 1
        assert s.duration == pytest.approx(0.5)
        assert s.pid == os.getpid()
        assert s.args == {"label": "x"}
        assert s.status == "ok"

    def test_span_context_manager_records_ok(self):
        recorder = SpanRecorder()
        with recorder.span("block", cat="stage", answer=42) as args:
            args["found"] = True
        (s,) = recorder.spans
        assert s.name == "block"
        assert s.cat == "stage"
        assert s.status == "ok"
        assert s.args == {"answer": 42, "found": True}
        assert s.end >= s.start

    def test_span_context_manager_marks_error_and_reraises(self):
        recorder = SpanRecorder()
        with pytest.raises(ValueError):
            with recorder.span("doomed"):
                raise ValueError("boom")
        (s,) = recorder.spans
        assert s.status == "error"
        assert "ValueError: boom" in s.args["error"]

    def test_batch_is_picklable_snapshot(self):
        recorder = SpanRecorder(role="worker")
        recorder.add("a", 1.0, 2.0)
        batch = recorder.batch()
        recorder.add("b", 2.0, 3.0)  # after the snapshot
        clone = pickle.loads(pickle.dumps(batch))
        assert isinstance(clone, SpanBatch)
        assert clone.pid == os.getpid()
        assert clone.role == "worker"
        assert [s.name for s in clone.spans] == ["a"]

    def test_shifted(self):
        s = Span(name="x", start=5.0, end=6.0)
        assert s.shifted(0.0) is s
        moved = s.shifted(2.5)
        assert (moved.start, moved.end) == (7.5, 8.5)
        assert s.start == 5.0  # original untouched


class TestRecorderSlot:
    def test_module_level_span_is_noop_without_recorder(self):
        assert get_span_recorder() is None
        with span("nothing", detail=1) as args:
            args["ignored"] = True  # must not raise

    def test_module_level_span_records_when_installed(self):
        recorder = SpanRecorder()
        previous = set_span_recorder(recorder)
        try:
            with span("unit", cat="cache", hit=False):
                pass
        finally:
            set_span_recorder(previous)
        (s,) = recorder.spans
        assert (s.name, s.cat, s.args["hit"]) == ("unit", "cache", False)

    def test_set_returns_previous(self):
        first = SpanRecorder()
        second = SpanRecorder()
        assert set_span_recorder(first) is None
        assert set_span_recorder(second) is first
        assert set_span_recorder(None) is second


class _FakeProfiler:
    def __init__(self):
        self.stages = []

    def stage(self, name):
        from contextlib import contextmanager

        @contextmanager
        def _cm():
            self.stages.append(name)
            yield

        return _cm()


class TestSpanStages:
    def test_stage_blocks_become_spans(self):
        recorder = SpanRecorder()
        bridge = SpanStages(recorder)
        with bridge.stage("simulate"):
            pass
        (s,) = recorder.spans
        assert (s.name, s.cat) == ("simulate", "stage")

    def test_chain_forwards_to_existing_profiler(self):
        recorder = SpanRecorder()
        chained = _FakeProfiler()
        bridge = SpanStages(recorder, chain=chained)
        with bridge.stage("fetch_units"):
            pass
        assert chained.stages == ["fetch_units"]
        assert [s.name for s in recorder.spans] == ["fetch_units"]

    def test_worker_span_scope_installs_and_restores_bridge(self):
        from repro.obs.profiler import get_stage_profiler, set_stage_profiler, stage

        previous_profiler = _FakeProfiler()
        outer = set_stage_profiler(previous_profiler)
        try:
            with worker_span_scope() as recorder:
                with stage("simulate"):
                    pass
            assert get_stage_profiler() is previous_profiler
        finally:
            set_stage_profiler(outer)
        assert [s.name for s in recorder.spans] == ["simulate"]
        assert previous_profiler.stages == ["simulate"]  # chained through


class TestNormalizeBatch:
    def _batch(self, spans):
        return SpanBatch(pid=123, role="worker", spans=spans, sent_at=100.0)

    def test_empty(self):
        assert normalize_batch(self._batch([]), 0.0, 1.0) == ([], 0.0)

    def test_well_behaved_clock_zero_offset(self):
        batch = self._batch([Span(name="a", start=10.0, end=11.0)])
        spans, offset = normalize_batch(batch, 9.0, 12.0)
        assert offset == 0.0
        assert spans[0].start == 10.0

    def test_starts_before_window_shifts_forward(self):
        batch = self._batch([Span(name="a", start=5.0, end=6.0)])
        spans, offset = normalize_batch(batch, 9.0, 12.0)
        assert offset == pytest.approx(4.0)
        assert (spans[0].start, spans[0].end) == (9.0, 10.0)

    def test_ends_after_window_shifts_back(self):
        batch = self._batch([Span(name="a", start=11.0, end=14.0)])
        spans, offset = normalize_batch(batch, 9.0, 12.0)
        assert offset == pytest.approx(-2.0)
        assert (spans[0].start, spans[0].end) == (9.0, 12.0)

    def test_start_anchor_wins_when_batch_longer_than_window(self):
        # Shifting the end back would push the start before the window;
        # the start anchors instead.
        batch = self._batch([Span(name="a", start=9.5, end=14.0)])
        spans, offset = normalize_batch(batch, 9.0, 12.0)
        assert offset == pytest.approx(-0.5)
        assert spans[0].start == pytest.approx(9.0)


class TestChromeTrace:
    def _spans(self):
        return [
            Span(name="suite", cat="suite", start=100.0, end=101.0, pid=1),
            Span(
                name="attempt", cat="executor", start=100.2, end=100.4,
                pid=1, tid=2, status="error", args={"error": "boom"},
            ),
        ]

    def test_structure_and_timestamps(self):
        trace = to_chrome_trace(self._spans(), process_names={1: "suite (pid 1)"})
        events = trace["traceEvents"]
        assert trace["displayTimeUnit"] == "ms"
        meta = [e for e in events if e["ph"] == "M"]
        assert meta == [
            {
                "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
                "args": {"name": "suite (pid 1)"},
            }
        ]
        complete = [e for e in events if e["ph"] == "X"]
        assert complete[0]["ts"] == 0.0  # origin defaults to earliest start
        assert complete[0]["dur"] == pytest.approx(1e6)
        assert complete[1]["ts"] == pytest.approx(0.2e6)

    def test_error_spans_are_marked(self):
        trace = to_chrome_trace(self._spans())
        error = [e for e in trace["traceEvents"] if e.get("cname")]
        assert len(error) == 1
        assert error[0]["cname"] == "terrible"
        assert error[0]["args"]["status"] == "error"
        assert error[0]["args"]["error"] == "boom"

    def test_write_to_path_and_file_object(self, tmp_path):
        path = tmp_path / "trace.json"
        returned = write_chrome_trace(self._spans(), str(path))
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(returned))
        buffer = io.StringIO()
        write_chrome_trace(self._spans(), buffer)
        assert json.loads(buffer.getvalue())["traceEvents"]


class TestSuiteSpanCollector:
    def test_attempt_lifecycle_and_task_summary(self):
        recorder = SpanRecorder()
        collector = SuiteSpanCollector(recorder)
        collector.attempt_started("no/w", 0)
        collector.attempt_finished("no/w", 0, False, "RuntimeError: injected")
        collector.attempt_started("no/w", 1)
        collector.attempt_finished("no/w", 1, True)
        collector.finish()
        by_name = {}
        for s in recorder.spans:
            by_name.setdefault(s.name, []).append(s)
        assert [s.status for s in by_name["attempt"]] == ["error", "ok"]
        assert by_name["attempt"][0].args["error"] == "RuntimeError: injected"
        (task,) = by_name["task"]
        assert task.status == "ok"  # last attempt succeeded
        assert task.args["attempts"] == 2
        # Both attempts and the summary share the label's display lane.
        assert {s.tid for s in recorder.spans} == {by_name["task"][0].tid}

    def test_distinct_lanes_per_label(self):
        collector = SuiteSpanCollector(SpanRecorder())
        assert collector._lane("a") != collector._lane("b")
        assert collector._lane("a") == collector._lane("a")

    def test_failed_every_attempt_yields_error_task_span(self):
        recorder = SpanRecorder()
        collector = SuiteSpanCollector(recorder)
        collector.attempt_started("cfg/w", 0)
        collector.attempt_finished("cfg/w", 0, False, "timed out")
        collector.finish()
        task = [s for s in recorder.spans if s.name == "task"][0]
        assert task.status == "error"

    def test_add_batch_normalizes_against_attempt_window(self):
        recorder = SpanRecorder()
        collector = SuiteSpanCollector(recorder)
        collector.attempt_started("cfg/w", 0)
        time.sleep(0.01)
        collector.attempt_finished("cfg/w", 0, True)
        window_start, window_end = collector._windows["cfg/w"]
        # A worker whose clock runs a year behind.
        skew = -365 * 24 * 3600.0
        batch = SpanBatch(
            pid=777, role="worker",
            spans=[Span(name="attempt", cat="worker",
                        start=window_start + skew,
                        end=window_start + skew + 0.005, pid=777)],
            sent_at=window_end + skew,
        )
        collector.add_batch(batch, "cfg/w")
        assert collector.clock_offsets[777] == pytest.approx(-skew)
        merged = [s for s in recorder.spans if s.pid == 777]
        assert merged[0].start >= window_start

    def test_cache_lookup_and_process_names(self):
        recorder = SpanRecorder(role="suite")
        collector = SuiteSpanCollector(recorder)
        collector.cache_lookup("cfg/w", True, 1.0, 1.001)
        collector.add_batch(
            SpanBatch(pid=999, role="worker", spans=[
                Span(name="x", start=1.0, end=1.1, pid=999)
            ], sent_at=1.1),
            "cfg/w",
        )
        names = collector.process_names()
        assert names[recorder.pid].startswith("suite")
        assert names[999].startswith("worker")
        lookups = [s for s in recorder.spans if s.name == "cache_lookup"]
        assert lookups and lookups[0].args["hit"] is True


def _load_trace(path):
    trace = json.loads(path.read_text())
    assert isinstance(trace["traceEvents"], list) and trace["traceEvents"]
    return trace


class TestRunSuiteTracing:
    def test_parallel_traced_run_writes_merged_trace(self, tmp_path):
        """The headline integration: jobs=2 + trace_path produces a valid
        Chrome trace with suite/task/attempt spans and worker-side spans
        from at least two worker pids."""
        trace_path = tmp_path / "suite_trace.json"
        evaluation = run_suite(
            SUITE, ["next_line"], jobs=2, cache=None, checkpoint=None,
            trace_path=str(trace_path),
        )
        assert evaluation.is_complete()
        trace = _load_trace(trace_path)
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in events}
        assert {"suite", "task", "attempt"} <= names
        # Worker-side spans (the picklable batches) made it back, were
        # merged, and came from worker processes — not the parent.
        worker_events = [
            e for e in events if e["cat"] in ("worker", "stage")
        ]
        worker_pids = {e["pid"] for e in worker_events}
        assert os.getpid() not in worker_pids
        assert len(worker_pids) >= 2, worker_pids
        # 2 configs (baseline + next_line) x 3 workloads = 6 tasks.
        tasks = [e for e in events if e["name"] == "task"]
        assert len(tasks) == 6
        assert all(e["args"]["status"] == "ok" for e in tasks)
        # Process metadata names every participating pid.
        meta_pids = {
            e["pid"] for e in trace["traceEvents"] if e["ph"] == "M"
        }
        assert worker_pids <= meta_pids

    def test_serial_traced_run_also_produces_trace(self, tmp_path):
        trace_path = tmp_path / "serial_trace.json"
        evaluation = run_suite(
            SUITE[:1], ["next_line"], jobs=1, cache=None, checkpoint=None,
            trace_path=str(trace_path),
        )
        assert evaluation.is_complete()
        trace = _load_trace(trace_path)
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert {"suite", "task", "attempt", "simulate"} <= names

    def test_cache_hits_become_cache_lookup_spans(self, tmp_path):
        from repro.analysis.runcache import RunCache

        cache = RunCache()
        run_suite(
            SUITE[:1], ["next_line"], jobs=1, cache=cache, checkpoint=None,
        )
        trace_path = tmp_path / "cached_trace.json"
        run_suite(
            SUITE[:1], ["next_line"], jobs=1, cache=cache, checkpoint=None,
            trace_path=str(trace_path),
        )
        trace = _load_trace(trace_path)
        lookups = [
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["name"] == "cache_lookup"
        ]
        assert lookups and all(e["args"]["hit"] for e in lookups)

    def test_fault_injected_run_trace_matches_fault_report(
        self, tmp_path, monkeypatch
    ):
        """A crash-injected 3-job traced run: the merged trace is valid
        and its error-tagged spans match the FaultReport exactly."""
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:1.0:first")
        monkeypatch.setenv("REPRO_TASK_BACKOFF", "0.01")
        trace_path = tmp_path / "faulted_trace.json"
        evaluation = run_suite(
            SUITE, ["next_line"], jobs=3, cache=None, checkpoint=None,
            retry_policy=RetryPolicy(retries=2, backoff_base=0.01),
            trace_path=str(trace_path),
        )
        # Every task crashed once (scope=first) and recovered on retry.
        assert evaluation.is_complete()
        faults = evaluation.faults
        assert faults.task_errors == 6
        trace = _load_trace(trace_path)
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        error_attempts = [
            e for e in events
            if e["name"] == "attempt" and e["cat"] == "executor"
            and e["args"]["status"] == "error"
        ]
        assert len(error_attempts) == faults.task_errors
        assert all("injected crash" in e["args"]["error"]
                   for e in error_attempts)
        assert all(e.get("cname") == "terrible" for e in error_attempts)
        # Retry backoffs between rounds appear as spans too.
        assert any(e["name"] == "backoff" for e in events)
        # Tasks all recovered, so every task summary is ok.
        tasks = [e for e in events if e["name"] == "task"]
        assert len(tasks) == 6
        assert all(e["args"]["status"] == "ok" for e in tasks)

    def test_quarantined_tasks_are_error_tagged_in_trace(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:1.0:all")
        trace_path = tmp_path / "quarantined_trace.json"
        evaluation = run_suite(
            SUITE[:2], ["next_line"], include_baseline=False, jobs=2,
            cache=None, checkpoint=None,
            retry_policy=RetryPolicy(retries=1, backoff_base=0.01),
            trace_path=str(trace_path),
        )
        faults = evaluation.faults
        assert len(faults.quarantined) == 2
        trace = _load_trace(trace_path)
        tasks = {
            e["args"]["label"]: e
            for e in trace["traceEvents"]
            if e["ph"] == "X" and e["name"] == "task"
        }
        assert set(tasks) == {f.label for f in faults.quarantined}
        assert all(e["args"]["status"] == "error" for e in tasks.values())

    def test_spans_never_reach_the_run_cache(self):
        from repro.analysis.runcache import RunCache

        cache = RunCache()
        evaluation = run_suite(
            SUITE[:1], ["next_line"], include_baseline=False, jobs=1,
            cache=cache, checkpoint=None,
            trace_path=os.devnull,
        )
        assert evaluation.is_complete()
        for result in cache._mem.values():
            assert result.spans is None
        for per_workload in evaluation.runs.values():
            for result in per_workload.values():
                assert result.spans is None

    def test_fault_injector_fraction_one_selects_everything(self):
        injector = FaultInjector(mode="crash", fraction=1.0)
        assert injector.selects("anything/at_all")
