"""Tests for the CSV exporters."""

import csv
import io

from repro.analysis.experiments import run_suite
from repro.analysis.export import (
    export_curves_csv,
    export_evaluation_csv,
    export_series_csv,
)
from repro.workloads.generators import WorkloadSpec

TINY = [WorkloadSpec(name="x_int", category="int", seed=9, n_instructions=20_000)]


def _rows(text):
    return list(csv.reader(io.StringIO(text)))


class TestEvaluationExport:
    def test_csv_shape(self):
        evaluation = run_suite(TINY, ["next_line"])
        buffer = io.StringIO()
        export_evaluation_csv(evaluation, buffer)
        rows = _rows(buffer.getvalue())
        assert rows[0][0] == "config"
        # 2 configs x 1 workload + header.
        assert len(rows) == 3
        data = {row[0]: row for row in rows[1:]}
        assert float(data["no"][4]) == 1.0  # normalized IPC of baseline

    def test_to_file(self, tmp_path):
        evaluation = run_suite(TINY, [])
        path = str(tmp_path / "eval.csv")
        export_evaluation_csv(evaluation, path)
        rows = _rows(open(path).read())
        assert rows[0][1] == "workload"


class TestCurveExport:
    def test_columns(self):
        buffer = io.StringIO()
        export_curves_csv({"a": [1.0, 2.0], "b": [3.0]}, buffer)
        rows = _rows(buffer.getvalue())
        assert rows[0] == ["rank", "a", "b"]
        assert rows[1] == ["0", "1.000000", "3.000000"]
        assert rows[2] == ["1", "2.000000", ""]

    def test_empty(self):
        buffer = io.StringIO()
        export_curves_csv({}, buffer)
        assert _rows(buffer.getvalue()) == [["rank"]]


class TestSeriesExport:
    def test_sorted_keys(self):
        buffer = io.StringIO()
        export_series_csv({2: 0.5, 1: 0.25}, buffer, "distance", "timely")
        rows = _rows(buffer.getvalue())
        assert rows[0] == ["distance", "timely"]
        assert rows[1] == ["1", "0.250000"]
        assert rows[2] == ["2", "0.500000"]
