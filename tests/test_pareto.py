"""Property tests for the Pareto-dominance primitives.

The tuner's headline guarantee — "the emitted front is mutually
nondominated and nothing evaluated dominates it" — reduces entirely to
these helpers, so they are pinned with both hand-built cases and
hypothesis-generated vector sets.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.pareto import (
    crowding_distances,
    dominates,
    nondominated_sort,
    pareto_front_indices,
)

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def vectors(n_objectives):
    return st.lists(
        st.tuples(*([finite] * n_objectives)), min_size=1, max_size=24
    )


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates((0.0, 0.0), (1.0, 1.0))

    def test_better_in_one_equal_elsewhere(self):
        assert dominates((0.0, 1.0), (1.0, 1.0))

    def test_equal_vectors_dominate_neither_way(self):
        assert not dominates((1.0, 2.0), (1.0, 2.0))

    def test_tradeoff_dominates_neither_way(self):
        assert not dominates((0.0, 1.0), (1.0, 0.0))
        assert not dominates((1.0, 0.0), (0.0, 1.0))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="length"):
            dominates((1.0,), (1.0, 2.0))

    @given(vectors(3))
    @settings(max_examples=60, deadline=None)
    def test_irreflexive_and_asymmetric(self, points):
        for a in points:
            assert not dominates(a, a)
            for b in points:
                assert not (dominates(a, b) and dominates(b, a))

    @given(vectors(2))
    @settings(max_examples=60, deadline=None)
    def test_transitive(self, points):
        for a in points:
            for b in points:
                for c in points:
                    if dominates(a, b) and dominates(b, c):
                        assert dominates(a, c)


class TestParetoFront:
    def test_single_point_is_the_front(self):
        assert pareto_front_indices([(1.0, 2.0)]) == [0]

    def test_dominated_point_excluded(self):
        assert pareto_front_indices([(0.0, 0.0), (1.0, 1.0)]) == [0]

    def test_tradeoff_points_coexist(self):
        points = [(0.0, 2.0), (1.0, 1.0), (2.0, 0.0)]
        assert pareto_front_indices(points) == [0, 1, 2]

    def test_duplicate_vectors_both_kept(self):
        points = [(1.0, 1.0), (1.0, 1.0), (2.0, 2.0)]
        assert pareto_front_indices(points) == [0, 1]

    @given(vectors(3))
    @settings(max_examples=80, deadline=None)
    def test_front_is_mutually_nondominated(self, points):
        front = pareto_front_indices(points)
        assert front, "a nonempty set always has a nonempty front"
        for i in front:
            for j in front:
                assert not dominates(points[i], points[j])

    @given(vectors(3))
    @settings(max_examples=80, deadline=None)
    def test_every_outsider_is_dominated_by_someone(self, points):
        front = set(pareto_front_indices(points))
        for i, candidate in enumerate(points):
            if i in front:
                continue
            assert any(
                dominates(points[j], candidate) for j in range(len(points))
            )


class TestNondominatedSort:
    def test_fronts_partition_the_indices(self):
        points = [(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (0.5, 0.4)]
        fronts = nondominated_sort(points)
        flat = sorted(i for front in fronts for i in front)
        assert flat == list(range(len(points)))

    def test_rank_zero_is_the_pareto_front(self):
        points = [(0.0, 2.0), (1.0, 1.0), (2.0, 0.0), (2.0, 2.0)]
        fronts = nondominated_sort(points)
        assert fronts[0] == pareto_front_indices(points)

    @given(vectors(2))
    @settings(max_examples=60, deadline=None)
    def test_each_front_nondominated_after_removing_earlier(self, points):
        fronts = nondominated_sort(points)
        flat = sorted(i for front in fronts for i in front)
        assert flat == list(range(len(points)))
        removed = set()
        for front in fronts:
            for i in front:
                assert not any(
                    dominates(points[j], points[i])
                    for j in range(len(points))
                    if j not in removed
                )
            removed.update(front)


class TestCrowdingDistances:
    def test_boundary_points_are_infinite(self):
        points = [(0.0, 2.0), (1.0, 1.0), (2.0, 0.0)]
        distances = crowding_distances(points, [0, 1, 2])
        assert distances[0] == math.inf
        assert distances[2] == math.inf
        assert 0.0 < distances[1] < math.inf

    def test_identical_points_get_zero_interior_distance(self):
        points = [(1.0, 1.0)] * 4
        distances = crowding_distances(points, [0, 1, 2, 3])
        # Degenerate span: boundary slots are inf, the rest stay 0.
        assert math.inf in distances.values()
        assert all(d in (0.0, math.inf) for d in distances.values())

    def test_empty_front(self):
        assert crowding_distances([(1.0, 1.0)], []) == {}

    def test_deterministic_for_equal_inputs(self):
        points = [(0.0, 3.0), (1.0, 1.0), (1.0, 1.0), (3.0, 0.0)]
        a = crowding_distances(points, [0, 1, 2, 3])
        b = crowding_distances(points, [0, 1, 2, 3])
        assert a == b
