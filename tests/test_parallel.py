"""Determinism and caching tests for the parallel evaluation engine.

The contract under test: ``run_suite(..., jobs=N)`` is bit-identical to
the serial path for every architectural counter, and the run cache
returns exactly the stats a fresh simulation would produce.
"""

import pytest

from repro.analysis.experiments import (
    default_suite,
    positive_env_int,
    resolve_jobs,
    run_cached,
    run_single,
    run_suite,
)
from repro.analysis.runcache import RunCache, run_key
from repro.analysis.reporting import format_timing_table
from repro.sim.config import SimConfig
from repro.sim.stats import SimStats
from repro.workloads.generators import WorkloadSpec

SMALL_SUITE = [
    WorkloadSpec(name="p_int", category="int", seed=11, n_instructions=20_000),
    WorkloadSpec(name="p_srv", category="srv", seed=12, n_instructions=20_000),
]
CONFIGS = ["next_line", "entangling_2k"]


@pytest.fixture(scope="module")
def serial_eval():
    return run_suite(SMALL_SUITE, CONFIGS, cache=None)


class TestParallelDeterminism:
    def test_jobs4_bit_identical_to_serial(self, serial_eval):
        parallel = run_suite(SMALL_SUITE, CONFIGS, jobs=4, cache=None)
        assert list(parallel.runs) == list(serial_eval.runs)
        for config in serial_eval.runs:
            assert list(parallel.runs[config]) == list(serial_eval.runs[config])
            for workload in serial_eval.runs[config]:
                assert (
                    parallel.runs[config][workload].stats.signature()
                    == serial_eval.runs[config][workload].stats.signature()
                ), (config, workload)

    def test_parallel_results_are_detached(self):
        parallel = run_suite(
            SMALL_SUITE[:1], ["next_line"], jobs=2, cache=None
        )
        result = parallel.runs["next_line"]["p_int"]
        assert result.prefetcher is None
        assert result.prefetcher_name == "NextLine"
        assert result.stats.instructions > 0

    def test_parallel_uses_cache(self, serial_eval):
        cache = RunCache()
        warm = run_suite(SMALL_SUITE, CONFIGS, cache=cache)
        stores_before = cache.stores
        parallel = run_suite(SMALL_SUITE, CONFIGS, jobs=4, cache=cache)
        assert cache.stores == stores_before  # nothing re-simulated
        for config in warm.runs:
            for workload in warm.runs[config]:
                assert (
                    parallel.runs[config][workload].stats.signature()
                    == warm.runs[config][workload].stats.signature()
                )


class TestRunCache:
    def test_cached_stats_match_fresh_simulation(self):
        spec = SMALL_SUITE[0]
        cache = RunCache()
        first = run_cached(spec, "next_line", cache=cache)
        hit = run_cached(spec, "next_line", cache=cache)
        fresh = run_single(spec, "next_line")
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1
        assert hit.prefetcher is None
        assert hit.stats.signature() == fresh.stats.signature()
        assert first.stats.signature() == fresh.stats.signature()

    def test_each_unique_pair_simulated_once(self):
        cache = RunCache()
        run_suite(SMALL_SUITE, CONFIGS, cache=cache)
        run_suite(SMALL_SUITE, CONFIGS, cache=cache)  # second sweep: all hits
        unique = len(SMALL_SUITE) * (len(CONFIGS) + 1)  # + "no" baseline
        assert cache.stores == unique
        assert cache.hits == unique
        assert cache.wall_seconds_saved > 0.0

    def test_get_returns_independent_copies(self):
        spec = SMALL_SUITE[0]
        cache = RunCache()
        run_cached(spec, "next_line", cache=cache)
        mutated = run_cached(spec, "next_line", cache=cache)
        mutated.stats.reset()
        again = run_cached(spec, "next_line", cache=cache)
        assert again.stats.instructions > 0

    def test_key_distinguishes_config_and_warmup(self):
        spec = SMALL_SUITE[0]
        base = SimConfig()
        key = run_key(spec, "next_line", base, 1000)
        assert key != run_key(spec, "entangling_2k", base, 1000)
        assert key != run_key(spec, "next_line", base, 0)
        assert key != run_key(
            spec, "next_line", base.with_l1i_kb(64), 1000
        )
        assert key == run_key(spec, "next_line", SimConfig(), 1000)

    def test_disk_roundtrip(self, tmp_path):
        spec = SMALL_SUITE[0]
        writer = RunCache(disk_dir=str(tmp_path))
        original = run_cached(spec, "next_line", cache=writer)
        reader = RunCache(disk_dir=str(tmp_path))
        key = run_key(
            spec, "next_line", SimConfig(), int(spec.n_instructions * 0.4)
        )
        loaded = reader.get(key)
        assert loaded is not None
        assert reader.disk_hits == 1
        assert loaded.stats.signature() == original.stats.signature()
        assert loaded.trace_name == original.trace_name


class TestTimingTelemetry:
    def test_wall_seconds_recorded(self):
        stats = run_single(SMALL_SUITE[0], "no").stats
        assert stats.wall_seconds > 0.0
        assert stats.instrs_per_second > 0.0
        assert stats.cycles_per_second > stats.instrs_per_second * 0.1

    def test_signature_excludes_telemetry(self):
        a = SimStats(instructions=10, cycles=20, wall_seconds=1.0)
        b = SimStats(instructions=10, cycles=20, wall_seconds=9.0)
        assert a.signature() == b.signature()
        assert "wall_seconds" not in a.signature()

    def test_stats_dict_roundtrip(self):
        stats = run_single(SMALL_SUITE[0], "next_line").stats
        clone = SimStats.from_dict(stats.to_dict())
        assert clone.signature() == stats.signature()
        assert clone.wall_seconds == stats.wall_seconds
        assert clone.cache_accesses["L1I"].reads == (
            stats.cache_accesses["L1I"].reads
        )

    def test_format_timing_table(self, serial_eval):
        text = format_timing_table(serial_eval.timing_entries())
        assert "kinstr/s" in text
        assert "(total)" in text
        assert "next_line" in text


class TestEnvKnobs:
    def test_suite_scale_non_integer_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUITE_SCALE", "two")
        with pytest.raises(ValueError, match="REPRO_SUITE_SCALE"):
            default_suite(per_category=1)

    def test_suite_scale_clamps_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUITE_SCALE", "-3")
        assert len(default_suite(per_category=1)) == 4
        monkeypatch.setenv("REPRO_SUITE_SCALE", "0")
        assert len(default_suite(per_category=1)) == 4

    def test_jobs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3
        monkeypatch.setenv("REPRO_JOBS", "-2")
        assert resolve_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs()

    def test_jobs_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(2) == 2
        assert resolve_jobs(0) == 1

    def test_positive_env_int_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert positive_env_int("REPRO_JOBS", 5) == 5
        monkeypatch.setenv("REPRO_JOBS", "  ")
        assert positive_env_int("REPRO_JOBS", 5) == 5
