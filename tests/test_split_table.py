"""Tests for the split Entangled table (the paper's future-work study)."""

import pytest

from repro.core.entangled_table import MAX_BB_SIZE
from repro.core.entangling import EntanglingConfig
from repro.core.split_table import (
    BlockSizeTable,
    SplitEntanglingPrefetcher,
    make_split_entangling,
)


class TestBlockSizeTable:
    def test_update_and_get(self):
        table = BlockSizeTable(64)
        table.update(100, 5)
        assert table.get(100) == 5

    def test_unknown_line_is_zero(self):
        assert BlockSizeTable(64).get(42) == 0

    def test_max_policy(self):
        table = BlockSizeTable(64)
        table.update(100, 5)
        table.update(100, 3)
        assert table.get(100) == 5

    def test_latest_policy(self):
        table = BlockSizeTable(64)
        table.update(100, 5, policy="latest")
        table.update(100, 3, policy="latest")
        assert table.get(100) == 3

    def test_size_capped(self):
        table = BlockSizeTable(64)
        table.update(100, 1000)
        assert table.get(100) == MAX_BB_SIZE

    def test_direct_mapped_conflicts_evict(self):
        table = BlockSizeTable(1)  # every line maps to slot 0
        table.update(100, 5)
        table.update(200, 7)
        assert table.get(200) == 7
        assert table.get(100) == 0

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            BlockSizeTable(0)

    def test_storage_bits(self):
        assert BlockSizeTable(2048).storage_bits() == 2048 * 16


class TestSplitEntanglingPrefetcher:
    def test_sizes_live_outside_the_pair_table(self):
        pf = SplitEntanglingPrefetcher(EntanglingConfig(entries=64, ways=4))
        pf.on_demand_access(100, True, 0)
        pf.on_demand_access(101, True, 1)
        pf.on_demand_access(900, True, 2)       # completes block [100,101]
        assert pf.size_table.get(100) == 1
        # No pair-table entry is allocated for a size-only source.
        assert pf.table.peek(100) is None

    def test_trigger_uses_size_table_without_pair_entry(self):
        pf = SplitEntanglingPrefetcher(EntanglingConfig(entries=64, ways=4))
        pf.size_table.update(100, 2)
        requests = list(pf.on_demand_access(100, True, 0))
        assert [r.line_addr for r in requests] == [101, 102]

    def test_destination_blocks_use_size_table(self):
        pf = SplitEntanglingPrefetcher(EntanglingConfig(entries=64, ways=4))
        pf.table.add_dest(100, 500)
        pf.size_table.update(500, 2)
        requests = [r.line_addr for r in pf.on_demand_access(100, True, 0)]
        assert requests == [500, 501, 502]

    def test_storage_includes_both_tables(self):
        pf = make_split_entangling(pair_entries=1024, size_entries=2048)
        base = SplitEntanglingPrefetcher(
            EntanglingConfig(entries=1024, merge_distance=15), size_entries=1
        )
        assert pf.storage_bits() > base.storage_bits()

    def test_split_low_budget_cheaper_than_unified_2k(self):
        """The design goal: similar reach at a lower storage cost."""
        from repro.core.variants import make_entangling

        split = make_split_entangling(pair_entries=1024, size_entries=2048)
        unified = make_entangling(2048)
        assert split.storage_kb < unified.storage_kb

    def test_runs_in_simulator(self, small_srv_trace):
        from repro.prefetchers import NullPrefetcher
        from repro.sim import simulate

        base = simulate(small_srv_trace, NullPrefetcher(),
                        warmup_instructions=20_000).stats
        split = simulate(small_srv_trace, make_split_entangling(),
                         warmup_instructions=20_000).stats
        assert split.ipc > base.ipc
        assert split.prefetches_sent > 0
