"""ChampSim-format trace ingestion (ISSUE 8 tentpole).

Covers both record layouts (legacy 64B, v2 82B), raw and gzipped, the
branch-type reconstruction round-trip, layout auto-detection, the
structured error taxonomy on damage (strict mode) and longest-valid-
prefix recovery (salvage mode), a deterministic fuzz corpus mirroring
``tests/test_trace_fuzz.py``, and the committed golden fixture.
"""

import gzip
import os
import pathlib
import random

import pytest

from repro.check.errors import (
    TraceError,
    TraceHeaderError,
    TracePayloadError,
    TraceRecordError,
    TraceTruncatedError,
)
from repro.workloads.champsim import (
    LAYOUTS,
    detect_champsim_layout,
    read_champsim_trace,
    write_champsim_trace,
)
from repro.workloads.generators import WorkloadSpec, make_workload
from repro.workloads.trace import BranchType

SEED = 0xC4A
GOLDEN = os.path.join(os.path.dirname(__file__), "data", "golden.champsimtrace.gz")


def _trace(n=4000, seed=11, category="int"):
    return make_workload(
        WorkloadSpec(
            name="cs", category=category, seed=seed, n_instructions=n
        )
    )


def _assert_equivalent(original, loaded):
    """The round-trip contract: everything the simulator consumes matches.

    ChampSim records do not store sizes or not-taken targets, so the
    reconstruction recovers pc/branch_type/taken, the taken-path target,
    and memory behaviour; ``next_pc`` chains must be identical.
    """
    assert len(loaded) == len(original)
    for i, (a, b) in enumerate(zip(original.instructions, loaded.instructions)):
        assert a.pc == b.pc, i
        assert a.branch_type == b.branch_type, i
        assert a.taken == b.taken, i
        if a.taken:
            assert a.target == b.target, i
        assert a.next_pc == b.next_pc, i
        assert a.is_load == b.is_load, i
        assert a.is_store == b.is_store, i
        assert (a.data_addr != 0) == (b.data_addr != 0), i


class TestRoundTrip:
    @pytest.mark.parametrize("layout", sorted(LAYOUTS))
    @pytest.mark.parametrize("compress", (False, True))
    def test_layouts_and_compression(self, tmp_path, layout, compress):
        original = _trace()
        path = str(tmp_path / ("t.champsimtrace" + (".gz" if compress else "")))
        write_champsim_trace(original, path, layout=layout, compress=compress)
        loaded = read_champsim_trace(path, layout=layout, category="int")
        _assert_equivalent(original, loaded)
        assert loaded.salvage is None

    @pytest.mark.parametrize("layout", sorted(LAYOUTS))
    def test_layout_autodetection(self, tmp_path, layout):
        original = _trace()
        path = str(tmp_path / "t.trace")
        write_champsim_trace(original, path, layout=layout)
        detected = read_champsim_trace(path)  # layout="auto"
        _assert_equivalent(original, detected)

    def test_compression_follows_suffix(self, tmp_path):
        original = _trace(500)
        gz = str(tmp_path / "t.champsimtrace.gz")
        raw = str(tmp_path / "t.champsimtrace")
        write_champsim_trace(original, gz)
        write_champsim_trace(original, raw)
        assert open(gz, "rb").read()[:2] == b"\x1f\x8b"
        assert open(raw, "rb").read()[:2] != b"\x1f\x8b"
        assert os.path.getsize(gz) < os.path.getsize(raw)

    def test_pathlib_paths(self, tmp_path):
        original = _trace(300)
        path = pathlib.Path(tmp_path) / "t.champsimtrace.gz"
        write_champsim_trace(original, path)
        _assert_equivalent(original, read_champsim_trace(path))

    def test_branch_types_survive(self, tmp_path):
        """Every branch class present in the source must reconstruct."""
        original = _trace(8000, category="srv")
        present = {i.branch_type for i in original.instructions}
        assert len(present) >= 5  # srv exercises most of the taxonomy
        path = str(tmp_path / "t.trace")
        write_champsim_trace(original, path)
        loaded = read_champsim_trace(path)
        assert {i.branch_type for i in loaded.instructions} == present

    def test_limit_keeps_prefix(self, tmp_path):
        original = _trace(1000)
        path = str(tmp_path / "t.trace")
        write_champsim_trace(original, path)
        loaded = read_champsim_trace(path, limit=100)
        assert len(loaded) == 100
        assert [i.pc for i in loaded.instructions] == [
            i.pc for i in original.instructions[:100]
        ]

    def test_default_name_strips_suffixes(self, tmp_path):
        original = _trace(200)
        path = str(tmp_path / "server_0.champsimtrace.gz")
        write_champsim_trace(original, path)
        assert read_champsim_trace(path).name == "server_0"


class TestStrictErrors:
    def test_empty_file(self, tmp_path):
        path = str(tmp_path / "empty.trace")
        open(path, "wb").close()
        with pytest.raises(TraceHeaderError):
            read_champsim_trace(path)

    def test_torn_tail_strict(self, tmp_path):
        original = _trace(200)
        path = str(tmp_path / "t.trace")
        write_champsim_trace(original, path, layout="legacy")
        data = open(path, "rb").read()
        open(path, "wb").write(data[:-17])
        with pytest.raises(TraceTruncatedError) as exc:
            read_champsim_trace(path, layout="legacy")
        assert exc.value.record_index == 199

    def test_corrupt_gzip_strict(self, tmp_path):
        original = _trace(200)
        path = str(tmp_path / "t.champsimtrace.gz")
        write_champsim_trace(original, path)
        data = bytearray(open(path, "rb").read())
        data[len(data) // 2] ^= 0xFF
        open(path, "wb").write(bytes(data))
        with pytest.raises((TracePayloadError, TraceError)):
            read_champsim_trace(path)

    def test_garbage_has_no_layout(self, tmp_path):
        path = str(tmp_path / "t.trace")
        open(path, "wb").write(bytes(range(256)) * 13)
        with pytest.raises(TraceError):
            read_champsim_trace(path)

    def test_unknown_layout_name(self, tmp_path):
        with pytest.raises(ValueError):
            read_champsim_trace(str(tmp_path / "x"), layout="v9")


class TestSalvage:
    def test_torn_tail_salvaged(self, tmp_path):
        original = _trace(200)
        path = str(tmp_path / "t.trace")
        write_champsim_trace(original, path, layout="legacy")
        data = open(path, "rb").read()
        open(path, "wb").write(data[:-17])
        loaded = read_champsim_trace(path, layout="legacy", salvage=True)
        assert loaded.salvage is not None
        assert loaded.salvage.recovered == 199
        assert [i.pc for i in loaded.instructions] == [
            i.pc for i in original.instructions[:199]
        ]

    def test_salvage_keeps_prefix_before_bad_record(self, tmp_path):
        original = _trace(300)
        path = str(tmp_path / "t.trace")
        write_champsim_trace(original, path, layout="legacy")
        data = bytearray(open(path, "rb").read())
        record_size = LAYOUTS["legacy"].record_size
        # Wreck record #120's is_branch flag (offset 8 in the record).
        data[120 * record_size + 8] = 7
        open(path, "wb").write(bytes(data))
        with pytest.raises(TraceRecordError) as exc:
            read_champsim_trace(path, layout="legacy")
        assert exc.value.record_index == 120
        loaded = read_champsim_trace(path, layout="legacy", salvage=True)
        assert loaded.salvage is not None
        assert len(loaded) == 120
        assert loaded.salvage.reasons


class TestFuzzCorpus:
    """Seeded mutants must never escape the TraceError taxonomy."""

    @pytest.fixture(scope="class")
    def pristine(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("csfuzz")
        original = _trace(300)
        out = []
        for label, compress in (("gz", True), ("raw", False)):
            path = str(root / f"{label}.trace")
            write_champsim_trace(
                original, path, layout="legacy", compress=compress
            )
            out.append((label, open(path, "rb").read()))
        return original, out

    @staticmethod
    def _mutants(data):
        rng = random.Random(SEED)
        for offset in sorted(rng.sample(range(len(data)), min(40, len(data)))):
            for bit in (0, 7):
                mutated = bytearray(data)
                mutated[offset] ^= 1 << bit
                yield f"flip@{offset}.{bit}", bytes(mutated)
        lengths = {0, 1, 7, 63, 64, 65}
        for i in range(1, 9):
            lengths.add(len(data) * i // 9)
        for length in sorted(l for l in lengths if l < len(data)):
            yield f"trunc@{length}", data[:length]

    def test_strict_mode_never_returns_wrong_data(self, pristine, tmp_path):
        original, bases = pristine
        pcs = [i.pc for i in original.instructions]
        for label, data in bases:
            for tag, mutated in self._mutants(data):
                path = str(tmp_path / "m.trace")
                open(path, "wb").write(mutated)
                try:
                    loaded = read_champsim_trace(path, layout="legacy")
                except TraceError:
                    continue
                # A surviving mutant must decode to a prefix-compatible
                # pc stream or a tolerable field change — never crash
                # with a non-taxonomy exception (the point of the test).
                assert len(loaded) <= len(pcs), f"{label}:{tag}"

    def test_salvage_mode_flags_every_recovery(self, pristine, tmp_path):
        original, bases = pristine
        for label, data in bases:
            for tag, mutated in self._mutants(data):
                path = str(tmp_path / "m.trace")
                open(path, "wb").write(mutated)
                try:
                    loaded = read_champsim_trace(
                        path, layout="legacy", salvage=True
                    )
                except TraceError:
                    continue
                if len(loaded) != len(original) and loaded.salvage is None:
                    # ChampSim files are headerless: a truncation at an
                    # exact record boundary is indistinguishable from a
                    # genuinely shorter trace, so it may load unflagged —
                    # but then it must be a clean *prefix*, never wrong
                    # data.
                    prefix = original.instructions[: len(loaded)]
                    assert [i.pc for i in loaded.instructions] == [
                        i.pc for i in prefix
                    ], f"{label}:{tag}"


class TestGoldenFixture:
    """The committed fixture pins the importer's output forever."""

    def test_fixture_exists(self):
        assert os.path.exists(GOLDEN)

    def test_strict_import(self):
        trace = read_champsim_trace(GOLDEN)
        assert len(trace) == 6000
        assert trace.name == "golden"
        assert trace.category == "cloud"
        assert sum(1 for i in trace.instructions if i.is_branch) == 317
        assert trace.footprint_lines() == 197
        assert trace.salvage is None

    def test_salvage_import_is_identical_on_clean_file(self):
        strict = read_champsim_trace(GOLDEN)
        salvaged = read_champsim_trace(GOLDEN, salvage=True)
        assert salvaged.salvage is None
        assert salvaged.instructions == strict.instructions

    def test_truncated_fixture_salvages(self, tmp_path):
        payload = gzip.decompress(open(GOLDEN, "rb").read())
        path = str(tmp_path / "cut.trace")
        open(path, "wb").write(payload[: len(payload) - 30])
        loaded = read_champsim_trace(path, salvage=True)
        assert loaded.salvage is not None
        assert loaded.salvage.recovered == 5999

    def test_detect_layout(self):
        payload = gzip.decompress(open(GOLDEN, "rb").read())
        assert detect_champsim_layout(payload).name == "legacy"
