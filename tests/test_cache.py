"""Tests for the set-associative cache."""

import pytest

from repro.sim.cache import SetAssociativeCache


class TestConstruction:
    def test_rejects_zero_sets(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(0, 4)

    def test_rejects_zero_ways(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(4, 0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="replacement"):
            SetAssociativeCache(4, 4, replacement="random")

    def test_capacity(self):
        assert SetAssociativeCache(64, 8).capacity == 512


class TestLookupInsert:
    def test_miss_then_hit(self):
        cache = SetAssociativeCache(4, 2)
        assert cache.lookup(100) is None
        cache.insert(100)
        assert cache.lookup(100) is not None

    def test_insert_returns_no_victim_when_room(self):
        cache = SetAssociativeCache(4, 2)
        assert cache.insert(0) is None
        assert cache.insert(4) is None  # different set

    def test_reinsert_resident_line_is_noop(self):
        cache = SetAssociativeCache(1, 2)
        cache.insert(1)
        cache.insert(2)
        victim = cache.insert(1)  # already resident
        assert victim is None
        assert cache.occupancy() == 2

    def test_contains(self):
        cache = SetAssociativeCache(4, 2)
        cache.insert(7)
        assert cache.contains(7)
        assert not cache.contains(8)

    def test_invalidate(self):
        cache = SetAssociativeCache(4, 2)
        cache.insert(7)
        evicted = cache.invalidate(7)
        assert evicted is not None
        assert not cache.contains(7)
        assert cache.invalidate(7) is None

    def test_sets_are_independent(self):
        cache = SetAssociativeCache(2, 1)
        cache.insert(0)  # set 0
        cache.insert(1)  # set 1
        assert cache.contains(0) and cache.contains(1)


class TestLruReplacement:
    def test_lru_victim(self):
        cache = SetAssociativeCache(1, 2)
        cache.insert(1)
        cache.insert(2)
        cache.lookup(1)           # touch 1, making 2 the LRU
        victim = cache.insert(3)
        assert victim.line_addr == 2

    def test_lookup_without_touch(self):
        cache = SetAssociativeCache(1, 2)
        cache.insert(1)
        cache.insert(2)
        cache.lookup(1, update_lru=False)  # does not refresh 1
        victim = cache.insert(3)
        assert victim.line_addr == 1

    def test_occupancy_never_exceeds_ways(self):
        cache = SetAssociativeCache(1, 4)
        for line in range(100):
            cache.insert(line)
        assert cache.occupancy() == 4


class TestFifoReplacement:
    def test_fifo_ignores_touches(self):
        cache = SetAssociativeCache(1, 2, replacement="fifo")
        cache.insert(1)
        cache.insert(2)
        cache.lookup(1)           # touching does not protect under FIFO
        victim = cache.insert(3)
        assert victim.line_addr == 1


class TestLineMetadata:
    def test_prefetch_bit_defaults_false(self):
        cache = SetAssociativeCache(4, 2)
        cache.insert(5)
        assert cache.lookup(5).prefetched is False

    def test_metadata_survives_lookups(self):
        cache = SetAssociativeCache(4, 2)
        cache.insert(5)
        line = cache.lookup(5)
        line.prefetched = True
        line.src_meta = ("src", 5)
        again = cache.lookup(5)
        assert again.prefetched is True
        assert again.src_meta == ("src", 5)

    def test_resident_lines(self):
        cache = SetAssociativeCache(4, 2)
        cache.insert(1)
        cache.insert(2)
        assert sorted(cache.resident_lines()) == [1, 2]
