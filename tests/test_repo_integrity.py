"""Repository-integrity checks: docs, benchmarks, and registry agree."""

import os
import re

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _read(name):
    with open(os.path.join(REPO_ROOT, name)) as fh:
        return fh.read()


class TestDocsReferenceRealFiles:
    def test_design_bench_targets_exist(self):
        design = _read("DESIGN.md")
        for match in re.findall(r"benchmarks/test_\w+\.py", design):
            assert os.path.exists(os.path.join(REPO_ROOT, match)), match

    def test_readme_examples_exist(self):
        readme = _read("README.md")
        for match in re.findall(r"examples/\w+\.py", readme):
            assert os.path.exists(os.path.join(REPO_ROOT, match)), match

    def test_experiments_mentions_every_figure(self):
        experiments = _read("EXPERIMENTS.md")
        for heading in ("Figure 1", "Figure 2", "Tables I and II", "Table III",
                        "Figure 6", "Figures 7-10", "Table IV", "Figure 11",
                        "Figures 12-15", "Section IV-E", "Figure 16"):
            assert heading in experiments, heading


class TestBenchmarkCoverage:
    #: One benchmark file per evaluation artifact of the paper.
    EXPECTED = [
        "test_fig01_timeliness_oracle.py",
        "test_fig02_accuracy_vs_distance.py",
        "test_tab1_tab2_compression.py",
        "test_fig06_ipc_vs_storage.py",
        "test_fig07_ipc_curves.py",
        "test_fig08_missrate_curves.py",
        "test_fig09_coverage.py",
        "test_fig10_accuracy.py",
        "test_tab4_energy.py",
        "test_fig11_ablation.py",
        "test_fig12_compression_formats.py",
        "test_fig13_avg_destinations.py",
        "test_fig14_bbsize_source.py",
        "test_fig15_bbsize_dest.py",
        "test_sec4e_physical.py",
        "test_fig16_cloudsuite.py",
    ]

    @pytest.mark.parametrize("filename", EXPECTED)
    def test_bench_exists(self, filename):
        assert os.path.exists(os.path.join(REPO_ROOT, "benchmarks", filename))


class TestRegistryDocsAgree:
    def test_storage_reference_names_resolve(self):
        from repro.analysis.storage import paper_reference_storage_kb
        from repro.prefetchers.registry import available_prefetchers

        names = set(available_prefetchers())
        for name in paper_reference_storage_kb():
            assert name in names, name

    def test_fig6_config_names_resolve(self):
        from repro.analysis.experiments import PSEUDO_CONFIGS
        from repro.analysis.figures import CURVE_CONFIGS, FIG6_CONFIGS, TAB4_CONFIGS
        from repro.prefetchers.registry import available_prefetchers

        valid = set(available_prefetchers()) | set(PSEUDO_CONFIGS)
        for group in (FIG6_CONFIGS, CURVE_CONFIGS, TAB4_CONFIGS):
            for name in group:
                assert name in valid, name

    def test_every_public_module_has_docstring(self):
        import importlib
        import pkgutil

        import repro

        for module_info in pkgutil.walk_packages(repro.__path__, "repro."):
            if module_info.name.endswith("__main__"):
                continue  # importing it would run the CLI
            module = importlib.import_module(module_info.name)
            assert module.__doc__, f"{module_info.name} lacks a docstring"
