"""Unit tests for the sharded shared run store (cache format v4).

The contract under test: entries live under 256 fan-out shard
directories and survive the v2/v3 flat-layout upgrade (legacy entries
are served and migrated on first read); the byte budget and age bound
evict LRU-by-last-use, deterministically under an injected clock; the
journalled index is a hint only — torn or stale, it is rebuilt from a
shard scan and never changes what ``load`` returns; leases coalesce
in-flight keys and are stealable exactly when their owner is provably
gone; and an unwritable filesystem degrades the store to read-only
instead of raising.  A hypothesis property pins the eviction invariants
(budget is a hard ceiling, survivors are the most recently used) across
arbitrary publish/touch/evict interleavings.
"""

import json
import os
import threading

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.store import (
    ACCEPTED_ENTRY_FORMATS,
    DEFAULT_LEASE_TTL,
    Lease,
    LeaseKeeper,
    ShardedRunStore,
    STORE_FORMAT,
    await_result,
    coalesce_enabled,
    entry_checksum,
    lease_ttl_from_env,
)


class FakeClock:
    """Injectable, manually-advanced time source for eviction tests."""

    def __init__(self, start: float = 1_000_000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _key(i: int) -> str:
    return f"{i:032x}"


def _payload(i: int, pad: int = 0) -> dict:
    return {
        "trace_name": f"t{i}",
        "category": "int",
        "prefetcher_name": "no",
        "stats": {"instructions": i, "pad": "x" * pad},
    }


def _store(tmp_path, **kwargs) -> ShardedRunStore:
    kwargs.setdefault("reap_on_open", False)
    return ShardedRunStore(str(tmp_path), **kwargs)


class TestShardedLayout:
    def test_publish_lands_in_shard_dir(self, tmp_path):
        store = _store(tmp_path)
        key = "ab" + "0" * 30
        assert store.publish(key, _payload(1))
        assert os.path.exists(
            os.path.join(str(tmp_path), "ab", f"{key}.json")
        )

    def test_roundtrip_ok(self, tmp_path):
        store = _store(tmp_path)
        key = _key(1)
        store.publish(key, _payload(1))
        data, status = store.load(key)
        assert status == "ok"
        assert data["stats"]["instructions"] == 1
        assert data["format"] == STORE_FORMAT

    def test_missing_is_missing(self, tmp_path):
        data, status = _store(tmp_path).load(_key(9))
        assert (data, status) == (None, "missing")

    def test_entry_sealed_with_checksum(self, tmp_path):
        store = _store(tmp_path)
        key = _key(2)
        store.publish(key, _payload(2))
        with open(store.path_for(key)) as fh:
            data = json.load(fh)
        assert data["checksum"] == entry_checksum(data)

    def test_torn_entry_is_corrupt_never_served(self, tmp_path):
        store = _store(tmp_path)
        key = _key(3)
        store.publish(key, _payload(3))
        path = store.path_for(key)
        with open(path) as fh:
            text = fh.read()
        with open(path, "w") as fh:
            fh.write(text[: len(text) // 2])
        data, status = store.load(key)
        assert (data, status) == (None, "corrupt")

    def test_future_format_is_stale_not_corrupt(self, tmp_path):
        store = _store(tmp_path)
        key = _key(4)
        store.publish(key, _payload(4))
        path = store.path_for(key)
        with open(path) as fh:
            data = json.load(fh)
        data["format"] = STORE_FORMAT + 1
        with open(path, "w") as fh:
            json.dump(data, fh)
        _data, status = store.load(key)
        assert status == "stale"


class TestLegacyMigration:
    """v2/v3 entries were flat files in the store root; a warm cache
    must survive the v4 upgrade (satellite: migration-on-read)."""

    def _plant_legacy(self, store: ShardedRunStore, key: str, fmt: int) -> str:
        data = _payload(7)
        data["format"] = fmt
        data["checksum"] = entry_checksum(data)
        path = store.legacy_path(key)
        with open(path, "w") as fh:
            json.dump(data, fh)
        return path

    @pytest.mark.parametrize("fmt", [2, 3])
    def test_legacy_entry_served_and_migrated(self, tmp_path, fmt):
        assert fmt in ACCEPTED_ENTRY_FORMATS
        store = _store(tmp_path)
        key = _key(7)
        legacy = self._plant_legacy(store, key, fmt)
        data, status = store.load(key)
        assert status == "ok"
        assert data["stats"]["instructions"] == 7
        # Migrated: re-sealed as v4 at the shard path, flat file gone.
        assert store.migrated == 1
        assert not os.path.exists(legacy)
        with open(store.path_for(key)) as fh:
            resealed = json.load(fh)
        assert resealed["format"] == STORE_FORMAT
        assert resealed["checksum"] == entry_checksum(resealed)

    def test_second_read_comes_from_shard(self, tmp_path):
        store = _store(tmp_path)
        key = _key(8)
        self._plant_legacy(store, key, 3)
        store.load(key)
        _data, status = store.load(key)
        assert status == "ok"
        assert store.migrated == 1  # no second migration

    def test_corrupt_legacy_entry_not_migrated(self, tmp_path):
        store = _store(tmp_path)
        key = _key(9)
        path = self._plant_legacy(store, key, 3)
        with open(path, "w") as fh:
            fh.write("{not json")
        _data, status = store.load(key)
        assert status == "corrupt"
        assert store.migrated == 0

    def test_read_only_store_still_serves_legacy(self, tmp_path):
        """Migration is best-effort: a degraded store serves the flat
        entry without moving it."""
        store = _store(tmp_path)
        key = _key(10)
        legacy = self._plant_legacy(store, key, 3)
        store.read_only = True
        data, status = store.load(key)
        assert status == "ok"
        assert os.path.exists(legacy)  # publish refused, flat copy kept


class TestEviction:
    def test_byte_budget_evicts_oldest_first(self, tmp_path):
        clock = FakeClock()
        store = _store(tmp_path, clock=clock)
        sizes = {}
        for i in range(6):
            key = _key(i)
            store.publish(key, _payload(i, pad=200))
            sizes[key] = os.path.getsize(store.path_for(key))
            clock.advance(10.0)
        entry = next(iter(sizes.values()))
        store.max_bytes = entry * 3  # room for ~3 entries
        evicted, freed = store.maintain()
        assert evicted == 3
        assert freed == sum(sizes[_key(i)] for i in range(3))
        # The three *newest* survive.
        for i in range(3):
            assert store.load(_key(i)) == (None, "missing")
        for i in range(3, 6):
            assert store.load(_key(i))[1] == "ok"
        assert store.total_bytes() <= store.max_bytes

    def test_touch_on_read_updates_lru_order(self, tmp_path):
        clock = FakeClock()
        store = _store(tmp_path, clock=clock)
        for i in range(3):
            store.publish(_key(i), _payload(i, pad=200))
            clock.advance(10.0)
        store.load(_key(0))  # oldest entry becomes most recently used
        clock.advance(1.0)
        store.max_bytes = os.path.getsize(store.path_for(_key(0))) * 2
        store.maintain()
        assert store.load(_key(0))[1] == "ok"
        assert store.load(_key(1)) == (None, "missing")

    def test_age_bound_sweeps_expired(self, tmp_path):
        clock = FakeClock()
        store = _store(tmp_path, clock=clock, max_age=100.0)
        store.publish(_key(0), _payload(0))
        clock.advance(50.0)
        store.publish(_key(1), _payload(1))
        clock.advance(60.0)  # key 0 is now 110s old, key 1 only 60s
        evicted, _freed = store.maintain()
        assert evicted == 1
        assert store.load(_key(0)) == (None, "missing")
        assert store.load(_key(1))[1] == "ok"

    def test_publish_triggers_maintain_over_budget(self, tmp_path):
        clock = FakeClock()
        store = _store(tmp_path, clock=clock)
        store.publish(_key(0), _payload(0, pad=200))
        entry = os.path.getsize(store.path_for(_key(0)))
        store.max_bytes = entry + entry // 2
        clock.advance(10.0)
        store.publish(_key(1), _payload(1, pad=200))
        # The just-published key is protected; the older one went.
        assert store.load(_key(1))[1] == "ok"
        assert store.load(_key(0)) == (None, "missing")
        assert store.evictions == 1

    def test_protected_key_evicted_only_as_last_resort(self, tmp_path):
        """The byte budget is a hard ceiling: when one entry alone
        exceeds it, even the protected just-published key goes."""
        clock = FakeClock()
        store = _store(tmp_path, clock=clock, max_bytes=64)
        store.publish(_key(0), _payload(0, pad=500))
        assert store.total_bytes() == 0

    def test_eviction_emits_telemetry(self, tmp_path):
        events = []

        class Bus:
            def emit(self, type_, **kwargs):
                events.append((type_, kwargs))

        clock = FakeClock()
        store = _store(tmp_path, clock=clock)
        store.publisher = Bus()
        store.publish(_key(0), _payload(0, pad=200))
        clock.advance(10.0)
        store.max_bytes = 10
        store.maintain()
        assert [t for t, _ in events] == ["cache_evicted"]
        assert events[0][1]["payload"]["reason"] == "size"


class TestIndexJournal:
    def test_index_written_by_maintain(self, tmp_path):
        store = _store(tmp_path, max_bytes=10_000_000)
        store.publish(_key(0), _payload(0))
        store.maintain(force=True)
        with open(store.index_path()) as fh:
            data = json.load(fh)
        assert data["format"] == STORE_FORMAT
        assert _key(0) in data["entries"]

    def test_torn_index_rebuilt_from_scan(self, tmp_path):
        store = _store(tmp_path, max_bytes=10_000_000)
        store.publish(_key(0), _payload(0))
        store.maintain(force=True)
        with open(store.index_path(), "w") as fh:
            fh.write('{"format": 4, "entries": {"x"')
        fresh = _store(tmp_path)
        assert fresh.index_rebuilds == 1
        assert fresh.load(_key(0))[1] == "ok"
        assert fresh._approx_bytes == fresh.total_bytes()

    def test_missing_index_rebuilt_silently(self, tmp_path):
        store = _store(tmp_path)
        store.publish(_key(0), _payload(0))
        fresh = _store(tmp_path)
        assert fresh.index_rebuilds == 1
        assert fresh._approx_bytes == os.path.getsize(store.path_for(_key(0)))

    def test_index_never_gates_load(self, tmp_path):
        """The journal is a hint: an entry absent from the index is
        still served (the scan is authoritative)."""
        store = _store(tmp_path, max_bytes=10_000_000)
        store.maintain(force=True)  # write an (empty) index
        store.publish(_key(5), _payload(5))
        fresh = _store(tmp_path)
        assert fresh.load(_key(5))[1] == "ok"


class TestLeases:
    def test_claim_conflict_release(self, tmp_path):
        store = _store(tmp_path)
        other = _store(tmp_path)
        key = _key(1)
        lease = store.claim(key)
        assert lease is not None and lease.path
        assert other.claim(key) is None
        assert other.lease_conflicts == 1
        store.release(lease)
        assert other.claim(key) is not None

    def test_lease_state_transitions(self, tmp_path):
        store = _store(tmp_path)
        key = _key(2)
        assert store.lease_state(key)[0] == "free"
        lease = store.claim(key)
        state, info = store.lease_state(key)
        assert state == "held"
        assert info["pid"] == os.getpid()
        store.release(lease)
        assert store.lease_state(key)[0] == "free"

    def test_dead_pid_is_stale_and_stealable(self, tmp_path):
        store = _store(tmp_path)
        key = _key(3)
        lease = store.claim(key)
        # Rewrite the lease body with a pid that cannot exist.
        with open(lease.path, "w") as fh:
            json.dump({"pid": 2 ** 22 + 1, "host": store.host}, fh)
        assert store.lease_state(key)[0] == "stale"
        stolen = store.steal(key)
        assert stolen is not None
        assert store.lease_steals == 1
        assert store.lease_state(key)[0] == "held"

    def test_expired_mtime_is_stale(self, tmp_path):
        store = _store(tmp_path, lease_ttl=0.05)
        key = _key(4)
        lease = store.claim(key)
        past = os.stat(lease.path).st_mtime - 10.0
        os.utime(lease.path, (past, past))
        assert store.lease_state(key)[0] == "stale"

    def test_steal_refuses_live_lease(self, tmp_path):
        store = _store(tmp_path)
        key = _key(5)
        store.claim(key)
        other = _store(tmp_path)
        assert other.steal(key) is None
        assert other.lease_steals == 0

    def test_torn_lease_body_falls_back_to_ttl(self, tmp_path):
        store = _store(tmp_path)
        key = _key(6)
        lease = store.claim(key)
        with open(lease.path, "w") as fh:
            fh.write("{torn")
        assert store.lease_state(key)[0] == "held"  # mtime fresh
        past = os.stat(lease.path).st_mtime - 2 * DEFAULT_LEASE_TTL
        os.utime(lease.path, (past, past))
        assert store.lease_state(key)[0] == "stale"

    def test_reap_removes_stale_leases_and_old_tmps(self, tmp_path):
        store = _store(tmp_path, lease_ttl=5.0)
        key = _key(7)
        lease = store.claim(key)
        past = os.stat(lease.path).st_mtime - 100.0
        os.utime(lease.path, (past, past))
        tmp = os.path.join(str(tmp_path), "dead.json.123.4.tmp")
        with open(tmp, "w") as fh:
            fh.write("x")
        os.utime(tmp, (past, past))
        leases, tmps = store.reap()
        assert (leases, tmps) == (1, 1)
        assert not os.path.exists(lease.path)
        assert not os.path.exists(tmp)

    def test_reap_keeps_fresh_tmps(self, tmp_path):
        store = _store(tmp_path)
        tmp = os.path.join(str(tmp_path), "live.json.123.4.tmp")
        with open(tmp, "w") as fh:
            fh.write("x")
        assert store.reap() == (0, 0)
        assert os.path.exists(tmp)

    def test_keeper_heartbeats_lease(self, tmp_path):
        store = _store(tmp_path, lease_ttl=0.3)
        lease = store.claim(_key(8))
        past = os.stat(lease.path).st_mtime - 10.0
        os.utime(lease.path, (past, past))
        keeper = LeaseKeeper(store, [lease])
        try:
            keeper.start()
            deadline = __import__("time").time() + 5.0
            while __import__("time").time() < deadline:
                if os.stat(lease.path).st_mtime > past + 5.0:
                    break
                __import__("time").sleep(0.02)
            assert os.stat(lease.path).st_mtime > past + 5.0
        finally:
            keeper.stop()
            keeper.join(timeout=5.0)


class TestDegradation:
    def _degrade(self, store: ShardedRunStore) -> None:
        import errno

        store._note_write_error(
            OSError(errno.ENOSPC, "no space left on device"), "test"
        )

    def test_enospc_flips_read_only_once(self, tmp_path):
        store = _store(tmp_path)
        self._degrade(store)
        assert store.read_only
        reason = store.degrade_reason
        self._degrade(store)
        assert store.degrade_reason == reason  # logged/recorded once
        assert store.write_errors == 2

    def test_read_only_publish_returns_false(self, tmp_path):
        store = _store(tmp_path)
        store.publish(_key(0), _payload(0))
        self._degrade(store)
        assert store.publish(_key(1), _payload(1)) is False
        assert store.load(_key(0))[1] == "ok"  # reads still work

    def test_benign_oserror_does_not_degrade(self, tmp_path):
        import errno

        store = _store(tmp_path)
        store._note_write_error(OSError(errno.EACCES, "denied"), "test")
        assert not store.read_only

    def test_degradation_emits_event(self, tmp_path):
        events = []

        class Bus:
            def emit(self, type_, **kwargs):
                events.append(type_)

        store = _store(tmp_path)
        store.publisher = Bus()
        self._degrade(store)
        assert events == ["store_degraded"]

    def test_degraded_claim_returns_pathless_lease(self, tmp_path):
        """An unwritable store never blocks the caller: claim hands out
        a stand-in lease so the simulation proceeds locally."""
        store = _store(tmp_path)
        # Make the shard dir creation fail by planting a file where the
        # directory should go.
        key = "cd" + "0" * 30
        with open(os.path.join(str(tmp_path), "cd"), "w") as fh:
            fh.write("in the way")
        lease = store.claim(key)
        assert lease is not None and lease.path is None
        store.release(lease)  # no-op, no raise


class TestAwaitResult:
    class _CacheStub:
        def __init__(self, results):
            self._results = results
            self.lease_waits = 0
            self.calls = 0

        def wait_probe(self, key, label=""):
            self.calls += 1
            return self._results.pop(0) if self._results else None

    def test_returns_hit_when_owner_publishes(self, tmp_path):
        store = _store(tmp_path)
        key = _key(1)
        store.claim(key)
        cache = self._CacheStub([None, None, "RESULT"])
        got = await_result(
            cache, store, key, "lbl", poll=0.0, max_wait=10.0,
            sleep=lambda s: None,
        )
        assert got == "RESULT"
        assert cache.lease_waits == 1

    def test_returns_none_when_lease_freed(self, tmp_path):
        store = _store(tmp_path)
        cache = self._CacheStub([])
        got = await_result(
            cache, store, _key(2), "lbl", poll=0.0, max_wait=10.0,
            sleep=lambda s: None,
        )
        assert got is None  # no lease at all -> steal path

    def test_gives_up_after_max_wait(self, tmp_path):
        store = _store(tmp_path)
        key = _key(3)
        store.claim(key)
        ticks = iter(range(100))
        got = await_result(
            cache := self._CacheStub([]), store, key, "lbl",
            poll=0.0, max_wait=3.0, clock=lambda: float(next(ticks)),
            sleep=lambda s: None,
        )
        assert got is None
        assert cache.calls > 1


class TestEnvKnobs:
    def test_coalesce_enabled_default_and_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_COALESCE", raising=False)
        assert coalesce_enabled()
        for off in ("0", "off", "false", "no"):
            monkeypatch.setenv("REPRO_COALESCE", off)
            assert not coalesce_enabled()

    def test_lease_ttl_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_LEASE_TTL", raising=False)
        assert lease_ttl_from_env() == DEFAULT_LEASE_TTL
        monkeypatch.setenv("REPRO_LEASE_TTL", "7.5")
        assert lease_ttl_from_env() == 7.5

    def test_budget_env_rejects_garbage(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_CACHE_MAX_BYTES", "lots")
        with pytest.raises(ValueError):
            ShardedRunStore(str(tmp_path))


class TestConcurrentWriters:
    def test_threaded_publish_load_never_garbage(self, tmp_path):
        """In-process analogue of the chaos harness: hammer publish/load
        on shared keys; every successful load passes the checksum."""
        store_a = _store(tmp_path)
        store_b = _store(tmp_path)
        errors = []

        def writer(store, base):
            for i in range(40):
                store.publish(_key(i % 4), _payload(base + i))

        def reader():
            probe = _store(tmp_path)
            for i in range(160):
                data, status = probe.load(_key(i % 4))
                if status not in ("ok", "missing"):
                    errors.append(status)
                if data is not None and "stats" not in data:
                    errors.append("schema hole")

        threads = [
            threading.Thread(target=writer, args=(store_a, 0)),
            threading.Thread(target=writer, args=(store_b, 1000)),
            threading.Thread(target=reader),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert _store(tmp_path).verify()["corrupt"] == 0


class TestEvictionProperty:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["publish", "touch"]),
                st.integers(0, 9),
                st.integers(1, 30),
            ),
            min_size=1,
            max_size=40,
        ),
        budget_entries=st.integers(1, 6),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow,
                               HealthCheck.function_scoped_fixture],
    )
    def test_budget_is_hard_ceiling_and_lru_survives(
        self, tmp_path, ops, budget_entries
    ):
        """Under any publish/touch interleaving: after maintain() the
        store is within budget and the survivors are exactly the most
        recently used entries that fit."""
        import shutil

        root = os.path.join(str(tmp_path), "prop")
        shutil.rmtree(root, ignore_errors=True)
        clock = FakeClock()
        store = ShardedRunStore(root, clock=clock, reap_on_open=False)
        last_use = {}
        for op, i, dt in ops:
            clock.advance(float(dt))
            key = _key(i)
            if op == "publish":
                assert store.publish(key, _payload(i, pad=100))
                last_use[key] = clock.now
            elif key in last_use:
                store.load(key)
                last_use[key] = clock.now
        if not last_use:
            return  # nothing published this example
        sizes = {
            k: os.path.getsize(store.path_for(k)) for k in last_use
        }
        entry = max(sizes.values())
        store.max_bytes = entry * budget_entries
        store.maintain()
        total = store.total_bytes()
        assert total <= store.max_bytes
        survivors = {e.key for e in store.scan()}
        # Survivors must be a recency-suffix: no evicted key may be
        # more recently used than a surviving key.
        if survivors:
            oldest_kept = min(last_use[k] for k in survivors)
            for key in set(last_use) - survivors:
                assert last_use[key] <= oldest_kept
        for key in survivors:
            assert store.load(key)[1] == "ok"
