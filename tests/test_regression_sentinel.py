"""Tests for the benchmark-regression sentinel (repro.analysis.regression).

Covers the versioned trajectory file (legacy + v2 envelope loading,
atomic capped writes), the regression/drift checks against synthetic
trajectories, and the ``repro bench-check`` CLI exit codes the CI gate
relies on.
"""

import json

import pytest

from repro.analysis.regression import (
    AGGREGATE,
    DEFAULT_RETENTION,
    DEFAULT_THRESHOLD,
    DEFAULT_WINDOW,
    TRAJECTORY_SCHEMA_VERSION,
    Finding,
    check_trajectory,
    load_trajectory,
    parse_trajectory,
    retention_from_env,
    save_trajectory,
)
from repro.cli import main


def entry(ips=100_000.0, cycles=1_000, instructions=5_000, agg_ips=None):
    """One synthetic trajectory record with two (config, workload) runs."""
    runs = [
        {
            "config": config,
            "workload": workload,
            "instrs_per_sec": ips,
            "cycles_per_sec": ips * 0.2,
            "cycles": cycles,
            "instructions": instructions,
            "wall_seconds": instructions / ips,
        }
        for config, workload in (("no", "bench_int"), ("ent", "bench_srv"))
    ]
    return {
        "timestamp": "2026-01-01T00:00:00",
        "runs": runs,
        "aggregate": {
            "instrs_per_sec": agg_ips if agg_ips is not None else ips,
            "total_wall_seconds": 1.0,
        },
    }


class TestTrajectoryIO:
    def test_parse_legacy_bare_list(self):
        entries = parse_trajectory([entry(), "junk", entry()])
        assert len(entries) == 2  # non-dict rows dropped

    def test_parse_v2_envelope(self):
        data = {
            "schema_version": TRAJECTORY_SCHEMA_VERSION,
            "max_entries": 50,
            "entries": [entry()],
        }
        assert len(parse_trajectory(data)) == 1

    def test_parse_rejects_unknown_version_and_shape(self):
        with pytest.raises(ValueError, match="schema_version"):
            parse_trajectory({"schema_version": 99, "entries": []})
        with pytest.raises(ValueError, match="unrecognized"):
            parse_trajectory("not a trajectory")

    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_trajectory(str(tmp_path / "absent.json")) == []

    def test_load_corrupt_file_raises_value_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{ not json")
        with pytest.raises(ValueError, match="unreadable"):
            load_trajectory(str(path))

    def test_save_writes_v2_envelope_and_round_trips(self, tmp_path):
        path = tmp_path / "traj.json"
        entries = [entry(ips=float(i)) for i in range(1, 4)]
        kept = save_trajectory(str(path), entries)
        assert kept == entries
        on_disk = json.loads(path.read_text())
        assert on_disk["schema_version"] == TRAJECTORY_SCHEMA_VERSION
        assert on_disk["max_entries"] == DEFAULT_RETENTION
        assert load_trajectory(str(path)) == entries

    def test_save_caps_to_newest_retention_entries(self, tmp_path):
        path = tmp_path / "traj.json"
        entries = [entry(ips=float(i + 1)) for i in range(60)]
        kept = save_trajectory(str(path), entries, retention=5)
        assert len(kept) == 5
        reloaded = load_trajectory(str(path))
        assert [e["runs"][0]["instrs_per_sec"] for e in reloaded] == [
            56.0, 57.0, 58.0, 59.0, 60.0
        ]

    def test_save_upgrades_legacy_file(self, tmp_path):
        path = tmp_path / "traj.json"
        path.write_text(json.dumps([entry()]))
        entries = load_trajectory(str(path))
        entries.append(entry())
        save_trajectory(str(path), entries)
        assert json.loads(path.read_text())["schema_version"] == 2

    def test_retention_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_KEEP", raising=False)
        assert retention_from_env() == DEFAULT_RETENTION
        monkeypatch.setenv("REPRO_BENCH_KEEP", "7")
        assert retention_from_env() == 7
        monkeypatch.setenv("REPRO_BENCH_KEEP", "0")
        assert retention_from_env() == 1  # floored
        monkeypatch.setenv("REPRO_BENCH_KEEP", "many")
        with pytest.raises(ValueError):
            retention_from_env()


class TestCheckTrajectory:
    def test_too_short_history_gates_nothing(self):
        report = check_trajectory([entry()])
        assert report.ok
        assert report.baseline_entries == 0
        assert "nothing to gate" in report.format()

    def test_clean_trajectory_is_ok(self):
        report = check_trajectory([entry(), entry(), entry()])
        assert report.ok
        assert report.baseline_entries == 2
        assert report.checked == 3  # two pairs + the aggregate
        assert "OK: no throughput regression, no drift" in report.format()

    def test_exactly_threshold_drop_trips(self):
        """A 30% instrs_per_sec drop is a regression at threshold=0.30 —
        the boundary must trip, not squeak by on float error."""
        entries = [entry(ips=100_000.0)] * 3 + [
            entry(ips=70_000.0, agg_ips=70_000.0)
        ]
        report = check_trajectory(entries)
        kinds = {(f.kind, f.config) for f in report.findings}
        assert ("throughput", "no") in kinds
        assert ("throughput", "ent") in kinds
        assert ("throughput", AGGREGATE) in kinds
        assert not report.ok

    def test_drop_below_threshold_passes(self):
        entries = [entry(ips=100_000.0)] * 3 + [
            entry(ips=71_000.0, agg_ips=71_000.0)
        ]
        assert check_trajectory(entries).ok

    def test_median_absorbs_one_noisy_baseline_entry(self):
        # One slow CI machine in the history must not poison the baseline.
        entries = [
            entry(ips=100_000.0),
            entry(ips=10_000.0),  # outlier
            entry(ips=100_000.0),
            entry(ips=95_000.0, agg_ips=95_000.0),
        ]
        assert check_trajectory(entries).ok

    def test_cycle_drift_is_a_finding(self):
        entries = [entry(cycles=1_000), entry(cycles=1_001)]
        report = check_trajectory(entries)
        assert not report.ok
        assert {f.kind for f in report.findings} == {"cycle_drift"}
        assert len(report.drifts) == 2  # both pairs drifted
        assert report.regressions == []

    def test_instruction_drift_is_a_finding(self):
        entries = [entry(instructions=5_000), entry(instructions=4_999)]
        report = check_trajectory(entries)
        assert {f.kind for f in report.findings} == {"instruction_drift"}

    def test_drift_compares_against_most_recent_prior_only(self):
        # An old behaviour change (alarm fired then) must not re-fire now.
        entries = [entry(cycles=900), entry(cycles=1_000), entry(cycles=1_000)]
        assert check_trajectory(entries).ok

    def test_pairs_without_history_are_skipped_not_failed(self):
        newest = entry()
        newest["runs"].append(
            {
                "config": "brand_new", "workload": "bench_fp",
                "instrs_per_sec": 1.0, "cycles": 1, "instructions": 1,
            }
        )
        report = check_trajectory([entry(), newest])
        assert report.ok
        assert report.skipped == ["brand_new/bench_fp"]
        assert "no history for" in report.format()

    def test_window_limits_baseline(self):
        # Ancient fast entries outside the window can't cause a regression.
        entries = [entry(ips=1_000_000.0)] * 5 + [
            entry(ips=100.0, agg_ips=100.0)
        ] * 11 + [entry(ips=100.0, agg_ips=100.0)]
        report = check_trajectory(entries, window=DEFAULT_WINDOW)
        assert report.baseline_entries == DEFAULT_WINDOW
        assert report.ok

    def test_finding_describe_strings(self):
        regression = Finding("throughput", "no", "bench_int", 100_000.0, 60_000.0)
        assert regression.describe().startswith("REGRESSION no/bench_int:")
        assert "-40.0%" in regression.describe()
        drift = Finding("cycle_drift", "no", "bench_int", 1_000, 1_010)
        assert drift.describe().startswith("DRIFT no/bench_int: cycles")
        assert regression.delta == pytest.approx(-0.4)


class TestBenchCheckCli:
    def _write(self, tmp_path, entries):
        path = tmp_path / "BENCH_throughput.json"
        save_trajectory(str(path), entries)
        return str(path)

    def test_clean_trajectory_exits_zero(self, tmp_path, capsys):
        path = self._write(tmp_path, [entry(), entry()])
        assert main(["bench-check", path]) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        path = self._write(
            tmp_path,
            [entry(ips=100_000.0)] * 3 + [entry(ips=50_000.0, agg_ips=50_000.0)],
        )
        assert main(["bench-check", path]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_cycle_drift_exits_nonzero(self, tmp_path, capsys):
        path = self._write(tmp_path, [entry(cycles=1_000), entry(cycles=999)])
        assert main(["bench-check", path]) == 1
        assert "DRIFT" in capsys.readouterr().out

    def test_allow_cycle_drift_acknowledges_drift_only(self, tmp_path, capsys):
        path = self._write(tmp_path, [entry(cycles=1_000), entry(cycles=999)])
        assert main(["bench-check", path, "--allow-cycle-drift"]) == 0
        assert "acknowledged" in capsys.readouterr().out

    def test_allow_cycle_drift_does_not_mask_regressions(self, tmp_path):
        path = self._write(
            tmp_path,
            [entry(ips=100_000.0, cycles=1_000)] * 3
            + [entry(ips=50_000.0, agg_ips=50_000.0, cycles=999)],
        )
        assert main(["bench-check", path, "--allow-cycle-drift"]) == 1

    def test_corrupt_file_exits_two(self, tmp_path, capsys):
        path = tmp_path / "BENCH_throughput.json"
        path.write_text("][")
        assert main(["bench-check", str(path)]) == 2
        assert "bench-check:" in capsys.readouterr().err

    def test_missing_file_exits_zero_nothing_to_gate(self, tmp_path, capsys):
        assert main(["bench-check", str(tmp_path / "absent.json")]) == 0
        assert "nothing to gate" in capsys.readouterr().out

    def test_custom_threshold(self, tmp_path):
        path = self._write(
            tmp_path,
            [entry(ips=100_000.0)] * 3 + [entry(ips=85_000.0, agg_ips=85_000.0)],
        )
        assert main(["bench-check", path]) == 0  # 15% < default 30%
        assert main(["bench-check", path, "--threshold", "0.10"]) == 1


def backend_entry(backends_ips, cycles=1_000):
    """One record with a no/bench_int run per backend.

    ``backends_ips`` maps backend name -> instrs_per_sec; the reference
    backend anchors the per-run ``speedup_vs_reference`` ratios.
    """
    ref_ips = backends_ips.get("reference")
    runs = []
    for backend, ips in backends_ips.items():
        run = {
            "config": "no",
            "workload": "bench_int",
            "backend": backend,
            "instrs_per_sec": ips,
            "cycles": cycles,
            "instructions": 5_000,
            "wall_seconds": 5_000 / ips,
        }
        if ref_ips:
            run["speedup_vs_reference"] = ips / ref_ips
        runs.append(run)
    return {
        "timestamp": "2026-01-01T00:00:00",
        "runs": runs,
        "aggregate": {"instrs_per_sec": ref_ips or 1.0},
    }


class TestBackendAwareSentinel:
    def test_backendless_history_compares_as_reference(self):
        # Pre-backend records (no "backend" field) must keep gating new
        # reference runs: a 2x reference slowdown still fires.
        old = entry(ips=100_000.0)
        new = entry(ips=100_000.0)
        for run in new["runs"]:
            run["backend"] = "reference"
            run["instrs_per_sec"] = 40_000.0
        report = check_trajectory([old, old, new])
        assert any(f.kind == "throughput" for f in report.findings)

    def test_like_backend_comparisons_only(self):
        # A staged run 4x faster than the reference history is NOT a
        # regression signal for reference, and reference history gives
        # staged runs nothing to compare against (skipped, not checked).
        old = backend_entry({"reference": 100_000.0})
        new = backend_entry({"reference": 100_000.0, "staged": 400_000.0})
        report = check_trajectory([old, old, new])
        assert report.ok
        assert "no/bench_int@staged" in report.skipped

    def test_staged_regression_fires_against_staged_history(self):
        old = backend_entry({"reference": 100_000.0, "staged": 400_000.0})
        new = backend_entry({"reference": 100_000.0, "staged": 150_000.0})
        report = check_trajectory([old, old, new])
        regressions = report.regressions
        assert len(regressions) == 1
        assert regressions[0].backend == "staged"
        assert "@staged" in regressions[0].describe()

    def test_drift_reported_per_backend(self):
        old = backend_entry({"reference": 100_000.0, "staged": 300_000.0})
        new = backend_entry(
            {"reference": 100_000.0, "staged": 300_000.0}, cycles=999
        )
        report = check_trajectory([old, new])
        assert {f.backend for f in report.drifts} == {"reference", "staged"}


class TestSpeedupGate:
    def test_parse_speedup_requirements(self):
        from repro.analysis.regression import parse_speedup_requirements

        assert parse_speedup_requirements([]) == {}
        assert parse_speedup_requirements(["staged:1.8", "NumPy: 2"]) == {
            "staged": 1.8,
            "numpy": 2.0,
        }
        for bad in ("staged", "staged:", "staged:zero", ":1.8", "staged:-1"):
            with pytest.raises(ValueError, match="BACKEND:FACTOR"):
                parse_speedup_requirements([bad])

    def test_gate_passes_and_fails_on_geomean(self):
        new = backend_entry({"reference": 100_000.0, "staged": 200_000.0})
        ok = check_trajectory([new], require_speedups={"staged": 1.8})
        assert ok.ok
        bad = check_trajectory([new], require_speedups={"staged": 2.5})
        assert not bad.ok
        finding = bad.speedup_failures[0]
        assert finding.backend == "staged"
        assert finding.current == pytest.approx(2.0)
        assert "SPEEDUP GATE" in finding.describe()

    def test_gate_applies_to_first_record(self):
        # Unlike the history checks, the speedup gate must fire on a
        # single-entry trajectory (fresh CI checkout).
        new = backend_entry({"reference": 100_000.0, "staged": 110_000.0})
        report = check_trajectory([new], require_speedups={"staged": 1.8})
        assert not report.ok
        assert "SPEEDUP GATE" in report.format()

    def test_missing_backend_fails_the_gate(self):
        new = backend_entry({"reference": 100_000.0})
        report = check_trajectory([new], require_speedups={"numpy": 1.5})
        assert not report.ok
        assert report.speedup_failures[0].current == 0.0

    def test_cache_served_runs_do_not_enter_the_gate(self):
        """A run served by the run cache carries the *original*
        simulation's wall-clock (possibly from another backend); its
        speedup ratio is fiction and must be skipped, not averaged."""
        new = backend_entry({"reference": 100_000.0, "staged": 200_000.0})
        phantom = {
            "config": "no",
            "workload": "bench_fp",
            "backend": "staged",
            "instrs_per_sec": 100_000_000.0,
            "cycles": 1_000,
            "instructions": 5_000,
            "wall_seconds": 0.00005,
            "speedup_vs_reference": 1000.0,  # absurd: cached wall-clock
            "from_cache": True,
        }
        new["runs"].append(phantom)
        # Gate at 2.5x: the honest run is 2.0x, so the gate must fail —
        # if the cached 1000x entered the geomean it would pass easily.
        report = check_trajectory([new], require_speedups={"staged": 2.5})
        assert not report.ok
        assert report.speedup_failures[0].current == pytest.approx(2.0)
        # And the honest 2.0x still passes a 1.8x requirement.
        assert check_trajectory([new], require_speedups={"staged": 1.8}).ok

    def test_all_cached_backend_counts_as_missing(self):
        new = backend_entry({"reference": 100_000.0, "staged": 200_000.0})
        for run in new["runs"]:
            if run["backend"] == "staged":
                run["from_cache"] = True
        report = check_trajectory([new], require_speedups={"staged": 1.8})
        assert not report.ok
        assert report.speedup_failures[0].current == 0.0

    def test_cli_require_speedup(self, tmp_path, capsys):
        path = str(tmp_path / "BENCH_throughput.json")
        save_trajectory(
            path,
            [backend_entry({"reference": 100_000.0, "staged": 300_000.0})],
        )
        assert main(["bench-check", path, "--require-speedup", "staged:1.8"]) == 0
        assert main(["bench-check", path, "--require-speedup", "staged:9"]) == 1
        assert "SPEEDUP GATE" in capsys.readouterr().out
        assert main(["bench-check", path, "--require-speedup", "bogus"]) == 2
        assert "BACKEND:FACTOR" in capsys.readouterr().err
