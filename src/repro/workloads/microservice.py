"""Cloud-microservice workload family: RPC chains and multi-tenant cores.

SLOFetch-style microservice studies show that cloud services stress the
front end differently from monolithic servers: a request traverses a
*chain* of RPC tiers (frontend -> auth -> logic -> cache -> storage),
each tier marshals arguments through shared serialization helpers, call
stacks run deep, and the aggregate instruction footprint spans several
megabytes.  On a real core the effect is compounded by *multi-tenancy*:
the OS interleaves several services on one SMT core, so the L1I and BTB
see context switches every scheduling quantum.

This module models both effects on top of the CFG substrate:

* :func:`build_rpc_program` builds a tiered RPC-chain program — an
  event-loop frontend dispatching into per-tier function pools, each
  tier function fanning out to the next tier through direct and virtual
  (indirect) call stubs, with Zipf-popular shared marshalling utilities
  called on both sides of every hop.  Footprints are multi-megabyte and
  call stacks reach ``tiers`` deep before the leaf tier's compute loops.
* :func:`interleave_traces` is the multi-tenant scheduler: it
  context-switches 2-4 tenant programs (laid out in disjoint address
  regions) onto one simulated core at a seeded scheduling quantum, so
  the prefetcher/BTB state of one tenant is thrashed by the others —
  the regime where instruction-prefetcher reach matters most.
* :func:`microservice_suite` packages both as first-class
  ``microservice``-category :class:`~repro.workloads.generators.WorkloadSpec`
  entries for suites, sweeps, figures, and tuning.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.workloads.cfg import BasicBlock, Function, Program, Terminator, TermKind
from repro.workloads.synthetic import generate_trace
from repro.workloads.trace import Instruction, Trace

MICROSERVICE_CATEGORY = "microservice"

#: Disjoint per-tenant code regions (256 MB apart): tenants share the
#: L1I/BTB but never alias each other's lines, as separate processes do.
TENANT_STRIDE = 0x1000_0000
TENANT_BASE = 0x40_0000

#: Default scheduling quantum in instructions; the per-workload quantum
#: is drawn around this by the spec seed.
DEFAULT_QUANTUM = 20_000


@dataclass(frozen=True)
class MicroserviceParams:
    """Shape of one RPC-chain service.

    Attributes:
        tiers: RPC hops from frontend to leaf (call-stack depth floor).
        funcs_per_tier: function-pool size per tier; with block/instr
            sizes this sets the multi-megabyte footprint.
        entry_handlers: frontend endpoints the event loop dispatches to.
        rpc_fanout: inclusive (min, max) next-tier calls per tier
            function (the RPC fan-out of one request).
        indirect_frac: fraction of RPC stubs dispatched virtually
            (service mesh / interface dispatch).
        utils: shared marshalling/logging helper pool size.
        zipf_s: Zipf skew of helper popularity.
        blocks_per_func: inclusive (min, max) blocks per tier function.
        instrs_per_block: inclusive (min, max) instructions per block.
        loop_prob: chance a block self-loops (marshalling copy loops).
        loop_taken_prob: back-edge taken probability.
        cond_prob: chance of a forward conditional skip.
        cond_bias_choices: taken probabilities for forward conditionals.
        load_frac / store_frac: memory instruction density.
    """

    tiers: int = 5
    funcs_per_tier: int = 800
    entry_handlers: int = 24
    rpc_fanout: Tuple[int, int] = (1, 3)
    indirect_frac: float = 0.35
    utils: int = 24
    zipf_s: float = 0.9
    blocks_per_func: Tuple[int, int] = (4, 10)
    instrs_per_block: Tuple[int, int] = (4, 14)
    loop_prob: float = 0.08
    loop_taken_prob: float = 0.80
    cond_prob: float = 0.30
    cond_bias_choices: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9)
    load_frac: float = 0.28
    store_frac: float = 0.12

    def __post_init__(self) -> None:
        if self.tiers < 2:
            raise ValueError(f"an RPC chain needs >= 2 tiers, got {self.tiers}")
        if self.funcs_per_tier < 2 or self.entry_handlers < 1:
            raise ValueError("funcs_per_tier/entry_handlers too small")

    @property
    def call_depth(self) -> int:
        """Interpreter call-depth bound: the chain plus helper nesting."""
        return self.tiers + 4


#: Service presets, loosely following DeathStarBench roles.  All are
#: server-class; they differ in chain depth, fan-out, and footprint so
#: multi-tenant mixes exercise asymmetric sharing.
MICROSERVICE_PARAMS: Dict[str, MicroserviceParams] = {
    # Social-network style: deep chains, heavy virtual dispatch.
    "social": MicroserviceParams(
        tiers=6,
        funcs_per_tier=820,
        entry_handlers=28,
        rpc_fanout=(1, 3),
        indirect_frac=0.45,
        utils=28,
        blocks_per_func=(4, 10),
        instrs_per_block=(3, 12),
    ),
    # Search/aggregation: wide fan-out at the mid tiers.
    "search": MicroserviceParams(
        tiers=5,
        funcs_per_tier=900,
        entry_handlers=20,
        rpc_fanout=(2, 4),
        indirect_frac=0.30,
        utils=24,
        blocks_per_func=(4, 9),
        instrs_per_block=(4, 13),
    ),
    # Media/streaming: shallower chain, larger straight-line blocks.
    "media": MicroserviceParams(
        tiers=4,
        funcs_per_tier=700,
        entry_handlers=16,
        rpc_fanout=(1, 2),
        indirect_frac=0.20,
        utils=18,
        blocks_per_func=(3, 8),
        instrs_per_block=(8, 24),
        loop_prob=0.14,
        cond_prob=0.22,
    ),
    # Payments/banking: branchy validation logic, modest fan-out.
    "bank": MicroserviceParams(
        tiers=5,
        funcs_per_tier=780,
        entry_handlers=22,
        rpc_fanout=(1, 2),
        indirect_frac=0.25,
        utils=26,
        blocks_per_func=(5, 11),
        instrs_per_block=(3, 10),
        cond_prob=0.38,
        cond_bias_choices=(0.2, 0.4, 0.6, 0.8),
    ),
}

SERVICE_NAMES = tuple(sorted(MICROSERVICE_PARAMS))


def _zipf_weights(n: int, s: float) -> List[float]:
    return [1.0 / (rank + 1) ** s for rank in range(max(1, n))]


class _ChainShape:
    """Function-name partition of one RPC-chain program."""

    def __init__(self, params: MicroserviceParams) -> None:
        self.main = "rpc_main"
        self.tiers: List[List[str]] = [
            [f"t{tier}_f{idx:04d}" for idx in range(params.funcs_per_tier)]
            for tier in range(params.tiers)
        ]
        self.handlers = self.tiers[0][: params.entry_handlers]
        self.utils = [f"util{idx:03d}" for idx in range(params.utils)]


def _tier_function(
    name: str,
    tier: int,
    shape: _ChainShape,
    params: MicroserviceParams,
    util_weights: List[float],
    rng: random.Random,
) -> Function:
    """One tier function: marshalling blocks around RPC stubs.

    Non-leaf tiers place their next-tier calls on dedicated stub blocks
    (1-2 candidate callees when virtual), with helper calls and branchy
    validation between them; the leaf tier runs compute/copy loops.
    """
    is_leaf = tier == params.tiers - 1
    n_blocks = rng.randint(*params.blocks_per_func)
    n_rpc = 0 if is_leaf else rng.randint(*params.rpc_fanout)
    rpc_blocks = set(
        rng.sample(range(max(1, n_blocks - 1)), min(n_rpc, max(1, n_blocks - 1)))
    )
    next_tier = None if is_leaf else shape.tiers[tier + 1]
    blocks: List[BasicBlock] = []
    for b in range(n_blocks):
        is_last = b == n_blocks - 1
        n_instr = rng.randint(*params.instrs_per_block)
        if is_last:
            term = Terminator(TermKind.RETURN)
        elif b in rpc_blocks and next_tier is not None:
            # The RPC stub: a few plausible next-tier endpoints, one hot.
            if rng.random() < params.indirect_frac:
                k = rng.randint(2, 4)
                callees = rng.sample(next_tier, min(k, len(next_tier)))
                weights = [8.0] + [1.0] * (len(callees) - 1)
                term = Terminator(
                    TermKind.INDIRECT_CALL,
                    candidates=list(zip(callees, weights)),
                )
            else:
                term = Terminator(TermKind.CALL, target=rng.choice(next_tier))
        else:
            term = _glue_terminator(b, n_blocks, shape, params, util_weights, rng)
        blocks.append(
            BasicBlock(
                label=f"b{b}",
                n_instructions=n_instr,
                terminator=term,
                load_frac=params.load_frac,
                store_frac=params.store_frac,
            )
        )
    return Function(name, blocks)


def _glue_terminator(
    block_idx: int,
    n_blocks: int,
    shape: _ChainShape,
    params: MicroserviceParams,
    util_weights: List[float],
    rng: random.Random,
) -> Terminator:
    """Between RPC stubs: copy loops, validation skips, helper calls."""
    roll = rng.random()
    if roll < params.loop_prob:
        return Terminator(
            TermKind.COND, target=f"b{block_idx}",
            taken_prob=params.loop_taken_prob,
        )
    roll -= params.loop_prob
    if roll < params.cond_prob and block_idx + 2 < n_blocks:
        forward = rng.randint(block_idx + 1, n_blocks - 1)
        bias = rng.choice(list(params.cond_bias_choices))
        return Terminator(TermKind.COND, target=f"b{forward}", taken_prob=bias)
    roll -= params.cond_prob
    if roll < 0.30 and shape.utils:
        helper = rng.choices(shape.utils, weights=util_weights, k=1)[0]
        return Terminator(TermKind.CALL, target=helper)
    return Terminator(TermKind.FALLTHROUGH)


def _util_function(
    name: str, params: MicroserviceParams, rng: random.Random
) -> Function:
    """A marshalling helper: a short copy loop and a return."""
    blocks = [
        BasicBlock(
            label="copy",
            n_instructions=rng.randint(*params.instrs_per_block),
            terminator=Terminator(
                TermKind.COND, target="copy", taken_prob=0.66
            ),
            load_frac=min(1.0 - params.store_frac, params.load_frac + 0.15),
            store_frac=params.store_frac,
        ),
        BasicBlock(
            label="done",
            n_instructions=max(2, params.instrs_per_block[0]),
            terminator=Terminator(TermKind.RETURN),
            load_frac=params.load_frac,
            store_frac=params.store_frac,
        ),
    ]
    return Function(name, blocks)


def _frontend(shape: _ChainShape, params: MicroserviceParams, rng: random.Random) -> Function:
    """The event loop: accept a request, dispatch an endpoint, repeat."""
    candidates = [(h, rng.uniform(0.6, 1.6)) for h in shape.handlers]
    blocks = [
        BasicBlock(
            label="accept",
            n_instructions=rng.randint(*params.instrs_per_block),
            terminator=Terminator(TermKind.INDIRECT_CALL, candidates=candidates),
            load_frac=params.load_frac,
            store_frac=params.store_frac,
        ),
        BasicBlock(
            label="loop",
            n_instructions=max(2, params.instrs_per_block[0]),
            terminator=Terminator(TermKind.JUMP, target="accept"),
            load_frac=params.load_frac,
            store_frac=params.store_frac,
        ),
    ]
    return Function(shape.main, blocks)


def build_rpc_program(
    params: MicroserviceParams,
    seed: int,
    base_address: int = TENANT_BASE,
) -> Program:
    """Build one RPC-chain service program deterministically.

    Layout is shuffled within each tier (call-graph neighbours are not
    address neighbours), and the whole program sits at ``base_address``
    so multi-tenant mixes occupy disjoint code regions.
    """
    rng = random.Random(seed)
    shape = _ChainShape(params)
    util_weights = _zipf_weights(len(shape.utils), params.zipf_s)
    functions: List[Function] = [_frontend(shape, params, rng)]
    for tier, names in enumerate(shape.tiers):
        for name in names:
            functions.append(
                _tier_function(name, tier, shape, params, util_weights, rng)
            )
    for name in shape.utils:
        functions.append(_util_function(name, params, rng))
    layout = functions[1:]
    rng.shuffle(layout)
    return Program(
        [functions[0]] + layout, entry=shape.main, base_address=base_address
    )


def interleave_traces(
    traces: Sequence[Trace],
    quantum: int = DEFAULT_QUANTUM,
    name: str = "multitenant",
    category: str = MICROSERVICE_CATEGORY,
    seed: int = 0,
) -> Trace:
    """Context-switch tenant traces onto one core at a seeded quantum.

    Round-robin over the tenants, each timeslice ``quantum`` +/- 25%
    (seeded jitter, as OS quanta are never exact), until every tenant
    stream is exhausted.  Slices preserve each tenant's retire order, so
    the result is exactly what one core retires while the OS schedules
    the tenants — the L1I/BTB/prefetcher state is shared and thrashed at
    every switch.  Deterministic in (traces, quantum, seed).
    """
    if not traces:
        raise ValueError("interleave_traces needs at least one tenant trace")
    if quantum < 1:
        raise ValueError(f"quantum must be >= 1, got {quantum}")
    rng = random.Random(seed)
    cursors = [0] * len(traces)
    merged: List[Instruction] = []
    switches = 0
    live = [i for i, t in enumerate(traces) if len(t)]
    turn = 0
    while live:
        idx = live[turn % len(live)]
        tenant = traces[idx]
        jitter = rng.uniform(0.75, 1.25)
        take = max(1, int(quantum * jitter))
        start = cursors[idx]
        end = min(start + take, len(tenant))
        merged.extend(tenant.instructions[start:end])
        cursors[idx] = end
        switches += 1
        if end >= len(tenant):
            pos = live.index(idx)
            live.pop(pos)
            # Keep rotating from the same position in the shrunken ring.
            turn = pos
        else:
            turn += 1
    out = Trace(name=name, instructions=merged, category=category)
    return out


def make_microservice_workload(spec) -> Trace:
    """Materialize a ``microservice``-category spec into a trace.

    ``spec.tenants`` names the services sharing the core (1-4 entries
    from :data:`MICROSERVICE_PARAMS`); ``None`` picks a seeded mix of
    2-4.  Each tenant's program is laid out in its own address region
    and executed for an equal share of ``spec.n_instructions``; the
    shares are interleaved at a seeded quantum.  Deterministic in the
    spec, like every other workload.
    """
    rng = random.Random(spec.seed ^ 0x5EED_0C5)
    tenants = spec.tenants
    if tenants is None:
        count = rng.randint(2, min(4, len(SERVICE_NAMES)))
        tenants = tuple(rng.sample(SERVICE_NAMES, count))
    for service in tenants:
        if service not in MICROSERVICE_PARAMS:
            raise ValueError(
                f"unknown microservice {service!r} "
                f"(choose from {SERVICE_NAMES})"
            )
    share = max(1, spec.n_instructions // len(tenants))
    tenant_traces: List[Trace] = []
    for i, service in enumerate(tenants):
        params = MICROSERVICE_PARAMS[service]
        program = build_rpc_program(
            params,
            seed=spec.seed * 31 + i,
            base_address=TENANT_BASE + i * TENANT_STRIDE,
        )
        tenant_traces.append(
            generate_trace(
                program,
                n_instructions=share,
                name=f"{spec.name}:{service}",
                category=MICROSERVICE_CATEGORY,
                seed=spec.seed * 131 + 7919 * (i + 1),
                max_call_depth=params.call_depth,
            )
        )
    if len(tenant_traces) == 1:
        single = tenant_traces[0]
        return Trace(
            name=spec.name,
            instructions=single.instructions[: spec.n_instructions],
            category=MICROSERVICE_CATEGORY,
        )
    quantum = max(1_000, int(DEFAULT_QUANTUM * rng.uniform(0.5, 1.5)))
    merged = interleave_traces(
        tenant_traces,
        quantum=quantum,
        name=spec.name,
        category=MICROSERVICE_CATEGORY,
        seed=spec.seed ^ 0x7EA_A17,
    )
    merged.instructions = merged.instructions[: spec.n_instructions]
    return merged


def microservice_suite(
    per_service: int = 1,
    n_instructions: int = 300_000,
    mixes: Optional[Sequence[Tuple[str, ...]]] = None,
) -> List:
    """The microservice evaluation suite.

    ``per_service`` single-tenant workloads per service preset, plus the
    multi-tenant ``mixes`` (default: one 2-way, one 3-way, and one 4-way
    mix) — every spec carries the first-class ``microservice`` category
    recognized by suites, figure drivers, reporting, and ``repro gen``.
    """
    from repro.workloads.generators import WorkloadSpec

    if mixes is None:
        mixes = (
            ("social", "search"),
            ("media", "bank", "social"),
            ("social", "search", "media", "bank"),
        )
    specs: List[WorkloadSpec] = []
    for s, service in enumerate(SERVICE_NAMES):
        for i in range(per_service):
            specs.append(
                WorkloadSpec(
                    name=f"msvc_{service}_{i:02d}",
                    category=MICROSERVICE_CATEGORY,
                    seed=20_000 + 100 * s + i,
                    n_instructions=n_instructions,
                    tenants=(service,),
                )
            )
    for m, mix in enumerate(mixes):
        specs.append(
            WorkloadSpec(
                name=f"msvc_mix{len(mix)}_{m:02d}",
                category=MICROSERVICE_CATEGORY,
                seed=25_000 + 17 * m,
                n_instructions=n_instructions,
                tenants=tuple(mix),
            )
        )
    return specs
