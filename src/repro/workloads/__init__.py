"""Workload substrate: instruction traces and synthetic program generators.

The paper evaluates on 959 proprietary Qualcomm CVP traces (crypto, int, fp,
and srv categories) plus four CloudSuite applications.  Those traces are not
publicly available, so this package provides a from-scratch substitute: a
control-flow-graph program model (:mod:`repro.workloads.cfg`), an interpreter
that executes such programs into instruction traces
(:mod:`repro.workloads.synthetic`), and tuned per-category generator suites
(:mod:`repro.workloads.generators`, :mod:`repro.workloads.cloudsuite`).
"""

from repro.workloads.trace import (
    BranchType,
    Instruction,
    Trace,
    TraceSalvage,
    read_trace,
    write_trace,
)
from repro.workloads.cfg import BasicBlock, Function, Program, ProgramBuilder
from repro.workloads.synthetic import CfgInterpreter, generate_trace
from repro.workloads.generators import (
    WorkloadSpec,
    cvp_suite,
    make_workload,
    workload_names,
)
from repro.workloads.cloudsuite import cloudsuite_suite
from repro.workloads.champsim import read_champsim_trace, write_champsim_trace
from repro.workloads.convert import (
    TraceParseError,
    read_text_trace,
    write_text_trace,
)
from repro.workloads.importers import (
    detect_trace_format,
    file_workload_spec,
    load_external_trace,
    trace_file_suite,
)
from repro.workloads.microservice import (
    interleave_traces,
    make_microservice_workload,
    microservice_suite,
)

__all__ = [
    "BranchType",
    "Instruction",
    "Trace",
    "TraceSalvage",
    "read_trace",
    "write_trace",
    "BasicBlock",
    "Function",
    "Program",
    "ProgramBuilder",
    "CfgInterpreter",
    "generate_trace",
    "WorkloadSpec",
    "cvp_suite",
    "make_workload",
    "workload_names",
    "cloudsuite_suite",
    "read_champsim_trace",
    "write_champsim_trace",
    "TraceParseError",
    "read_text_trace",
    "write_text_trace",
    "detect_trace_format",
    "file_workload_spec",
    "load_external_trace",
    "trace_file_suite",
    "interleave_traces",
    "make_microservice_workload",
    "microservice_suite",
]
