"""CloudSuite-like workloads for Figure 16.

The paper's Figure 16 evaluates four CloudSuite applications that exceed
1 L1I MPKI: *cassandra* (data serving), *cloud9* (software testing),
*nutch* (web search), and *streaming* (media streaming).  We model each as
a synthetic program whose footprint and control-flow profile follows the
published characterizations of these scale-out workloads (Ferdman et al.,
ASPLOS 2012): multi-megabyte instruction working sets, deep Java-style call
chains, and heavy use of virtual dispatch (indirect calls).
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.generators import ProgramParams, WorkloadSpec

#: Parameter presets per CloudSuite application.  All four are server-class
#: (large footprint, branchy) but differ in footprint size and dispatch
#: intensity so the prefetchers separate, as in the paper's Figure 16.
CLOUDSUITE_PARAMS: Dict[str, ProgramParams] = {
    "cassandra": ProgramParams(
        n_funcs=900,
        n_handlers=44,
        shared_utils=32,
        blocks_per_func=(3, 9),
        instrs_per_block=(3, 12),
        loop_prob=0.06,
        loop_taken_prob=0.80,
        cond_prob=0.32,
        call_prob=0.36,
        indirect_frac=0.22,
        cond_bias_choices=(0.2, 0.4, 0.6, 0.8),
        zipf_s=0.85,
    ),
    "cloud9": ProgramParams(
        n_funcs=560,
        n_handlers=28,
        shared_utils=20,
        blocks_per_func=(4, 12),
        instrs_per_block=(4, 14),
        loop_prob=0.10,
        loop_taken_prob=0.85,
        cond_prob=0.34,
        call_prob=0.28,
        indirect_frac=0.10,
        cond_bias_choices=(0.1, 0.3, 0.5, 0.7, 0.9),
        zipf_s=1.0,
    ),
    "nutch": ProgramParams(
        n_funcs=720,
        n_handlers=36,
        shared_utils=24,
        blocks_per_func=(3, 10),
        instrs_per_block=(3, 12),
        loop_prob=0.08,
        loop_taken_prob=0.82,
        cond_prob=0.30,
        call_prob=0.34,
        indirect_frac=0.18,
        cond_bias_choices=(0.2, 0.5, 0.8),
        zipf_s=0.9,
    ),
    "streaming": ProgramParams(
        n_funcs=440,
        n_handlers=20,
        shared_utils=16,
        blocks_per_func=(3, 9),
        instrs_per_block=(8, 30),
        loop_prob=0.14,
        loop_taken_prob=0.88,
        cond_prob=0.24,
        call_prob=0.28,
        indirect_frac=0.08,
        cond_bias_choices=(0.1, 0.2, 0.8, 0.9),
        zipf_s=1.0,
    ),
}


def cloudsuite_suite(n_instructions: int = 200_000) -> List[WorkloadSpec]:
    """The four CloudSuite-like workloads of Figure 16."""
    specs: List[WorkloadSpec] = []
    for i, (name, params) in enumerate(sorted(CLOUDSUITE_PARAMS.items())):
        specs.append(
            WorkloadSpec(
                name=name,
                category="cloud",
                seed=9000 + 17 * i,
                n_instructions=n_instructions,
                params=params,
            )
        )
    return specs
