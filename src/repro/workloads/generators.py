"""Random program generation tuned per CVP workload category.

The paper's evaluation uses proprietary Qualcomm CVP traces grouped as
``crypto``, ``int`` (compute int), ``fp`` (compute fp), and ``srv`` (server),
selected so each shows at least 1 L1I MPKI on the no-prefetch baseline.  We
substitute seeded random CFG programs structured like server software:

* an *event loop* entry function that indirect-calls one of ``n_handlers``
  handler functions per iteration (a request dispatcher);
* per-handler subtrees of *internal* functions (code locality: a handler
  calls mostly its own segment of the program);
* a pool of *shared utility* functions called from everywhere with Zipf
  popularity (the hot common code).

Because the dispatcher cycles through all handlers, the instruction
footprint reliably exceeds the L1I while every path recurs often enough
for prefetchers to train — the regime the paper studies.  Per-category
knobs reproduce the properties the paper reports:

* ``srv`` — the largest footprints, many small functions, deep call
  chains, indirect calls, smallest basic blocks (Fig 14).
* ``fp``  — long straight-line loop bodies: the largest basic blocks and
  the most prefetches per Entangled-table hit (Fig 14/15).
* ``int`` — medium footprint, branchy integer control flow.
* ``crypto`` — unrolled round functions: large blocks, highly
  compressible entangled destinations (Fig 12).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.workloads.cfg import BasicBlock, Function, Program, Terminator, TermKind
from repro.workloads.synthetic import generate_trace
from repro.workloads.trace import Trace

CATEGORIES = ("crypto", "int", "fp", "srv")

#: Every category ``make_workload`` can generate directly: the four CVP
#: stand-ins plus the cloud-microservice family (kept out of
#: :data:`CATEGORIES` so existing cvp_suite results keep their identity).
ALL_CATEGORIES = CATEGORIES + ("microservice",)


@dataclass(frozen=True)
class ProgramParams:
    """Knobs controlling random program generation.

    Attributes:
        n_funcs: total number of functions (dispatcher + handlers +
            internals + shared utilities).
        n_handlers: handler functions reachable from the dispatcher.
        shared_utils: size of the Zipf-popular shared-utility pool.
        blocks_per_func: inclusive (min, max) block count per function.
        instrs_per_block: inclusive (min, max) instruction count per block.
        loop_prob: probability a block's terminator is a backward
            conditional (a loop back edge).
        loop_taken_prob: taken probability for back edges (mean trip count
            is ``1 / (1 - loop_taken_prob)``).
        cond_prob: probability of a forward conditional skip.
        call_prob: probability of a call terminator.
        indirect_frac: fraction of calls through a pointer.
        cond_bias_choices: taken probabilities for forward conditionals;
            values near 0.5 create branch mispredictions.
        zipf_s: skew of shared-utility popularity.
        load_frac / store_frac: memory-instruction density.
    """

    n_funcs: int = 160
    n_handlers: int = 16
    shared_utils: int = 12
    blocks_per_func: Tuple[int, int] = (4, 12)
    instrs_per_block: Tuple[int, int] = (4, 16)
    loop_prob: float = 0.10
    loop_taken_prob: float = 0.85
    cond_prob: float = 0.30
    call_prob: float = 0.22
    indirect_frac: float = 0.10
    cond_bias_choices: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9)
    zipf_s: float = 1.2
    load_frac: float = 0.25
    store_frac: float = 0.10
    max_call_depth: int = 6

    def __post_init__(self) -> None:
        minimum = 1 + self.n_handlers + self.shared_utils + 1
        if self.n_funcs < minimum:
            raise ValueError(
                f"n_funcs={self.n_funcs} too small for {self.n_handlers} "
                f"handlers and {self.shared_utils} shared utilities"
            )


class _ProgramShape:
    """Partition of the function list into dispatcher/handlers/utils/internals."""

    def __init__(self, params: ProgramParams) -> None:
        self.names = [f"f{idx:03d}" for idx in range(params.n_funcs)]
        self.main = self.names[0]
        self.handlers = self.names[1 : 1 + params.n_handlers]
        utils_start = 1 + params.n_handlers
        self.utils = self.names[utils_start : utils_start + params.shared_utils]
        self.internals = self.names[utils_start + params.shared_utils :]
        # Contiguous internal segment per handler (code locality).
        self.segment: Dict[str, List[str]] = {}
        n_handlers = len(self.handlers)
        per_handler = max(1, len(self.internals) // max(1, n_handlers))
        for i, handler in enumerate(self.handlers):
            start = i * per_handler
            end = len(self.internals) if i == n_handlers - 1 else start + per_handler
            self.segment[handler] = self.internals[start:end]

    def segment_of(self, func_name: str) -> List[str]:
        """Internal segment a function belongs to (its handler's segment)."""
        if func_name in self.segment:
            return self.segment[func_name]
        for members in self.segment.values():
            if func_name in members:
                return members
        return self.internals


def build_program(params: ProgramParams, seed: int) -> Program:
    """Generate a random dispatcher-structured program deterministically.

    The *layout* order of functions is shuffled: call-graph neighbours are
    not address-space neighbours, as in real binaries without profile-
    guided layout.  This is what makes purely spatial prefetching (next
    line, aggressive block merging) pay an accuracy cost.
    """
    rng = random.Random(seed)
    shape = _ProgramShape(params)
    util_weights = _zipf_weights(len(shape.utils), params.zipf_s)
    functions = [_build_main(shape, params, rng)]
    for name in shape.handlers + shape.utils + shape.internals:
        functions.append(
            _build_function(name, shape, params, util_weights, rng)
        )
    layout = functions[1:]
    rng.shuffle(layout)
    return Program([functions[0]] + layout, entry=shape.main)


def _zipf_weights(n: int, s: float) -> List[float]:
    return [1.0 / (rank + 1) ** s for rank in range(max(1, n))]


def _build_main(shape: _ProgramShape, params: ProgramParams, rng: random.Random) -> Function:
    """The event loop: dispatch to a handler, then loop forever."""
    candidates = [(h, rng.uniform(0.6, 1.6)) for h in shape.handlers]
    blocks = [
        BasicBlock(
            label="dispatch",
            n_instructions=rng.randint(*params.instrs_per_block),
            terminator=Terminator(TermKind.INDIRECT_CALL, candidates=candidates),
            load_frac=params.load_frac,
            store_frac=params.store_frac,
        ),
        BasicBlock(
            label="loop",
            n_instructions=max(2, params.instrs_per_block[0]),
            terminator=Terminator(TermKind.JUMP, target="dispatch"),
            load_frac=params.load_frac,
            store_frac=params.store_frac,
        ),
    ]
    return Function(shape.main, blocks)


def _build_function(
    name: str,
    shape: _ProgramShape,
    params: ProgramParams,
    util_weights: List[float],
    rng: random.Random,
) -> Function:
    if name in shape.segment:
        return _build_handler(name, shape, params, rng)
    n_blocks = rng.randint(*params.blocks_per_func)
    blocks: List[BasicBlock] = []
    for b in range(n_blocks):
        n_instr = rng.randint(*params.instrs_per_block)
        is_last = b == n_blocks - 1
        term = (
            Terminator(TermKind.RETURN)
            if is_last
            else _pick_terminator(name, b, n_blocks, shape, params, util_weights, rng)
        )
        blocks.append(
            BasicBlock(
                label=f"b{b}",
                n_instructions=n_instr,
                terminator=term,
                load_frac=params.load_frac,
                store_frac=params.store_frac,
            )
        )
    return Function(name, blocks)


def _build_handler(
    name: str, shape: _ProgramShape, params: ProgramParams, rng: random.Random
) -> Function:
    """A request handler: indirect-calls across its whole internal segment.

    The segment is partitioned into slices, one call block per slice, so
    every internal function is statically reachable and repeated requests
    of the same type traverse the handler's full code footprint over time.
    """
    segment = shape.segment[name] or shape.utils or [name]
    slice_size = 6
    slices = [segment[i : i + slice_size] for i in range(0, len(segment), slice_size)]
    blocks: List[BasicBlock] = []
    for b, chunk in enumerate(slices):
        # One dominant callee per slice: real dispatch sites have a hot
        # common case, which gives prefetchers a recurring path to learn,
        # plus occasional cold alternatives.
        weights = [12.0] + [1.0] * (len(chunk) - 1)
        order = list(range(len(chunk)))
        rng.shuffle(order)
        candidates = [(chunk[i], weights[rank]) for rank, i in enumerate(order)]
        blocks.append(
            BasicBlock(
                label=f"b{b}",
                n_instructions=rng.randint(*params.instrs_per_block),
                terminator=Terminator(TermKind.INDIRECT_CALL, candidates=candidates),
                load_frac=params.load_frac,
                store_frac=params.store_frac,
            )
        )
    blocks.append(
        BasicBlock(
            label=f"b{len(slices)}",
            n_instructions=rng.randint(*params.instrs_per_block),
            terminator=Terminator(TermKind.RETURN),
            load_frac=params.load_frac,
            store_frac=params.store_frac,
        )
    )
    return Function(name, blocks)


def _pick_terminator(
    func_name: str,
    block_idx: int,
    n_blocks: int,
    shape: _ProgramShape,
    params: ProgramParams,
    util_weights: List[float],
    rng: random.Random,
) -> Terminator:
    roll = rng.random()
    if roll < params.loop_prob:
        # Self-loop: re-execute this block with probability loop_taken_prob
        # (mean trip count 1/(1-p)).  Self-loops keep per-function dwell
        # time bounded — back edges to earlier blocks would nest loops
        # multiplicatively and let one function absorb the whole trace.
        return Terminator(
            TermKind.COND, target=f"b{block_idx}", taken_prob=params.loop_taken_prob
        )
    roll -= params.loop_prob
    if roll < params.cond_prob and block_idx + 2 < n_blocks:
        forward = rng.randint(block_idx + 1, n_blocks - 1)
        bias = rng.choice(list(params.cond_bias_choices))
        return Terminator(TermKind.COND, target=f"b{forward}", taken_prob=bias)
    roll -= params.cond_prob
    if roll < params.call_prob:
        if rng.random() < params.indirect_frac:
            callees = _pick_callees(func_name, shape, util_weights, rng, k=3)
            weights = [10.0] + [1.0] * (len(callees) - 1)
            candidates = list(zip(callees, weights))
            return Terminator(TermKind.INDIRECT_CALL, candidates=candidates)
        callee = _pick_callees(func_name, shape, util_weights, rng, k=1)[0]
        return Terminator(TermKind.CALL, target=callee)
    return Terminator(TermKind.FALLTHROUGH)


def _pick_callees(
    func_name: str,
    shape: _ProgramShape,
    util_weights: List[float],
    rng: random.Random,
    k: int,
) -> List[str]:
    """Pick ``k`` distinct callees: mostly the caller's own segment, with a
    Zipf-weighted chance of a shared utility."""
    segment = shape.segment_of(func_name)
    chosen: List[str] = []
    seen = {func_name}
    attempts = 0
    while len(chosen) < k and attempts < 40:
        attempts += 1
        if shape.utils and rng.random() < 0.35:
            cand = rng.choices(shape.utils, weights=util_weights, k=1)[0]
        elif segment:
            cand = rng.choice(segment)
        else:
            cand = rng.choice(shape.internals or shape.utils or [func_name])
        if cand in seen:
            continue
        seen.add(cand)
        chosen.append(cand)
    if not chosen:
        fallback = shape.utils[0] if shape.utils else shape.internals[0]
        chosen.append(fallback)
    return chosen


#: Per-category parameter presets.  ``n_funcs`` x mean function size sets the
#: instruction footprint; block-size ranges set the basic-block statistics
#: the paper reports in Figures 12-15.
CATEGORY_PARAMS: Dict[str, ProgramParams] = {
    "crypto": ProgramParams(
        n_funcs=120,
        n_handlers=10,
        shared_utils=8,
        blocks_per_func=(3, 7),
        instrs_per_block=(16, 56),
        loop_prob=0.14,
        loop_taken_prob=0.80,
        cond_prob=0.08,
        call_prob=0.46,
        indirect_frac=0.02,
        cond_bias_choices=(0.05, 0.1, 0.9, 0.95),
        zipf_s=0.8,
        max_call_depth=4,
    ),
    "int": ProgramParams(
        n_funcs=800,
        n_handlers=26,
        shared_utils=18,
        blocks_per_func=(4, 13),
        instrs_per_block=(4, 20),
        loop_prob=0.10,
        loop_taken_prob=0.85,
        cond_prob=0.28,
        call_prob=0.26,
        indirect_frac=0.08,
        cond_bias_choices=(0.1, 0.3, 0.5, 0.7, 0.9),
        zipf_s=1.1,
        max_call_depth=5,
    ),
    "fp": ProgramParams(
        n_funcs=230,
        n_handlers=14,
        shared_utils=10,
        blocks_per_func=(3, 7),
        instrs_per_block=(24, 96),
        loop_prob=0.16,
        loop_taken_prob=0.85,
        cond_prob=0.10,
        call_prob=0.42,
        indirect_frac=0.03,
        cond_bias_choices=(0.05, 0.1, 0.9),
        zipf_s=1.0,
        max_call_depth=4,
    ),
    "srv": ProgramParams(
        n_funcs=2600,
        n_handlers=40,
        shared_utils=30,
        blocks_per_func=(3, 10),
        instrs_per_block=(3, 14),
        loop_prob=0.05,
        loop_taken_prob=0.80,
        cond_prob=0.28,
        call_prob=0.40,
        indirect_frac=0.16,
        cond_bias_choices=(0.1, 0.2, 0.5, 0.8, 0.9),
        zipf_s=0.9,
        max_call_depth=4,
    ),
}


#: Default trace lengths per category: sized so each category's footprint
#: is fully traversed a few times (srv needs the longest traces to pressure
#: the 2K-entry Entangled table the way the paper's server traces do).
DEFAULT_INSTRUCTIONS: Dict[str, int] = {
    "crypto": 300_000,
    "int": 400_000,
    "fp": 400_000,
    "srv": 500_000,
}


@dataclass(frozen=True)
class WorkloadSpec:
    """Identity of one workload.

    ``make_workload`` turns a spec into a concrete :class:`Trace`; equal
    specs always generate identical traces.  Three kinds of spec share
    the type (so suites, sweeps, caching, and parallel workers treat
    them uniformly):

    * *synthetic* — the default; ``category`` picks the generator preset.
    * *microservice* — ``category == "microservice"``; ``tenants`` names
      the 1-4 services context-switched onto the core (``None`` draws a
      seeded mix).
    * *external* — ``trace_file`` points at an on-disk trace (our binary
      format, text, or ChampSim); the file's content is the workload and
      the generator knobs are unused.  Cache keys include the path, not
      the bytes: re-running after overwriting the file in place reuses
      stale cache entries, so version external trace files by name.
    """

    name: str
    category: str
    seed: int
    n_instructions: int = 200_000
    params: Optional[ProgramParams] = None
    trace_file: Optional[str] = None
    tenants: Optional[Tuple[str, ...]] = None

    def resolve_params(self) -> ProgramParams:
        if self.params is not None:
            return self.params
        if self.category not in CATEGORY_PARAMS:
            raise ValueError(f"unknown category {self.category!r}")
        return CATEGORY_PARAMS[self.category]


def cvp_suite(
    per_category: int = 6, n_instructions: Optional[int] = None
) -> List[WorkloadSpec]:
    """The default evaluation suite: ``per_category`` workloads per category.

    Stands in for the paper's 959 CVP traces; seeds vary both the program
    shape and the execution path.
    """
    specs: List[WorkloadSpec] = []
    for category in CATEGORIES:
        for i in range(per_category):
            length = (
                n_instructions
                if n_instructions is not None
                else DEFAULT_INSTRUCTIONS[category]
            )
            specs.append(
                WorkloadSpec(
                    name=f"{category}_{i:02d}",
                    category=category,
                    seed=1000 * (CATEGORIES.index(category) + 1) + i,
                    n_instructions=length,
                )
            )
    return specs


def make_workload(spec: WorkloadSpec) -> Trace:
    """Materialize the trace for ``spec`` (deterministic in the spec).

    Dispatches on the spec kind: external trace files load through
    :mod:`repro.workloads.importers` (format auto-detected),
    ``microservice`` specs go through the multi-tenant RPC-chain
    generator, and everything else is a synthetic CFG program.
    """
    if spec.trace_file is not None:
        # Imported lazily: importers depends on this module for specs.
        from repro.workloads.importers import load_external_trace

        trace = load_external_trace(
            spec.trace_file, name=spec.name, category=spec.category
        )
        if spec.n_instructions and len(trace) > spec.n_instructions:
            trace.instructions = trace.instructions[: spec.n_instructions]
        return trace
    if spec.category == "microservice" or spec.tenants is not None:
        from repro.workloads.microservice import make_microservice_workload

        return make_microservice_workload(spec)
    params = spec.resolve_params()
    program = build_program(params, seed=spec.seed)
    return generate_trace(
        program,
        n_instructions=spec.n_instructions,
        name=spec.name,
        category=spec.category,
        seed=spec.seed + 7919,
        max_call_depth=params.max_call_depth,
    )


def workload_names(specs: Sequence[WorkloadSpec]) -> List[str]:
    return [spec.name for spec in specs]
