"""ChampSim-format binary trace ingestion.

ChampSim (the simulator behind the IPC-1/DPC-3 championship traces and
most CloudSuite trace sets) stores one fixed-width record per retired
instruction, with no file header, magic, or record count:

* **legacy** layout (x86 tracer, 64 bytes): ``ip`` (u64), ``is_branch``
  (u8), ``branch_taken`` (u8), 2 destination registers (u8 each), 4
  source registers (u8 each), 2 destination memory addresses (u64 each),
  4 source memory addresses (u64 each).
* **v2** layout (the 4-destination tracer used for the CloudSuite/SPARC
  trace sets, 82 bytes): identical fields with 4 destination registers
  and 4 destination memory addresses.

Files are usually gzip-compressed (``*.champsim.trace.gz`` /
``*.champsimtrace.gz``); this reader streams either compressed or raw
bytes.

Two properties of the format drive the reconstruction pass:

* **Branch types are not stored.**  ChampSim re-derives them from which
  architectural registers an instruction reads/writes (instruction
  pointer, stack pointer, flags); :func:`classify_branch` mirrors that
  decision table, so the front end sees the same conditional/call/
  return/indirect taxonomy the paper's simulator saw.
* **Branch targets are not stored.**  The target of a taken branch is
  the *next* record's ``ip``; instruction sizes fall out of sequential
  deltas.  A non-branch followed by a discontinuity (trap, sampled
  trace, tracer glitch) is encoded as a taken direct jump so the stream
  stays architecturally consistent — the same convention as
  :func:`repro.workloads.trace.trace_from_pcs`.

Ingestion hardening matches :func:`repro.workloads.trace.read_trace`:
every failure is a :class:`~repro.check.errors.TraceError` subclass
carrying the path, the byte offset of the damage, and the first bad
record index; ``salvage=True`` recovers the longest valid record prefix
and flags it via :class:`~repro.workloads.trace.TraceSalvage` (never a
silent partial load).
"""

from __future__ import annotations

import gzip
import os
import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.check.errors import (
    TraceHeaderError,
    TracePayloadError,
    TraceRecordError,
    TraceTruncatedError,
)
from repro.workloads.trace import (
    _MAX_ADDRESS,
    BranchType,
    Instruction,
    Trace,
    TraceSalvage,
)

PathLike = Union[str, "os.PathLike[str]"]

#: ChampSim's x86 register identifiers involved in branch classification.
REG_STACK_POINTER = 6
REG_FLAGS = 25
REG_INSTRUCTION_POINTER = 26

#: Largest plausible x86 instruction; sequential deltas beyond this are
#: treated as discontinuities rather than instruction sizes.
_MAX_SIZE = 15
_DEFAULT_SIZE = 4

_GZIP_MAGIC = b"\x1f\x8b"


@dataclass(frozen=True)
class ChampSimLayout:
    """One fixed-width record layout.

    Attributes:
        name: layout identifier (``legacy`` or ``v2``).
        n_dest: destination register/memory slots per record.
        n_src: source register/memory slots per record.
    """

    name: str
    n_dest: int
    n_src: int

    @property
    def record_size(self) -> int:
        # ip + is_branch + branch_taken + dest regs + src regs
        # + dest mem (u64 each) + src mem (u64 each)
        return 8 + 1 + 1 + self.n_dest + self.n_src + 8 * (self.n_dest + self.n_src)

    @property
    def struct(self) -> struct.Struct:
        return struct.Struct(
            f"<QBB{self.n_dest}B{self.n_src}B{self.n_dest}Q{self.n_src}Q"
        )


#: The two record layouts this reader speaks, by name.
LAYOUTS = {
    "legacy": ChampSimLayout("legacy", n_dest=2, n_src=4),
    "v2": ChampSimLayout("v2", n_dest=4, n_src=4),
}

LAYOUT_NAMES = ("auto",) + tuple(LAYOUTS)


@dataclass(frozen=True)
class _RawRecord:
    """One decoded ChampSim record before branch/target reconstruction."""

    ip: int
    is_branch: bool
    branch_taken: bool
    dest_regs: Tuple[int, ...]
    src_regs: Tuple[int, ...]
    dest_mem: Tuple[int, ...]
    src_mem: Tuple[int, ...]


def classify_branch(record: _RawRecord) -> BranchType:
    """ChampSim's branch-type decision table from register effects.

    Mirrors the tracereader heuristic: which of IP/SP/FLAGS the
    instruction reads and writes determines the branch kind.  Branches
    that match no rule (ChampSim's ``BRANCH_OTHER``) are treated as
    conditionals — direction-predicted, the conservative choice for the
    front-end model.
    """
    if not record.is_branch:
        return BranchType.NOT_BRANCH
    reads = set(record.src_regs)
    writes = set(record.dest_regs)
    reads_ip = REG_INSTRUCTION_POINTER in reads
    writes_ip = REG_INSTRUCTION_POINTER in writes
    reads_sp = REG_STACK_POINTER in reads
    writes_sp = REG_STACK_POINTER in writes
    reads_flags = REG_FLAGS in reads
    reads_other = bool(
        reads - {REG_INSTRUCTION_POINTER, REG_STACK_POINTER, REG_FLAGS, 0}
    )
    if not writes_ip:
        return BranchType.CONDITIONAL  # branch flag set but IP untouched
    if reads_ip and not reads_sp and not reads_flags and not reads_other:
        return BranchType.DIRECT_JUMP
    if not reads_ip and not reads_sp and not reads_flags and reads_other:
        return BranchType.INDIRECT_JUMP
    if reads_ip and not reads_sp and reads_flags and not reads_other:
        return BranchType.CONDITIONAL
    if reads_ip and reads_sp and writes_sp and not reads_flags and not reads_other:
        return BranchType.DIRECT_CALL
    if not reads_ip and reads_sp and writes_sp and not reads_flags and reads_other:
        return BranchType.INDIRECT_CALL
    if not reads_ip and reads_sp and writes_sp and not reads_flags and not reads_other:
        return BranchType.RETURN
    return BranchType.CONDITIONAL


def _register_effects(branch_type: BranchType, taken: bool) -> Tuple[
    Tuple[int, ...], Tuple[int, ...]
]:
    """Inverse of :func:`classify_branch`: (src_regs, dest_regs) encoding
    the given type.  Used by the trace writer (fixtures, round-trips)."""
    IP, SP, FL = REG_INSTRUCTION_POINTER, REG_STACK_POINTER, REG_FLAGS
    OTHER = 3  # any general-purpose register id
    if branch_type == BranchType.NOT_BRANCH:
        return (), ()
    if branch_type == BranchType.DIRECT_JUMP:
        return (IP,), (IP,)
    if branch_type == BranchType.INDIRECT_JUMP:
        return (OTHER,), (IP,)
    if branch_type == BranchType.CONDITIONAL:
        return (IP, FL), (IP,)
    if branch_type == BranchType.DIRECT_CALL:
        return (IP, SP), (IP, SP)
    if branch_type == BranchType.INDIRECT_CALL:
        return (SP, OTHER), (IP, SP)
    if branch_type == BranchType.RETURN:
        return (SP,), (IP, SP)
    raise AssertionError(f"unhandled branch type {branch_type}")


def _decode_raw(
    layout: ChampSimLayout, block: bytes, base: int
) -> Tuple[Optional[_RawRecord], Optional[str]]:
    """Decode and validate one record at ``base``; (record, reason)."""
    fields = layout.struct.unpack_from(block, base)
    ip = fields[0]
    is_branch, branch_taken = fields[1], fields[2]
    regs_end = 3 + layout.n_dest + layout.n_src
    dest_regs = fields[3 : 3 + layout.n_dest]
    src_regs = fields[3 + layout.n_dest : regs_end]
    dest_mem = fields[regs_end : regs_end + layout.n_dest]
    src_mem = fields[regs_end + layout.n_dest :]
    if is_branch not in (0, 1):
        return None, f"is_branch byte is {is_branch}, expected 0 or 1"
    if branch_taken not in (0, 1):
        return None, f"branch_taken byte is {branch_taken}, expected 0 or 1"
    if branch_taken and not is_branch:
        return None, "non-branch record marked taken"
    if ip == 0:
        return None, "instruction pointer is 0"
    for label, value in (("ip", ip),) + tuple(
        (f"mem[{i}]", addr) for i, addr in enumerate(dest_mem + src_mem)
    ):
        if value >= _MAX_ADDRESS:
            return None, (
                f"{label} 0x{value:x} exceeds the simulator's "
                f"{_MAX_ADDRESS.bit_length() - 1}-bit address space"
            )
    return (
        _RawRecord(
            ip=ip,
            is_branch=bool(is_branch),
            branch_taken=bool(branch_taken),
            dest_regs=dest_regs,
            src_regs=src_regs,
            dest_mem=dest_mem,
            src_mem=src_mem,
        ),
        None,
    )


def _score_layout(layout: ChampSimLayout, block: bytes, probe: int = 64) -> int:
    """How many of the first ``probe`` records decode cleanly as ``layout``."""
    n = min(probe, len(block) // layout.record_size)
    good = 0
    for index in range(n):
        _record, reason = _decode_raw(layout, block, index * layout.record_size)
        if reason is not None:
            break
        good += 1
    return good


def detect_champsim_layout(block: bytes, path: str = "<bytes>") -> ChampSimLayout:
    """Pick the record layout of a decompressed ChampSim byte block.

    Prefers a layout whose record size divides the block exactly; ties
    (and partial tails) are broken by how many leading records decode
    cleanly.  Raises :class:`TraceHeaderError` when neither layout can
    decode even one record — the file is not a ChampSim trace.
    """
    candidates = []
    for layout in LAYOUTS.values():
        if len(block) < layout.record_size:
            continue
        exact = len(block) % layout.record_size == 0
        candidates.append((_score_layout(layout, block), exact, layout))
    candidates = [c for c in candidates if c[0] > 0]
    if not candidates:
        raise TraceHeaderError(
            f"{path}: not a ChampSim trace (no record layout decodes the "
            f"first bytes; {len(block)} bytes available)",
            path=path,
            offset=0,
        )
    candidates.sort(key=lambda c: (c[0], c[1]), reverse=True)
    return candidates[0][2]


def _read_payload(
    path: str, salvage: bool, problems: List[str]
) -> bytes:
    """File bytes, gzip-decompressed when compressed.

    Corruption inside the gzip stream raises :class:`TracePayloadError`
    in strict mode; in salvage mode the clean prefix is kept and the
    reason recorded in ``problems``.
    """
    with open(path, "rb") as fh:
        raw = fh.read()
    if not raw.startswith(_GZIP_MAGIC):
        return raw
    decompressor = zlib.decompressobj(16 + zlib.MAX_WBITS)  # gzip wrapper
    chunks: List[bytes] = []
    error: Optional[str] = None
    for start in range(0, len(raw), 1 << 16):
        try:
            chunks.append(decompressor.decompress(raw[start : start + (1 << 16)]))
        except zlib.error as exc:
            error = f"gzip stream is corrupt ({exc})"
            break
    else:
        try:
            chunks.append(decompressor.flush())
        except zlib.error as exc:
            error = f"gzip stream ends mid-member ({exc})"
        if error is None and not decompressor.eof:
            error = "gzip stream is incomplete (member did not finish)"
    if error is not None:
        if not salvage:
            raise TracePayloadError(
                f"{path}: {error}", path=path, offset=0
            )
        problems.append(error)
    return b"".join(chunks)


def _reconstruct(records: List[_RawRecord]) -> List[Instruction]:
    """Second pass: branch types, targets, and sizes from the ip stream."""
    out: List[Instruction] = []
    n = len(records)
    for i, rec in enumerate(records):
        next_ip = records[i + 1].ip if i + 1 < n else None
        branch_type = classify_branch(rec)
        taken = rec.is_branch and rec.branch_taken
        target = 0
        size = _DEFAULT_SIZE
        if next_ip is not None:
            delta = next_ip - rec.ip
            if taken:
                target = next_ip
                # A taken branch's own size is unobservable; keep default.
            elif 0 < delta <= _MAX_SIZE:
                size = delta
            elif delta != 0:
                # Discontinuity without a taken branch: a not-taken
                # conditional that the stream nevertheless leaves, a trap,
                # or a sampled gap.  Encode the control transfer so
                # Instruction.next_pc matches the stream.
                if rec.is_branch:
                    taken = True
                    target = next_ip
                else:
                    branch_type = BranchType.DIRECT_JUMP
                    taken = True
                    target = next_ip
        is_store = any(rec.dest_mem)
        is_load = any(rec.src_mem)
        data_addr = 0
        if is_load:
            data_addr = next(addr for addr in rec.src_mem if addr)
        elif is_store:
            data_addr = next(addr for addr in rec.dest_mem if addr)
        out.append(
            Instruction(
                pc=rec.ip,
                size=size,
                branch_type=branch_type,
                taken=taken,
                target=target,
                is_load=is_load,
                is_store=is_store,
                data_addr=data_addr,
            )
        )
    return out


def read_champsim_trace(
    path: PathLike,
    name: Optional[str] = None,
    category: str = "cloud",
    layout: str = "auto",
    limit: Optional[int] = None,
    salvage: bool = False,
) -> Trace:
    """Read a (possibly gzipped) ChampSim-format trace into a :class:`Trace`.

    Args:
        path: trace file; gzip compression is detected from the magic
            bytes, not the extension.
        name: workload name (default: the file's base name without
            ChampSim suffixes).
        category: workload category recorded on the trace.
        layout: ``legacy``, ``v2``, or ``auto`` (detect from the bytes).
        limit: keep at most this many leading records (ChampSim traces
            often hold hundreds of millions).
        salvage: recover the longest valid record prefix from a damaged
            file instead of raising; the returned trace is flagged via
            ``trace.salvage``.

    Raises:
        TraceError: structured ingestion failure — gzip corruption
            (:class:`TracePayloadError`), no decodable layout
            (:class:`TraceHeaderError`), a torn trailing record
            (:class:`TraceTruncatedError`), or an invalid field
            (:class:`TraceRecordError`) — subject to the salvage rules.
    """
    path = os.fspath(path)
    if layout not in LAYOUT_NAMES:
        raise ValueError(
            f"unknown ChampSim layout {layout!r} (choose from {LAYOUT_NAMES})"
        )
    problems: List[str] = []
    block = _read_payload(path, salvage, problems)
    if not block:
        raise TraceHeaderError(
            f"{path}: no record bytes "
            f"({'empty file' if not problems else problems[0]})",
            path=path,
            offset=0,
        )
    chosen = (
        detect_champsim_layout(block, path) if layout == "auto" else LAYOUTS[layout]
    )
    record_size = chosen.record_size
    expected = (len(block) + record_size - 1) // record_size
    complete = len(block) // record_size
    if len(block) % record_size:
        err = TraceTruncatedError(
            f"{path}: torn trailing record ({len(block)} bytes is not a "
            f"multiple of the {record_size}B {chosen.name} record; record "
            f"#{complete} at byte {complete * record_size} is incomplete)",
            path=path,
            offset=complete * record_size,
            record_index=complete,
        )
        if not salvage:
            raise err
        problems.append(
            f"torn trailing record #{complete} "
            f"({len(block) % record_size} of {record_size} bytes)"
        )

    records: List[_RawRecord] = []
    stop = complete if limit is None else min(complete, limit)
    for index in range(stop):
        base = index * record_size
        record, reason = _decode_raw(chosen, block, base)
        if reason is None:
            records.append(record)
            continue
        if not salvage:
            raise TraceRecordError(
                f"{path}: invalid {chosen.name} record #{index} at byte "
                f"{base}: {reason}",
                path=path,
                offset=base,
                record_index=index,
            )
        problems.append(f"record #{index} at byte {base}: {reason}")
        break  # salvage keeps the longest valid prefix only

    if name is None:
        base_name = os.path.basename(path)
        for suffix in (".gz", ".xz", ".trace", ".champsimtrace", ".champsim"):
            if base_name.endswith(suffix):
                base_name = base_name[: -len(suffix)]
        name = base_name or "champsim"

    trace = Trace(
        name=name, instructions=_reconstruct(records), category=category
    )
    if salvage and (problems or (limit is None and len(records) != expected)):
        trace.salvage = TraceSalvage(
            recovered=len(records),
            expected=expected if limit is None else stop,
            reasons=problems,
        )
    return trace


def write_champsim_trace(
    trace: Trace,
    path: PathLike,
    layout: str = "legacy",
    compress: Optional[bool] = None,
) -> None:
    """Serialize a trace as ChampSim records (fixtures and round-trips).

    Branch types are encoded through the register-effect inverse of
    :func:`classify_branch`, so a read-back reconstructs the same
    taxonomy.  ``compress=None`` gzips iff the path ends in ``.gz``.
    Writes are atomic (crash-safe artifact-IO contract).
    """
    from repro.check.artifacts import atomic_write_bytes

    path = os.fspath(path)
    chosen = LAYOUTS[layout]
    if compress is None:
        compress = path.endswith(".gz")
    body = bytearray()
    for inst in trace:
        src_regs, dest_regs = _register_effects(inst.branch_type, inst.taken)
        dest_mem = [inst.data_addr if inst.is_store else 0] + [0] * (
            chosen.n_dest - 1
        )
        src_mem = [inst.data_addr if inst.is_load else 0] + [0] * (
            chosen.n_src - 1
        )
        body += chosen.struct.pack(
            inst.pc,
            1 if inst.is_branch else 0,
            1 if inst.taken else 0,
            *(list(dest_regs) + [0] * (chosen.n_dest - len(dest_regs))),
            *(list(src_regs) + [0] * (chosen.n_src - len(src_regs))),
            *dest_mem,
            *src_mem,
        )
    payload = bytes(body)
    if compress:
        payload = gzip.compress(payload, mtime=0)
    atomic_write_bytes(path, payload)
