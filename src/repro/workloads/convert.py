"""Importing externally produced instruction traces.

Users with their own traces (e.g. dumped from a binary-instrumentation
tool) can convert them into :class:`~repro.workloads.trace.Trace` objects
through a simple line-oriented text format:

* **Minimal form** — one program counter per line (hex with ``0x`` prefix
  or decimal).  Branches are inferred: any non-sequential successor marks
  the previous instruction as a taken direct jump, as in
  :func:`repro.workloads.trace.trace_from_pcs`.
* **Extended form** — comma-separated
  ``pc,branch_type,taken,target[,mem,data_addr]`` where ``branch_type``
  is one of ``-`` (not a branch), ``cond``, ``jmp``, ``ijmp``, ``call``,
  ``icall``, ``ret``; ``taken`` is ``0``/``1``; ``mem`` is ``-``/``load``/
  ``store``.

Lines starting with ``#`` and blank lines are ignored.  The two forms can
be mixed freely (a line without commas is a minimal-form line).

Paths may be ``str`` or :class:`os.PathLike`; a ``.gz`` suffix reads and
writes the same format through gzip.  File writes go through the
crash-safe artifact layer (:mod:`repro.check.artifacts`), so a torn write
can never leave a half-trace behind.  For ChampSim-format binary traces
see :mod:`repro.workloads.champsim`; for one-stop loading of any external
format see :mod:`repro.workloads.importers`.
"""

from __future__ import annotations

import gzip
import io
import os
from typing import Iterable, List, Optional, TextIO, Union

from repro.check.artifacts import atomic_write_bytes, atomic_write_text
from repro.check.errors import TraceError
from repro.workloads.trace import BranchType, Instruction, Trace

PathOrFile = Union[str, "os.PathLike[str]", TextIO]

_BRANCH_NAMES = {
    "-": BranchType.NOT_BRANCH,
    "cond": BranchType.CONDITIONAL,
    "jmp": BranchType.DIRECT_JUMP,
    "ijmp": BranchType.INDIRECT_JUMP,
    "call": BranchType.DIRECT_CALL,
    "icall": BranchType.INDIRECT_CALL,
    "ret": BranchType.RETURN,
}

_BRANCH_CODES = {v: k for k, v in _BRANCH_NAMES.items()}


class TraceParseError(TraceError):
    """A malformed line in an external text trace file.

    Part of the :class:`~repro.check.errors.TraceError` taxonomy (and
    therefore a ``ValueError``), so text-import failures flow through the
    same structured CLI error handling and suite quarantine as binary
    ingestion errors.  Carries the file path (when parsing from a path)
    and the 1-based line number of the offending line.
    """

    def __init__(
        self,
        line_no: int,
        line: str,
        reason: str,
        path: Optional[str] = None,
    ) -> None:
        where = f"{path}: line {line_no}" if path else f"line {line_no}"
        super().__init__(
            f"{where}: {reason}: {line!r}", path=path, record_index=line_no - 1
        )
        self.line_no = line_no


def _is_pathlike(value: object) -> bool:
    return isinstance(value, (str, os.PathLike))


def _is_gz(path: Union[str, "os.PathLike[str]"]) -> bool:
    return os.fspath(path).endswith(".gz")


def _parse_int(text: str, line_no: int, line: str, path: Optional[str]) -> int:
    text = text.strip()
    try:
        return int(text, 16) if text.lower().startswith("0x") else int(text)
    except ValueError:
        raise TraceParseError(
            line_no, line, f"not a number: {text!r}", path=path
        ) from None


def _parse_extended(
    parts: List[str], line_no: int, line: str, path: Optional[str]
) -> Instruction:
    if len(parts) not in (4, 6):
        raise TraceParseError(
            line_no, line, f"expected 4 or 6 fields, got {len(parts)}", path=path
        )
    pc = _parse_int(parts[0], line_no, line, path)
    branch_name = parts[1].strip().lower()
    if branch_name not in _BRANCH_NAMES:
        raise TraceParseError(
            line_no, line, f"unknown branch type {branch_name!r}", path=path
        )
    branch_type = _BRANCH_NAMES[branch_name]
    taken_field = parts[2].strip()
    if taken_field not in ("0", "1"):
        raise TraceParseError(
            line_no, line, f"taken must be 0 or 1, got {taken_field!r}", path=path
        )
    taken = taken_field == "1"
    if taken and branch_type == BranchType.NOT_BRANCH:
        raise TraceParseError(line_no, line, "non-branch marked taken", path=path)
    target = _parse_int(parts[3], line_no, line, path)
    is_load = is_store = False
    data_addr = 0
    if len(parts) == 6:
        mem = parts[4].strip().lower()
        if mem not in ("-", "load", "store"):
            raise TraceParseError(
                line_no, line, f"unknown mem kind {mem!r}", path=path
            )
        is_load = mem == "load"
        is_store = mem == "store"
        data_addr = _parse_int(parts[5], line_no, line, path)
    return Instruction(
        pc=pc,
        branch_type=branch_type,
        taken=taken,
        target=target,
        is_load=is_load,
        is_store=is_store,
        data_addr=data_addr,
    )


def parse_text_trace(
    lines: Iterable[str],
    name: str = "imported",
    category: str = "unknown",
    path: Optional[str] = None,
) -> Trace:
    """Parse the text format described in the module docstring.

    ``path`` (when parsing file contents) is threaded into any
    :class:`TraceParseError` so the diagnosis names the file.
    """
    instructions: List[Instruction] = []
    pending_pc: Optional[int] = None

    def flush_pending(next_pc: Optional[int]) -> None:
        nonlocal pending_pc
        if pending_pc is None:
            return
        if next_pc is not None and next_pc != pending_pc + 4:
            instructions.append(
                Instruction(
                    pc=pending_pc,
                    branch_type=BranchType.DIRECT_JUMP,
                    taken=True,
                    target=next_pc,
                )
            )
        else:
            instructions.append(Instruction(pc=pending_pc))
        pending_pc = None

    for line_no, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "," in line:
            inst = _parse_extended(line.split(","), line_no, line, path)
            flush_pending(inst.pc)
            instructions.append(inst)
        else:
            pc = _parse_int(line, line_no, line, path)
            flush_pending(pc)
            pending_pc = pc
    flush_pending(None)
    return Trace(name=name, instructions=instructions, category=category)


def read_text_trace(
    path_or_file: PathOrFile,
    name: Optional[str] = None,
    category: str = "unknown",
) -> Trace:
    """Read a text trace from a path (``str``/``os.PathLike``, optionally
    ``.gz``) or an open file object."""
    if _is_pathlike(path_or_file):
        path = os.fspath(path_or_file)
        opener = gzip.open if _is_gz(path) else open
        with opener(path, "rt") as fh:
            return parse_text_trace(
                fh, name=name or path, category=category, path=path
            )
    return parse_text_trace(path_or_file, name=name or "imported", category=category)


def format_text_trace(trace: Trace) -> str:
    """The extended text form of a trace (lossless for our fields)."""
    out = io.StringIO()
    out.write(f"# trace {trace.name} category={trace.category}\n")
    for inst in trace:
        mem = "load" if inst.is_load else "store" if inst.is_store else "-"
        out.write(
            f"0x{inst.pc:x},{_BRANCH_CODES[inst.branch_type]},"
            f"{int(inst.taken)},0x{inst.target:x},{mem},0x{inst.data_addr:x}\n"
        )
    return out.getvalue()


def write_text_trace(trace: Trace, path_or_file: PathOrFile) -> None:
    """Export a trace to the extended text form (lossless for our fields).

    Paths are written atomically (tmp + fsync + rename — the crash-safe
    artifact-IO contract); a ``.gz`` path gzips the same text.
    """
    text = format_text_trace(trace)
    if _is_pathlike(path_or_file):
        path = os.fspath(path_or_file)
        if _is_gz(path):
            # mtime=0 keeps equal traces byte-identical on disk.
            atomic_write_bytes(
                path, gzip.compress(text.encode("utf-8"), mtime=0)
            )
        else:
            atomic_write_text(path, text)
    else:
        path_or_file.write(text)
