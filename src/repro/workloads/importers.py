"""One-stop loading of external trace files of any supported format.

The repo speaks three on-disk trace formats:

* the native binary format (``EPTR`` magic, self-compressed CRC-checked
  payload — :mod:`repro.workloads.trace`),
* the line-oriented text format (:mod:`repro.workloads.convert`),
* headerless ChampSim-format records, raw or gzipped
  (:mod:`repro.workloads.champsim`).

:func:`detect_trace_format` sniffs which one a file is from its *bytes*
(never the extension: ChampSim traces circulate under every imaginable
suffix), and :func:`load_external_trace` dispatches to the right reader.
:func:`file_workload_spec` wraps a file into a
:class:`~repro.workloads.generators.WorkloadSpec` so external traces flow
through suites, sweeps, figures, tuning, and the run cache exactly like
generated workloads.
"""

from __future__ import annotations

import gzip
import os
from typing import List, Optional, Sequence, Union

from repro.check.errors import TraceHeaderError
from repro.workloads.champsim import read_champsim_trace
from repro.workloads.convert import read_text_trace
from repro.workloads.generators import WorkloadSpec
from repro.workloads.trace import Trace, read_trace

PathLike = Union[str, "os.PathLike[str]"]

FORMATS = ("binary", "text", "champsim")

_GZIP_MAGIC = b"\x1f\x8b"
_BINARY_MAGIC = b"EPTR"

#: Bytes legal in the text trace format (printable ASCII + whitespace).
_TEXT_BYTES = frozenset(range(0x20, 0x7F)) | {0x09, 0x0A, 0x0D}

#: Suffixes stripped when deriving a workload name from a file name.
_NAME_SUFFIXES = (
    ".gz", ".xz", ".trace", ".champsimtrace", ".champsim", ".txt", ".bin"
)


def default_trace_name(path: PathLike) -> str:
    """A workload name for a trace file: base name minus known suffixes."""
    base = os.path.basename(os.fspath(path))
    changed = True
    while changed:
        changed = False
        for suffix in _NAME_SUFFIXES:
            if base.endswith(suffix) and len(base) > len(suffix):
                base = base[: -len(suffix)]
                changed = True
    return base or "imported"


def _head(path: str, n: int = 256) -> bytes:
    """The first ``n`` payload bytes, looking through one gzip layer."""
    with open(path, "rb") as fh:
        raw = fh.read(2)
    if raw == _GZIP_MAGIC:
        try:
            with gzip.open(path, "rb") as zh:
                return zh.read(n)
        except OSError:
            # Corrupt gzip: no head to sniff; champsim's salvage path is
            # the only reader that can make sense of it.
            return b""
    with open(path, "rb") as fh:
        return fh.read(n)


def detect_trace_format(path: PathLike) -> str:
    """Classify a trace file as ``binary``, ``text``, or ``champsim``.

    Detection is content-based: the native format announces itself with
    the ``EPTR`` magic, the text format is pure printable ASCII, and
    anything else (headerless fixed-width records) is ChampSim.  A gzip
    wrapper is looked through first.
    """
    path = os.fspath(path)
    head = _head(path)
    if head.startswith(_BINARY_MAGIC):
        return "binary"
    if head and all(b in _TEXT_BYTES for b in head):
        return "text"
    return "champsim"


def load_external_trace(
    path: PathLike,
    name: Optional[str] = None,
    category: Optional[str] = None,
    fmt: str = "auto",
    layout: str = "auto",
    limit: Optional[int] = None,
    salvage: bool = False,
) -> Trace:
    """Load a trace file of any supported format.

    Args:
        path: the trace file.
        name: workload name (default: derived from the file name for
            text/champsim, the stored name for binary).
        category: workload category override (default: the format's own
            default — the stored category for binary, ``unknown`` for
            text, ``cloud`` for ChampSim).
        fmt: ``auto`` (sniff the bytes) or one of :data:`FORMATS`.
        layout: ChampSim record layout (``auto``/``legacy``/``v2``);
            ignored for other formats.
        limit: keep at most this many leading records (ChampSim only).
        salvage: recover the longest valid prefix from a damaged binary
            or ChampSim file instead of raising (``trace.salvage``
            reports what was lost).

    Raises:
        TraceError: structured ingestion failure from the format reader.
    """
    path = os.fspath(path)
    if fmt == "auto":
        fmt = detect_trace_format(path)
    if fmt not in FORMATS:
        raise ValueError(f"unknown trace format {fmt!r} (choose from {FORMATS})")
    if fmt == "binary":
        with open(path, "rb") as fh:
            wrapped = fh.read(2) == _GZIP_MAGIC
        if wrapped:
            raise TraceHeaderError(
                f"{path}: externally gzipped native trace (the binary "
                f"format is already compressed — gunzip the file first)",
                path=path,
                offset=0,
            )
        trace = read_trace(path, salvage=salvage)
        if name is not None:
            trace.name = name
        if category is not None:
            trace.category = category
        return trace
    if fmt == "text":
        trace = read_text_trace(
            path,
            name=name or default_trace_name(path),
            category=category or "unknown",
        )
        return trace
    return read_champsim_trace(
        path,
        name=name or default_trace_name(path),
        category=category or "cloud",
        layout=layout,
        limit=limit,
        salvage=salvage,
    )


def file_workload_spec(
    path: PathLike,
    name: Optional[str] = None,
    category: Optional[str] = None,
    n_instructions: Optional[int] = None,
    seed: int = 0,
) -> WorkloadSpec:
    """Wrap a trace file into a :class:`WorkloadSpec`.

    The trace is loaded once to size the spec (``n_instructions`` drives
    warmup resolution downstream), then re-loaded on demand by
    ``make_workload`` — suites and parallel workers only pickle the
    lightweight spec.  The path is stored absolute so workers resolve it
    regardless of their working directory.
    """
    path = os.path.abspath(os.fspath(path))
    trace = load_external_trace(path, name=name, category=category)
    length = len(trace)
    if n_instructions is not None:
        length = min(length, n_instructions)
    if length == 0:
        raise TraceHeaderError(
            f"{path}: trace file holds no instructions", path=path, offset=0
        )
    return WorkloadSpec(
        name=name or trace.name,
        category=category or trace.category,
        seed=seed,
        n_instructions=length,
        trace_file=path,
    )


def trace_file_suite(
    paths: Sequence[PathLike],
    category: Optional[str] = None,
    n_instructions: Optional[int] = None,
) -> List[WorkloadSpec]:
    """Specs for a set of external trace files (one workload per file)."""
    return [
        file_workload_spec(p, category=category, n_instructions=n_instructions)
        for p in paths
    ]
