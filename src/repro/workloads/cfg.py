"""Control-flow-graph program model for synthetic workload generation.

A :class:`Program` is a set of :class:`Function` objects, each a list of
compiler-level :class:`BasicBlock` objects ending in a :class:`Terminator`.
Programs are laid out in a flat virtual address space (4-byte instructions,
functions placed back to back with alignment padding), then *executed* by
:class:`repro.workloads.synthetic.CfgInterpreter` to produce a retire-order
instruction trace.

This is the substitute for the proprietary CVP traces: by varying the number
of functions, block sizes, loop structure, call-graph shape, and branch bias
we obtain instruction streams whose footprint and control-flow statistics
match the paper's workload categories.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

INSTRUCTION_SIZE = 4


class TermKind(enum.Enum):
    """How a basic block transfers control to its successor."""

    FALLTHROUGH = "fallthrough"
    COND = "cond"
    JUMP = "jump"
    INDIRECT_JUMP = "indirect_jump"
    CALL = "call"
    INDIRECT_CALL = "indirect_call"
    RETURN = "return"


@dataclass
class Terminator:
    """Terminator of a basic block.

    Attributes:
        kind: transfer kind.
        target: label of the taken-path block (COND/JUMP) within the same
            function, or the callee function name (CALL).
        taken_prob: probability the conditional is taken (COND only).
        candidates: ``(name_or_label, weight)`` choices for indirect
            transfers; labels for INDIRECT_JUMP, function names for
            INDIRECT_CALL.
    """

    kind: TermKind
    target: Optional[str] = None
    taken_prob: float = 0.5
    candidates: Sequence[Tuple[str, float]] = ()

    def __post_init__(self) -> None:
        if self.kind in (TermKind.COND, TermKind.JUMP, TermKind.CALL):
            if self.target is None:
                raise ValueError(f"{self.kind} terminator requires a target")
        if self.kind in (TermKind.INDIRECT_JUMP, TermKind.INDIRECT_CALL):
            if not self.candidates:
                raise ValueError(f"{self.kind} terminator requires candidates")
        if not 0.0 <= self.taken_prob <= 1.0:
            raise ValueError(f"taken_prob out of range: {self.taken_prob}")


@dataclass
class BasicBlock:
    """A compiler-level basic block.

    Attributes:
        label: unique label within its function.
        n_instructions: number of instructions including the terminator
            branch (if any); must be >= 1 for blocks with a branching
            terminator.
        terminator: control transfer at the end of the block.
        load_frac: fraction of non-branch instructions that are loads.
        store_frac: fraction of non-branch instructions that are stores.
    """

    label: str
    n_instructions: int
    terminator: Terminator
    load_frac: float = 0.2
    store_frac: float = 0.1

    def __post_init__(self) -> None:
        if self.n_instructions < 1:
            raise ValueError("a basic block needs at least one instruction")
        if self.load_frac + self.store_frac > 1.0:
            raise ValueError("load_frac + store_frac must not exceed 1.0")


@dataclass
class Function:
    """A function: an ordered list of basic blocks, entry first."""

    name: str
    blocks: List[BasicBlock]

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        labels = [b.label for b in self.blocks]
        if len(labels) != len(set(labels)):
            raise ValueError(f"function {self.name} has duplicate block labels")

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def block_index(self, label: str) -> int:
        for i, block in enumerate(self.blocks):
            if block.label == label:
                return i
        raise KeyError(f"function {self.name}: no block labelled {label!r}")

    @property
    def n_instructions(self) -> int:
        return sum(b.n_instructions for b in self.blocks)


@dataclass
class _Layout:
    """Resolved addresses for one program."""

    func_base: Dict[str, int] = field(default_factory=dict)
    block_base: Dict[Tuple[str, str], int] = field(default_factory=dict)
    total_bytes: int = 0


class Program:
    """A laid-out program ready for interpretation.

    Args:
        functions: all functions; must include ``entry``.
        entry: name of the entry function.
        base_address: virtual address of the first function.
        func_align: alignment in bytes for each function start; padding
            between functions makes the instruction footprint realistic
            (functions do not share cache lines).
    """

    def __init__(
        self,
        functions: Sequence[Function],
        entry: str,
        base_address: int = 0x40_0000,
        func_align: int = 64,
    ) -> None:
        self.functions: Dict[str, Function] = {f.name: f for f in functions}
        if len(self.functions) != len(functions):
            raise ValueError("duplicate function names")
        if entry not in self.functions:
            raise ValueError(f"entry function {entry!r} not defined")
        self.entry = entry
        self.base_address = base_address
        self.func_align = func_align
        self._layout = self._compute_layout()
        self._validate_targets()

    def _compute_layout(self) -> _Layout:
        layout = _Layout()
        addr = self.base_address
        for name, func in self.functions.items():
            if self.func_align > 1 and addr % self.func_align:
                addr += self.func_align - addr % self.func_align
            layout.func_base[name] = addr
            for block in func.blocks:
                layout.block_base[(name, block.label)] = addr
                addr += block.n_instructions * INSTRUCTION_SIZE
        layout.total_bytes = addr - self.base_address
        return layout

    def _validate_targets(self) -> None:
        for func in self.functions.values():
            labels = {b.label for b in func.blocks}
            for block in func.blocks:
                term = block.terminator
                if term.kind in (TermKind.COND, TermKind.JUMP):
                    if term.target not in labels:
                        raise ValueError(
                            f"{func.name}/{block.label}: branch target "
                            f"{term.target!r} not in function"
                        )
                elif term.kind == TermKind.CALL:
                    if term.target not in self.functions:
                        raise ValueError(
                            f"{func.name}/{block.label}: callee "
                            f"{term.target!r} not defined"
                        )
                elif term.kind == TermKind.INDIRECT_JUMP:
                    for label, _w in term.candidates:
                        if label not in labels:
                            raise ValueError(
                                f"{func.name}/{block.label}: indirect target "
                                f"{label!r} not in function"
                            )
                elif term.kind == TermKind.INDIRECT_CALL:
                    for callee, _w in term.candidates:
                        if callee not in self.functions:
                            raise ValueError(
                                f"{func.name}/{block.label}: indirect callee "
                                f"{callee!r} not defined"
                            )

    def function_address(self, name: str) -> int:
        return self._layout.func_base[name]

    def block_address(self, func_name: str, label: str) -> int:
        return self._layout.block_base[(func_name, label)]

    @property
    def code_bytes(self) -> int:
        """Total laid-out code size in bytes (including alignment padding)."""
        return self._layout.total_bytes

    def __repr__(self) -> str:
        return (
            f"Program(entry={self.entry!r}, functions={len(self.functions)}, "
            f"code_bytes={self.code_bytes})"
        )


class ProgramBuilder:
    """Fluent helper for constructing small hand-written programs in tests."""

    def __init__(self, entry: str = "main", base_address: int = 0x40_0000) -> None:
        self._entry = entry
        self._base = base_address
        self._functions: List[Function] = []
        self._current: Optional[str] = None
        self._blocks: List[BasicBlock] = []

    def function(self, name: str) -> "ProgramBuilder":
        """Start a new function; closes out the previous one."""
        self._finish_function()
        self._current = name
        return self

    def block(
        self,
        label: str,
        n_instructions: int,
        terminator: Terminator,
        load_frac: float = 0.2,
        store_frac: float = 0.1,
    ) -> "ProgramBuilder":
        if self._current is None:
            raise ValueError("call .function() before .block()")
        self._blocks.append(
            BasicBlock(label, n_instructions, terminator, load_frac, store_frac)
        )
        return self

    def _finish_function(self) -> None:
        if self._current is not None:
            self._functions.append(Function(self._current, self._blocks))
            self._blocks = []
            self._current = None

    def build(self) -> Program:
        self._finish_function()
        return Program(self._functions, entry=self._entry, base_address=self._base)
