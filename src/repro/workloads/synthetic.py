"""Execution of CFG programs into instruction traces.

:class:`CfgInterpreter` performs a seeded stochastic walk over a
:class:`~repro.workloads.cfg.Program`: conditional branches are taken with
their configured probability, indirect transfers pick a weighted candidate,
calls push a software return stack, and a return from the entry function
restarts the program (modelling a server event loop).  The walk emits
retire-order :class:`~repro.workloads.trace.Instruction` records.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Tuple

from repro.workloads.cfg import (
    INSTRUCTION_SIZE,
    BasicBlock,
    Program,
    TermKind,
)
from repro.workloads.trace import BranchType, Instruction, Trace

_DATA_REGION_BASE = 0x10_0000_0000
_DATA_REGION_SIZE = 32 * 1024
_SHARED_REGION_BASE = 0x20_0000_0000
_SHARED_REGION_SIZE = 4 * 1024 * 1024


class CfgInterpreter:
    """Walks a program's CFG emitting a retire-order instruction stream.

    Args:
        program: the laid-out program.
        seed: RNG seed; the walk is fully deterministic given the seed.
        max_call_depth: calls beyond this depth are demoted to plain
            (non-branch) instructions, bounding the software stack the
            same way real servers bound recursion.
    """

    def __init__(
        self, program: Program, seed: int = 0, max_call_depth: int = 24
    ) -> None:
        self.program = program
        self.rng = random.Random(seed)
        self.max_call_depth = max_call_depth
        # Call stack of (function name, resume block index).
        self._stack: List[Tuple[str, int]] = []
        self._func = program.entry
        self._block_idx = 0
        self._restarts = 0

    @property
    def restarts(self) -> int:
        """How many times the walk returned from the entry and restarted."""
        return self._restarts

    def run(self, n_instructions: int) -> List[Instruction]:
        """Emit at least ``n_instructions`` records (rounded up to a block)."""
        out: List[Instruction] = []
        while len(out) < n_instructions:
            self._step_block(out)
        return out

    # -- block execution ---------------------------------------------------

    def _step_block(self, out: List[Instruction]) -> None:
        func = self.program.functions[self._func]
        block = func.blocks[self._block_idx]
        base = self.program.block_address(self._func, block.label)
        term = block.terminator
        has_branch = term.kind != TermKind.FALLTHROUGH

        body_count = block.n_instructions - 1 if has_branch else block.n_instructions
        for i in range(body_count):
            out.append(self._body_instruction(base + i * INSTRUCTION_SIZE, block))

        if not has_branch:
            self._advance_fallthrough(func)
            return

        branch_pc = base + (block.n_instructions - 1) * INSTRUCTION_SIZE
        out.append(self._terminate(branch_pc, func, block))

    def _body_instruction(self, pc: int, block: BasicBlock) -> Instruction:
        roll = self.rng.random()
        if roll < block.load_frac:
            return Instruction(pc=pc, is_load=True, data_addr=self._data_address())
        if roll < block.load_frac + block.store_frac:
            return Instruction(pc=pc, is_store=True, data_addr=self._data_address())
        return Instruction(pc=pc)

    def _data_address(self) -> int:
        """Pick a data address: mostly function-local, sometimes shared."""
        if self.rng.random() < 0.8:
            # Stable per-function region id (process-independent, unlike
            # the built-in str hash which varies with PYTHONHASHSEED).
            region = zlib.crc32(self._func.encode()) & 0xFFFF
            base = _DATA_REGION_BASE + region * _DATA_REGION_SIZE
            return base + self.rng.randrange(_DATA_REGION_SIZE) & ~0x7
        return _SHARED_REGION_BASE + self.rng.randrange(_SHARED_REGION_SIZE) & ~0x7

    # -- terminators ---------------------------------------------------------

    def _terminate(self, pc: int, func, block: BasicBlock) -> Instruction:
        term = block.terminator
        if term.kind == TermKind.COND:
            return self._do_cond(pc, func, block)
        if term.kind == TermKind.JUMP:
            target = self.program.block_address(self._func, term.target)
            self._block_idx = func.block_index(term.target)
            return Instruction(
                pc=pc,
                branch_type=BranchType.DIRECT_JUMP,
                taken=True,
                target=target,
            )
        if term.kind == TermKind.INDIRECT_JUMP:
            label = self._weighted_choice(term.candidates)
            target = self.program.block_address(self._func, label)
            self._block_idx = func.block_index(label)
            return Instruction(
                pc=pc,
                branch_type=BranchType.INDIRECT_JUMP,
                taken=True,
                target=target,
            )
        if term.kind == TermKind.CALL:
            return self._do_call(pc, func, block, term.target, indirect=False)
        if term.kind == TermKind.INDIRECT_CALL:
            callee = self._weighted_choice(term.candidates)
            return self._do_call(pc, func, block, callee, indirect=True)
        if term.kind == TermKind.RETURN:
            return self._do_return(pc)
        raise AssertionError(f"unhandled terminator {term.kind}")

    def _do_cond(self, pc: int, func, block: BasicBlock) -> Instruction:
        term = block.terminator
        taken = self.rng.random() < term.taken_prob
        target = self.program.block_address(self._func, term.target)
        if taken:
            self._block_idx = func.block_index(term.target)
        else:
            self._advance_fallthrough(func)
        return Instruction(
            pc=pc,
            branch_type=BranchType.CONDITIONAL,
            taken=taken,
            target=target,
        )

    def _do_call(
        self, pc: int, func, block: BasicBlock, callee: str, indirect: bool
    ) -> Instruction:
        if len(self._stack) >= self.max_call_depth:
            # Depth-bounded: demote the call to a plain instruction and
            # continue with the fall-through block.
            self._advance_fallthrough(func)
            return Instruction(pc=pc)
        resume_idx = self._block_idx + 1
        self._stack.append((self._func, resume_idx))
        target = self.program.function_address(callee)
        self._func = callee
        self._block_idx = 0
        btype = BranchType.INDIRECT_CALL if indirect else BranchType.DIRECT_CALL
        return Instruction(pc=pc, branch_type=btype, taken=True, target=target)

    def _do_return(self, pc: int) -> Instruction:
        while self._stack:
            caller, resume_idx = self._stack.pop()
            caller_func = self.program.functions[caller]
            if resume_idx < len(caller_func.blocks):
                self._func = caller
                self._block_idx = resume_idx
                target = self.program.block_address(
                    caller, caller_func.blocks[resume_idx].label
                )
                return Instruction(
                    pc=pc, branch_type=BranchType.RETURN, taken=True, target=target
                )
            # The call was the caller's last block: keep unwinding.
        # Returned from the entry function: restart the event loop.
        self._restarts += 1
        self._func = self.program.entry
        self._block_idx = 0
        target = self.program.function_address(self._func)
        return Instruction(
            pc=pc, branch_type=BranchType.RETURN, taken=True, target=target
        )

    # -- helpers -------------------------------------------------------------

    def _advance_fallthrough(self, func) -> None:
        if self._block_idx + 1 < len(func.blocks):
            self._block_idx += 1
            return
        # Implicit return at the end of the function.
        while self._stack:
            caller, resume_idx = self._stack.pop()
            caller_func = self.program.functions[caller]
            if resume_idx < len(caller_func.blocks):
                self._func = caller
                self._block_idx = resume_idx
                return
        self._restarts += 1
        self._func = self.program.entry
        self._block_idx = 0

    def _weighted_choice(self, candidates) -> str:
        total = sum(w for _c, w in candidates)
        roll = self.rng.random() * total
        acc = 0.0
        for cand, weight in candidates:
            acc += weight
            if roll < acc:
                return cand
        return candidates[-1][0]


def generate_trace(
    program: Program,
    n_instructions: int,
    name: str,
    category: str = "unknown",
    seed: int = 0,
    max_call_depth: int = 24,
) -> Trace:
    """Interpret ``program`` and return a trace of ``n_instructions`` records."""
    interp = CfgInterpreter(program, seed=seed, max_call_depth=max_call_depth)
    instructions = interp.run(n_instructions)
    return Trace(name=name, instructions=instructions[:n_instructions], category=category)
