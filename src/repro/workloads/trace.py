"""Instruction-trace representation and file IO.

A trace is the correct-path, retire-order instruction stream of a program,
the same abstraction ChampSim consumes.  Each record carries the program
counter, the instruction size in bytes, and — for branches — the branch
type, the taken/not-taken outcome, and the target.  Memory instructions
carry an effective data address so the L1D energy model has something to
count.

The binary file format is a small custom fixed-width encoding (no external
dependencies); see :func:`write_trace` / :func:`read_trace`.
"""

from __future__ import annotations

import enum
import io
import struct
import zlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.check.artifacts import atomic_write_bytes
from repro.check.errors import (
    TraceCRCError,
    TraceError,
    TraceHeaderError,
    TraceMagicError,
    TracePayloadError,
    TraceRecordError,
    TraceTruncatedError,
    TraceVersionError,
)


class BranchType(enum.IntEnum):
    """Branch classification used by the front end.

    Mirrors ChampSim's branch taxonomy; the front end uses the type to pick
    the prediction structure (BTB, RAS, indirect target cache) and the
    misprediction-detection stage (decode vs. execute).
    """

    NOT_BRANCH = 0
    CONDITIONAL = 1        # direction predicted, target from BTB
    DIRECT_JUMP = 2        # always taken, target from BTB
    INDIRECT_JUMP = 3      # always taken, target from indirect target cache
    DIRECT_CALL = 4        # always taken, pushes RAS
    INDIRECT_CALL = 5      # always taken, pushes RAS, target from ITC
    RETURN = 6             # always taken, target from RAS

    @property
    def is_call(self) -> bool:
        return self in (BranchType.DIRECT_CALL, BranchType.INDIRECT_CALL)

    @property
    def is_indirect(self) -> bool:
        return self in (BranchType.INDIRECT_JUMP, BranchType.INDIRECT_CALL)

    @property
    def is_unconditional(self) -> bool:
        return self not in (BranchType.NOT_BRANCH, BranchType.CONDITIONAL)


@dataclass(frozen=True)
class Instruction:
    """One retire-order trace record.

    Attributes:
        pc: virtual address of the instruction.
        size: instruction size in bytes (used to compute the next PC).
        branch_type: :class:`BranchType` classification.
        taken: branch outcome; always False for non-branches.
        target: branch target when taken, else 0.
        is_load: instruction reads data memory.
        is_store: instruction writes data memory.
        data_addr: effective data address for loads/stores, else 0.
    """

    pc: int
    size: int = 4
    branch_type: BranchType = BranchType.NOT_BRANCH
    taken: bool = False
    target: int = 0
    is_load: bool = False
    is_store: bool = False
    data_addr: int = 0

    @property
    def is_branch(self) -> bool:
        return self.branch_type != BranchType.NOT_BRANCH

    @property
    def next_pc(self) -> int:
        """Architectural next PC given the recorded outcome."""
        if self.is_branch and self.taken:
            return self.target
        return self.pc + self.size


class Trace:
    """A materialized instruction trace with identity metadata.

    Attributes:
        name: workload name (e.g. ``srv_02``).
        category: workload category (``crypto``, ``int``, ``fp``, ``srv``,
            or ``cloud``).
        instructions: the retire-order records.
    """

    def __init__(
        self,
        name: str,
        instructions: Sequence[Instruction],
        category: str = "unknown",
    ) -> None:
        self.name = name
        self.category = category
        self.instructions: List[Instruction] = list(instructions)
        #: Set by :func:`read_trace` in salvage mode when the file was
        #: damaged and only a record prefix was recovered; None otherwise.
        self.salvage: Optional["TraceSalvage"] = None

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def __repr__(self) -> str:
        return (
            f"Trace(name={self.name!r}, category={self.category!r}, "
            f"len={len(self.instructions)})"
        )

    def footprint_lines(self, line_size: int = 64) -> int:
        """Number of distinct instruction-cache lines touched."""
        return len({inst.pc // line_size for inst in self.instructions})

    def branch_fraction(self) -> float:
        """Fraction of instructions that are branches."""
        if not self.instructions:
            return 0.0
        branches = sum(1 for inst in self.instructions if inst.is_branch)
        return branches / len(self.instructions)

    def taken_branch_count(self) -> int:
        return sum(1 for inst in self.instructions if inst.taken)


@dataclass
class TraceSalvage:
    """What salvage-mode loading recovered from a damaged trace file.

    Attached as ``Trace.salvage`` so callers can tell a clean load from a
    partial recovery — salvaged data is never returned silently.
    """

    recovered: int
    expected: int
    reasons: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.recovered == self.expected and not self.reasons

    def describe(self) -> str:
        detail = "; ".join(self.reasons) if self.reasons else "clean"
        return f"salvaged {self.recovered}/{self.expected} records ({detail})"


_MAGIC = b"EPTR"
_VERSION = 3         # written; adds a CRC32 over header tail + payload
_LEGACY_VERSION = 2  # still readable (no checksum)
_RECORD = struct.Struct("<QIBBQQ")  # pc, size, branch_type|flags, pad, target, data_addr

_FLAG_TAKEN = 0x10
_FLAG_LOAD = 0x20
_FLAG_STORE = 0x40
_TYPE_MASK = 0x0F
_FLAG_RESERVED = 0x80

#: Address-space contract for every pc/target/data_addr in a trace: the
#: simulator models a 58-bit line address space (virtual training), so a
#: 62-bit byte address leaves headroom for line arithmetic while catching
#: bit-flipped high bytes during ingestion.
_ADDRESS_BITS = 62
_MAX_ADDRESS = 1 << _ADDRESS_BITS
_MAX_INSTRUCTION_SIZE = 64
_MAX_BRANCH_TYPE = max(BranchType)


def _pack_record(inst: Instruction) -> bytes:
    flags = int(inst.branch_type) & _TYPE_MASK
    if inst.taken:
        flags |= _FLAG_TAKEN
    if inst.is_load:
        flags |= _FLAG_LOAD
    if inst.is_store:
        flags |= _FLAG_STORE
    return _RECORD.pack(inst.pc, inst.size, flags, 0, inst.target, inst.data_addr)


def _validate_fields(
    pc: int, size: int, flags: int, target: int, data_addr: int
) -> Optional[str]:
    """Field-level validity of one record; returns a reason or None."""
    if flags & _FLAG_RESERVED:
        return f"reserved flag bit 0x{_FLAG_RESERVED:02x} is set"
    branch_nibble = flags & _TYPE_MASK
    if branch_nibble > _MAX_BRANCH_TYPE:
        return f"branch type {branch_nibble} out of range (0-{int(_MAX_BRANCH_TYPE)})"
    if not 1 <= size <= _MAX_INSTRUCTION_SIZE:
        return f"instruction size {size} out of range (1-{_MAX_INSTRUCTION_SIZE})"
    for label, value in (("pc", pc), ("target", target), ("data_addr", data_addr)):
        if value >= _MAX_ADDRESS:
            return (
                f"{label} 0x{value:x} exceeds the {_ADDRESS_BITS}-bit "
                f"address space"
            )
    return None


def _decode_record(block: bytes, base: int) -> Tuple[Optional[Instruction], Optional[str]]:
    """Decode one record at ``base``; returns (instruction, reason)."""
    pc, size, flags, _pad, target, data_addr = _RECORD.unpack_from(block, base)
    reason = _validate_fields(pc, size, flags, target, data_addr)
    if reason is not None:
        return None, reason
    return (
        Instruction(
            pc=pc,
            size=size,
            branch_type=BranchType(flags & _TYPE_MASK),
            taken=bool(flags & _FLAG_TAKEN),
            target=target,
            is_load=bool(flags & _FLAG_LOAD),
            is_store=bool(flags & _FLAG_STORE),
            data_addr=data_addr,
        ),
        None,
    )


def _unpack_record(raw: bytes) -> Instruction:
    inst, reason = _decode_record(raw, 0)
    if reason is not None:
        raise TraceRecordError(f"invalid record: {reason}", record_index=0, offset=0)
    return inst


def _serialize_header_tail(
    compress: bool, name_bytes: bytes, cat_bytes: bytes, count: int
) -> bytes:
    """Version byte through record count — the checksummed header region."""
    return (
        bytes([_VERSION, 1 if compress else 0])
        + struct.pack("<H", len(name_bytes))
        + name_bytes
        + struct.pack("<H", len(cat_bytes))
        + cat_bytes
        + struct.pack("<Q", count)
    )


def write_trace(trace: Trace, path: str, compress: bool = True) -> None:
    """Serialize a trace to ``path`` (atomically: tmp + fsync + rename).

    Format version 3: ``EPTR`` magic, version byte, compression byte,
    name and category as length-prefixed UTF-8, a record count, a CRC32
    over everything after the magic (header tail + stored payload), and
    the (optionally zlib-compressed) fixed-width record block.
    """
    body = io.BytesIO()
    for inst in trace.instructions:
        body.write(_pack_record(inst))
    payload = body.getvalue()
    if compress:
        payload = zlib.compress(payload, level=6)
    header_tail = _serialize_header_tail(
        compress,
        trace.name.encode("utf-8"),
        trace.category.encode("utf-8"),
        len(trace.instructions),
    )
    crc = zlib.crc32(payload, zlib.crc32(header_tail))
    atomic_write_bytes(
        path, _MAGIC + header_tail + struct.pack("<I", crc) + payload
    )


def _read_lp_string(data: bytes, offset: int, path: str, label: str) -> Tuple[str, int]:
    """Length-prefixed UTF-8 string at ``offset``; raises TraceHeaderError."""
    if offset + 2 > len(data):
        raise TraceHeaderError(
            f"{path}: header truncated before the {label} length at byte "
            f"{offset}",
            path=path,
            offset=offset,
        )
    (length,) = struct.unpack_from("<H", data, offset)
    offset += 2
    if offset + length > len(data):
        raise TraceHeaderError(
            f"{path}: header truncated inside the {label} field at byte "
            f"{offset} ({length} bytes declared, {len(data) - offset} left)",
            path=path,
            offset=offset,
        )
    try:
        text = data[offset : offset + length].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise TraceHeaderError(
            f"{path}: {label} field at byte {offset} is not valid UTF-8 "
            f"({exc})",
            path=path,
            offset=offset,
        ) from None
    return text, offset + length


def _decompress_salvage(payload: bytes) -> Tuple[bytes, Optional[str]]:
    """Best-effort decompression: the longest clean prefix plus a reason."""
    decompressor = zlib.decompressobj()
    chunks: List[bytes] = []
    error: Optional[str] = None
    # Feed in small pieces so output produced before the corruption point
    # is retained; a single decompress() call would discard everything.
    for start in range(0, len(payload), 4096):
        try:
            chunks.append(decompressor.decompress(payload[start : start + 4096]))
        except zlib.error as exc:
            error = f"compressed block is corrupt ({exc})"
            break
    else:
        try:
            chunks.append(decompressor.flush())
        except zlib.error as exc:
            error = f"compressed block ends mid-stream ({exc})"
        if error is None and not decompressor.eof:
            error = "compressed block is incomplete (stream did not finish)"
    return b"".join(chunks), error


def read_trace(path: str, salvage: bool = False) -> Trace:
    """Deserialize a trace written by :func:`write_trace`.

    Reads format versions 2 (legacy, no checksum) and 3.  Every error is
    a :class:`~repro.check.errors.TraceError` subclass (a ``ValueError``)
    carrying the file path, the byte offset of the damage, and — for
    record-level damage — the index of the first bad record.

    With ``salvage=True``, damage past the header is not fatal: the
    longest valid record *prefix* is recovered and the returned trace
    carries a :class:`TraceSalvage` on ``trace.salvage`` describing what
    was lost.  Header damage (magic, version, name/category/count) is
    unrecoverable and still raises.

    Raises:
        TraceError: the file is not a valid trace (bad magic, version,
            header, checksum, payload, or record), subject to the salvage
            rules above.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    problems: List[str] = []

    # -- header (damage here is fatal even in salvage mode) -----------------
    if data[:4] != _MAGIC:
        raise TraceMagicError(
            f"{path}: not a trace file (magic {data[:4]!r} at byte 0, "
            f"expected {_MAGIC!r})",
            path=path,
            offset=0,
        )
    if len(data) < 6:
        raise TraceHeaderError(
            f"{path}: header truncated after the magic ({len(data)} bytes)",
            path=path,
            offset=len(data),
        )
    version, compressed = data[4], data[5]
    if version not in (_LEGACY_VERSION, _VERSION):
        raise TraceVersionError(
            f"{path}: unsupported trace version {version} at byte 4 "
            f"(this reader speaks {_LEGACY_VERSION} and {_VERSION})",
            path=path,
            offset=4,
        )
    if compressed not in (0, 1):
        raise TraceHeaderError(
            f"{path}: compression byte {compressed} at byte 5 is neither "
            f"0 nor 1",
            path=path,
            offset=5,
        )
    offset = 6
    name, offset = _read_lp_string(data, offset, path, "name")
    category, offset = _read_lp_string(data, offset, path, "category")
    if offset + 8 > len(data):
        raise TraceHeaderError(
            f"{path}: header truncated before the record count at byte "
            f"{offset}",
            path=path,
            offset=offset,
        )
    (count,) = struct.unpack_from("<Q", data, offset)
    offset += 8

    # -- checksum (v3) -------------------------------------------------------
    stored_crc: Optional[int] = None
    if version >= _VERSION:
        if offset + 4 > len(data):
            raise TraceHeaderError(
                f"{path}: header truncated before the checksum at byte "
                f"{offset}",
                path=path,
                offset=offset,
            )
        (stored_crc,) = struct.unpack_from("<I", data, offset)
        offset += 4
    payload = data[offset:]
    record_size = _RECORD.size
    expected_bytes = count * record_size

    # An uncompressed short payload is reported as truncation (with the
    # first incomplete record) rather than as a checksum mismatch — the
    # more actionable diagnosis, and the one salvage can act on.
    crc_region_end = offset - 4 if stored_crc is not None else offset
    if stored_crc is not None and not (
        not compressed and len(payload) < expected_bytes
    ):
        actual_crc = zlib.crc32(payload, zlib.crc32(data[4:crc_region_end]))
        if actual_crc != stored_crc:
            err = TraceCRCError(
                f"{path}: checksum mismatch (stored 0x{stored_crc:08x}, "
                f"computed 0x{actual_crc:08x}) — the file is corrupt or "
                f"torn",
                path=path,
                offset=crc_region_end,
            )
            if not salvage:
                raise err
            problems.append("checksum mismatch")

    # -- payload -------------------------------------------------------------
    if compressed:
        if salvage:
            block, decomp_error = _decompress_salvage(payload)
            if decomp_error is not None:
                problems.append(decomp_error)
        else:
            try:
                block = zlib.decompress(payload)
            except zlib.error as exc:
                raise TracePayloadError(
                    f"{path}: compressed record block starting at byte "
                    f"{offset} is corrupt ({exc})",
                    path=path,
                    offset=offset,
                ) from None
    else:
        block = payload

    if len(block) != expected_bytes:
        first_incomplete = min(len(block) // record_size, count)
        if len(block) < expected_bytes:
            err: TraceError = TraceTruncatedError(
                f"{path}: truncated record block ({len(block)} bytes, "
                f"expected {expected_bytes} = {count} records x "
                f"{record_size}B); first incomplete record is "
                f"#{first_incomplete} at payload byte "
                f"{first_incomplete * record_size}",
                path=path,
                offset=first_incomplete * record_size,
                record_index=first_incomplete,
            )
        else:
            err = TracePayloadError(
                f"{path}: record block has {len(block)} bytes, expected "
                f"{expected_bytes} ({len(block) - expected_bytes} trailing "
                f"bytes after record #{count})",
                path=path,
                offset=expected_bytes,
                record_index=count,
            )
        if not salvage:
            raise err
        problems.append(
            f"record block has {len(block)} of {expected_bytes} bytes"
        )

    # -- records -------------------------------------------------------------
    complete_records = min(len(block) // record_size, count)
    instructions: List[Instruction] = []
    for index in range(complete_records):
        base = index * record_size
        inst, reason = _decode_record(block, base)
        if reason is None:
            instructions.append(inst)
            continue
        if not salvage:
            raise TraceRecordError(
                f"{path}: invalid record #{index} at payload byte {base}: "
                f"{reason}",
                path=path,
                offset=base,
                record_index=index,
            )
        problems.append(f"record #{index} at payload byte {base}: {reason}")
        break  # salvage keeps the longest *valid prefix* only

    trace = Trace(name=name, instructions=instructions, category=category)
    if salvage and (problems or len(instructions) != count):
        trace.salvage = TraceSalvage(
            recovered=len(instructions), expected=count, reasons=problems
        )
    return trace


def trace_from_pcs(
    name: str,
    pcs: Iterable[int],
    category: str = "unknown",
    size: int = 4,
) -> Trace:
    """Build a trace from a bare PC sequence, inferring taken branches.

    Any PC that does not follow its predecessor sequentially is encoded as
    the target of a taken direct jump on the predecessor.  Useful for unit
    tests that want to drive the simulator with a hand-written line stream.
    """
    pc_list = list(pcs)
    instructions: List[Instruction] = []
    for i, pc in enumerate(pc_list):
        nxt: Optional[int] = pc_list[i + 1] if i + 1 < len(pc_list) else None
        if nxt is not None and nxt != pc + size:
            instructions.append(
                Instruction(
                    pc=pc,
                    size=size,
                    branch_type=BranchType.DIRECT_JUMP,
                    taken=True,
                    target=nxt,
                )
            )
        else:
            instructions.append(Instruction(pc=pc, size=size))
    return Trace(name=name, instructions=instructions, category=category)
