"""Instruction-trace representation and file IO.

A trace is the correct-path, retire-order instruction stream of a program,
the same abstraction ChampSim consumes.  Each record carries the program
counter, the instruction size in bytes, and — for branches — the branch
type, the taken/not-taken outcome, and the target.  Memory instructions
carry an effective data address so the L1D energy model has something to
count.

The binary file format is a small custom fixed-width encoding (no external
dependencies); see :func:`write_trace` / :func:`read_trace`.
"""

from __future__ import annotations

import enum
import io
import struct
import zlib
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence


class BranchType(enum.IntEnum):
    """Branch classification used by the front end.

    Mirrors ChampSim's branch taxonomy; the front end uses the type to pick
    the prediction structure (BTB, RAS, indirect target cache) and the
    misprediction-detection stage (decode vs. execute).
    """

    NOT_BRANCH = 0
    CONDITIONAL = 1        # direction predicted, target from BTB
    DIRECT_JUMP = 2        # always taken, target from BTB
    INDIRECT_JUMP = 3      # always taken, target from indirect target cache
    DIRECT_CALL = 4        # always taken, pushes RAS
    INDIRECT_CALL = 5      # always taken, pushes RAS, target from ITC
    RETURN = 6             # always taken, target from RAS

    @property
    def is_call(self) -> bool:
        return self in (BranchType.DIRECT_CALL, BranchType.INDIRECT_CALL)

    @property
    def is_indirect(self) -> bool:
        return self in (BranchType.INDIRECT_JUMP, BranchType.INDIRECT_CALL)

    @property
    def is_unconditional(self) -> bool:
        return self not in (BranchType.NOT_BRANCH, BranchType.CONDITIONAL)


@dataclass(frozen=True)
class Instruction:
    """One retire-order trace record.

    Attributes:
        pc: virtual address of the instruction.
        size: instruction size in bytes (used to compute the next PC).
        branch_type: :class:`BranchType` classification.
        taken: branch outcome; always False for non-branches.
        target: branch target when taken, else 0.
        is_load: instruction reads data memory.
        is_store: instruction writes data memory.
        data_addr: effective data address for loads/stores, else 0.
    """

    pc: int
    size: int = 4
    branch_type: BranchType = BranchType.NOT_BRANCH
    taken: bool = False
    target: int = 0
    is_load: bool = False
    is_store: bool = False
    data_addr: int = 0

    @property
    def is_branch(self) -> bool:
        return self.branch_type != BranchType.NOT_BRANCH

    @property
    def next_pc(self) -> int:
        """Architectural next PC given the recorded outcome."""
        if self.is_branch and self.taken:
            return self.target
        return self.pc + self.size


class Trace:
    """A materialized instruction trace with identity metadata.

    Attributes:
        name: workload name (e.g. ``srv_02``).
        category: workload category (``crypto``, ``int``, ``fp``, ``srv``,
            or ``cloud``).
        instructions: the retire-order records.
    """

    def __init__(
        self,
        name: str,
        instructions: Sequence[Instruction],
        category: str = "unknown",
    ) -> None:
        self.name = name
        self.category = category
        self.instructions: List[Instruction] = list(instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def __repr__(self) -> str:
        return (
            f"Trace(name={self.name!r}, category={self.category!r}, "
            f"len={len(self.instructions)})"
        )

    def footprint_lines(self, line_size: int = 64) -> int:
        """Number of distinct instruction-cache lines touched."""
        return len({inst.pc // line_size for inst in self.instructions})

    def branch_fraction(self) -> float:
        """Fraction of instructions that are branches."""
        if not self.instructions:
            return 0.0
        branches = sum(1 for inst in self.instructions if inst.is_branch)
        return branches / len(self.instructions)

    def taken_branch_count(self) -> int:
        return sum(1 for inst in self.instructions if inst.taken)


_MAGIC = b"EPTR"
_VERSION = 2
_RECORD = struct.Struct("<QIBBQQ")  # pc, size, branch_type|flags, pad, target, data_addr

_FLAG_TAKEN = 0x10
_FLAG_LOAD = 0x20
_FLAG_STORE = 0x40
_TYPE_MASK = 0x0F


def _pack_record(inst: Instruction) -> bytes:
    flags = int(inst.branch_type) & _TYPE_MASK
    if inst.taken:
        flags |= _FLAG_TAKEN
    if inst.is_load:
        flags |= _FLAG_LOAD
    if inst.is_store:
        flags |= _FLAG_STORE
    return _RECORD.pack(inst.pc, inst.size, flags, 0, inst.target, inst.data_addr)


def _unpack_record(raw: bytes) -> Instruction:
    pc, size, flags, _pad, target, data_addr = _RECORD.unpack(raw)
    return Instruction(
        pc=pc,
        size=size,
        branch_type=BranchType(flags & _TYPE_MASK),
        taken=bool(flags & _FLAG_TAKEN),
        target=target,
        is_load=bool(flags & _FLAG_LOAD),
        is_store=bool(flags & _FLAG_STORE),
        data_addr=data_addr,
    )


def write_trace(trace: Trace, path: str, compress: bool = True) -> None:
    """Serialize a trace to ``path``.

    The format is ``EPTR`` magic, version byte, compression byte, name and
    category as length-prefixed UTF-8, a record count, and the (optionally
    zlib-compressed) fixed-width record block.
    """
    body = io.BytesIO()
    for inst in trace.instructions:
        body.write(_pack_record(inst))
    payload = body.getvalue()
    if compress:
        payload = zlib.compress(payload, level=6)
    name_bytes = trace.name.encode("utf-8")
    cat_bytes = trace.category.encode("utf-8")
    with open(path, "wb") as fh:
        fh.write(_MAGIC)
        fh.write(bytes([_VERSION, 1 if compress else 0]))
        fh.write(struct.pack("<H", len(name_bytes)))
        fh.write(name_bytes)
        fh.write(struct.pack("<H", len(cat_bytes)))
        fh.write(cat_bytes)
        fh.write(struct.pack("<Q", len(trace.instructions)))
        fh.write(payload)


def read_trace(path: str) -> Trace:
    """Deserialize a trace written by :func:`write_trace`.

    Raises:
        ValueError: the file is not a valid trace (bad magic, version, or a
            truncated record block).
    """
    with open(path, "rb") as fh:
        magic = fh.read(4)
        if magic != _MAGIC:
            raise ValueError(f"{path}: not a trace file (magic {magic!r})")
        version, compressed = fh.read(2)
        if version != _VERSION:
            raise ValueError(f"{path}: unsupported trace version {version}")
        (name_len,) = struct.unpack("<H", fh.read(2))
        name = fh.read(name_len).decode("utf-8")
        (cat_len,) = struct.unpack("<H", fh.read(2))
        category = fh.read(cat_len).decode("utf-8")
        (count,) = struct.unpack("<Q", fh.read(8))
        payload = fh.read()
    if compressed:
        payload = zlib.decompress(payload)
    expected = count * _RECORD.size
    if len(payload) != expected:
        raise ValueError(
            f"{path}: truncated trace ({len(payload)} bytes, expected {expected})"
        )
    instructions = [
        _unpack_record(payload[i : i + _RECORD.size])
        for i in range(0, expected, _RECORD.size)
    ]
    return Trace(name=name, instructions=instructions, category=category)


def trace_from_pcs(
    name: str,
    pcs: Iterable[int],
    category: str = "unknown",
    size: int = 4,
) -> Trace:
    """Build a trace from a bare PC sequence, inferring taken branches.

    Any PC that does not follow its predecessor sequentially is encoded as
    the target of a taken direct jump on the predecessor.  Useful for unit
    tests that want to drive the simulator with a hand-written line stream.
    """
    pc_list = list(pcs)
    instructions: List[Instruction] = []
    for i, pc in enumerate(pc_list):
        nxt: Optional[int] = pc_list[i + 1] if i + 1 < len(pc_list) else None
        if nxt is not None and nxt != pc + size:
            instructions.append(
                Instruction(
                    pc=pc,
                    size=size,
                    branch_type=BranchType.DIRECT_JUMP,
                    taken=True,
                    target=nxt,
                )
            )
        else:
            instructions.append(Instruction(pc=pc, size=size))
    return Trace(name=name, instructions=instructions, category=category)
