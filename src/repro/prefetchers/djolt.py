"""D-JOLT: the distant-jolt prefetcher (Nakamura et al., IPC-1 [35]).

D-JOLT refines RDIP with (1) more accurate call-context signatures and
(2) a *dual look-ahead*: misses are recorded under the signature that was
live several calls *earlier*, so when that context recurs the prefetch is
issued that many calls in advance.  A long-range table (distant jolt)
covers deep miss latencies and a short-range table covers nearby ones.

We model both tables with the storage budget the paper lists (125KB for
the 8K-entry miss-table configuration).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Iterable, List

from repro.prefetchers.base import InstructionPrefetcher, PrefetchRequest
from repro.workloads.trace import BranchType

REGION_SPAN = 8
_PUBLISHED_STORAGE_BITS = int(125.0 * 8192)


class _SignatureTable:
    """signature -> miss regions, with a fixed look-ahead in call events."""

    def __init__(self, entries: int, lookahead: int, max_regions: int) -> None:
        self.entries = entries
        self.lookahead = lookahead
        self.max_regions = max_regions
        self._table: "OrderedDict[int, List[List[int]]]" = OrderedDict()

    def record(self, signature: int, line_addr: int) -> None:
        regions = self._table.get(signature)
        if regions is None:
            if len(self._table) >= self.entries:
                self._table.popitem(last=False)
            regions = []
            self._table[signature] = regions
        for region in regions:
            delta = line_addr - region[0]
            if delta == 0:
                return
            if 0 < delta <= REGION_SPAN:
                region[1] |= 1 << (delta - 1)
                return
        if len(regions) < self.max_regions:
            regions.append([line_addr, 0])

    def lookup(self, signature: int) -> List[List[int]]:
        return self._table.get(signature, [])


class DJoltPrefetcher(InstructionPrefetcher):
    """Dual-look-ahead signature-directed prefetcher."""

    name = "D-JOLT"

    def __init__(
        self,
        entries: int = 8192,
        short_lookahead: int = 2,
        long_lookahead: int = 6,
        ras_depth: int = 6,
        max_regions: int = 4,
    ) -> None:
        self.entries = entries
        self.ras_depth = ras_depth
        self.short_table = _SignatureTable(entries // 2, short_lookahead, max_regions)
        self.long_table = _SignatureTable(entries // 2, long_lookahead, max_regions)
        self._ras: List[int] = []
        # Signature history, newest last; index -k gives the signature k
        # call events ago (for look-ahead attribution of misses).
        self._sig_history: Deque[int] = deque(maxlen=long_lookahead + 1)
        self._sig_history.append(0)

    def storage_bits(self) -> int:
        if self.entries == 8192:
            return _PUBLISHED_STORAGE_BITS
        per_region = 32 + REGION_SPAN
        return self.entries * (20 + self.short_table.max_regions * per_region)

    def _signature(self) -> int:
        sig = 0
        for i, ret_addr in enumerate(self._ras[-self.ras_depth :]):
            sig = ((sig << 3) ^ (ret_addr >> 2)) & 0xFFFF_FFFF
            sig ^= i
        return sig

    def _sig_ago(self, k: int) -> int:
        if k < len(self._sig_history):
            return self._sig_history[-(k + 1)]
        return self._sig_history[0]

    # -- events --------------------------------------------------------------

    def on_demand_access(
        self, line_addr: int, hit: bool, cycle: int
    ) -> Iterable[PrefetchRequest]:
        if hit:
            return ()
        # Attribute the miss to past contexts so future recurrences of
        # those contexts prefetch it look-ahead calls in advance.
        self.short_table.record(self._sig_ago(self.short_table.lookahead), line_addr)
        self.long_table.record(self._sig_ago(self.long_table.lookahead), line_addr)
        return ()

    def on_branch(
        self,
        pc: int,
        branch_type: BranchType,
        taken: bool,
        target: int,
        cycle: int,
    ) -> Iterable[PrefetchRequest]:
        if branch_type.is_call:
            self._ras.append(pc + 4)
            if len(self._ras) > 64:
                self._ras.pop(0)
        elif branch_type == BranchType.RETURN:
            if self._ras:
                self._ras.pop()
        else:
            return ()
        signature = self._signature()
        self._sig_history.append(signature)
        requests: List[PrefetchRequest] = []
        for table, tag in ((self.short_table, "djolt-s"), (self.long_table, "djolt-l")):
            for trigger, footprint in table.lookup(signature):
                requests.append(PrefetchRequest(trigger, src_meta=(tag, signature)))
                offset = 1
                bits = footprint
                while bits:
                    if bits & 1:
                        requests.append(
                            PrefetchRequest(trigger + offset, src_meta=(tag, signature))
                        )
                    bits >>= 1
                    offset += 1
        return requests
