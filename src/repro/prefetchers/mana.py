"""MANA: microarchitecting an instruction prefetcher (Ansari et al. [5]).

MANA records *spatial regions* — a trigger line plus an 8-bit footprint of
the following lines — chained by successor pointers that reconstruct the
dynamic region stream.  On an access to a recorded trigger it prefetches
the region's footprint and walks the successor chain a fixed number of
regions ahead, prefetching each footprint (the BTB-directed look-ahead
behaviour the paper classifies it under).

The paper evaluates 2K- (9KB) and 4K-entry (17.25KB) tables, plus an
8K-entry table (74.18KB) in the IPC-1 configuration.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List, Optional

from repro.prefetchers.base import InstructionPrefetcher, PrefetchRequest

#: Published total storage per configuration (bits).
_PUBLISHED_STORAGE_BITS = {
    2048: int(9.0 * 8192),
    4096: int(17.25 * 8192),
    8192: int(74.18 * 8192),
}

REGION_SPAN = 8  # trigger line + 8-bit footprint of the next 8 lines


class _Region:
    __slots__ = ("footprint", "successor")

    def __init__(self) -> None:
        self.footprint = 0          # bit i => line trigger+1+i was used
        self.successor: Optional[int] = None


class ManaPrefetcher(InstructionPrefetcher):
    """Spatial-region stream prefetcher with chained look-ahead."""

    def __init__(self, entries: int = 4096, lookahead_regions: int = 4) -> None:
        if entries < 1:
            raise ValueError("MANA table needs at least one entry")
        self.entries = entries
        self.lookahead_regions = lookahead_regions
        self.name = f"MANA-{entries // 1024}K"
        self._table: "OrderedDict[int, _Region]" = OrderedDict()
        self._current_trigger: Optional[int] = None

    def storage_bits(self) -> int:
        published = _PUBLISHED_STORAGE_BITS.get(self.entries)
        if published is not None:
            return published
        # tag (~16b) + footprint (8b) + successor pointer (~14b) per entry.
        return self.entries * (16 + REGION_SPAN + 14)

    # -- training -----------------------------------------------------------

    def _record(self, trigger: int) -> _Region:
        region = self._table.get(trigger)
        if region is None:
            if len(self._table) >= self.entries:
                self._table.popitem(last=False)  # FIFO
            region = _Region()
            self._table[trigger] = region
        return region

    def on_demand_access(
        self, line_addr: int, hit: bool, cycle: int
    ) -> Iterable[PrefetchRequest]:
        requests: List[PrefetchRequest] = []
        trigger = self._current_trigger
        in_region = (
            trigger is not None and 0 <= line_addr - trigger <= REGION_SPAN
        )
        if in_region:
            if line_addr != trigger:
                region = self._record(trigger)
                region.footprint |= 1 << (line_addr - trigger - 1)
        else:
            # A new region begins: link it into the stream and trigger
            # look-ahead prefetching from here.
            if trigger is not None:
                self._record(trigger).successor = line_addr
            self._current_trigger = line_addr
            self._record(line_addr)
            requests = self._prefetch_chain(line_addr)
        return requests

    # -- prefetching ------------------------------------------------------------

    def _prefetch_chain(self, start_trigger: int) -> List[PrefetchRequest]:
        requests: List[PrefetchRequest] = []
        trigger: Optional[int] = start_trigger
        for depth in range(self.lookahead_regions + 1):
            if trigger is None:
                break
            region = self._table.get(trigger)
            if region is None:
                break
            if depth > 0:
                requests.append(PrefetchRequest(trigger, src_meta=("mana", trigger)))
            footprint = region.footprint
            offset = 1
            while footprint:
                if footprint & 1:
                    requests.append(
                        PrefetchRequest(trigger + offset, src_meta=("mana", trigger))
                    )
                footprint >>= 1
                offset += 1
            trigger = region.successor
        return requests
