"""Instruction prefetchers: the shared interface and all evaluated baselines.

The Entangling prefetcher itself (the paper's contribution) lives in
:mod:`repro.core`; this package provides the event-driven interface every
prefetcher implements plus from-scratch reimplementations of the paper's
comparison points: Next-line, SN4L, MANA, RDIP, D-JOLT, FNL+MMA, EPI, and
the Ideal prefetcher — plus PIF, the temporal-streaming reference point
of the related-work discussion.
"""

from repro.prefetchers.base import (
    FillInfo,
    InstructionPrefetcher,
    NullPrefetcher,
    PrefetchRequest,
)
from repro.prefetchers.next_line import NextLinePrefetcher
from repro.prefetchers.sn4l import SN4LPrefetcher
from repro.prefetchers.mana import ManaPrefetcher
from repro.prefetchers.pif import PifPrefetcher
from repro.prefetchers.rdip import RdipPrefetcher
from repro.prefetchers.djolt import DJoltPrefetcher
from repro.prefetchers.fnl_mma import FnlMmaPrefetcher
from repro.prefetchers.ideal import IdealPrefetcher
from repro.prefetchers.registry import available_prefetchers, make_prefetcher

__all__ = [
    "FillInfo",
    "InstructionPrefetcher",
    "NullPrefetcher",
    "PrefetchRequest",
    "NextLinePrefetcher",
    "SN4LPrefetcher",
    "ManaPrefetcher",
    "PifPrefetcher",
    "RdipPrefetcher",
    "DJoltPrefetcher",
    "FnlMmaPrefetcher",
    "IdealPrefetcher",
    "available_prefetchers",
    "make_prefetcher",
]
