"""Pure next-line prefetcher (paper Section IV-B, [8]).

Always prefetches the next cache line after the current access.  Adds no
storage.  It is the classic low-cost baseline: decent coverage on
sequential code, poor accuracy on branchy code (the paper's Figure 7 shows
it can even degrade performance).
"""

from __future__ import annotations

from typing import Iterable

from repro.prefetchers.base import InstructionPrefetcher, PrefetchRequest


class NextLinePrefetcher(InstructionPrefetcher):
    """Prefetch line ``X+1`` on every demand access to line ``X``."""

    name = "NextLine"

    def __init__(self, degree: int = 1) -> None:
        if degree < 1:
            raise ValueError("degree must be at least 1")
        self.degree = degree

    def storage_bits(self) -> int:
        return 0

    def on_demand_access(
        self, line_addr: int, hit: bool, cycle: int
    ) -> Iterable[PrefetchRequest]:
        return [PrefetchRequest(line_addr + i) for i in range(1, self.degree + 1)]
