"""PIF: Proactive Instruction Fetch (Ferdman et al., MICRO 2011 [13]).

The high-water-mark temporal prefetcher the paper's related-work section
measures RDIP and Entangling against: it records the *retire-order*
instruction-fetch stream in a long circular history and, on a fetch of a
line that exists in the history, replays the stream that followed it last
time.  PIF reaches ~99.5% instruction hit rates but at storage costs
beyond the paper's evaluated budgets (hundreds of KB), which is exactly
why the paper excludes it from Figure 6; it is provided here as the
temporal-streaming reference point.

Structures (faithful in spirit, simplified in encoding):

* **history buffer** — circular log of retired spatial regions (trigger
  line + footprint of the next few lines);
* **index table** — maps a trigger line to its most recent position in
  the history;
* **stream address buffer** — on a demand access that hits the index,
  replays ``stream_length`` history entries ahead of that position.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.prefetchers.base import InstructionPrefetcher, PrefetchRequest

REGION_SPAN = 4


class _Region:
    __slots__ = ("trigger", "footprint")

    def __init__(self, trigger: int) -> None:
        self.trigger = trigger
        self.footprint = 0


class PifPrefetcher(InstructionPrefetcher):
    """Temporal-stream instruction prefetcher (retire-order replay)."""

    name = "PIF"

    def __init__(
        self,
        history_entries: int = 32 * 1024,
        index_entries: int = 16 * 1024,
        stream_length: int = 6,
    ) -> None:
        self.history_entries = history_entries
        self.index_entries = index_entries
        self.stream_length = stream_length
        self._history: List[Optional[_Region]] = [None] * history_entries
        self._head = 0
        # trigger line -> history position of its latest occurrence.
        self._index: Dict[int, int] = {}
        self._current: Optional[_Region] = None

    def storage_bits(self) -> int:
        # History: ~ (32b trigger + footprint) per entry; index: 32b + tag.
        history_bits = self.history_entries * (32 + REGION_SPAN)
        index_bits = self.index_entries * (32 + 14)
        return history_bits + index_bits

    # -- stream recording ------------------------------------------------------

    def _record_region(self, region: _Region) -> None:
        old = self._history[self._head]
        if old is not None and self._index.get(old.trigger) == self._head:
            del self._index[old.trigger]
        self._history[self._head] = region
        if len(self._index) >= self.index_entries and region.trigger not in self._index:
            # Index at capacity: drop the association (simple policy).
            self._head = (self._head + 1) % self.history_entries
            return
        self._index[region.trigger] = self._head
        self._head = (self._head + 1) % self.history_entries

    # -- events -------------------------------------------------------------------

    def on_demand_access(
        self, line_addr: int, hit: bool, cycle: int
    ) -> Iterable[PrefetchRequest]:
        requests: List[PrefetchRequest] = []
        current = self._current
        if current is not None and 0 <= line_addr - current.trigger <= REGION_SPAN:
            if line_addr != current.trigger:
                current.footprint |= 1 << (line_addr - current.trigger - 1)
            return requests

        # A new region begins: log the completed one and look up the
        # stream that followed this trigger last time.
        if current is not None:
            self._record_region(current)
        self._current = _Region(line_addr)

        position = self._index.get(line_addr)
        if position is not None:
            requests = self._replay(position)
        return requests

    def _replay(self, position: int) -> List[PrefetchRequest]:
        requests: List[PrefetchRequest] = []
        for ahead in range(1, self.stream_length + 1):
            slot = (position + ahead) % self.history_entries
            region = self._history[slot]
            if region is None or slot == self._head:
                break
            requests.append(
                PrefetchRequest(region.trigger, src_meta=("pif", region.trigger))
            )
            footprint = region.footprint
            offset = 1
            while footprint:
                if footprint & 1:
                    requests.append(
                        PrefetchRequest(
                            region.trigger + offset,
                            src_meta=("pif", region.trigger),
                        )
                    )
                footprint >>= 1
                offset += 1
        return requests
