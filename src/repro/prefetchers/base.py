"""The event-driven instruction-prefetcher interface.

The simulator drives prefetchers through the same events ChampSim exposes,
extended with the feedback channels the paper's Figure 5 requires:

* :meth:`~InstructionPrefetcher.on_demand_access` — every demand L1I
  access (FTQ enqueue; Fetch-Directed-Prefetching accesses count as
  demand, matching the paper's baseline).  Returns prefetch requests.
* :meth:`~InstructionPrefetcher.on_branch` — every retired-path branch
  with its outcome; used by RAS/BTB-directed prefetchers.
* :meth:`~InstructionPrefetcher.on_fill` — a miss or prefetch completed
  and filled the L1I; carries the timing metadata from the MSHR.
* :meth:`~InstructionPrefetcher.on_prefetch_useful` /
  :meth:`~InstructionPrefetcher.on_prefetch_late` /
  :meth:`~InstructionPrefetcher.on_evict_unused` — the timely / late /
  wrong prefetch feedback used to adjust confidence.

Every request may carry an opaque ``src_meta`` token.  The simulator
threads it through the PQ, the MSHR and the cache line (as the paper does
with the source-entangled fields) and hands it back in feedback events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.workloads.trace import BranchType


@dataclass(frozen=True, slots=True)
class PrefetchRequest:
    """A prefetch for one instruction-cache line."""

    line_addr: int
    src_meta: Any = None


@dataclass(frozen=True, slots=True)
class FillInfo:
    """Timing metadata delivered with an L1I fill (from the MSHR entry).

    Attributes:
        line_addr: the filled line.
        fill_cycle: when the line entered the cache.
        issue_cycle: when the request left for the hierarchy (demand miss
            time, or prefetch issue time for prefetch fills).
        is_demand: final state of the access bit — True for demand misses
            and for late prefetches.
        was_prefetch: the MSHR entry was allocated by a prefetch.
        demand_cycle: first demand access time, or None if never demanded.
        src_meta: source token of the triggering prefetch, if any.
    """

    line_addr: int
    fill_cycle: int
    issue_cycle: int
    is_demand: bool
    was_prefetch: bool
    demand_cycle: Optional[int]
    src_meta: Any = None

    @property
    def latency(self) -> int:
        """Measured fetch latency of this fill (from its own issue time)."""
        return self.fill_cycle - self.issue_cycle

    @property
    def demand_latency(self) -> int:
        """Miss latency as observed by the demanding access.

        For a late prefetch the demand arrived while the line was already
        in flight, so the latency it observed runs from ``demand_cycle``
        to the fill — not from the earlier prefetch issue.  Using
        :attr:`latency` there overstates the wait and makes
        latency-driven source selection (the paper's ``latency``-cycle
        deadline) pick sources older than required.  Demand misses
        observe the full issue-to-fill latency, identical to
        :attr:`latency`.
        """
        if self.was_prefetch and self.is_demand and self.demand_cycle is not None:
            return self.fill_cycle - self.demand_cycle
        return self.fill_cycle - self.issue_cycle

    @property
    def is_late_prefetch(self) -> bool:
        return self.was_prefetch and self.is_demand


class InstructionPrefetcher:
    """Base class; the default implementation never prefetches."""

    #: Human-readable name used in reports.
    name: str = "no"
    #: Ideal prefetchers make every L1I access hit (simulator support).
    is_ideal: bool = False
    #: Passive prefetchers never request anything and keep no state: every
    #: hook is a no-op returning ().  The staged/numpy simulator cores may
    #: skip hook dispatch entirely for passive prefetchers (the batch fast
    #: paths rely on this), so only set it when *all* hooks are inherited
    #: no-ops.
    is_passive: bool = False

    def storage_bits(self) -> int:
        """Extra state this prefetcher adds, in bits."""
        return 0

    @property
    def storage_kb(self) -> float:
        return self.storage_bits() / 8192.0

    def on_demand_access(
        self, line_addr: int, hit: bool, cycle: int
    ) -> Iterable[PrefetchRequest]:
        return ()

    def on_branch(
        self,
        pc: int,
        branch_type: BranchType,
        taken: bool,
        target: int,
        cycle: int,
    ) -> Iterable[PrefetchRequest]:
        return ()

    def on_fill(self, info: FillInfo) -> Iterable[PrefetchRequest]:
        return ()

    def on_prefetch_useful(self, line_addr: int, src_meta: Any, cycle: int) -> None:
        pass

    def on_prefetch_late(self, line_addr: int, src_meta: Any, cycle: int) -> None:
        pass

    def on_evict_unused(self, line_addr: int, src_meta: Any, cycle: int) -> None:
        pass

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class NullPrefetcher(InstructionPrefetcher):
    """The no-prefetch baseline (the paper's ``no`` configuration)."""

    name = "no"
    is_passive = True
