"""RDIP: return-address-stack-directed instruction prefetching (Kolli et
al., MICRO 2013 [29]).

RDIP observes that the call stack summarizes program context: it hashes
the top of the RAS into a *signature*, associates the L1I misses observed
under each signature with it, and on every call/return — when the
signature changes — prefetches the misses recorded for the new signature.

We model the configuration the paper evaluates: a 4K-entry miss table
holding up to 3 discontinuous trigger regions per signature, each with an
8-bit footprint vector (total 63KB).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List

from repro.prefetchers.base import InstructionPrefetcher, PrefetchRequest
from repro.workloads.trace import BranchType

REGION_SPAN = 8
_PUBLISHED_STORAGE_BITS = int(63.0 * 8192)


class _MissSet:
    """Per-signature record: up to ``max_regions`` trigger+footprint pairs."""

    __slots__ = ("regions",)

    def __init__(self) -> None:
        self.regions: List[List[int]] = []  # [trigger_line, footprint]

    def add_miss(self, line_addr: int, max_regions: int) -> None:
        for region in self.regions:
            delta = line_addr - region[0]
            if delta == 0:
                return
            if 0 < delta <= REGION_SPAN:
                region[1] |= 1 << (delta - 1)
                return
        if len(self.regions) < max_regions:
            self.regions.append([line_addr, 0])


class RdipPrefetcher(InstructionPrefetcher):
    """RAS-signature-directed prefetcher."""

    name = "RDIP"

    def __init__(
        self,
        entries: int = 4096,
        ras_depth: int = 4,
        max_regions: int = 3,
    ) -> None:
        self.entries = entries
        self.ras_depth = ras_depth
        self.max_regions = max_regions
        self._table: "OrderedDict[int, _MissSet]" = OrderedDict()
        self._ras: List[int] = []
        self._signature = 0

    def storage_bits(self) -> int:
        if self.entries == 4096 and self.max_regions == 3:
            return _PUBLISHED_STORAGE_BITS
        # signature tag (~16b) + regions * (line ~32b + footprint 8b).
        return self.entries * (16 + self.max_regions * (32 + REGION_SPAN))

    # -- signature maintenance ------------------------------------------------

    def _compute_signature(self) -> int:
        sig = 0
        for i, ret_addr in enumerate(self._ras[-self.ras_depth :]):
            sig ^= (ret_addr >> 2) << (i % 4)
        return sig & 0xFFFF_FFFF

    def _miss_set(self, signature: int) -> _MissSet:
        entry = self._table.get(signature)
        if entry is None:
            if len(self._table) >= self.entries:
                self._table.popitem(last=False)
            entry = _MissSet()
            self._table[signature] = entry
        return entry

    # -- events ------------------------------------------------------------------

    def on_demand_access(
        self, line_addr: int, hit: bool, cycle: int
    ) -> Iterable[PrefetchRequest]:
        if not hit:
            self._miss_set(self._signature).add_miss(line_addr, self.max_regions)
        return ()

    def on_branch(
        self,
        pc: int,
        branch_type: BranchType,
        taken: bool,
        target: int,
        cycle: int,
    ) -> Iterable[PrefetchRequest]:
        if branch_type.is_call:
            self._ras.append(pc + 4)
            if len(self._ras) > 64:
                self._ras.pop(0)
        elif branch_type == BranchType.RETURN:
            if self._ras:
                self._ras.pop()
        else:
            return ()
        self._signature = self._compute_signature()
        return self._prefetch_for(self._signature)

    def _prefetch_for(self, signature: int) -> List[PrefetchRequest]:
        entry = self._table.get(signature)
        if entry is None:
            return []
        requests: List[PrefetchRequest] = []
        for trigger, footprint in entry.regions:
            requests.append(PrefetchRequest(trigger, src_meta=("rdip", signature)))
            offset = 1
            bits = footprint
            while bits:
                if bits & 1:
                    requests.append(
                        PrefetchRequest(trigger + offset, src_meta=("rdip", signature))
                    )
                bits >>= 1
                offset += 1
        return requests
