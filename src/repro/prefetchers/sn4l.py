"""SN4L: a memory-efficient next-4-lines prefetcher (Ansari et al. [6]).

A 16K-bit *worthiness* vector decides, per hashed line, whether prefetching
that line is expected to be useful.  On an access to line ``X`` the next
four lines are prefetched if their bits are set.  Bits are set when a line
actually misses on demand (prefetching it would have been worth it) and
cleared when a prefetched line is evicted unused.  Total storage: 2.06KB.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.prefetchers.base import InstructionPrefetcher, PrefetchRequest


class SN4LPrefetcher(InstructionPrefetcher):
    """Shared-Next-4-Lines with a worthiness bit vector."""

    name = "SN4L"

    def __init__(self, vector_bits: int = 16 * 1024, lookahead: int = 4) -> None:
        self.vector_bits = vector_bits
        self.lookahead = lookahead
        self._worthy = bytearray(vector_bits)  # one byte per bit, for speed

    def _index(self, line_addr: int) -> int:
        return line_addr % self.vector_bits

    def storage_bits(self) -> int:
        # 16K-bit vector plus a few control registers (paper: 2.06KB total).
        return self.vector_bits + 512

    def on_demand_access(
        self, line_addr: int, hit: bool, cycle: int
    ) -> Iterable[PrefetchRequest]:
        if not hit:
            # This line was worth having: remember it for future triggers.
            self._worthy[self._index(line_addr)] = 1
        requests = []
        for offset in range(1, self.lookahead + 1):
            candidate = line_addr + offset
            if self._worthy[self._index(candidate)]:
                requests.append(PrefetchRequest(candidate, src_meta=("sn4l", candidate)))
        return requests

    def on_evict_unused(self, line_addr: int, src_meta: Any, cycle: int) -> None:
        # The prefetch was wrong: stop considering this line worthy.
        self._worthy[self._index(line_addr)] = 0
