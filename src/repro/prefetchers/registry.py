"""Name-based prefetcher factory.

Every evaluated configuration of the paper's Figure 6 is constructible by
name, so experiment drivers and benchmarks can be parameterized by plain
strings.  Fresh instances are returned on every call (prefetchers are
stateful).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.prefetchers.base import InstructionPrefetcher, NullPrefetcher
from repro.prefetchers.djolt import DJoltPrefetcher
from repro.prefetchers.fnl_mma import FnlMmaPrefetcher
from repro.prefetchers.ideal import IdealPrefetcher
from repro.prefetchers.mana import ManaPrefetcher
from repro.prefetchers.next_line import NextLinePrefetcher
from repro.prefetchers.pif import PifPrefetcher
from repro.prefetchers.rdip import RdipPrefetcher
from repro.prefetchers.sn4l import SN4LPrefetcher


def _entangling(entries: int, address_space: str = "virtual") -> InstructionPrefetcher:
    # Imported lazily to avoid a circular import with repro.core.
    from repro.core.variants import make_entangling

    return make_entangling(entries, address_space)


def _epi() -> InstructionPrefetcher:
    from repro.core.variants import make_epi

    return make_epi()


_FACTORIES: Dict[str, Callable[[], InstructionPrefetcher]] = {
    "no": NullPrefetcher,
    "next_line": NextLinePrefetcher,
    "sn4l": SN4LPrefetcher,
    "mana_2k": lambda: ManaPrefetcher(entries=2048),
    "mana_4k": lambda: ManaPrefetcher(entries=4096),
    "mana_8k": lambda: ManaPrefetcher(entries=8192),
    "pif": PifPrefetcher,
    "rdip": RdipPrefetcher,
    "djolt": DJoltPrefetcher,
    "fnl_mma": FnlMmaPrefetcher,
    "epi": _epi,
    "entangling_2k": lambda: _entangling(2048),
    "entangling_4k": lambda: _entangling(4096),
    "entangling_8k": lambda: _entangling(8192),
    "entangling_2k_phys": lambda: _entangling(2048, "physical"),
    "entangling_4k_phys": lambda: _entangling(4096, "physical"),
    "entangling_8k_phys": lambda: _entangling(8192, "physical"),
    "ideal": IdealPrefetcher,
}


def available_prefetchers() -> List[str]:
    """All registered configuration names."""
    return sorted(_FACTORIES)


def make_prefetcher(name: str) -> InstructionPrefetcher:
    """Instantiate a fresh prefetcher by configuration name.

    Raises:
        KeyError: unknown name (message lists the valid ones).
    """
    factory = _FACTORIES.get(name)
    if factory is None:
        raise KeyError(
            f"unknown prefetcher {name!r}; available: {available_prefetchers()}"
        )
    return factory()
