"""The ideal instruction prefetcher (paper Section IV-B, [34]).

The L1I always returns a hit; every line that would have missed is still
requested from the next cache level, so the pollution the instruction
stream causes in the L2/LLC is modelled.  The simulator implements the
always-hit semantics when it sees ``is_ideal``.
"""

from __future__ import annotations

from repro.prefetchers.base import InstructionPrefetcher


class IdealPrefetcher(InstructionPrefetcher):
    """Upper bound: a perfect L1I."""

    name = "ideal"
    is_ideal = True

    def storage_bits(self) -> int:
        return 0
