"""FNL+MMA: footprint-next-line + multiple-miss-ahead (Seznec, IPC-1 [44]).

Two cooperating engines:

* **FNL** — an enhanced next-line prefetcher: a worthiness table remembers,
  per line, which of its next few lines were historically fetched soon
  after it, and prefetches exactly those.
* **MMA** — a look-ahead miss predictor: a table maps each L1I miss to the
  miss observed ``n`` misses later (a fixed, "good-enough" look-ahead
  distance); on a miss it prefetches the predicted nth-next miss and its
  FNL footprint.

The paper evaluates an 8K-entry miss table: 97KB total.  The fixed
look-ahead distance is precisely the design point the Entangling paper
argues against (Figures 1-2).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Iterable, List

from repro.prefetchers.base import InstructionPrefetcher, PrefetchRequest

_PUBLISHED_STORAGE_BITS = int(97.0 * 8192)

FNL_SPAN = 5   # worthiness bits for lines X+1 .. X+5


class FnlMmaPrefetcher(InstructionPrefetcher):
    """Footprint next line + multiple miss ahead."""

    name = "FNL+MMA"

    def __init__(
        self,
        fnl_entries: int = 8192,
        mma_entries: int = 8192,
        miss_ahead: int = 4,
    ) -> None:
        self.fnl_entries = fnl_entries
        self.mma_entries = mma_entries
        self.miss_ahead = miss_ahead
        self._fnl: "OrderedDict[int, int]" = OrderedDict()   # line -> footprint bits
        self._mma: "OrderedDict[int, int]" = OrderedDict()   # miss -> nth next miss
        self._recent_lines: Deque[int] = deque(maxlen=FNL_SPAN)
        self._recent_misses: Deque[int] = deque(maxlen=miss_ahead + 1)

    def storage_bits(self) -> int:
        if self.fnl_entries == 8192 and self.mma_entries == 8192:
            return _PUBLISHED_STORAGE_BITS
        return self.fnl_entries * (16 + FNL_SPAN) + self.mma_entries * (16 + 32)

    # -- FNL training / lookup -----------------------------------------------

    def _fnl_set(self, line_addr: int, offset: int) -> None:
        if line_addr not in self._fnl and len(self._fnl) >= self.fnl_entries:
            self._fnl.popitem(last=False)
        self._fnl[line_addr] = self._fnl.get(line_addr, 0) | (1 << (offset - 1))

    def _fnl_footprint(self, line_addr: int) -> List[int]:
        bits = self._fnl.get(line_addr, 0)
        lines = []
        offset = 1
        while bits:
            if bits & 1:
                lines.append(line_addr + offset)
            bits >>= 1
            offset += 1
        return lines

    # -- events ----------------------------------------------------------------

    def on_demand_access(
        self, line_addr: int, hit: bool, cycle: int
    ) -> Iterable[PrefetchRequest]:
        requests: List[PrefetchRequest] = []

        # FNL training: this line followed each recent line closely.
        for recent in self._recent_lines:
            delta = line_addr - recent
            if 0 < delta <= FNL_SPAN:
                self._fnl_set(recent, delta)
        if not self._recent_lines or self._recent_lines[-1] != line_addr:
            self._recent_lines.append(line_addr)

        # FNL prefetch: worthy next lines of the current access.
        for worthy in self._fnl_footprint(line_addr):
            requests.append(PrefetchRequest(worthy, src_meta=("fnl", line_addr)))

        if not hit:
            requests.extend(self._on_miss(line_addr))
        return requests

    def _on_miss(self, line_addr: int) -> List[PrefetchRequest]:
        # MMA training: the miss from `miss_ahead` misses ago predicts us.
        self._recent_misses.append(line_addr)
        if len(self._recent_misses) > self.miss_ahead:
            anchor = self._recent_misses[0]
            if anchor not in self._mma and len(self._mma) >= self.mma_entries:
                self._mma.popitem(last=False)
            self._mma[anchor] = line_addr

        # MMA prefetch: jump the look-ahead distance.
        requests: List[PrefetchRequest] = []
        predicted = self._mma.get(line_addr)
        if predicted is not None:
            requests.append(PrefetchRequest(predicted, src_meta=("mma", line_addr)))
            for worthy in self._fnl_footprint(predicted):
                requests.append(PrefetchRequest(worthy, src_meta=("mma", line_addr)))
        return requests
