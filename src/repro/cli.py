"""Command-line interface.

The subcommands mirror the typical workflow of a prefetching study::

    python -m repro gen  --category srv --seed 3 --instructions 500000 out.trc
    python -m repro import server.champsimtrace.gz out.trc
    python -m repro run  out.trc --prefetcher entangling_4k --warmup 200000
    python -m repro sweep out.trc --prefetchers no,next_line,entangling_4k
    python -m repro tune --strategy genetic --seed 7 --out front
    python -m repro trace out.trc --prefetcher entangling_4k --export out
    python -m repro bench-check BENCH_throughput.json
    python -m repro events events.jsonl --summary
    python -m repro top events.jsonl
    python -m repro metrics-serve events.jsonl --port 9095
    python -m repro store ~/.cache/repro-runs stats
    python -m repro chaos /tmp/chaos --writers 4 --expect-degraded

``gen`` writes a synthetic workload to a trace file (including the
multi-tenant ``microservice`` category); ``import`` converts an external
trace — ChampSim-format binary (raw or gzipped), the line-oriented text
format, or our native binary — into the native format; ``run`` simulates
a trace with one prefetcher configuration and prints the statistics;
``sweep`` compares several configurations on the same trace (and with
``--trace PATH`` writes a merged Chrome trace of the sweep's execution);
``tune`` runs a resumable multi-objective search over the Entangling
design space and emits the Pareto front (see
:mod:`repro.analysis.tune`);
``trace`` runs with the prefetch-lifecycle tracer attached (see
:mod:`repro.obs`) and prints per-pair timeliness histograms plus the
late/wrong breakdown; ``bench-check`` gates the newest throughput
benchmark record against the trajectory (see
:mod:`repro.analysis.regression`).  ``run``/``sweep``/``trace`` accept
any supported trace format directly (the bytes are sniffed — see
:mod:`repro.workloads.importers`), so ``import`` is only needed when the
converted trace will be reused many times.

Telemetry (:mod:`repro.obs.events`): ``run``/``sweep``/``tune`` accept
``--events PATH`` (or ``REPRO_EVENTS``) to append every lifecycle,
fault, cache, and sanitizer occurrence to a JSONL run ledger, and
``--metrics-port N`` to serve live Prometheus metrics while they run.
``events`` queries/tails a ledger, ``top`` renders a live status table
from one, and ``metrics-serve`` exports a ledger over HTTP after the
fact.  Without those flags the telemetry modules are never imported
(the zero-cost contract of :mod:`repro.obs`).

Shared run store (:mod:`repro.analysis.store`): ``store`` inspects and
maintains a cache directory (entry/lease stats, forced eviction,
checksum verification, stale-lease reaping); ``chaos`` runs the
multi-process stress harness against one — optionally under injected
filesystem faults (``REPRO_FSFAULT=enospc:0.05,torn-rename:0.05``) —
asserting the store invariants (no torn entry served, byte budget held,
ENOSPC degrades to read-only, SIGKILLed lease owners are stolen from).
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from functools import lru_cache
from typing import List, Optional

from repro.prefetchers.registry import available_prefetchers
from repro.analysis.experiments import resolve_config, resolve_jobs
from repro.analysis.reporting import format_table
from repro.check import TraceError, sanitizer_from_env
from repro.sim.config import BACKENDS, SimConfig
from repro.sim.fetchunits import build_fetch_units
from repro.sim.simulator import simulate
from repro.workloads.generators import (
    ALL_CATEGORIES,
    WorkloadSpec,
    make_workload,
)
from repro.workloads.importers import load_external_trace
from repro.workloads.trace import write_trace


def _load_trace(path: str, salvage: bool = False, fmt: str = "auto"):
    """Read a trace of any supported format, reporting salvage on stderr.

    Raises TraceError upward; the command wrappers turn it into exit
    code 2 with a one-line diagnosis instead of a stack trace.
    """
    trace = load_external_trace(path, fmt=fmt, salvage=salvage)
    if trace.salvage is not None:
        print(f"salvage: {path}: {trace.salvage.describe()}", file=sys.stderr)
    return trace


def _cmd_gen(args: argparse.Namespace) -> int:
    tenants = None
    if args.tenants:
        if args.category != "microservice":
            print("gen: --tenants only applies to --category microservice",
                  file=sys.stderr)
            return 2
        tenants = tuple(t.strip() for t in args.tenants.split(",") if t.strip())
    spec = WorkloadSpec(
        name=args.name or f"{args.category}_{args.seed}",
        category=args.category,
        seed=args.seed,
        n_instructions=args.instructions,
        tenants=tenants,
    )
    trace = make_workload(spec)
    write_trace(trace, args.output)
    print(
        f"wrote {args.output}: {len(trace)} instructions, "
        f"{trace.footprint_lines()} lines "
        f"({trace.footprint_lines() * 64 // 1024} KB footprint)"
    )
    return 0


def _cmd_import(args: argparse.Namespace) -> int:
    from repro.workloads.importers import detect_trace_format

    try:
        fmt = args.format
        if fmt == "auto":
            fmt = detect_trace_format(args.source)
        trace = load_external_trace(
            args.source,
            name=args.name,
            category=args.category,
            fmt=fmt,
            layout=args.layout,
            limit=args.limit,
            salvage=args.salvage,
        )
    except (OSError, TraceError) as exc:
        print(f"import: {exc}", file=sys.stderr)
        return 2
    if trace.salvage is not None:
        print(f"salvage: {args.source}: {trace.salvage.describe()}",
              file=sys.stderr)
    if not len(trace):
        print(f"import: {args.source}: no instructions recovered",
              file=sys.stderr)
        return 2
    write_trace(trace, args.output)
    branches = sum(1 for i in trace.instructions if i.is_branch)
    print(
        f"imported {args.source} ({fmt}) -> {args.output}: "
        f"{len(trace)} instructions, {branches} branches, "
        f"{trace.footprint_lines()} lines "
        f"({trace.footprint_lines() * 64 // 1024} KB footprint), "
        f"name={trace.name!r} category={trace.category!r}"
    )
    return 0


def _run_one(trace, config_name: str, warmup: int, units=None, checker=None):
    prefetcher, sim_config = resolve_config(config_name, SimConfig())
    if units is None:
        units = build_fetch_units(trace, sim_config.line_size)
    if checker is None:
        checker = sanitizer_from_env()
    return simulate(
        trace, prefetcher, config=sim_config, units=units,
        warmup_instructions=warmup, checker=checker,
    )


@contextmanager
def _telemetry(args: argparse.Namespace, command: str, n_tasks: int = 1):
    """CLI telemetry scope: run ledger + optional live metrics endpoint.

    Yields the installed :class:`~repro.obs.events.EventBus`, or None
    when neither ``--events`` / ``REPRO_EVENTS`` nor ``--metrics-port``
    opted in — in which case nothing under ``repro.obs.events`` is
    imported (the zero-cost contract).  The bus is installed as the
    process bus for the scope so in-process publishers (sanitizer,
    run cache) reach the same ledger, and suite_started/suite_finished
    bracket the command.
    """
    import os

    events_path = getattr(args, "events", None) or (
        os.environ.get("REPRO_EVENTS", "").strip() or None
    )
    port = getattr(args, "metrics_port", None)
    if not events_path and port is None:
        yield None
        return
    from repro.obs.events import open_bus, set_event_bus

    bus = open_bus(events_path)
    server = None
    if port is not None:
        from repro.obs.exporthttp import MetricsHTTPServer, bus_metrics_source

        server = MetricsHTTPServer(bus_metrics_source(bus), port=port)
        server.start()
        print(f"metrics: {server.url}", file=sys.stderr)
    previous = set_event_bus(bus)
    bus.emit(
        "suite_started",
        payload={"n_tasks": n_tasks, "command": command},
    )
    completed = False
    try:
        yield bus
        completed = True
    finally:
        try:
            bus.emit(
                "suite_finished",
                payload={"command": command, "completed": completed},
            )
        except Exception:  # noqa: BLE001 — telemetry never masks the exit
            pass
        set_event_bus(previous)
        if server is not None:
            server.stop()
        bus.close()


def _cmd_run(args: argparse.Namespace) -> int:
    import os

    if args.trace and args.trace_file:
        print("run: give either a positional trace or --trace-file, not both",
              file=sys.stderr)
        return 2
    args.trace = args.trace or args.trace_file
    if not args.trace:
        print("run: a trace is required (positional or --trace-file)",
              file=sys.stderr)
        return 2
    if args.backend:
        # One switch covers both the in-process path and guarded worker
        # processes (the environment is inherited); an explicit
        # SimConfig.backend in library code still takes precedence.
        os.environ["REPRO_BACKEND"] = args.backend
    if args.check:
        # Propagate to worker processes (guarded mode) and keep the
        # in-process path on the same code route as REPRO_SANITIZE=1.
        os.environ["REPRO_SANITIZE"] = "1"
    with _telemetry(args, "run") as bus:
        checker = None
        if args.task_timeout is not None or args.retries is not None:
            # Guarded execution: run the simulation in a worker process
            # so a hang can be timed out and a crash retried.
            from repro.analysis.parallel import map_resilient

            observer = None
            if bus is not None:
                from repro.obs.events import EventObserver

                observer = EventObserver(
                    bus, flight_dir=bus.flight_dir, standalone=True
                )
            outcome = map_resilient(
                _sweep_worker,
                [(args.trace, args.prefetcher, args.warmup)],
                labels=[args.prefetcher],
                jobs=2,  # pooled (1 task -> 1 worker); enables timeout
                policy=_cli_policy(args),
                observer=observer,
            )
            result = outcome.results[0]
            if result is None:
                failure = outcome.report.quarantined[0]
                if observer is not None:
                    observer.quarantined(
                        failure.label, failure.attempts, failure.error
                    )
                    for path in observer.flight_paths.values():
                        print(f"flight recording: {path}", file=sys.stderr)
                print(f"FAILED {failure.label} after {failure.attempts} "
                      f"attempt(s): {failure.error}", file=sys.stderr)
                return 1
        else:
            try:
                trace = _load_trace(
                    args.trace, salvage=args.salvage, fmt=args.format
                )
            except TraceError as exc:
                print(f"run: {exc}", file=sys.stderr)
                return 2
            checker = sanitizer_from_env()
            if bus is not None:
                bus.emit(
                    "task_started",
                    label=args.prefetcher,
                    payload={"trace": args.trace},
                )
            result = _run_one(trace, args.prefetcher, args.warmup,
                              checker=checker)
            if bus is not None:
                bus.emit(
                    "task_finished",
                    label=args.prefetcher,
                    cycle=result.stats.cycles,
                    payload={"ipc": result.stats.ipc},
                )
                if checker is not None:
                    bus.emit(
                        "sanitizer",
                        config=args.prefetcher,
                        workload=result.trace_name,
                        cycle=result.stats.cycles,
                        payload=checker.report().to_payload(),
                    )
        from repro.sim.stages import resolve_backend

        stats = result.stats
        print(f"trace:      {result.trace_name} "
              f"({stats.instructions} measured instructions)")
        print(f"prefetcher: {result.prefetcher_name}")
        print(f"backend:    {resolve_backend(None).backend_name}")
        print(f"IPC:        {stats.ipc:.4f}")
        print(f"L1I MPKI:   {stats.l1i_mpki:.2f}")
        print(f"miss ratio: {stats.l1i_miss_ratio:.4f}")
        print(f"prefetches: sent={stats.prefetches_sent} "
              f"useful={stats.useful_prefetches} "
              f"late={stats.late_prefetches} wrong={stats.wrong_prefetches}")
        print(f"accuracy:   {stats.accuracy:.3f}")
        print(f"branches:   {stats.branches} "
              f"(mispredict rate {stats.branch_misprediction_rate:.3f})")
        print(f"sim speed:  {stats.instrs_per_second:,.0f} instrs/s "
              f"({stats.wall_seconds:.2f}s wall)")
        if checker is not None:
            print(checker.report().summary_line())
        return 0


@lru_cache(maxsize=4)
def _worker_trace(path: str):
    """Per-process trace load for the parallel sweep workers."""
    return load_external_trace(path)


def _sweep_worker(task, attempt=0, in_process=False, record_spans=False):
    """Run one configuration of a sweep (executed in a worker process)."""
    trace_path, config_name, warmup = task
    if record_spans:
        from repro.obs.spans import worker_span_scope

        with worker_span_scope() as recorder:
            with recorder.span(
                "attempt", cat="worker", label=config_name, attempt=attempt
            ):
                trace = _worker_trace(trace_path)
                result = _run_one(trace, config_name, warmup).detached()
            result.spans = recorder.batch()
            return result
    trace = _worker_trace(trace_path)
    return _run_one(trace, config_name, warmup).detached()


def _cli_policy(args: argparse.Namespace):
    """Retry policy from ``--retries`` / ``--task-timeout`` (env fallback)."""
    from repro.analysis.parallel import RetryPolicy

    policy = RetryPolicy.from_env()
    if getattr(args, "retries", None) is not None:
        policy = RetryPolicy(
            retries=max(0, args.retries),
            timeout=policy.timeout,
            backoff_base=policy.backoff_base,
        )
    if getattr(args, "task_timeout", None) is not None:
        timeout = args.task_timeout if args.task_timeout > 0 else None
        policy = RetryPolicy(
            retries=policy.retries,
            timeout=timeout,
            backoff_base=policy.backoff_base,
        )
    return policy


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.parallel import map_resilient

    names = [n.strip() for n in args.prefetchers.split(",") if n.strip()]
    jobs = resolve_jobs(args.jobs)
    tasks = [(args.trace, name, args.warmup) for name in names]
    with _telemetry(args, "sweep", n_tasks=len(names)) as bus:
        recorder = collector = None
        worker = _sweep_worker
        if args.trace_out:
            from functools import partial

            from repro.obs.spans import SpanRecorder, SuiteSpanCollector

            recorder = SpanRecorder(role="sweep")
            collector = SuiteSpanCollector(recorder)
            worker = partial(_sweep_worker, record_spans=True)
        events_observer = None
        observer = collector
        if bus is not None:
            from repro.obs.events import EventObserver, compose_observers

            events_observer = EventObserver(
                bus, flight_dir=bus.flight_dir, standalone=True
            )
            observer = compose_observers(collector, events_observer)
        outcome = map_resilient(
            worker,
            tasks,
            labels=names,
            jobs=jobs if len(names) > 1 else 1,
            policy=_cli_policy(args),
            observer=observer,
        )
        if events_observer is not None:
            for failure in outcome.report.quarantined:
                events_observer.quarantined(
                    failure.label, failure.attempts, failure.error
                )
            for path in events_observer.flight_paths.values():
                print(f"flight recording: {path}", file=sys.stderr)
        baseline = None
        rows = []
        total_wall = 0.0
        for name, result in zip(names, outcome.results):
            if result is None:
                continue  # quarantined; reported below
            if collector is not None and result.spans is not None:
                collector.add_batch(result.spans, name)
                result.spans = None
            stats = result.stats
            total_wall += stats.wall_seconds
            if baseline is None:
                baseline = stats
            rows.append([
                name,
                stats.ipc,
                stats.ipc / baseline.ipc if baseline.ipc else 0.0,
                stats.l1i_mpki,
                stats.coverage_vs(baseline),
                stats.accuracy,
            ])
        if rows:
            print(format_table(
                ["config", "IPC", "vs first", "MPKI", "coverage", "accuracy"],
                rows,
                float_format="{:.3f}",
            ))
        print(f"({len(rows)}/{len(names)} configs, {total_wall:.1f}s of "
              f"simulation, jobs={jobs})")
        for failure in outcome.report.quarantined:
            print(f"FAILED {failure.label} after {failure.attempts} "
                  f"attempt(s): {failure.error}", file=sys.stderr)
        if collector is not None and recorder is not None:
            from repro.obs.chrometrace import write_chrome_trace

            collector.finish()
            write_chrome_trace(
                recorder.spans, args.trace_out,
                process_names=collector.process_names(),
            )
            print(f"wrote execution trace {args.trace_out} "
                  f"(load at https://ui.perfetto.dev)")
        return 0 if rows else 1


def _cmd_bench_check(args: argparse.Namespace) -> int:
    from repro.analysis.regression import (
        check_trajectory,
        load_trajectory,
        parse_speedup_requirements,
    )

    try:
        entries = load_trajectory(args.trajectory)
        require_speedups = parse_speedup_requirements(
            args.require_speedup or []
        )
    except ValueError as exc:
        print(f"bench-check: {exc}", file=sys.stderr)
        return 2
    report = check_trajectory(
        entries, window=args.window, threshold=args.threshold,
        require_speedups=require_speedups,
    )
    acknowledged = []
    if args.allow_cycle_drift and report.drifts:
        acknowledged = report.drifts
        report.findings = report.regressions
    print(report.format())
    if acknowledged:
        print(f"  ({len(acknowledged)} drift finding(s) acknowledged "
              f"via --allow-cycle-drift)")
    return 0 if report.ok else 1


def _cmd_tune(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.analysis.checkpoint import CheckpointManifest
    from repro.analysis.export import export_pareto_csv
    from repro.analysis.runcache import RunCache
    from repro.analysis.tune import make_tuner
    from repro.check.artifacts import atomic_write_text
    from repro.workloads.generators import cvp_suite

    objectives = [o.strip() for o in args.objectives.split(",") if o.strip()]
    if args.resume and not args.cache_dir:
        print("tune: --resume needs --cache-dir (the disk run cache is "
              "what resumption serves finished genomes from)",
              file=sys.stderr)
        return 2
    suite = cvp_suite(
        per_category=args.per_category, n_instructions=args.instructions
    )
    cache = RunCache(disk_dir=args.cache_dir)
    checkpoint = None
    if args.cache_dir:
        checkpoint = CheckpointManifest(
            os.path.join(args.cache_dir, "tune_checkpoint.json"),
            resume=args.resume,
        )
    kwargs = {}
    if args.strategy == "genetic":
        kwargs = dict(
            population=args.population, generations=args.generations
        )
    elif args.strategy == "random":
        kwargs = dict(samples=args.population * args.generations)
    elif args.strategy == "grid":
        kwargs = dict(max_evals=args.max_evals)
    try:
        tuner = make_tuner(
            args.strategy,
            suite,
            objectives=objectives,
            seed=args.seed,
            train_fraction=args.train_fraction,
            cache=cache,
            checkpoint=checkpoint,
            jobs=resolve_jobs(args.jobs),
            **kwargs,
        )
    except ValueError as exc:
        print(f"tune: {exc}", file=sys.stderr)
        return 2
    with _telemetry(args, "tune", n_tasks=0) as bus:
        if bus is not None:
            # The tuner drives map_resilient directly (not run_suite), so
            # wire the cache's telemetry hook here; genome evaluations
            # then surface as cache_miss/cache_store and resumed ones as
            # cache_hit in the ledger.
            cache.publisher = bus
        result = tuner.search()
    print(result.render())
    if result.invalid:
        print(f"({result.invalid} structurally invalid genome(s) skipped)")
    print(result.cache_line)
    if result.checkpoint_line:
        print(result.checkpoint_line)
    if args.out:
        json_path = args.out + ".json"
        atomic_write_text(
            json_path, json.dumps(result.to_dict(), indent=2) + "\n"
        )
        csv_path = args.out + ".csv"
        export_pareto_csv(result, csv_path)
        print(f"wrote {json_path}")
        print(f"wrote {csv_path}")
    return 0 if result.front else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.analysis.export import (
        export_metrics_csv,
        export_metrics_json,
        export_metrics_prometheus,
    )
    from repro.obs import (
        PhaseProfiler,
        PrefetchTracer,
        TimelinessReport,
        registry_for_run,
    )

    trace = _load_trace(args.trace)
    prefetcher, sim_config = resolve_config(args.prefetcher, SimConfig())
    units = build_fetch_units(trace, sim_config.line_size)
    tracer = PrefetchTracer(capacity=args.capacity, sample=args.sample)
    profiler = PhaseProfiler() if args.profile else None
    result = simulate(
        trace, prefetcher, config=sim_config, units=units,
        warmup_instructions=args.warmup, tracer=tracer, profiler=profiler,
    )
    stats = result.stats
    report = TimelinessReport.from_tracer(tracer)

    print(f"trace:      {result.trace_name} "
          f"({stats.instructions} measured instructions)")
    print(f"prefetcher: {result.prefetcher_name}")
    print(f"events:     {tracer.emitted} recorded, "
          f"{tracer.sampled_out} sampled out, "
          f"{'ring overflowed' if tracer.overflowed else 'complete stream'}")
    print(report.format(limit=args.top))

    ok = True
    if tracer.is_exact:
        # The acceptance cross-check: an exact trace's totals must equal
        # the architectural counters of the same run.
        expected = (
            stats.useful_prefetches, stats.late_prefetches,
            stats.wrong_prefetches,
        )
        observed = (report.useful, report.late, report.wrong)
        ok = observed == expected
        status = "OK" if ok else "MISMATCH"
        print(f"cross-check vs SimStats: {status} "
              f"(traced useful/late/wrong={observed}, counters={expected})")
        if not ok:
            print("cross-check failed: traced totals diverged from "
                  "architectural counters", file=sys.stderr)

    if profiler is not None:
        print(profiler.format("Simulator phase profile"))

    if args.export:
        registry = registry_for_run(
            result,
            labels={"workload": result.trace_name, "config": args.prefetcher},
        )
        for suffix, export in (
            (".json", export_metrics_json),
            (".csv", export_metrics_csv),
            (".prom", export_metrics_prometheus),
        ):
            path = args.export + suffix
            export(registry, path)
            print(f"wrote {path}")

    return 0 if ok else 1


def _ledger_path(args: argparse.Namespace, command: str) -> Optional[str]:
    """Positional ledger PATH with the ``REPRO_EVENTS`` fallback."""
    import os

    path = args.path or os.environ.get("REPRO_EVENTS", "").strip()
    if not path:
        print(f"{command}: give a ledger PATH (or set REPRO_EVENTS)",
              file=sys.stderr)
        return None
    return path


def _cmd_events(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.obs.events import (
        LedgerRead,
        event_matches,
        follow_events,
        read_events,
        summarize_events,
    )

    path = _ledger_path(args, "events")
    if path is None:
        return 2
    types = None
    if args.type:
        types = [t.strip() for t in args.type.split(",") if t.strip()]
    since, until = args.since, args.until
    if args.last is not None:
        since = time.time() - args.last

    def matches(event) -> bool:
        return event_matches(
            event, types=types, run=args.run, workload=args.workload,
            config=args.config, since=since, until=until,
        )

    if args.follow:
        shown = 0
        try:
            for event in follow_events(path, duration=args.duration):
                if not matches(event):
                    continue
                print(event.to_json_line(), flush=True)
                shown += 1
                if args.limit is not None and shown >= args.limit:
                    break
        except KeyboardInterrupt:
            pass
        return 0

    read = read_events(path)
    selected = [event for event in read.events if matches(event)]
    if args.summary:
        filtered = LedgerRead(
            events=selected, torn=read.torn, invalid=read.invalid,
            files=read.files,
        )
        print(json.dumps(summarize_events(filtered), indent=2,
                         sort_keys=True))
        return 0
    if args.limit is not None:
        selected = selected[-args.limit:]
    for event in selected:
        print(event.to_json_line())
    if read.torn or read.invalid:
        print(f"({read.torn} torn tail(s), {read.invalid} invalid line(s) "
              f"skipped)", file=sys.stderr)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from repro.obs.events import StatusAggregator, read_events

    path = _ledger_path(args, "top")
    if path is None:
        return 2
    deadline = None if args.duration is None else time.time() + args.duration
    try:
        while True:
            status = StatusAggregator()
            for event in read_events(path).events:
                status.handle(event)
            print(status.status_line())
            rows = status.rows()
            if rows:
                print(format_table(["task", "status", "attempt", "age"],
                                   rows))
            if args.once or (deadline is not None
                             and time.time() >= deadline):
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_metrics_serve(args: argparse.Namespace) -> int:
    import time

    from repro.obs.exporthttp import MetricsHTTPServer, ledger_metrics_source

    path = _ledger_path(args, "metrics-serve")
    if path is None:
        return 2
    server = MetricsHTTPServer(
        ledger_metrics_source(path), host=args.host, port=args.port
    )
    server.start()
    print(f"serving {path} at {server.url}", file=sys.stderr)
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.analysis.store import ShardedRunStore

    # Defer maintenance so `evict` can report exactly what *it* removed
    # (auto-maintain would silently evict during construction).
    store = ShardedRunStore(
        args.dir,
        max_bytes=args.max_bytes,
        max_age=args.max_age,
        reap_on_open=False,
        auto_maintain=False,
    )
    if args.action == "stats":
        for line in store.describe():
            print(line)
        return 0
    if args.action == "reap":
        leases, tmps = store.reap()
        print(f"reaped {leases} stale lease(s), {tmps} orphaned tmp file(s)")
        return 0
    if args.action == "evict":
        if args.max_bytes is None and args.max_age is None:
            print(
                "store evict: set --max-bytes and/or --max-age "
                "(or REPRO_RUN_CACHE_MAX_BYTES / _MAX_AGE)",
                file=sys.stderr,
            )
            return 2
        evicted, freed = store.maintain(force=True)
        print(f"evicted {evicted} entr(ies), {freed} bytes freed; "
              f"{store.total_bytes()} bytes remain")
        return 0
    # verify
    outcome = store.verify(purge=args.purge)
    print(
        f"{outcome['ok']} ok, {outcome['corrupt']} corrupt, "
        f"{outcome['stale']} stale"
        + (f", {outcome['purged']} purged" if args.purge else "")
    )
    for path in outcome["bad_paths"]:
        print(f"  bad: {path}")
    return 0 if not outcome["bad_paths"] or args.purge else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.check.fsfault import lease_steal_check, run_store_stress

    failed = False
    if args.steal_check:
        steal = lease_steal_check(args.dir)
        print(f"lease steal: {'ok' if steal['ok'] else 'FAILED'} "
              f"(owner sigkilled={steal['owner_sigkilled']}, "
              f"state={steal['lease_state_seen']}, "
              f"stolen={steal['stolen']})")
        failed = failed or not steal["ok"]
    report = run_store_stress(
        args.dir,
        writers=args.writers,
        readers=args.readers,
        entries=args.entries,
        seconds=args.seconds,
        payload_bytes=args.payload_bytes,
        max_bytes=args.max_bytes,
        seed=args.seed,
        expect_degraded=args.expect_degraded,
    )
    summary = {k: v for k, v in report.items() if k != "reports"}
    print(json_module.dumps(summary, indent=2))
    failed = failed or not report["ok"]
    if failed:
        print("chaos: FAILED", file=sys.stderr)
        return 1
    print("chaos: ok", file=sys.stderr)
    return 0


def _add_telemetry_args(command_parser: argparse.ArgumentParser) -> None:
    """The ``--events`` / ``--metrics-port`` pair shared by run/sweep/tune."""
    command_parser.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="append telemetry events to a JSONL run ledger at PATH "
             "(default: REPRO_EVENTS env or off); inspect it with "
             "`repro events` / `repro top`",
    )
    command_parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve live Prometheus metrics on 127.0.0.1:PORT while the "
             "command runs (0 = any free port; the URL is printed on "
             "stderr)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Entangling instruction prefetcher reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("gen", help="generate a synthetic workload trace")
    gen.add_argument("output", help="output trace file")
    gen.add_argument("--category", choices=ALL_CATEGORIES, default="srv")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--instructions", type=int, default=500_000)
    gen.add_argument("--name", default=None)
    gen.add_argument(
        "--tenants",
        default=None,
        metavar="SVC[,SVC...]",
        help="microservice category only: comma-separated services "
             "context-switched onto the core (e.g. social,search); "
             "default: a seeded mix of 2-4",
    )
    gen.set_defaults(func=_cmd_gen)

    imp = sub.add_parser(
        "import",
        help="convert an external trace (ChampSim/text/binary, optionally "
             "gzipped) to the native format",
    )
    imp.add_argument("source", help="external trace file")
    imp.add_argument("output", help="native-format output trace file")
    imp.add_argument(
        "--format",
        choices=("auto", "binary", "text", "champsim"),
        default="auto",
        help="source format (default: sniff the bytes)",
    )
    imp.add_argument(
        "--layout",
        choices=("auto", "legacy", "v2"),
        default="auto",
        help="ChampSim record layout (default: detect from the bytes)",
    )
    imp.add_argument(
        "--limit",
        type=int,
        default=None,
        help="keep at most this many leading records (ChampSim traces "
             "often hold hundreds of millions)",
    )
    imp.add_argument("--name", default=None, help="workload name override")
    imp.add_argument(
        "--category", default=None, help="workload category override"
    )
    imp.add_argument(
        "--salvage",
        action="store_true",
        help="recover the longest valid record prefix from a damaged "
             "source instead of failing",
    )
    imp.set_defaults(func=_cmd_import)

    run = sub.add_parser("run", help="simulate a trace with one prefetcher")
    run.add_argument(
        "trace", nargs="?", default=None,
        help="trace file in any supported format (see `repro gen`/`import`)",
    )
    run.add_argument(
        "--trace-file",
        default=None,
        metavar="PATH",
        help="external trace file (equivalent to the positional; the "
             "format is sniffed from the bytes)",
    )
    run.add_argument(
        "--format",
        choices=("auto", "binary", "text", "champsim"),
        default="auto",
        help="trace format (default: sniff the bytes)",
    )
    run.add_argument(
        "--prefetcher",
        default="entangling_4k",
        help=f"one of: {', '.join(available_prefetchers())}, "
             f"l1i_64kb, l1i_96kb",
    )
    run.add_argument("--warmup", type=int, default=0)
    run.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="simulator engine (default: REPRO_BACKEND env or reference); "
             "all backends produce bit-identical statistics",
    )
    run.add_argument(
        "--check",
        action="store_true",
        help="attach the runtime invariant sanitizer (hardware-model "
             "contracts asserted every insertion/fill; equivalent to "
             "REPRO_SANITIZE=1)",
    )
    run.add_argument(
        "--salvage",
        action="store_true",
        help="recover the longest valid record prefix from a damaged "
             "trace file instead of failing ingestion",
    )
    run.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="run in a worker process, timing out after this many seconds "
             "(default: REPRO_TASK_TIMEOUT or unguarded in-process run)",
    )
    run.add_argument(
        "--retries",
        type=int,
        default=None,
        help="retry a crashed/hung run this many times "
             "(default: REPRO_TASK_RETRIES or 2; implies worker-process mode)",
    )
    _add_telemetry_args(run)
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser("sweep", help="compare prefetchers on one trace")
    sweep.add_argument("trace")
    sweep.add_argument(
        "--prefetchers",
        default="no,next_line,entangling_4k,ideal",
        help="comma-separated configuration names (first is the baseline)",
    )
    sweep.add_argument("--warmup", type=int, default=0)
    sweep.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: REPRO_JOBS env or 1 = serial)",
    )
    sweep.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="per-configuration timeout in seconds for parallel sweeps "
             "(default: REPRO_TASK_TIMEOUT or none)",
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=None,
        help="retries per failed configuration before quarantining it "
             "(default: REPRO_TASK_RETRIES or 2)",
    )
    sweep.add_argument(
        "--trace",
        dest="trace_out",
        default=None,
        metavar="PATH",
        help="write a merged Chrome trace-event JSON of the sweep's "
             "execution (attempts, retries, worker spans) to PATH — "
             "load it at https://ui.perfetto.dev",
    )
    _add_telemetry_args(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    bench = sub.add_parser(
        "bench-check",
        help="gate the newest BENCH_throughput.json record against the "
             "trajectory (regression sentinel)",
    )
    bench.add_argument(
        "trajectory",
        nargs="?",
        default="BENCH_throughput.json",
        help="trajectory file written by benchmarks/test_perf_throughput.py "
             "(default: ./BENCH_throughput.json)",
    )
    bench.add_argument(
        "--window",
        type=int,
        default=10,
        help="prior records the baseline median may draw from (default 10)",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="fractional instrs_per_sec drop that fails the check "
             "(default 0.30)",
    )
    bench.add_argument(
        "--allow-cycle-drift",
        action="store_true",
        help="acknowledge cycle/instruction drift findings for this run "
             "(use when a PR intentionally changed simulated behaviour)",
    )
    bench.add_argument(
        "--require-speedup",
        action="append",
        metavar="BACKEND:FACTOR",
        default=None,
        help="fail unless the newest record's geomean speedup_vs_reference "
             "for BACKEND reaches FACTOR (repeatable, e.g. "
             "--require-speedup staged:1.8)",
    )
    bench.set_defaults(func=_cmd_bench_check)

    tune = sub.add_parser(
        "tune",
        help="multi-objective search over the Entangling design space "
             "(emits the Pareto front; resumable via --cache-dir/--resume)",
    )
    tune.add_argument(
        "--strategy",
        choices=("genetic", "random", "grid"),
        default="genetic",
        help="search strategy (default: genetic, NSGA-II-style)",
    )
    tune.add_argument(
        "--generations",
        type=int,
        default=4,
        help="genetic generations (random: multiplies --population into "
             "the sample count; default 4)",
    )
    tune.add_argument(
        "--population",
        type=int,
        default=12,
        help="genomes per genetic generation (default 12)",
    )
    tune.add_argument(
        "--max-evals",
        type=int,
        default=None,
        help="cap on grid-search points (default: the full cross product)",
    )
    tune.add_argument(
        "--objectives",
        default="ipc,storage,energy",
        help="comma-separated objectives: ipc (maximized geomean "
             "normalized IPC), storage (bits), energy (normalized nJ)",
    )
    tune.add_argument(
        "--per-category",
        type=int,
        default=1,
        help="workloads per CVP category in the evaluation suite",
    )
    tune.add_argument(
        "--instructions",
        type=int,
        default=None,
        help="instructions per workload (default: the suite's own sizes)",
    )
    tune.add_argument(
        "--train-fraction",
        type=float,
        default=0.75,
        help="fraction of the suite used for search objectives; the rest "
             "scores the front out-of-sample (default 0.75)",
    )
    tune.add_argument(
        "--seed",
        type=int,
        default=0,
        help="search seed; equal seeds reproduce the front bit-for-bit",
    )
    tune.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for simulation fan-out "
             "(default: REPRO_JOBS env or 1 = serial)",
    )
    tune.add_argument(
        "--cache-dir",
        default=None,
        help="persist simulation results and the tune checkpoint here "
             "(makes the search resumable)",
    )
    tune.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted search: checkpointed genomes are "
             "served from the disk cache, never re-simulated",
    )
    tune.add_argument(
        "--out",
        default=None,
        metavar="PREFIX",
        help="write the Pareto front to PREFIX.json and PREFIX.csv",
    )
    _add_telemetry_args(tune)
    tune.set_defaults(func=_cmd_tune)

    traced = sub.add_parser(
        "trace",
        help="simulate with the prefetch-lifecycle tracer attached",
    )
    traced.add_argument("trace", help="trace file (see `repro gen`)")
    traced.add_argument(
        "--prefetcher",
        default="entangling_4k",
        help=f"one of: {', '.join(available_prefetchers())}, "
             f"l1i_64kb, l1i_96kb",
    )
    traced.add_argument("--warmup", type=int, default=0)
    traced.add_argument(
        "--capacity",
        type=int,
        default=1 << 20,
        help="tracer ring-buffer size in events (oldest overwritten beyond)",
    )
    traced.add_argument(
        "--sample",
        type=int,
        default=1,
        help="record ~1/N of the cache lines (1 = exact, full stream)",
    )
    traced.add_argument(
        "--top",
        type=int,
        default=10,
        help="worst (src, dst) pairs to list, ranked by late+wrong",
    )
    traced.add_argument(
        "--profile",
        action="store_true",
        help="also time the simulator's four phases and print the profile",
    )
    traced.add_argument(
        "--export",
        default=None,
        metavar="PREFIX",
        help="write the run's metrics registry to PREFIX.json/.csv/.prom",
    )
    traced.set_defaults(func=_cmd_trace)

    events = sub.add_parser(
        "events",
        help="query or tail a telemetry run ledger (see --events)",
    )
    events.add_argument(
        "path", nargs="?", default=None,
        help="ledger JSONL file (default: REPRO_EVENTS env)",
    )
    events.add_argument(
        "--type", default=None, metavar="T[,T...]",
        help="keep only these event types (comma-separated, e.g. "
             "task_failed,quarantined)",
    )
    events.add_argument(
        "--run", default=None, metavar="KEY",
        help="keep only events of this run key",
    )
    events.add_argument(
        "--workload", default=None,
        help="keep only events of this workload",
    )
    events.add_argument(
        "--config", default=None,
        help="keep only events of this configuration",
    )
    events.add_argument(
        "--since", type=float, default=None, metavar="EPOCH",
        help="keep only events at/after this Unix timestamp",
    )
    events.add_argument(
        "--until", type=float, default=None, metavar="EPOCH",
        help="keep only events at/before this Unix timestamp",
    )
    events.add_argument(
        "--last", type=float, default=None, metavar="SECONDS",
        help="keep only events from the trailing window (overrides --since)",
    )
    events.add_argument(
        "--limit", type=int, default=None,
        help="print at most this many events (the newest ones)",
    )
    events.add_argument(
        "--summary", action="store_true",
        help="print JSON counts per event type (+ torn/invalid line "
             "tallies) instead of the events",
    )
    events.add_argument(
        "--follow", action="store_true",
        help="tail the ledger, printing matching events as they arrive",
    )
    events.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="stop a --follow after this long (default: until Ctrl-C)",
    )
    events.set_defaults(func=_cmd_events)

    top = sub.add_parser(
        "top",
        help="live engine status table rendered from a run ledger",
    )
    top.add_argument(
        "path", nargs="?", default=None,
        help="ledger JSONL file (default: REPRO_EVENTS env)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="render one snapshot and exit",
    )
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh period (default 2s)",
    )
    top.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="stop after this long (default: until Ctrl-C)",
    )
    top.set_defaults(func=_cmd_top)

    metrics = sub.add_parser(
        "metrics-serve",
        help="serve a run ledger as Prometheus metrics over HTTP",
    )
    metrics.add_argument(
        "path", nargs="?", default=None,
        help="ledger JSONL file (default: REPRO_EVENTS env); re-read on "
             "every scrape, so it may still be growing",
    )
    metrics.add_argument(
        "--port", type=int, default=9095,
        help="listen port (0 = any free port; default 9095)",
    )
    metrics.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    metrics.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="stop serving after this long (default: until Ctrl-C)",
    )
    metrics.set_defaults(func=_cmd_metrics_serve)

    store = sub.add_parser(
        "store",
        help="inspect or maintain a shared run-store directory",
    )
    store.add_argument("dir", help="run cache directory (REPRO_RUN_CACHE_DIR)")
    store.add_argument(
        "action",
        choices=("stats", "evict", "verify", "reap"),
        help="stats: entry/shard/lease counters; evict: enforce the "
             "size/age budget now; verify: checksum-scan every entry; "
             "reap: remove stale leases and orphaned tmp files",
    )
    store.add_argument(
        "--max-bytes", type=int, default=None,
        help="size budget for evict (default: REPRO_RUN_CACHE_MAX_BYTES)",
    )
    store.add_argument(
        "--max-age", type=float, default=None, metavar="SECONDS",
        help="age bound for evict (default: REPRO_RUN_CACHE_MAX_AGE)",
    )
    store.add_argument(
        "--purge", action="store_true",
        help="with verify: delete entries that fail validation",
    )
    store.set_defaults(func=_cmd_store)

    chaos = sub.add_parser(
        "chaos",
        help="multi-process store stress test under injected filesystem "
             "faults (REPRO_FSFAULT)",
    )
    chaos.add_argument("dir", help="store directory to hammer (created)")
    chaos.add_argument("--writers", type=int, default=2)
    chaos.add_argument("--readers", type=int, default=2)
    chaos.add_argument(
        "--entries", type=int, default=50,
        help="distinct run keys each writer publishes (default 50)",
    )
    chaos.add_argument(
        "--seconds", type=float, default=20.0,
        help="stress deadline (default 20)",
    )
    chaos.add_argument("--payload-bytes", type=int, default=2048)
    chaos.add_argument(
        "--max-bytes", type=int, default=None,
        help="byte budget to enforce (and assert) during the stress",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--expect-degraded", action="store_true",
        help="fail unless at least one worker degraded to read-only "
             "(use with REPRO_FSFAULT=enospc:...)",
    )
    chaos.add_argument(
        "--steal-check", action="store_true",
        help="also SIGKILL a lease owner and assert the lease is stolen",
    )
    chaos.set_defaults(func=_cmd_chaos)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
