"""Cache-hierarchy energy model (CACTI-P-class, 22nm; paper Table IV)."""

from repro.energy.cacti import CacheEnergyParams, cacti_params_for
from repro.energy.model import EnergyModel, EnergyReport

__all__ = ["CacheEnergyParams", "cacti_params_for", "EnergyModel", "EnergyReport"]
