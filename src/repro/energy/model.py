"""Energy accounting over simulation statistics (paper Table IV)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.energy.cacti import CacheEnergyParams, all_levels
from repro.sim.stats import SimStats

LEVELS = ("L1I", "L1D", "L2C", "LLC")


@dataclass
class EnergyReport:
    """Per-level and total energy for one run, in nJ."""

    per_level: Dict[str, float]

    @property
    def total_nj(self) -> float:
        return sum(self.per_level.values())

    def normalized_to(self, baseline: "EnergyReport") -> float:
        if baseline.total_nj == 0:
            return 0.0
        return self.total_nj / baseline.total_nj

    def __getitem__(self, level: str) -> float:
        return self.per_level[level]


class EnergyModel:
    """Computes dynamic + leakage energy from cache access counts."""

    def __init__(self, params: Optional[Mapping[str, CacheEnergyParams]] = None) -> None:
        self.params: Dict[str, CacheEnergyParams] = dict(params or all_levels())
        missing = [level for level in LEVELS if level not in self.params]
        if missing:
            raise ValueError(f"missing energy parameters for {missing}")

    def report(self, stats: SimStats) -> EnergyReport:
        """Energy per level for one simulation run."""
        per_level: Dict[str, float] = {}
        for level in LEVELS:
            coeffs = self.params[level]
            counts = stats.cache_accesses[level]
            dynamic = counts.reads * coeffs.read_nj + counts.writes * coeffs.write_nj
            leakage = stats.cycles * coeffs.leakage_nj_per_cycle
            per_level[level] = dynamic + leakage
        return EnergyReport(per_level=per_level)
