"""Per-cache energy parameters in the style of CACTI-P (22nm).

The paper models cache energy with CACTI-P, accounting for tag accesses,
reads, and writes, at a 22nm process.  CACTI-P also reports static
(leakage) power, which dominates for the large L2/LLC arrays — that is why
the paper's Table IV shows L2/LLC energy *dropping* with better
prefetchers (fewer cycles, therefore less leakage) while L1I energy rises
(more dynamic accesses from prefetch lookups and fills).

The constants below are calibrated to CACTI-class magnitudes for the
Table III geometries; absolute joules differ from the paper (different
trace lengths) but the per-level trends reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class CacheEnergyParams:
    """Energy coefficients for one cache level.

    Attributes:
        read_nj: dynamic energy per read access (tag + data), nJ.
        write_nj: dynamic energy per write/fill, nJ.
        leakage_nj_per_cycle: static energy per simulated cycle, nJ.
    """

    read_nj: float
    write_nj: float
    leakage_nj_per_cycle: float


#: CACTI-class coefficients per level for the paper's geometries
#: (32KB L1I, 48KB L1D, 512KB L2, 2MB LLC at 22nm).
_PARAMS_22NM: Dict[str, CacheEnergyParams] = {
    "L1I": CacheEnergyParams(read_nj=0.010, write_nj=0.016, leakage_nj_per_cycle=0.002),
    "L1D": CacheEnergyParams(read_nj=0.014, write_nj=0.020, leakage_nj_per_cycle=0.003),
    "L2C": CacheEnergyParams(read_nj=0.055, write_nj=0.070, leakage_nj_per_cycle=0.260),
    "LLC": CacheEnergyParams(read_nj=0.110, write_nj=0.130, leakage_nj_per_cycle=0.420),
}


def cacti_params_for(level: str) -> CacheEnergyParams:
    """Energy parameters for a cache level (``L1I``/``L1D``/``L2C``/``LLC``).

    Raises:
        KeyError: unknown level name.
    """
    if level not in _PARAMS_22NM:
        raise KeyError(f"unknown cache level {level!r}; expected {sorted(_PARAMS_22NM)}")
    return _PARAMS_22NM[level]


def all_levels() -> Dict[str, CacheEnergyParams]:
    return dict(_PARAMS_22NM)
