"""Split Entangled table: the paper's deferred future-work study.

Section III-C3 of the paper: *"Storing basic block sizes and entangled
pairs in different structures is an alternative to a unified Entangled
table, likely beneficial for low-storage configurations.  We leave this
study for future work."*

This module implements that alternative.  Basic-block sizes move into a
small dedicated direct-mapped :class:`BlockSizeTable`; the (now smaller)
Entangled table holds only sources that actually have destinations.  Two
effects follow:

* sources without pairs no longer occupy 79-bit Entangled-table entries,
  so a given pair capacity costs less storage;
* a head whose pair entry was evicted can still prefetch its own block
  (its size survives in the size table).

``benchmarks/test_ext_split_table.py`` compares the split design against
the unified table at matched storage budgets.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.entangled_table import BB_SIZE_BITS, MAX_BB_SIZE
from repro.core.entangling import EntanglingConfig, EntanglingPrefetcher

SIZE_TABLE_TAG_BITS = 10


class BlockSizeTable:
    """Direct-mapped line -> basic-block-size table."""

    def __init__(self, entries: int = 2048) -> None:
        if entries < 1:
            raise ValueError("size table needs at least one entry")
        self.entries = entries
        # slot -> (line_addr, size); direct-mapped, newest wins.
        self._slots: Dict[int, List[int]] = {}

    def _index(self, line_addr: int) -> int:
        folded = line_addr
        bits = max(1, (self.entries - 1).bit_length())
        value = 0
        while folded:
            value ^= folded
            folded >>= bits
        return value % self.entries

    def update(self, line_addr: int, size: int, policy: str = "max") -> None:
        size = min(MAX_BB_SIZE, size)
        slot = self._slots.get(self._index(line_addr))
        if slot is not None and slot[0] == line_addr:
            slot[1] = max(slot[1], size) if policy == "max" else size
            return
        self._slots[self._index(line_addr)] = [line_addr, size]

    def get(self, line_addr: int) -> int:
        slot = self._slots.get(self._index(line_addr))
        if slot is not None and slot[0] == line_addr:
            return slot[1]
        return 0

    def storage_bits(self) -> int:
        return self.entries * (SIZE_TABLE_TAG_BITS + BB_SIZE_BITS)


class SplitEntanglingPrefetcher(EntanglingPrefetcher):
    """Entangling with block sizes factored out of the Entangled table.

    Args:
        config: base Entangling configuration; ``config.entries`` sizes
            the (pairs-only) Entangled table.
        size_entries: entries in the dedicated block-size table.
    """

    def __init__(
        self,
        config: Optional[EntanglingConfig] = None,
        size_entries: int = 2048,
    ) -> None:
        super().__init__(config)
        self.size_table = BlockSizeTable(size_entries)
        self.name = f"Split-{self.config.entries // 1024}K+{size_entries // 1024}Ksz"

    # -- block completion records sizes in the dedicated table ----------------

    def _complete_block(self) -> None:
        head, size, entry = self._head, self._size, self._head_entry
        self.estats.blocks_completed += 1
        if self.config.merge_blocks:
            candidate = self.history.find_merge_candidate(
                head, self._merge_distance, exclude=entry
            )
            if candidate is not None:
                merged_size = max(candidate.bb_size, head + size - candidate.line_addr)
                if merged_size <= MAX_BB_SIZE:
                    candidate.bb_size = merged_size
                    self.size_table.update(candidate.line_addr, merged_size, "max")
                    if entry is not None:
                        self.history.remove(entry)
                    self.estats.blocks_merged += 1
                    return
        self.size_table.update(head, size, self.config.bb_size_policy)

    # -- triggering reads sizes from the size table ------------------------------

    def _trigger(self, line_addr: int):
        from repro.prefetchers.base import PrefetchRequest

        self.estats.trigger_lookups += 1
        requests = []

        # The head's own block is prefetchable even without a pair entry.
        own_size = self.size_table.get(line_addr)
        if self.config.prefetch_src_bb and own_size:
            for offset in range(1, own_size + 1):
                requests.append(PrefetchRequest(line_addr + offset))

        entry = self.table.lookup(line_addr)
        if entry is None:
            return requests
        self.estats.trigger_hits += 1
        if self.config.prefetch_src_bb:
            self.estats.sum_src_bb_size += own_size

        if self.config.prefetch_dsts:
            self.estats.sum_destinations += len(entry.dsts)
            for dst_line, _confidence in entry.dsts:
                pair = (line_addr, dst_line)
                requests.append(PrefetchRequest(dst_line, src_meta=pair))
                if not self.config.prefetch_dst_bb:
                    continue
                dst_size = self.size_table.get(dst_line)
                self.estats.destinations_seen += 1
                self.estats.sum_dst_bb_size += dst_size
                for offset in range(1, dst_size + 1):
                    requests.append(PrefetchRequest(dst_line + offset, src_meta=pair))
        return requests

    # -- storage --------------------------------------------------------------------

    def storage_bits(self) -> int:
        return super().storage_bits() + self.size_table.storage_bits()


def make_split_entangling(
    pair_entries: int = 1024, size_entries: int = 2048
) -> SplitEntanglingPrefetcher:
    """A low-budget split configuration (pairs + sizes separated)."""
    config = EntanglingConfig(entries=pair_entries, merge_distance=15)
    return SplitEntanglingPrefetcher(config, size_entries=size_entries)
