"""The Entangling Instruction Prefetcher — the paper's core contribution.

Public entry points:

* :class:`~repro.core.entangling.EntanglingPrefetcher` — the cost-effective
  prefetcher of Section III, configurable at 2K/4K/8K Entangled-table
  entries and for virtual or physical address training.
* :class:`~repro.core.entangling.EntanglingConfig` — all knobs, including
  the ablation switches used by :mod:`repro.core.variants`.
* :mod:`repro.core.variants` — the Figure 11 ablations (BB, BBEnt,
  BBEntBB, Ent, BBEntBB-Merge) and the EPI performance-oriented variant.
"""

from repro.core.confidence import SaturatingCounter
from repro.core.compression import CompressionScheme, MODE_FIELD_BITS
from repro.core.history import HistoryBuffer, HistoryEntry
from repro.core.entangled_table import EntangledEntry, EntangledTable
from repro.core.entangling import EntanglingConfig, EntanglingPrefetcher
from repro.core.split_table import (
    BlockSizeTable,
    SplitEntanglingPrefetcher,
    make_split_entangling,
)
from repro.core.variants import (
    ablation_variants,
    make_ablation,
    make_entangling,
    make_epi,
)

__all__ = [
    "SaturatingCounter",
    "CompressionScheme",
    "MODE_FIELD_BITS",
    "HistoryBuffer",
    "HistoryEntry",
    "EntangledEntry",
    "EntangledTable",
    "EntanglingConfig",
    "EntanglingPrefetcher",
    "BlockSizeTable",
    "SplitEntanglingPrefetcher",
    "make_split_entangling",
    "ablation_variants",
    "make_ablation",
    "make_entangling",
    "make_epi",
]
