"""The Entangling Instruction Prefetcher (paper Sections II and III).

Operation summary:

* Every demand L1I access feeds the **basic-block tracker**: consecutive
  lines grow the current block; a non-consecutive line completes it (its
  size is stored in the Entangled table, possibly merged into a recent
  overlapping block) and starts a new block whose head is pushed into the
  **History buffer** with the access timestamp.
* A demand access to a head also **triggers prefetching**: the rest of the
  head's recorded basic block, plus — for every entangled destination —
  the destination's entire basic block.
* When a demand miss (or late prefetch) for a head **fills**, its measured
  latency selects a source: the most recent history head whose access is at
  least ``latency`` cycles older than the demand.  The destination is added
  to that source's compressed destination array (falling back to a second,
  older source when the first is full, then force-inserting by evicting the
  lowest-confidence destination).
* Timely / late / wrong prefetch feedback adjusts per-pair confidence.

All the Figure 11 ablation variants (BB / BBEnt / BBEntBB / Ent /
BBEntBB-Merge) are expressed through :class:`EntanglingConfig` switches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from repro.check.errors import ConfigError
from repro.core.compression import MODE_FIELD_BITS, CompressionScheme
from repro.core.entangled_table import BB_SIZE_BITS, EntangledTable, MAX_BB_SIZE
from repro.core.history import HistoryBuffer, HistoryEntry
from repro.prefetchers.base import FillInfo, InstructionPrefetcher, PrefetchRequest

TIMESTAMP_BITS = 20
TIMING_BITS = 12
HISTORY_PTR_BITS = 4
ACCESS_BIT = 1
WAY_BITS = 4

#: Merge distances the paper tunes per configuration (Section IV-B): the
#: low-budget table merges most aggressively.
DEFAULT_MERGE_DISTANCE = {2048: 15, 4096: 6, 8192: 5}


@dataclass(frozen=True)
class EntanglingConfig:
    """All knobs of the cost-effective Entangling prefetcher.

    The default is the paper's Entangling-4K.  The ablation switches map
    to Figure 11: disable ``prefetch_dsts`` for *BB*, ``prefetch_dst_bb``
    for *BBEnt*, ``merge_blocks`` for *BBEntBB*, and
    ``track_basic_blocks`` for *Ent* (which entangles raw lines).
    """

    entries: int = 4096
    ways: int = 16
    address_space: str = "virtual"
    history_size: int = 16
    merge_distance: Optional[int] = None

    #: Width of the per-destination confidence counters (paper: 2 bits).
    #: Wider counters hold pairs longer before invalidation but shrink
    #: every compression mode's address field.
    confidence_bits: int = 2

    #: Compression-mode whitelist (None = the paper's full Table I/II
    #: set).  Mode 1, the full-address fallback, is always available.
    allowed_modes: Optional[tuple] = None

    # Ablation switches (Figure 11)
    track_basic_blocks: bool = True
    prefetch_src_bb: bool = True
    prefetch_dsts: bool = True
    prefetch_dst_bb: bool = True
    merge_blocks: bool = True

    #: Block-size recording policy: "max" (paper) or "latest".
    bb_size_policy: str = "max"

    #: Published total storage in KB, overriding the first-principles
    #: arithmetic (used by EPI, whose paper-reported 127.9KB includes
    #: structures this model does not break out).
    storage_override_kb: Optional[float] = None

    #: Wrong-path protection (paper Section III-C1): newly computed pairs
    #: are staged in a separate structure and installed into the Entangled
    #: table only after this many further demand accesses (approximating
    #: "when the destination instruction commits").  0 installs
    #: immediately; since neither this simulator nor ChampSim models
    #: wrong-path execution, staging only delays installation slightly.
    commit_delay_accesses: int = 0

    # Structures whose Entangling metadata is accounted in storage_bits().
    l1i_lines: int = 512
    pq_entries: int = 32
    mshr_entries: int = 10

    def resolve_merge_distance(self) -> int:
        if self.merge_distance is not None:
            return self.merge_distance
        return DEFAULT_MERGE_DISTANCE.get(self.entries, 6)

    def compression_scheme(self) -> CompressionScheme:
        """The destination-compression scheme this variant trains with."""
        return CompressionScheme(
            self.address_space,
            confidence_bits=self.confidence_bits,
            allowed_modes=self.allowed_modes,
        )

    @property
    def label(self) -> str:
        return f"Entangling-{self.entries // 1024}K"

    #: The paper's per-entry destination field: 3-bit mode + 60-bit payload
    #: (virtual) or 2-bit mode + 44-bit payload (physical).
    EXPECTED_DST_FIELD_BITS = {"virtual": 63, "physical": 46}

    def validate(self) -> None:
        """Fail fast on structurally invalid Entangling variants.

        Raises :class:`~repro.check.errors.ConfigError` with an actionable
        message.  Beyond basic geometry (entries divisible into ways,
        power-of-two sets so the XOR fold indexes uniformly), this
        cross-checks the compression scheme's bit arithmetic against the
        paper's published budgets: the destination field must come out at
        exactly 63 bits (virtual) / 46 bits (physical), and every mode's
        slot layout must fit its payload.
        """
        if self.entries < 1 or self.ways < 1:
            raise ConfigError(
                f"Entangled table needs positive geometry, got "
                f"entries={self.entries}, ways={self.ways}"
            )
        if self.entries % self.ways:
            raise ConfigError(
                f"Entangled table entries ({self.entries}) must be a "
                f"multiple of the associativity ({self.ways})"
            )
        sets = self.entries // self.ways
        if sets & (sets - 1):
            raise ConfigError(
                f"Entangled table has {sets} sets "
                f"(entries={self.entries} / ways={self.ways}); the XOR-fold "
                f"index needs a power of two"
            )
        if self.address_space not in MODE_FIELD_BITS:
            raise ConfigError(
                f"address_space {self.address_space!r} is not one of "
                f"{tuple(MODE_FIELD_BITS)}"
            )
        if self.history_size < 1:
            raise ConfigError(
                f"history_size must be >= 1, got {self.history_size}"
            )
        if self.merge_distance is not None and self.merge_distance < 0:
            raise ConfigError(
                f"merge_distance must be >= 0, got {self.merge_distance}"
            )
        if self.bb_size_policy not in ("max", "latest"):
            raise ConfigError(
                f"bb_size_policy {self.bb_size_policy!r} is not 'max' or "
                f"'latest'"
            )
        if self.commit_delay_accesses < 0:
            raise ConfigError(
                f"commit_delay_accesses must be >= 0, got "
                f"{self.commit_delay_accesses}"
            )
        if not 1 <= self.confidence_bits <= 8:
            raise ConfigError(
                f"confidence_bits must be in [1, 8], got "
                f"{self.confidence_bits}"
            )
        if self.allowed_modes is not None and not self.allowed_modes:
            raise ConfigError(
                "allowed_modes must be None (all modes) or a non-empty "
                "whitelist of mode numbers"
            )
        # -- destination-mode bit-budget cross-check (paper Tables I/II) --
        try:
            scheme = self.compression_scheme()
        except ValueError as exc:
            raise ConfigError(str(exc)) from None
        expected = self.EXPECTED_DST_FIELD_BITS[self.address_space]
        if scheme.entry_dst_field_bits != expected:
            raise ConfigError(
                f"{self.address_space} destination field is "
                f"{scheme.entry_dst_field_bits} bits "
                f"({MODE_FIELD_BITS[self.address_space]} mode + "
                f"{scheme.payload_bits} payload); the paper's array is "
                f"{expected} bits"
            )
        for spec in scheme.modes.values():
            if spec.slot_bits * spec.capacity > scheme.payload_bits:
                raise ConfigError(
                    f"mode {spec.mode}: {spec.capacity} slots of "
                    f"{spec.slot_bits} bits overflow the "
                    f"{scheme.payload_bits}-bit payload"
                )
            if spec.addr_bits + scheme.confidence_bits > spec.slot_bits:
                raise ConfigError(
                    f"mode {spec.mode}: {spec.addr_bits} address + "
                    f"{scheme.confidence_bits} confidence bits do not fit "
                    f"the {spec.slot_bits}-bit slot"
                )


@dataclass
class EntanglingStats:
    """Prefetcher-internal counters feeding Figures 12-15."""

    trigger_lookups: int = 0
    trigger_hits: int = 0
    sum_src_bb_size: int = 0
    sum_destinations: int = 0
    sum_dst_bb_size: int = 0
    destinations_seen: int = 0
    pairs_created: int = 0
    second_source_used: int = 0
    forced_insertions: int = 0
    blocks_completed: int = 0
    blocks_merged: int = 0
    entangle_attempts: int = 0
    entangle_no_source: int = 0
    fills_not_head: int = 0

    @property
    def avg_destinations_per_hit(self) -> float:
        if self.trigger_hits == 0:
            return 0.0
        return self.sum_destinations / self.trigger_hits

    @property
    def avg_src_bb_size(self) -> float:
        if self.trigger_hits == 0:
            return 0.0
        return self.sum_src_bb_size / self.trigger_hits

    @property
    def avg_dst_bb_size(self) -> float:
        if self.destinations_seen == 0:
            return 0.0
        return self.sum_dst_bb_size / self.destinations_seen

    @property
    def avg_prefetches_per_hit(self) -> float:
        """The paper's formula: bbsize + destinations * (1 + bbsize_dst)."""
        if self.trigger_hits == 0:
            return 0.0
        return self.avg_src_bb_size + self.avg_destinations_per_hit * (
            1.0 + self.avg_dst_bb_size
        )


class EntanglingPrefetcher(InstructionPrefetcher):
    """Cost-effective Entangling I-prefetcher."""

    def __init__(self, config: Optional[EntanglingConfig] = None) -> None:
        self.config = config or EntanglingConfig()
        self.config.validate()
        scheme = self.config.compression_scheme()
        self.table = EntangledTable(
            entries=self.config.entries, ways=self.config.ways, scheme=scheme
        )
        self.history = HistoryBuffer(self.config.history_size)
        self.estats = EntanglingStats()
        self.name = self.config.label
        self._merge_distance = self.config.resolve_merge_distance()
        # The config is frozen; snapshot the switches the per-access hot
        # paths read so they cost one attribute load instead of two.
        self._track_bb = self.config.track_basic_blocks
        self._pf_src_bb = self.config.prefetch_src_bb
        self._pf_dsts = self.config.prefetch_dsts
        self._pf_dst_bb = self.config.prefetch_dst_bb
        self._do_merge = self.config.merge_blocks
        self._bb_policy = self.config.bb_size_policy
        self._commit_delay = self.config.commit_delay_accesses

        # Basic-block tracker registers.
        self._head: Optional[int] = None
        self._size = 0
        self._head_entry: Optional[HistoryEntry] = None
        # Head demand misses awaiting their fill: line -> demand cycle.
        self._pending: Dict[int, int] = {}
        self._last_line: Optional[int] = None  # for the Ent (no-BB) variant
        # Speculative pairs staged until "commit" (Section III-C1):
        # entries are [sources, dst_line, remaining_accesses].
        self._staged: List[List[Any]] = []

    # -- demand accesses -----------------------------------------------------

    def on_demand_access(
        self, line_addr: int, hit: bool, cycle: int
    ) -> Iterable[PrefetchRequest]:
        if self._staged:
            self._commit_staged()
        if not self._track_bb:
            return self._on_access_no_bb(line_addr, hit, cycle)

        head = self._head
        if head is not None:
            last_line = head + self._size
            if line_addr == last_line:
                return ()  # re-access within the current block's last line
            if line_addr == last_line + 1 and self._size < MAX_BB_SIZE:
                self._size += 1
                entry = self._head_entry
                if entry is not None:
                    entry.bb_size = self._size
                return ()
            self._complete_block()

        # A new basic block starts here.
        self._head = line_addr
        self._size = 0
        self._head_entry = self.history.push(line_addr, cycle)
        if not hit:
            self._pending[line_addr] = cycle
        return self._trigger(line_addr)

    def _on_access_no_bb(
        self, line_addr: int, hit: bool, cycle: int
    ) -> Iterable[PrefetchRequest]:
        """The *Ent* ablation: every line is its own (size-0) block."""
        if line_addr == self._last_line:
            return ()
        self._last_line = line_addr
        self.history.push(line_addr, cycle)
        if not hit:
            self._pending[line_addr] = cycle
        return self._trigger(line_addr)

    def _complete_block(self) -> None:
        """The current block ended: record its size, maybe merging it."""
        head, size, entry = self._head, self._size, self._head_entry
        self.estats.blocks_completed += 1
        if self._do_merge:
            candidate = self.history.find_merge_candidate(
                head, self._merge_distance, exclude=entry
            )
            if candidate is not None:
                merged_size = max(candidate.bb_size, head + size - candidate.line_addr)
                if merged_size <= MAX_BB_SIZE:
                    candidate.bb_size = merged_size
                    self.table.update_bb_size(
                        candidate.line_addr, merged_size, "max"
                    )
                    if entry is not None:
                        self.history.remove(entry)
                    self.estats.blocks_merged += 1
                    return
        self.table.update_bb_size(head, size, self._bb_policy)

    # -- triggering prefetches ---------------------------------------------------

    def _trigger(self, line_addr: int) -> List[PrefetchRequest]:
        estats = self.estats
        estats.trigger_lookups += 1
        entry = self.table.lookup(line_addr)
        if entry is None:
            return []
        estats.trigger_hits += 1
        requests: List[PrefetchRequest] = []
        append = requests.append

        if self._pf_src_bb:
            estats.sum_src_bb_size += entry.bb_size
            for offset in range(1, entry.bb_size + 1):
                append(PrefetchRequest(line_addr + offset))

        if self._pf_dsts:
            estats.sum_destinations += len(entry.dsts)
            pf_dst_bb = self._pf_dst_bb
            for dst_line, _confidence in entry.dsts:
                pair = (line_addr, dst_line)
                append(PrefetchRequest(dst_line, src_meta=pair))
                if not pf_dst_bb:
                    continue
                dst_size = self.table.bb_size_of(dst_line)
                estats.destinations_seen += 1
                estats.sum_dst_bb_size += dst_size
                # Destination-block lines carry the pair token too: a wrong
                # or late block prefetch demotes the pair that triggered it
                # (the paper threads the src-entangled identity through the
                # PQ/MSHR/L1I for every prefetch).
                for offset in range(1, dst_size + 1):
                    append(PrefetchRequest(dst_line + offset, src_meta=pair))
        return requests

    # -- fills: building entangled pairs ---------------------------------------------

    def on_fill(self, info: FillInfo) -> Iterable[PrefetchRequest]:
        if not info.is_demand:
            return ()
        demand_cycle = self._pending.pop(info.line_addr, None)
        if demand_cycle is None:
            self.estats.fills_not_head += 1
            return ()  # not a basic-block head: covered by its head's block
        if info.demand_cycle is not None:
            demand_cycle = info.demand_cycle
        # The deadline uses the latency the *demand* observed: for late
        # prefetches that runs from the demand access, not from the
        # earlier prefetch issue (which would overstate the miss cost and
        # select needlessly old sources).
        latency = info.demand_latency
        deadline = demand_cycle - latency
        self._entangle(info.line_addr, deadline)
        return ()

    def _entangle(self, dst_line: int, deadline: int) -> None:
        """Pair ``dst_line`` with a source head accessed before ``deadline``."""
        self.estats.entangle_attempts += 1
        sources = []
        for entry in self.history.sources_not_younger_than(deadline):
            if entry.line_addr == dst_line:
                continue
            sources.append(entry.line_addr)
            if len(sources) == 2:
                break
        if not sources:
            self.estats.entangle_no_source += 1
            return
        if self._commit_delay > 0:
            self._staged.append([sources, dst_line, self._commit_delay])
            return
        self._install_pair(sources, dst_line)

    def _commit_staged(self) -> None:
        """Install staged pairs whose destination has now committed."""
        due = []
        for entry in self._staged:
            entry[2] -= 1
            if entry[2] <= 0:
                due.append(entry)
        if due:
            self._staged = [e for e in self._staged if e[2] > 0]
            for sources, dst_line, _left in due:
                self._install_pair(sources, dst_line)

    def _install_pair(self, sources, dst_line: int) -> None:
        first = sources[0]
        result = self.table.add_dest(first, dst_line, evict_if_full=False)
        if result in ("added", "exists"):
            if result == "added":
                self.estats.pairs_created += 1
            return
        # First source's array is full: try a second, earlier source.
        if len(sources) > 1:
            result = self.table.add_dest(sources[1], dst_line, evict_if_full=False)
            if result in ("added", "exists"):
                self.estats.second_source_used += 1
                if result == "added":
                    self.estats.pairs_created += 1
                return
        # Both full: insert into the first, evicting an old destination.
        self.table.add_dest(first, dst_line, evict_if_full=True)
        self.estats.forced_insertions += 1
        self.estats.pairs_created += 1

    # -- feedback ---------------------------------------------------------------------

    def on_prefetch_useful(self, line_addr: int, src_meta: Any, cycle: int) -> None:
        if isinstance(src_meta, tuple):
            self.table.increase_confidence(src_meta[0], src_meta[1])

    def on_prefetch_late(self, line_addr: int, src_meta: Any, cycle: int) -> None:
        if isinstance(src_meta, tuple):
            self.table.decrease_confidence(src_meta[0], src_meta[1])

    def on_evict_unused(self, line_addr: int, src_meta: Any, cycle: int) -> None:
        if isinstance(src_meta, tuple):
            self.table.decrease_confidence(src_meta[0], src_meta[1])

    # -- storage (paper Section III-C3) --------------------------------------------------

    def storage_bits(self) -> int:
        if self.config.storage_override_kb is not None:
            return int(self.config.storage_override_kb * 8192)
        scheme = self.table.scheme
        history_bits = (
            self.config.history_size
            * (scheme.history_tag_bits + TIMESTAMP_BITS + BB_SIZE_BITS)
            + HISTORY_PTR_BITS
        )
        set_bits = max(1, (self.table.sets - 1).bit_length())
        src_info_bits = WAY_BITS + set_bits + ACCESS_BIT
        timing_bits = TIMING_BITS + HISTORY_PTR_BITS
        metadata_bits = (
            (self.config.pq_entries + self.config.mshr_entries)
            * (timing_bits + src_info_bits)
            + self.config.l1i_lines * src_info_bits
        )
        return self.table.storage_bits() + history_bits + metadata_bits
