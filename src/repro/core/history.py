"""The History buffer (paper Sections III-A2 and III-B2).

A 16-entry circular queue of recently fetched basic-block heads.  Each
entry records the head's line address, the timestamp of its first L1I
access, and the (growing) basic-block size.  It serves two purposes:

* **source search** — on a fill, walk backwards to find the most recent
  head whose access happened at least ``latency`` cycles before the miss;
* **merging** — a newly completed basic block that is consecutive with or
  overlaps a recent block is folded into that block's history entry.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, Optional


class HistoryEntry:
    """One basic-block head in the history."""

    __slots__ = ("line_addr", "timestamp", "bb_size")

    def __init__(self, line_addr: int, timestamp: int, bb_size: int = 0) -> None:
        self.line_addr = line_addr
        self.timestamp = timestamp
        self.bb_size = bb_size

    def covers_or_abuts(self, line_addr: int) -> bool:
        """True if ``line_addr`` overlaps this block or directly follows it."""
        return self.line_addr <= line_addr <= self.line_addr + self.bb_size + 1

    def __repr__(self) -> str:
        return (
            f"HistoryEntry(0x{self.line_addr:x}, t={self.timestamp}, "
            f"size={self.bb_size})"
        )


class HistoryBuffer:
    """Bounded circular queue of basic-block heads, newest at the right."""

    def __init__(self, size: int = 16) -> None:
        if size < 1:
            raise ValueError("history buffer needs at least one entry")
        self.size = size
        self._entries: Deque[HistoryEntry] = deque(maxlen=size)
        # Runtime invariant checker (see repro.check.sanitize), duck-typed
        # so this module never imports the check package; None = the exact
        # unchecked path.
        self.checker = None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[HistoryEntry]:
        return iter(self._entries)

    def push(self, line_addr: int, timestamp: int) -> HistoryEntry:
        entry = HistoryEntry(line_addr, timestamp)
        self._entries.append(entry)
        if self.checker is not None:
            self.checker.check_history(self)
        return entry

    def remove(self, entry: HistoryEntry) -> None:
        """Drop a specific entry (used when a block is merged away)."""
        try:
            self._entries.remove(entry)
        except ValueError:
            pass  # already aged out of the circular queue

    def newest(self) -> Optional[HistoryEntry]:
        return self._entries[-1] if self._entries else None

    # -- source search ---------------------------------------------------------

    def sources_not_younger_than(self, deadline: int) -> Iterator[HistoryEntry]:
        """Heads accessed at or before ``deadline``, newest first.

        ``deadline`` is ``demand_time - latency``: triggering the prefetch
        at any of these heads gives it time to complete before the demand.
        """
        for entry in reversed(self._entries):
            if entry.timestamp <= deadline:
                yield entry

    def find_source(self, deadline: int, exclude_line: Optional[int] = None):
        """Most recent head at or before ``deadline`` (paper's default pick)."""
        for entry in self.sources_not_younger_than(deadline):
            if exclude_line is not None and entry.line_addr == exclude_line:
                continue
            return entry
        return None

    # -- merging -----------------------------------------------------------------

    def find_merge_candidate(
        self,
        head_line: int,
        merge_distance: int,
        exclude: Optional[HistoryEntry] = None,
    ) -> Optional[HistoryEntry]:
        """A recent block that ``head_line`` overlaps or directly follows.

        Scans the ``merge_distance`` most recent entries (newest first),
        skipping ``exclude`` (the block being completed).
        """
        scanned = 0
        for entry in reversed(self._entries):
            if entry is exclude:
                continue
            if scanned >= merge_distance:
                break
            scanned += 1
            if entry.covers_or_abuts(head_line):
                return entry
        return None
