"""Entangling configurations: standard sizes, Figure 11 ablations, and EPI.

Figure 11 decomposes the prefetcher's performance into:

* **BB** — prefetch only the current basic block on an access to its head.
* **BBEnt** — BB plus each entangled destination *line*.
* **BBEntBB** — BB plus each destination's whole basic block.
* **Ent** — entangle raw cache lines, no basic-block tracking at all.
* **BBEntBB-Merge** — the full proposal (BBEntBB plus block merging).

EPI is the performance-oriented, hardly-implementable IPC-1 winner: a
~1000-entry history and a 34-way, >8K-entry Entangled table (127.9KB).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from repro.core.entangling import EntanglingConfig, EntanglingPrefetcher

ABLATION_NAMES = ("BB", "BBEnt", "BBEntBB", "Ent", "BBEntBB-Merge")


def make_entangling(
    entries: int = 4096, address_space: str = "virtual"
) -> EntanglingPrefetcher:
    """The full cost-effective prefetcher at 2K/4K/8K entries."""
    config = EntanglingConfig(entries=entries, address_space=address_space)
    return EntanglingPrefetcher(config)


def make_ablation(variant: str, entries: int = 4096) -> EntanglingPrefetcher:
    """One of the Figure 11 ablation variants."""
    base = EntanglingConfig(entries=entries)
    if variant == "BB":
        config = replace(base, prefetch_dsts=False, prefetch_dst_bb=False, merge_blocks=False)
    elif variant == "BBEnt":
        config = replace(base, prefetch_dst_bb=False, merge_blocks=False)
    elif variant == "BBEntBB":
        config = replace(base, merge_blocks=False)
    elif variant == "Ent":
        config = replace(
            base,
            track_basic_blocks=False,
            prefetch_src_bb=False,
            prefetch_dst_bb=False,
            merge_blocks=False,
        )
    elif variant == "BBEntBB-Merge":
        config = base
    else:
        raise ValueError(f"unknown ablation variant {variant!r}; "
                         f"choose from {ABLATION_NAMES}")
    prefetcher = EntanglingPrefetcher(config)
    prefetcher.name = f"{variant}-{entries // 1024}K"
    return prefetcher


def ablation_variants(entries: int = 4096) -> Dict[str, EntanglingPrefetcher]:
    """All Figure 11 variants at one table size."""
    return {name: make_ablation(name, entries) for name in ABLATION_NAMES}


def make_epi() -> EntanglingPrefetcher:
    """EPI: the performance-oriented Entangling prefetcher (IPC-1 winner).

    Models the paper's description: a very large (1024-entry) history
    buffer and a 34-way Entangled table with more than 8K entries.
    Reported storage: 127.9KB.
    """
    config = EntanglingConfig(
        entries=34 * 256,
        ways=34,
        history_size=1024,
        merge_distance=15,
        storage_override_kb=127.9,
    )
    prefetcher = EntanglingPrefetcher(config)
    prefetcher.name = "EPI"
    return prefetcher


def entangling_sweep(address_space: str = "virtual") -> List[EntanglingPrefetcher]:
    """The three cost-effective configurations the paper evaluates."""
    return [make_entangling(entries, address_space) for entries in (2048, 4096, 8192)]
