"""Destination compression (paper Tables I and II, Section III-B3).

An Entangled-table entry packs its destination array and per-destination
confidence into a fixed payload: 60 bits for virtual training (plus a 3-bit
mode) or 44 bits for physical training (plus a 2-bit mode).  The mode value
``k`` means the payload is divided into ``k`` equal slots; each slot holds
a 2-bit confidence and the low *significant* bits of the destination line —
the bits starting at the most significant bit where the destination differs
from the source (the high bits are inferred from the source).  With one
destination the full line address is stored.

Derived slot layouts:

=====  ====================  ====================
mode   virtual (60 bits)     physical (44 bits)
=====  ====================  ====================
1      58 addr + 2 conf      42 addr + 2 conf
2      28 addr + 2 conf      20 addr + 2 conf
3      18 addr + 2 conf      12 addr + 2 conf
4      13 addr + 2 conf       9 addr + 2 conf
5      10 addr + 2 conf      —
6       8 addr + 2 conf      —
=====  ====================  ====================

The paper's Figure 12 observations fall directly out of this table: most
destinations fit in 18 bits (mode 3) and 25%/10% fit in 8 bits (mode 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

CONFIDENCE_BITS = 2

#: Width of the mode field itself, per address space.
MODE_FIELD_BITS = {"virtual": 3, "physical": 2}

_PAYLOAD_BITS = {"virtual": 60, "physical": 44}
_FULL_ADDR_BITS = {"virtual": 58, "physical": 42}
_MAX_MODE = {"virtual": 6, "physical": 4}


@dataclass(frozen=True)
class ModeSpec:
    """One compression mode: ``capacity`` slots of ``addr_bits`` each."""

    mode: int
    capacity: int
    addr_bits: int
    slot_bits: int


class CompressionScheme:
    """Mode table plus fitting logic for one address space.

    ``confidence_bits`` widens or narrows the per-slot confidence field
    (the paper uses 2); ``allowed_modes`` restricts the mode table to a
    whitelist (mode 1 — the full-address fallback — is always kept).
    Both default to the paper's layout and exist for the design-space
    explorer (:mod:`repro.analysis.tune`).
    """

    def __init__(
        self,
        kind: str = "virtual",
        confidence_bits: int = CONFIDENCE_BITS,
        allowed_modes: Optional[Iterable[int]] = None,
    ) -> None:
        if kind not in _PAYLOAD_BITS:
            raise ValueError(f"unknown address space {kind!r}")
        if confidence_bits < 1:
            raise ValueError(
                f"confidence_bits must be >= 1, got {confidence_bits}"
            )
        self.kind = kind
        self.confidence_bits = confidence_bits
        self.payload_bits = _PAYLOAD_BITS[kind]
        self.full_addr_bits = _FULL_ADDR_BITS[kind]
        whitelist = None if allowed_modes is None else set(allowed_modes)
        if whitelist is not None:
            unknown = whitelist - set(range(1, _MAX_MODE[kind] + 1))
            if unknown:
                raise ValueError(
                    f"allowed_modes {sorted(unknown)} outside the {kind} "
                    f"mode range [1, {_MAX_MODE[kind]}]"
                )
        self.modes: Dict[int, ModeSpec] = {}
        for k in range(1, _MAX_MODE[kind] + 1):
            if whitelist is not None and k != 1 and k not in whitelist:
                continue
            # Every slot carries its confidence above the address bits;
            # mode 1's "full address" is payload - confidence wide (58
            # virtual / 42 physical at the paper's 2 confidence bits).
            slot = self.payload_bits // k
            addr = slot - confidence_bits
            if addr < 1:
                continue  # confidence field leaves no address bits
            self.modes[k] = ModeSpec(mode=k, capacity=k, addr_bits=addr, slot_bits=slot)
        self.max_mode = max(self.modes)

    @classmethod
    def virtual(cls) -> "CompressionScheme":
        return cls("virtual")

    @classmethod
    def physical(cls) -> "CompressionScheme":
        return cls("physical")

    # -- width computation ----------------------------------------------------

    def significant_bits(self, src_line: int, dst_line: int) -> int:
        """Bits needed to encode ``dst_line`` relative to ``src_line``.

        The encoding stores the low bits of the destination starting at the
        most significant differing bit; identical addresses still need one
        bit.
        """
        diff = src_line ^ dst_line
        return max(1, diff.bit_length())

    def widest_mode_for(self, addr_bits_needed: int) -> int:
        """Highest-capacity mode whose slots hold ``addr_bits_needed`` bits.

        Mode 1 always works because it stores the full address.
        """
        for k in sorted(self.modes, reverse=True):
            if self.modes[k].addr_bits >= addr_bits_needed:
                return k
        return 1

    def mode_for_widths(self, widths: Sequence[int]) -> Optional[int]:
        """Mode that can hold all destinations of the given widths.

        Returns None when no mode offers both enough slots and wide-enough
        slots (the array is over capacity for these destinations).
        """
        if not widths:
            return self.max_mode
        needed = max(widths)
        best = self.widest_mode_for(needed)
        if best < len(widths):
            return None
        return best

    def capacity_for_widths(self, widths: Sequence[int]) -> int:
        """How many destinations of these widths fit (the limiting mode)."""
        if not widths:
            return self.max_mode
        return self.widest_mode_for(max(widths))

    def fits(self, src_line: int, dst_lines: Sequence[int]) -> bool:
        widths = [self.significant_bits(src_line, d) for d in dst_lines]
        return self.mode_for_widths(widths) is not None

    def encoded_addr_bits(self, src_line: int, dst_lines: Sequence[int]) -> int:
        """Slot address width the array would be stored with (Fig 12 metric)."""
        widths = [self.significant_bits(src_line, d) for d in dst_lines]
        mode = self.mode_for_widths(widths)
        if mode is None:
            raise ValueError("destination array does not fit any mode")
        return self.modes[mode].addr_bits

    # -- storage --------------------------------------------------------------

    @property
    def entry_dst_field_bits(self) -> int:
        """Mode field + payload, per Entangled-table entry."""
        return MODE_FIELD_BITS[self.kind] + self.payload_bits

    @property
    def history_tag_bits(self) -> int:
        """History-buffer tag width (58 virtual / 42 physical)."""
        return self.full_addr_bits

    @property
    def max_confidence(self) -> int:
        """Saturation value of the per-destination confidence counter."""
        return (1 << self.confidence_bits) - 1

    def __repr__(self) -> str:
        return f"CompressionScheme({self.kind!r})"


def encode_destinations(
    scheme: CompressionScheme,
    src_line: int,
    dsts: Sequence[Sequence[int]],
) -> Tuple[int, int]:
    """Pack ``(dst_line, confidence)`` pairs into ``(mode, payload)``.

    This is the bit-exact hardware encoding of Tables I/II: mode ``k``
    divides the payload into ``k`` slots, each holding a 2-bit confidence
    above the low ``addr_bits`` bits of the destination (mode 1 stores the
    full line address).  Slot 0 occupies the least significant bits.

    Raises:
        ValueError: the array does not fit any mode, a confidence is
            outside [0, 3], or a mode-1 address exceeds the tag width.
    """
    widths = [scheme.significant_bits(src_line, d) for d, _conf in dsts]
    mode = scheme.mode_for_widths(widths)
    if mode is None:
        raise ValueError(
            f"{len(dsts)} destinations of width {max(widths)} bits do not "
            f"fit any {scheme.kind} mode"
        )
    spec = scheme.modes[mode]
    addr_mask = (1 << spec.addr_bits) - 1
    payload = 0
    for i, (dst_line, confidence) in enumerate(dsts):
        if not 0 <= confidence <= scheme.max_confidence:
            raise ValueError(
                f"confidence {confidence} exceeds "
                f"{scheme.confidence_bits} bits"
            )
        if mode == 1 and dst_line > addr_mask:
            raise ValueError(
                f"line 0x{dst_line:x} exceeds the {spec.addr_bits}-bit "
                f"{scheme.kind} address space"
            )
        slot = (confidence << spec.addr_bits) | (dst_line & addr_mask)
        payload |= slot << (i * spec.slot_bits)
    return mode, payload


def decode_destinations(
    scheme: CompressionScheme,
    src_line: int,
    mode: int,
    payload: int,
    count: int,
) -> List[Tuple[int, int]]:
    """Inverse of :func:`encode_destinations`.

    Reconstructs the full destination line addresses by splicing the
    source's high bits above each slot's stored low bits (mode 1 stores
    the complete address, so nothing is inferred).
    """
    spec = scheme.modes[mode]
    addr_mask = (1 << spec.addr_bits) - 1
    slot_mask = (1 << spec.slot_bits) - 1
    high = 0 if mode == 1 else (src_line >> spec.addr_bits) << spec.addr_bits
    pairs: List[Tuple[int, int]] = []
    for i in range(count):
        slot = (payload >> (i * spec.slot_bits)) & slot_mask
        addr_field = slot & addr_mask
        confidence = slot >> spec.addr_bits
        pairs.append((high | addr_field, confidence))
    return pairs


def mode_table(kind: str = "virtual") -> List[Tuple[int, int, int]]:
    """(mode, capacity, addr_bits) rows — Table I (virtual) / II (physical)."""
    scheme = CompressionScheme(kind)
    return [
        (spec.mode, spec.capacity, spec.addr_bits)
        for spec in scheme.modes.values()
    ]
