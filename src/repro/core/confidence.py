"""Saturating confidence counters (paper Section III-B1).

Each entangled destination carries a 2-bit saturating counter.  New pairs
start at the maximum (they are expected to be timely), timely prefetches
increment, late and wrong prefetches decrement, and a counter at zero marks
the pair invalid.
"""

from __future__ import annotations


class SaturatingCounter:
    """An n-bit saturating counter."""

    __slots__ = ("value", "max_value")

    def __init__(self, bits: int = 2, initial: int = None) -> None:
        if bits < 1:
            raise ValueError("counter needs at least one bit")
        self.max_value = (1 << bits) - 1
        if initial is None:
            initial = self.max_value
        if not 0 <= initial <= self.max_value:
            raise ValueError(f"initial value {initial} out of range")
        self.value = initial

    def increment(self) -> int:
        if self.value < self.max_value:
            self.value += 1
        return self.value

    def decrement(self) -> int:
        if self.value > 0:
            self.value -= 1
        return self.value

    @property
    def is_zero(self) -> bool:
        return self.value == 0

    @property
    def is_max(self) -> bool:
        return self.value == self.max_value

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"SaturatingCounter({self.value}/{self.max_value})"
