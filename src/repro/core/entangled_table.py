"""The Entangled table (paper Sections III-A and III-C3).

A 16-way set-associative, XOR-indexed table.  Each entry stores a source
basic-block head (10-bit tag in hardware; the simulator keeps the full line
address for correctness and accounts the hardware tag width separately),
the block's maximum observed size (6 bits, so at most 63 trailing lines),
and a compressed array of entangled destinations with 2-bit confidence
each (see :mod:`repro.core.compression`).

Replacement is the paper's *enhanced FIFO*: when the FIFO victim still
holds entangled pairs and some other way in the set holds none, the
pair-less entry is sacrificed instead, preserving learned entanglings.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.compression import CompressionScheme

MAX_CONFIDENCE = 3
MAX_BB_SIZE = 63
TAG_BITS = 10
BB_SIZE_BITS = 6
FIFO_BITS_PER_SET = 4


class EntangledEntry:
    """One source entry: head line, max block size, destination array."""

    __slots__ = ("src_line", "bb_size", "dsts", "fifo_order")

    def __init__(self, src_line: int, fifo_order: int) -> None:
        self.src_line = src_line
        self.bb_size = 0
        # Parallel (dst_line, confidence) pairs; confidence in [1, 3] —
        # a pair hitting 0 is removed (invalid).
        self.dsts: List[List[int]] = []
        self.fifo_order = fifo_order

    @property
    def has_pairs(self) -> bool:
        return bool(self.dsts)

    def dst_lines(self) -> List[int]:
        return [d[0] for d in self.dsts]

    def find_dst(self, dst_line: int) -> Optional[List[int]]:
        for pair in self.dsts:
            if pair[0] == dst_line:
                return pair
        return None

    def __repr__(self) -> str:
        return (
            f"EntangledEntry(0x{self.src_line:x}, size={self.bb_size}, "
            f"dsts={len(self.dsts)})"
        )


@dataclass
class TableStats:
    """Counters used by Figures 11-15 and the analysis harness."""

    lookups: int = 0
    hits: int = 0
    allocations: int = 0
    evictions: int = 0
    evictions_with_pairs: int = 0
    pairs_added: int = 0
    pairs_replaced: int = 0
    pairs_invalidated: int = 0
    #: Histogram of the slot address-width each destination array is encoded
    #: with, sampled at insertion time (Figure 12).
    format_bits: Counter = field(default_factory=Counter)


class EntangledTable:
    """Set-associative source -> destinations table with enhanced FIFO."""

    def __init__(
        self,
        entries: int = 4096,
        ways: int = 16,
        scheme: Optional[CompressionScheme] = None,
    ) -> None:
        if entries % ways:
            raise ValueError("entries must be a multiple of ways")
        self.entries = entries
        self.ways = ways
        self.sets = entries // ways
        self.scheme = scheme or CompressionScheme.virtual()
        #: Saturation value of the per-destination confidence counters,
        #: derived from the scheme's confidence field width (paper: 2
        #: bits -> 3); tunable via EntanglingConfig.confidence_bits.
        self.max_confidence = self.scheme.max_confidence
        self._sets: List[Dict[int, EntangledEntry]] = [dict() for _ in range(self.sets)]
        self._fifo_counter = 0
        self.stats = TableStats()
        self._set_bits = max(1, (self.sets - 1).bit_length())
        # Runtime invariant checker (see repro.check.sanitize), duck-typed
        # so this module never imports the check package; None = the exact
        # unchecked path.
        self.checker = None

    # -- indexing -----------------------------------------------------------

    def _index(self, line_addr: int) -> int:
        """XOR-folded set index (paper: 'indexed with a simple XOR')."""
        folded = line_addr
        shift = self._set_bits
        value = 0
        while folded:
            value ^= folded
            folded >>= shift
        return value % self.sets

    # -- lookup / allocation --------------------------------------------------

    def lookup(self, src_line: int) -> Optional[EntangledEntry]:
        self.stats.lookups += 1
        entry = self._sets[self._index(src_line)].get(src_line)
        if entry is not None:
            self.stats.hits += 1
        return entry

    def peek(self, src_line: int) -> Optional[EntangledEntry]:
        """Lookup without touching statistics (internal bookkeeping)."""
        return self._sets[self._index(src_line)].get(src_line)

    def find_or_allocate(self, src_line: int) -> EntangledEntry:
        table_set = self._sets[self._index(src_line)]
        entry = table_set.get(src_line)
        if entry is not None:
            return entry
        if len(table_set) >= self.ways:
            self._evict(table_set)
        self._fifo_counter += 1
        entry = EntangledEntry(src_line, self._fifo_counter)
        table_set[src_line] = entry
        self.stats.allocations += 1
        return entry

    def _evict(self, table_set: Dict[int, EntangledEntry]) -> None:
        """Enhanced FIFO: prefer sacrificing a pair-less entry."""
        victim = min(table_set.values(), key=lambda e: e.fifo_order)
        if victim.has_pairs:
            pairless = [e for e in table_set.values() if not e.has_pairs]
            if pairless:
                victim = min(pairless, key=lambda e: e.fifo_order)
        if victim.has_pairs:
            self.stats.evictions_with_pairs += 1
        self.stats.evictions += 1
        del table_set[victim.src_line]

    # -- basic-block sizes ------------------------------------------------------

    def update_bb_size(
        self, src_line: int, size: int, policy: str = "max"
    ) -> EntangledEntry:
        """Record a completed block size.

        ``policy="max"`` keeps the maximum observed (the paper's choice:
        more coverage, extra false positives); ``"latest"`` keeps the most
        recent size (tighter accuracy).
        """
        entry = self.find_or_allocate(src_line)
        size = min(MAX_BB_SIZE, size)
        if policy == "max":
            entry.bb_size = max(entry.bb_size, size)
        else:
            entry.bb_size = size
        if self.checker is not None:
            self.checker.check_entry(self, entry)
        return entry

    def bb_size_of(self, line_addr: int) -> int:
        entry = self.peek(line_addr)
        return entry.bb_size if entry is not None else 0

    # -- destination management ---------------------------------------------------

    def add_dest(
        self, src_line: int, dst_line: int, evict_if_full: bool = False
    ) -> str:
        """Entangle ``dst_line`` to ``src_line``.

        Returns ``"exists"`` (confidence refreshed), ``"added"``, or
        ``"full"`` when the compressed array cannot take the destination
        and ``evict_if_full`` is False.  With ``evict_if_full`` the
        lowest-confidence destination is replaced.
        """
        entry = self.find_or_allocate(src_line)
        existing = entry.find_dst(dst_line)
        if existing is not None:
            existing[1] = self.max_confidence
            if self.checker is not None:
                self.checker.check_entry(self, entry)
            return "exists"

        candidate = entry.dst_lines() + [dst_line]
        if self.scheme.fits(src_line, candidate):
            entry.dsts.append([dst_line, self.max_confidence])
            self.stats.pairs_added += 1
            self._record_format(entry)
            if self.checker is not None:
                self.checker.check_entry(self, entry)
            return "added"

        if not evict_if_full:
            return "full"

        if not entry.dsts:
            # A single destination always fits (full-address mode), so an
            # empty array can never be "full"; defensive guard.
            entry.dsts.append([dst_line, self.max_confidence])
            self.stats.pairs_added += 1
            self._record_format(entry)
            if self.checker is not None:
                self.checker.check_entry(self, entry)
            return "added"

        weakest = min(range(len(entry.dsts)), key=lambda i: entry.dsts[i][1])
        entry.dsts.pop(weakest)
        self.stats.pairs_replaced += 1
        # Re-check the fit after the replacement eviction: the mode is
        # recomputed from the surviving destinations (paper: the mode is
        # recomputed on destination eviction to avoid a restricting value).
        while entry.dsts and not self.scheme.fits(
            src_line, entry.dst_lines() + [dst_line]
        ):
            weakest = min(range(len(entry.dsts)), key=lambda i: entry.dsts[i][1])
            entry.dsts.pop(weakest)
            self.stats.pairs_replaced += 1
        entry.dsts.append([dst_line, self.max_confidence])
        self.stats.pairs_added += 1
        self._record_format(entry)
        if self.checker is not None:
            self.checker.check_entry(self, entry)
        return "added"

    def _record_format(self, entry: EntangledEntry) -> None:
        bits = self.scheme.encoded_addr_bits(entry.src_line, entry.dst_lines())
        self.stats.format_bits[bits] += 1

    def can_add_dest(self, src_line: int, dst_line: int) -> bool:
        """Would ``add_dest`` succeed without evicting a destination?"""
        entry = self.peek(src_line)
        if entry is None:
            return True
        if entry.find_dst(dst_line) is not None:
            return True
        return self.scheme.fits(src_line, entry.dst_lines() + [dst_line])

    def increase_confidence(self, src_line: int, dst_line: int) -> None:
        entry = self.peek(src_line)
        if entry is None:
            return
        pair = entry.find_dst(dst_line)
        if pair is not None and pair[1] < self.max_confidence:
            pair[1] += 1
            if self.checker is not None:
                self.checker.check_entry(self, entry)

    def decrease_confidence(self, src_line: int, dst_line: int) -> None:
        """Demote a pair; a pair reaching zero confidence is invalidated."""
        entry = self.peek(src_line)
        if entry is None:
            return
        pair = entry.find_dst(dst_line)
        if pair is None:
            return
        pair[1] -= 1
        if pair[1] <= 0:
            entry.dsts.remove(pair)
            self.stats.pairs_invalidated += 1
        if self.checker is not None:
            self.checker.check_entry(self, entry)

    # -- storage ------------------------------------------------------------------

    def storage_bits(self) -> int:
        entry_bits = TAG_BITS + BB_SIZE_BITS + self.scheme.entry_dst_field_bits
        return self.entries * entry_bits + self.sets * FIFO_BITS_PER_SET

    def resident_sources(self) -> List[int]:
        return [addr for table_set in self._sets for addr in table_set]

    def total_pairs(self) -> int:
        return sum(
            len(entry.dsts)
            for table_set in self._sets
            for entry in table_set.values()
        )
