"""The memory hierarchy behind the L1 caches: L2, LLC, and DRAM.

``request_instruction`` / ``request_data`` look up the L2 then the LLC,
fill both on the way back, and return the cycle at which the line reaches
the requesting L1.  The varying return latencies (L2 hit vs. LLC hit vs.
DRAM) are exactly what makes prefetch *timeliness* nontrivial and what the
Entangling prefetcher measures and adapts to.

When ``physical_addresses`` is enabled, instruction lines are translated
through a deterministic randomized page mapping before indexing the caches,
so consecutive virtual pages are no longer consecutive physically — the
paper's §IV-E scenario that slightly reduces prefetcher coverage.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.sim.cache import SetAssociativeCache
from repro.sim.config import SimConfig
from repro.sim.stats import SimStats


class PageMapper:
    """Deterministic random virtual-to-physical page mapping."""

    def __init__(self, seed: int, page_size: int, line_size: int) -> None:
        self._rng = random.Random(seed)
        self._lines_per_page = page_size // line_size
        self._mapping: Dict[int, int] = {}
        self._next_frame = 0x100000  # arbitrary physical frame pool start

    def translate_line(self, vline: int) -> int:
        """Map a virtual line address to its physical line address."""
        vpage, offset = divmod(vline, self._lines_per_page)
        frame = self._mapping.get(vpage)
        if frame is None:
            # Allocate frames in a shuffled order: deterministic but
            # non-contiguous, like a long-running system's page pool.
            frame = self._next_frame + self._rng.randrange(1 << 20)
            self._mapping[vpage] = frame
        return frame * self._lines_per_page + offset


class MemoryHierarchy:
    """L2 + LLC + DRAM with fixed per-level latencies."""

    def __init__(self, config: SimConfig, stats: SimStats) -> None:
        self.config = config
        self.stats = stats
        self.l2 = SetAssociativeCache(config.l2_sets, config.l2_ways)
        self.llc = SetAssociativeCache(config.llc_sets, config.llc_ways)

    def _access(self, line_addr: int, cycle: int) -> int:
        """Common L2 -> LLC -> DRAM walk; returns the completion cycle."""
        l2_counts = self.stats.cache_accesses["L2C"]
        llc_counts = self.stats.cache_accesses["LLC"]
        l2_counts.reads += 1
        if self.l2.lookup(line_addr) is not None:
            return cycle + self.config.l2_latency
        llc_counts.reads += 1
        if self.llc.lookup(line_addr) is not None:
            # Fill the L2 on the way back.
            self.l2.insert(line_addr)
            l2_counts.writes += 1
            return cycle + self.config.llc_latency
        # DRAM access; fill both levels.
        self.llc.insert(line_addr)
        llc_counts.writes += 1
        self.l2.insert(line_addr)
        l2_counts.writes += 1
        return cycle + self.config.dram_latency

    def request_instruction(self, line_addr: int, cycle: int) -> int:
        """Fetch an instruction line for the L1I; returns the fill cycle."""
        return self._access(line_addr, cycle)

    def request_data(self, line_addr: int, cycle: int) -> int:
        """Fetch a data line for the L1D; returns the fill cycle."""
        return self._access(line_addr, cycle)
