"""The memory hierarchy behind the L1 caches: L2, LLC, and DRAM.

``request_instruction`` / ``request_data`` look up the L2 then the LLC,
fill both on the way back, and return the cycle at which the line reaches
the requesting L1.  The varying return latencies (L2 hit vs. LLC hit vs.
DRAM) are exactly what makes prefetch *timeliness* nontrivial and what the
Entangling prefetcher measures and adapts to.

When ``physical_addresses`` is enabled, instruction lines are translated
through a deterministic randomized page mapping before indexing the caches,
so consecutive virtual pages are no longer consecutive physically — the
paper's §IV-E scenario that slightly reduces prefetcher coverage.
"""

from __future__ import annotations

import random
from typing import Dict, Set

from repro.sim.cache import SetAssociativeCache
from repro.sim.config import SimConfig
from repro.sim.stats import SimStats


class PageMapper:
    """Deterministic random virtual-to-physical page mapping.

    The mapping is *injective*: every virtual page gets its own physical
    frame (two pages aliasing onto one frame would fabricate L1I/L2 hits
    and corrupt the §IV-E physical-mode results).  Frames are drawn from
    a shuffled pool so consecutive virtual pages land on non-consecutive
    frames, and allocation is fully determined by the seed and the order
    in which pages are first touched.
    """

    #: Number of frames in the randomized pool.
    POOL_SIZE = 1 << 20

    def __init__(self, seed: int, page_size: int, line_size: int) -> None:
        self._rng = random.Random(seed)
        self._lines_per_page = page_size // line_size
        self._mapping: Dict[int, int] = {}
        self._frame_base = 0x100000  # arbitrary physical frame pool start
        self._used: Set[int] = set()
        # Sequential overflow frames past the pool (only reachable after
        # more than POOL_SIZE distinct pages).
        self._next_frame = self._frame_base + self.POOL_SIZE

    def translate_line(self, vline: int) -> int:
        """Map a virtual line address to its physical line address."""
        vpage, offset = divmod(vline, self._lines_per_page)
        frame = self._mapping.get(vpage)
        if frame is None:
            frame = self._allocate_frame()
            self._mapping[vpage] = frame
        return frame * self._lines_per_page + offset

    def _allocate_frame(self) -> int:
        """A never-before-used frame, seed-deterministically shuffled."""
        slot = self._rng.randrange(self.POOL_SIZE)
        for _ in range(self.POOL_SIZE):
            frame = self._frame_base + slot
            if frame not in self._used:
                self._used.add(frame)
                return frame
            # Collision with an earlier draw: linear-probe to the next
            # free pool slot (still deterministic, guaranteed unique).
            slot = (slot + 1) % self.POOL_SIZE
        frame = self._next_frame  # pool exhausted: sequential fallback
        self._next_frame += 1
        self._used.add(frame)
        return frame


class MemoryHierarchy:
    """L2 + LLC + DRAM with fixed per-level latencies."""

    def __init__(self, config: SimConfig, stats: SimStats) -> None:
        self.config = config
        self.stats = stats
        self.l2 = SetAssociativeCache(config.l2_sets, config.l2_ways)
        self.llc = SetAssociativeCache(config.llc_sets, config.llc_ways)

    def _access(self, line_addr: int, cycle: int) -> int:
        """Common L2 -> LLC -> DRAM walk; returns the completion cycle."""
        l2_counts = self.stats.cache_accesses["L2C"]
        llc_counts = self.stats.cache_accesses["LLC"]
        l2_counts.reads += 1
        if self.l2.lookup(line_addr) is not None:
            return cycle + self.config.l2_latency
        llc_counts.reads += 1
        if self.llc.lookup(line_addr) is not None:
            # Fill the L2 on the way back.
            self.l2.insert(line_addr)
            l2_counts.writes += 1
            return cycle + self.config.llc_latency
        # DRAM access; fill both levels.
        self.llc.insert(line_addr)
        llc_counts.writes += 1
        self.l2.insert(line_addr)
        l2_counts.writes += 1
        return cycle + self.config.dram_latency

    def request_instruction(self, line_addr: int, cycle: int) -> int:
        """Fetch an instruction line for the L1I; returns the fill cycle."""
        return self._access(line_addr, cycle)

    def request_data(self, line_addr: int, cycle: int) -> int:
        """Fetch a data line for the L1D; returns the fill cycle."""
        return self._access(line_addr, cycle)
