"""Trace-driven front-end simulator substrate (ChampSim-like).

The simulator models the instruction-supply path of a modern out-of-order
core the way the paper's modified ChampSim does: a decoupled front end with
a fetch-target queue (FTQ) implementing Fetch-Directed Prefetching, branch
prediction (gshare + BTB + RAS + indirect target cache), a blocking-free
L1I with MSHRs and a prefetch queue, an L2/LLC/DRAM hierarchy, and a
retire-width-limited back end with stage-dependent misprediction penalties.
"""

from repro.sim.config import SimConfig
from repro.sim.stats import SimStats
from repro.sim.cache import CacheLine, SetAssociativeCache
from repro.sim.mshr import MshrEntry, MshrFile
from repro.sim.prefetch_queue import PrefetchQueue
from repro.sim.memory import MemoryHierarchy
from repro.sim.branch_predictor import GsharePredictor
from repro.sim.btb import BranchTargetBuffer
from repro.sim.ras import ReturnAddressStack
from repro.sim.indirect import IndirectTargetCache
from repro.sim.fetchunits import FetchUnit, build_fetch_units
from repro.sim.simulator import SimResult, Simulator, simulate

__all__ = [
    "SimConfig",
    "SimStats",
    "CacheLine",
    "SetAssociativeCache",
    "MshrEntry",
    "MshrFile",
    "PrefetchQueue",
    "MemoryHierarchy",
    "GsharePredictor",
    "BranchTargetBuffer",
    "ReturnAddressStack",
    "IndirectTargetCache",
    "FetchUnit",
    "build_fetch_units",
    "SimResult",
    "Simulator",
    "simulate",
]
