"""Branch target buffer.

Caches decoded branch targets.  A taken branch whose target misses in the
BTB cannot be followed by the decoupled front end until the instruction is
decoded, costing a decode-stage redirect (smaller than a full execute-stage
flush), as in ChampSim's decoupled front-end model.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class BranchTargetBuffer:
    """Set-associative PC -> target cache with LRU replacement."""

    def __init__(self, sets: int = 1024, ways: int = 8) -> None:
        if sets < 1 or ways < 1:
            raise ValueError("BTB needs at least one set and one way")
        self.sets = sets
        self.ways = ways
        self._sets: List[Dict[int, int]] = [dict() for _ in range(sets)]
        self._tick = 0
        self._lru: List[Dict[int, int]] = [dict() for _ in range(sets)]

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self.sets

    def lookup(self, pc: int) -> Optional[int]:
        """Return the cached target for ``pc``, or None on a BTB miss."""
        idx = self._index(pc)
        target = self._sets[idx].get(pc)
        if target is not None:
            self._tick += 1
            self._lru[idx][pc] = self._tick
        return target

    def update(self, pc: int, target: int) -> None:
        """Install or refresh the target for ``pc``."""
        idx = self._index(pc)
        entries = self._sets[idx]
        self._tick += 1
        if pc not in entries and len(entries) >= self.ways:
            victim = min(self._lru[idx], key=self._lru[idx].get)
            del entries[victim]
            del self._lru[idx][victim]
        entries[pc] = target
        self._lru[idx][pc] = self._tick

    def storage_bits(self) -> int:
        # tag (~16b) + target (~48b) per entry, a conventional estimate.
        return self.sets * self.ways * (16 + 48)
