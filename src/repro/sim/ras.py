"""Return address stack."""

from __future__ import annotations

from typing import List, Optional, Tuple


class ReturnAddressStack:
    """Bounded RAS; overflow discards the oldest entry (circular wrap)."""

    def __init__(self, size: int = 64) -> None:
        if size < 1:
            raise ValueError("RAS needs at least one entry")
        self.size = size
        self._stack: List[int] = []

    def push(self, return_address: int) -> None:
        if len(self._stack) >= self.size:
            self._stack.pop(0)
        self._stack.append(return_address)

    def pop(self) -> Optional[int]:
        if not self._stack:
            return None
        return self._stack.pop()

    def peek(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    def top_entries(self, n: int) -> Tuple[int, ...]:
        """The ``n`` youngest entries (youngest last); used by RDIP/D-JOLT
        to build call-context signatures."""
        return tuple(self._stack[-n:])

    def __len__(self) -> int:
        return len(self._stack)

    def storage_bits(self) -> int:
        return self.size * 48
