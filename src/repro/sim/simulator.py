"""The cycle-based front-end simulator.

Each simulated cycle runs four phases, mirroring the paper's modified
ChampSim front end:

1. **Fills** — completed MSHR entries fill the L1I (possibly evicting a
   never-used prefetch: a *wrong* prefetch) and wake waiting FTQ blocks.
2. **Prefetch issue** — up to ``prefetch_issue_width`` requests leave the
   PQ for the memory hierarchy (dropped if already resident or in flight).
3. **Predict** — the decoupled predict stage walks the fetch units along
   the (correct) path, enqueuing FTQ blocks and performing the demand L1I
   access per line visit (Fetch-Directed Prefetching issues these as
   demand accesses, as in the paper's baseline).  Branch prediction gates
   progress: a mispredicted branch stalls the predict stage until the
   branch resolves, charging a decode- or execute-stage redirect penalty.
4. **Retire** — the back end consumes up to ``retire_width`` instructions
   per cycle from ready FTQ blocks; wrong-path execution is not modelled
   (neither does ChampSim).

The simulation is trace-driven and deterministic.  Idle stretches (e.g. a
DRAM miss with an empty FTQ) are skipped event-style, so wall-clock cost
scales with activity rather than with cycles.
"""

from __future__ import annotations

import dataclasses
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterable, List, Optional, Sequence

from repro.prefetchers.base import FillInfo, InstructionPrefetcher, PrefetchRequest
from repro.sim.branch_predictor import make_direction_predictor
from repro.sim.btb import BranchTargetBuffer
from repro.sim.cache import SetAssociativeCache
from repro.sim.config import SimConfig
from repro.sim.fetchunits import FetchUnit, build_fetch_units
from repro.sim.indirect import IndirectTargetCache
from repro.sim.memory import MemoryHierarchy, PageMapper
from repro.sim.mshr import MshrFile
from repro.sim.prefetch_queue import PrefetchQueue
from repro.sim.ras import ReturnAddressStack
from repro.sim.stats import SimStats
from repro.workloads.trace import BranchType, Trace


class _FtqBlock:
    """One FTQ entry: a line visit waiting to be fetched and retired."""

    __slots__ = ("line_addr", "remaining", "ready_cycle", "redirect_penalty", "data_lines")

    def __init__(self, line_addr: int, n_instrs: int, data_lines) -> None:
        self.line_addr = line_addr
        self.remaining = n_instrs
        self.ready_cycle: Optional[int] = None
        self.redirect_penalty = 0
        self.data_lines = data_lines


@dataclass
class SimResult:
    """Outcome of one simulation: counters plus run identity.

    ``prefetcher`` is the live prefetcher object when the simulation ran in
    this process; results that crossed a process boundary or came out of
    the run cache carry ``None`` (all figure-level consumers read only the
    stats).

    ``spans`` is an opaque slot for a worker's span batch (see
    :mod:`repro.obs.spans`) riding back to the parent alongside the
    stats — duck-typed so this module never imports the obs package;
    always ``None`` unless the run was traced, and never cached.
    """

    trace_name: str
    category: str
    prefetcher_name: str
    stats: SimStats
    prefetcher: Optional[InstructionPrefetcher] = None
    spans: Optional[Any] = None

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    def detached(self) -> "SimResult":
        """A copy without the live prefetcher (picklable / cacheable)."""
        return dataclasses.replace(self, prefetcher=None)


class Simulator:
    """Drives one trace through the configured front end and prefetcher."""

    #: Name this engine reports (see ``repro.sim.stages`` for the others).
    backend_name = "reference"

    def __init__(
        self,
        trace: Trace,
        prefetcher: InstructionPrefetcher,
        config: Optional[SimConfig] = None,
        units: Optional[Sequence[FetchUnit]] = None,
        tracer: Optional[Any] = None,
        profiler: Optional[Any] = None,
        checker: Optional[Any] = None,
    ) -> None:
        self.config = config or SimConfig()
        self.trace = trace
        self.prefetcher = prefetcher
        # Observability hooks (see repro.obs), duck-typed so this module
        # never imports the obs package: a ``tracer`` records lifecycle
        # events via ``emit``; a ``profiler`` times the four phases via
        # ``wrap``.  Both default to None = the exact uninstrumented path.
        # The ``checker`` (see repro.check.sanitize) follows the same
        # contract: it asserts hardware-model invariants via ``check_fill``
        # / ``final_check`` and wires itself into the prefetcher's
        # structures through ``attach``.
        self.tracer = tracer
        self.profiler = profiler
        self.checker = checker
        self.units: Sequence[FetchUnit] = (
            units if units is not None else build_fetch_units(trace, self.config.line_size)
        )
        self.stats = SimStats()
        self.l1i = SetAssociativeCache(
            self.config.l1i_sets,
            self.config.l1i_ways,
            replacement=self.config.l1i_replacement,
        )
        self.l1d = SetAssociativeCache(self.config.l1d_sets, self.config.l1d_ways)
        self.mshr = MshrFile(self.config.l1i_mshrs)
        self.pq = PrefetchQueue(self.config.prefetch_queue_size)
        self.memory = MemoryHierarchy(self.config, self.stats)
        self.gshare = make_direction_predictor(
            self.config.branch_predictor,
            self.config.gshare_bits,
            self.config.gshare_history,
        )
        self.btb = BranchTargetBuffer(self.config.btb_sets, self.config.btb_ways)
        self.ras = ReturnAddressStack(self.config.ras_size)
        self.itc = IndirectTargetCache(self.config.itc_bits, self.config.itc_history)
        self.mapper: Optional[PageMapper] = None
        if self.config.physical_addresses:
            self.mapper = PageMapper(
                self.config.physical_page_seed,
                self.config.page_size,
                self.config.line_size,
            )

        self.cycle = 0
        self._ftq: Deque[_FtqBlock] = deque()
        self._waiting: Dict[int, List[_FtqBlock]] = {}
        self._pred_idx = 0
        self._pred_stall_until = 0
        self._pred_blocked_on: Optional[_FtqBlock] = None
        self._retired = 0
        self._refresh_counter_refs()
        if checker is not None:
            checker.attach(self)

    def _refresh_counter_refs(self) -> None:
        """Re-bind per-cache counter objects (``stats.reset`` replaces them)."""
        self._l1i_counts = self.stats.cache_accesses["L1I"]
        self._l1d_counts = self.stats.cache_accesses["L1D"]

    # -- address translation -------------------------------------------------

    def _iline(self, vline: int) -> int:
        """Instruction line address as seen by caches and the prefetcher."""
        if self.mapper is None:
            return vline
        return self.mapper.translate_line(vline)

    def _dline(self, vline: int) -> int:
        if self.mapper is None:
            return vline
        return self.mapper.translate_line(vline)

    # -- main loop -----------------------------------------------------------

    def run(self, warmup_instructions: int = 0) -> SimStats:
        """Simulate the whole trace; returns the (post-warmup) statistics."""
        started = time.perf_counter()
        warm_pending = warmup_instructions > 0
        total_units = len(self.units)
        # Bound methods and loop-invariant objects hoisted out of the
        # per-cycle loop (a measurable win for a pure-Python hot loop).
        do_fills = self._do_fills
        do_predict = self._do_predict
        do_prefetch_issue = self._do_prefetch_issue
        do_retire = self._do_retire
        if self.profiler is not None:
            do_fills = self.profiler.wrap("fills", do_fills)
            do_predict = self.profiler.wrap("predict", do_predict)
            do_prefetch_issue = self.profiler.wrap("issue", do_prefetch_issue)
            do_retire = self.profiler.wrap("retire", do_retire)
        next_event_cycle = self._next_event_cycle
        ftq = self._ftq
        stats = self.stats
        while self._pred_idx < total_units or ftq:
            progress = do_fills()
            progress = do_predict() or progress
            progress = do_prefetch_issue() or progress
            retired_now = do_retire()

            if warm_pending and self._retired >= warmup_instructions:
                warm_pending = False
                self._reset_stats_for_measurement()
                stats = self.stats

            next_cycle = self.cycle + 1 if (progress or retired_now) else next_event_cycle()
            if retired_now == 0:
                span = next_cycle - self.cycle
                if ftq:
                    stats.fetch_stall_cycles += span
                else:
                    stats.ftq_empty_cycles += span
            self.cycle = next_cycle
        stats.cycles = self.cycle - self._measure_start_cycle
        stats.instructions = self._retired - self._measure_start_retired
        stats.wall_seconds = time.perf_counter() - started
        if self.profiler is not None:
            stats.phase_seconds = self.profiler.snapshot()
        if self.checker is not None:
            self.checker.final_check(self)
        return stats

    _measure_start_cycle = 0
    _measure_start_retired = 0

    def _reset_stats_for_measurement(self) -> None:
        """End of warm-up: zero the counters, keep all structures warm."""
        self.stats.reset()
        self._refresh_counter_refs()
        self._measure_start_cycle = self.cycle
        self._measure_start_retired = self._retired
        if self.tracer is not None:
            # Traced totals mirror the measured counters, so the warm-up
            # events are discarded with them.
            self.tracer.clear()

    def _next_event_cycle(self) -> int:
        """Earliest cycle at which anything can happen, without allocating.

        Called once per skipped idle span; the old implementation built a
        throwaway candidate list each call and re-derived the MSHR's next
        fill with a full scan.  The MSHR now keeps its fill heap sorted
        between fills (``next_ready_cycle`` is an O(1) peek), and the
        min is folded manually so a stalled span costs no allocation.
        """
        cycle = self.cycle
        best = self.mshr.next_ready_cycle()
        stall = self._pred_stall_until
        if (
            stall > cycle
            and self._pred_blocked_on is None
            and (best is None or stall < best)
        ):
            best = stall
        if self._ftq:
            head_ready = self._ftq[0].ready_cycle
            if (
                head_ready is not None
                and head_ready > cycle
                and (best is None or head_ready < best)
            ):
                best = head_ready
        if best is None or best <= cycle:
            return cycle + 1
        return best

    # -- phase 1: fills --------------------------------------------------------

    def _do_fills(self) -> bool:
        ready = self.mshr.pop_ready(self.cycle)
        for entry in ready:
            self._fill_line(entry)
        return bool(ready)

    def _fill_line(self, entry) -> None:
        tracer = self.tracer
        victim = self.l1i.insert(entry.line_addr)
        self._l1i_counts.writes += 1
        if victim is not None and victim.prefetched:
            self.stats.wrong_prefetches += 1
            if tracer is not None:
                tracer.emit("pf_wrong", self.cycle, victim.line_addr, victim.src_meta)
            self.prefetcher.on_evict_unused(victim.line_addr, victim.src_meta, self.cycle)
        line = self.l1i.lookup(entry.line_addr, update_lru=False)
        line.prefetched = not entry.is_demand
        line.src_meta = entry.src_meta
        info = FillInfo(
            line_addr=entry.line_addr,
            fill_cycle=self.cycle,
            issue_cycle=entry.issue_cycle,
            is_demand=entry.is_demand,
            was_prefetch=entry.was_prefetch,
            demand_cycle=entry.demand_cycle,
            src_meta=entry.src_meta,
        )
        if tracer is not None:
            tracer.emit(
                "fill",
                self.cycle,
                entry.line_addr,
                entry.src_meta,
                (entry.is_demand, entry.was_prefetch, info.demand_latency),
            )
        self._collect(self.prefetcher.on_fill(info))
        if self.checker is not None:
            self.checker.check_fill(self, entry.line_addr)
        waiters = self._waiting.pop(entry.line_addr, None)
        if waiters:
            ready_at = self.cycle + self.config.l1i_latency
            for block in waiters:
                block.ready_cycle = ready_at

    # -- phase 2: prefetch issue ------------------------------------------------

    def _do_prefetch_issue(self) -> bool:
        pq = self.pq
        if pq.peek() is None:
            return False
        issued = False
        stats = self.stats
        l1i = self.l1i
        mshr = self.mshr
        l1i_counts = self._l1i_counts
        tracer = self.tracer
        # Prefetches may not occupy the last MSHR slots: demand misses
        # stall the predict stage when the file is full, so a prefetch
        # burst must not starve them.
        mshr_limit = mshr.capacity - self.config.mshr_demand_reserve
        for _ in range(self.config.prefetch_issue_width):
            item = pq.peek()
            if item is None:
                break
            line_addr, src_meta = item
            l1i_counts.reads += 1
            if l1i.contains(line_addr):
                pq.pop()
                stats.prefetches_stale_in_cache += 1
                if tracer is not None:
                    tracer.emit("pf_stale", self.cycle, line_addr, src_meta, "in_cache")
                continue
            if mshr.lookup(line_addr) is not None:
                pq.pop()
                stats.prefetches_stale_in_flight += 1
                if tracer is not None:
                    tracer.emit("pf_stale", self.cycle, line_addr, src_meta, "in_flight")
                continue
            if len(mshr) >= mshr_limit:
                break
            pq.pop()
            ready = self.memory.request_instruction(line_addr, self.cycle)
            mshr.allocate(line_addr, self.cycle, ready, False, src_meta)
            stats.prefetches_sent += 1
            if tracer is not None:
                tracer.emit("pf_issued", self.cycle, line_addr, src_meta)
            issued = True
        return issued

    # -- phase 3: predict stage ---------------------------------------------------

    def _do_predict(self) -> bool:
        if self._pred_blocked_on is not None or self.cycle < self._pred_stall_until:
            return False
        advanced = False
        units = self.units
        total_units = len(units)
        ftq = self._ftq
        ftq_size = self.config.ftq_size
        enqueue_unit = self._enqueue_unit
        pred_idx = self._pred_idx
        for _ in range(self.config.fetch_lines_per_cycle):
            if pred_idx >= total_units:
                break
            if len(ftq) >= ftq_size:
                break
            unit = units[pred_idx]
            block = enqueue_unit(unit)
            if block is None:
                # MSHR full: retry the same unit next cycle.
                self.stats.mshr_full_events += 1
                break
            advanced = True
            pred_idx += 1
            self._pred_idx = pred_idx
            if unit.branch is not None and self._handle_branch(unit, block):
                break  # mispredicted: stall until resolution
        return advanced

    def _enqueue_unit(self, unit: FetchUnit) -> Optional[_FtqBlock]:
        line_addr = self._iline(unit.line_addr)
        block = _FtqBlock(line_addr, unit.n_instrs, unit.data_lines)
        ready = self._demand_access(line_addr, block)
        if ready == "retry":
            return None
        self._ftq.append(block)
        return block

    def _demand_access(self, line_addr: int, block: _FtqBlock):
        """Perform the demand L1I access for one FTQ block.

        The MSHR-full case is decided by a pure *probe* before any state
        changes: the access retries next cycle and must not touch LRU
        order or counters until the cycle it actually proceeds (one
        architectural access = one LRU touch, one count).
        """
        stats = self.stats
        tracer = self.tracer
        entry = self.l1i.lookup(line_addr, update_lru=False)
        mshr_entry = None
        if entry is None and not self.prefetcher.is_ideal:
            mshr_entry = self.mshr.lookup(line_addr)
            if mshr_entry is None and self.mshr.full:
                return "retry"
        self._l1i_counts.reads += 1
        stats.l1i_demand_accesses += 1
        if entry is not None:
            self.l1i.touch(entry)
            stats.l1i_demand_hits += 1
            if tracer is not None:
                tracer.emit("demand_access", self.cycle, line_addr, None, True)
            if entry.prefetched:
                entry.prefetched = False
                stats.useful_prefetches += 1
                if tracer is not None:
                    tracer.emit("pf_useful", self.cycle, line_addr, entry.src_meta)
                self.prefetcher.on_prefetch_useful(line_addr, entry.src_meta, self.cycle)
            block.ready_cycle = self.cycle + self.config.l1i_latency
            self._collect(self.prefetcher.on_demand_access(line_addr, True, self.cycle))
            return block.ready_cycle

        if self.prefetcher.is_ideal:
            # Ideal L1I: the access hits, but the line is still fetched from
            # the next level to model the pollution it causes there.
            stats.l1i_demand_hits += 1
            self.memory.request_instruction(line_addr, self.cycle)
            self.l1i.insert(line_addr)
            self._l1i_counts.writes += 1
            block.ready_cycle = self.cycle + self.config.l1i_latency
            return block.ready_cycle

        if tracer is not None:
            tracer.emit("demand_access", self.cycle, line_addr, None, False)
        if mshr_entry is not None:
            stats.l1i_demand_misses += 1
            if not mshr_entry.is_demand:
                mshr_entry.mark_demanded(self.cycle)
                stats.late_prefetches += 1
                if tracer is not None:
                    tracer.emit("pf_late", self.cycle, line_addr, mshr_entry.src_meta)
                self.prefetcher.on_prefetch_late(line_addr, mshr_entry.src_meta, self.cycle)
            else:
                stats.l1i_mshr_merges += 1
            self._wait_on(line_addr, block)
            self._collect(self.prefetcher.on_demand_access(line_addr, False, self.cycle))
            return None

        stats.l1i_demand_misses += 1
        ready = self.memory.request_instruction(line_addr, self.cycle + self.config.l1i_latency)
        self.mshr.allocate(line_addr, self.cycle, ready, True, None)
        self._wait_on(line_addr, block)
        self._collect(self.prefetcher.on_demand_access(line_addr, False, self.cycle))
        return None

    def _wait_on(self, line_addr: int, block: _FtqBlock) -> None:
        self._waiting.setdefault(line_addr, []).append(block)

    def _handle_branch(self, unit: FetchUnit, block: _FtqBlock) -> bool:
        """Predict the unit's terminating branch; returns True on stall."""
        pc, branch_type, taken, target = unit.branch
        self.stats.branches += 1
        penalty = 0

        if branch_type == BranchType.CONDITIONAL:
            predicted_taken = self.gshare.predict(pc)
            self.gshare.update(pc, taken)
            if predicted_taken != taken:
                penalty = self.config.exec_redirect_penalty
                self.stats.branch_mispredictions += 1
            elif taken:
                if self.btb.lookup(pc) is None:
                    penalty = self.config.decode_redirect_penalty
                    self.stats.btb_miss_redirects += 1
                self.btb.update(pc, target)
        elif branch_type in (BranchType.DIRECT_JUMP, BranchType.DIRECT_CALL):
            if self.btb.lookup(pc) is None:
                penalty = self.config.decode_redirect_penalty
                self.stats.btb_miss_redirects += 1
            self.btb.update(pc, target)
        elif branch_type in (BranchType.INDIRECT_JUMP, BranchType.INDIRECT_CALL):
            predicted = self.itc.predict(pc)
            if predicted != target:
                penalty = self.config.exec_redirect_penalty
                self.stats.branch_mispredictions += 1
            self.itc.update(pc, target)
        elif branch_type == BranchType.RETURN:
            predicted = self.ras.pop()
            if predicted != target:
                penalty = self.config.exec_redirect_penalty
                self.stats.branch_mispredictions += 1

        if branch_type.is_call:
            self.ras.push(pc + 4)

        self._collect(
            self.prefetcher.on_branch(pc, branch_type, taken, target, self.cycle)
        )

        if penalty:
            block.redirect_penalty = penalty
            self._pred_blocked_on = block
            return True
        return False

    # -- phase 4: retire ------------------------------------------------------------

    def _do_retire(self) -> int:
        budget = self.config.retire_width
        retired = 0
        ftq = self._ftq
        cycle = self.cycle
        while budget > 0 and ftq:
            block = ftq[0]
            ready = block.ready_cycle
            if ready is None or ready > cycle:
                break
            take = block.remaining
            if take > budget:
                take = budget
            block.remaining -= take
            budget -= take
            retired += take
            if block.remaining == 0:
                ftq.popleft()
                self._finish_block(block)
        self._retired += retired
        return retired

    def _finish_block(self, block: _FtqBlock) -> None:
        if block.redirect_penalty:
            self._pred_stall_until = self.cycle + block.redirect_penalty
            if self._pred_blocked_on is block:
                self._pred_blocked_on = None
        for data_line, is_store in block.data_lines:
            self._l1d_access(self._dline(data_line), is_store)

    def _l1d_access(self, line_addr: int, is_store: bool) -> None:
        counts = self._l1d_counts
        if is_store:
            counts.writes += 1
        else:
            counts.reads += 1
        if self.l1d.lookup(line_addr) is None:
            self.memory.request_data(line_addr, self.cycle)
            self.l1d.insert(line_addr)
            counts.writes += 1

    # -- helpers ---------------------------------------------------------------------

    def _collect(self, requests: Iterable[PrefetchRequest]) -> None:
        """Accept prefetcher requests into the PQ.

        Requests for lines already resident or already in flight are
        filtered here so they do not occupy PQ slots (ChampSim's
        ``prefetch_line`` filters these as well).
        """
        stats = self.stats
        l1i = self.l1i
        mshr = self.mshr
        pq = self.pq
        tracer = self.tracer
        cycle = self.cycle
        for request in requests:
            stats.prefetches_requested += 1
            line_addr = request.line_addr
            if tracer is not None:
                tracer.emit("pf_requested", cycle, line_addr, request.src_meta)
            if l1i.contains(line_addr):
                stats.prefetches_dropped_in_cache += 1
                if tracer is not None:
                    tracer.emit(
                        "pf_dropped", cycle, line_addr, request.src_meta, "in_cache"
                    )
                continue
            if mshr.lookup(line_addr) is not None:
                stats.prefetches_dropped_in_flight += 1
                if tracer is not None:
                    tracer.emit(
                        "pf_dropped", cycle, line_addr, request.src_meta, "in_flight"
                    )
                continue
            if pq.push(line_addr, request.src_meta):
                stats.prefetches_enqueued += 1
                if tracer is not None:
                    tracer.emit("pf_enqueued", cycle, line_addr, request.src_meta)
            else:
                stats.prefetches_dropped_pq_full += 1
                if tracer is not None:
                    tracer.emit(
                        "pf_dropped", cycle, line_addr, request.src_meta, "pq_full"
                    )


def simulate(
    trace: Trace,
    prefetcher: InstructionPrefetcher,
    config: Optional[SimConfig] = None,
    units: Optional[Sequence[FetchUnit]] = None,
    warmup_instructions: int = 0,
    tracer: Optional[Any] = None,
    profiler: Optional[Any] = None,
    checker: Optional[Any] = None,
) -> SimResult:
    """Convenience wrapper: run one trace through one prefetcher.

    With no explicit ``checker``, ``REPRO_SANITIZE`` is consulted so a
    sanitized environment (CI's sanitizer-smoke job, ``repro run
    --check`` worker processes) covers every entry point.  The env probe
    never imports the sanitizer module when the variable is unset.

    The simulator core is selected by ``config.backend`` (with the
    ``REPRO_BACKEND`` environment variable filling in when the config
    keeps the default); every backend produces bit-identical
    :meth:`~repro.sim.stats.SimStats.signature` results — see
    :mod:`repro.sim.stages`.
    """
    if checker is None:
        from repro.check import sanitizer_from_env

        checker = sanitizer_from_env()
    from repro.sim.stages import resolve_backend

    simulator_cls = resolve_backend(config.backend if config is not None else None)
    sim = simulator_cls(
        trace, prefetcher, config=config, units=units, tracer=tracer,
        profiler=profiler, checker=checker,
    )
    stats = sim.run(warmup_instructions=warmup_instructions)
    return SimResult(
        trace_name=trace.name,
        category=trace.category,
        prefetcher_name=prefetcher.name,
        stats=stats,
        prefetcher=prefetcher,
    )
