"""System configuration (paper Table III, Sunny-Cove-like).

All sizes are in bytes, latencies in cycles.  The defaults follow the
paper's baseline: 32KB 8-way L1I with a 4-cycle latency, a 10-entry L1I
MSHR, a 32-entry prefetch queue, a decoupled front end, and a seven-stage
pipeline with stage-dependent branch-misprediction penalties.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.check.errors import ConfigError

_REPLACEMENT_POLICIES = ("lru", "fifo")
_BRANCH_PREDICTORS = ("gshare", "bimodal")
#: Simulator cores; all produce bit-identical signatures (see repro.sim.stages).
BACKENDS = ("reference", "staged", "numpy")


@dataclass(frozen=True)
class SimConfig:
    """Complete simulator configuration.

    The enlarged-cache baselines of Figure 6 (L1I-64KB / L1I-96KB) keep the
    4-cycle latency and raise associativity to 16/24 ways, exactly as the
    paper describes; use :meth:`with_l1i_kb`.
    """

    # -- line / address geometry
    line_size: int = 64
    page_size: int = 4096

    # -- L1 instruction cache
    l1i_size: int = 32 * 1024
    l1i_ways: int = 8
    l1i_latency: int = 4
    l1i_mshrs: int = 10
    l1i_replacement: str = "lru"   # or "fifo"
    mshr_demand_reserve: int = 2   # MSHR slots prefetches may not occupy
    prefetch_queue_size: int = 32
    prefetch_issue_width: int = 4

    # -- L1 data cache (energy accounting; does not stall the back end)
    l1d_size: int = 48 * 1024
    l1d_ways: int = 12
    l1d_latency: int = 5

    # -- unified L2
    l2_size: int = 512 * 1024
    l2_ways: int = 8
    l2_latency: int = 14

    # -- shared LLC
    llc_size: int = 2 * 1024 * 1024
    llc_ways: int = 16
    llc_latency: int = 34

    # -- DRAM
    dram_latency: int = 200

    # -- front end
    ftq_size: int = 64            # fetch-target-queue entries (line visits)
    fetch_lines_per_cycle: int = 2
    retire_width: int = 6
    decode_redirect_penalty: int = 5   # BTB-miss redirect, detected at decode
    exec_redirect_penalty: int = 12    # direction/indirect mispredict, at execute

    # -- branch prediction structures
    branch_predictor: str = "gshare"   # or "bimodal"
    gshare_bits: int = 14          # 16K two-bit counters
    gshare_history: int = 12
    btb_sets: int = 1024
    btb_ways: int = 8
    ras_size: int = 64
    itc_bits: int = 9              # 512-entry indirect target cache
    itc_history: int = 6

    # -- address translation (physical-address training, paper §IV-E)
    physical_addresses: bool = False
    physical_page_seed: int = 12345

    # -- simulator core (host-side choice, never architectural: every
    # backend produces bit-identical SimStats signatures, and the field
    # is excluded from run-cache keys)
    backend: str = "reference"   # or "staged" / "numpy"

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Fail fast on structurally invalid configurations.

        Raises :class:`~repro.check.errors.ConfigError` (a ``ValueError``)
        with an actionable message naming the offending field and the
        accepted range, so a bad sweep point or hand-edited config dies at
        construction instead of producing garbage numbers mid-suite.
        """
        for label, value in (
            ("line_size", self.line_size),
            ("page_size", self.page_size),
        ):
            if value < 1 or value & (value - 1):
                raise ConfigError(
                    f"{label} must be a positive power of two, got {value}"
                )
        if self.page_size < self.line_size:
            raise ConfigError(
                f"page_size ({self.page_size}) must be >= line_size "
                f"({self.line_size})"
            )
        for cache_size, ways, label in (
            (self.l1i_size, self.l1i_ways, "L1I"),
            (self.l1d_size, self.l1d_ways, "L1D"),
            (self.l2_size, self.l2_ways, "L2"),
            (self.llc_size, self.llc_ways, "LLC"),
        ):
            if ways < 1:
                raise ConfigError(f"{label}: needs at least one way, got {ways}")
            sets = cache_size // (ways * self.line_size)
            if sets <= 0 or cache_size % (ways * self.line_size):
                raise ConfigError(
                    f"{label}: size {cache_size} not divisible into "
                    f"{ways} ways of {self.line_size}B lines"
                )
        for label, value in (
            ("l1i_latency", self.l1i_latency),
            ("l1d_latency", self.l1d_latency),
            ("l2_latency", self.l2_latency),
            ("llc_latency", self.llc_latency),
            ("dram_latency", self.dram_latency),
            ("l1i_mshrs", self.l1i_mshrs),
            ("prefetch_queue_size", self.prefetch_queue_size),
            ("prefetch_issue_width", self.prefetch_issue_width),
            ("ftq_size", self.ftq_size),
            ("fetch_lines_per_cycle", self.fetch_lines_per_cycle),
            ("retire_width", self.retire_width),
            ("btb_sets", self.btb_sets),
            ("btb_ways", self.btb_ways),
            ("ras_size", self.ras_size),
        ):
            if value < 1:
                raise ConfigError(f"{label} must be >= 1, got {value}")
        if not 0 <= self.mshr_demand_reserve < self.l1i_mshrs:
            raise ConfigError(
                f"mshr_demand_reserve ({self.mshr_demand_reserve}) must be "
                f"in [0, l1i_mshrs) = [0, {self.l1i_mshrs}); prefetches "
                f"need at least one usable MSHR slot short of the demand "
                f"reserve"
            )
        if self.l1i_replacement not in _REPLACEMENT_POLICIES:
            raise ConfigError(
                f"l1i_replacement {self.l1i_replacement!r} is not one of "
                f"{_REPLACEMENT_POLICIES}"
            )
        if self.branch_predictor not in _BRANCH_PREDICTORS:
            raise ConfigError(
                f"branch_predictor {self.branch_predictor!r} is not one of "
                f"{_BRANCH_PREDICTORS}"
            )
        if self.backend not in BACKENDS:
            raise ConfigError(
                f"backend {self.backend!r} is not one of {BACKENDS} "
                f"(set SimConfig.backend, --backend, or REPRO_BACKEND to "
                f"a supported simulator core)"
            )
        for label, value in (
            ("decode_redirect_penalty", self.decode_redirect_penalty),
            ("exec_redirect_penalty", self.exec_redirect_penalty),
            ("gshare_bits", self.gshare_bits),
            ("gshare_history", self.gshare_history),
            ("itc_bits", self.itc_bits),
            ("itc_history", self.itc_history),
        ):
            if value < 0:
                raise ConfigError(f"{label} must be >= 0, got {value}")

    @property
    def l1i_sets(self) -> int:
        return self.l1i_size // (self.l1i_ways * self.line_size)

    @property
    def l1d_sets(self) -> int:
        return self.l1d_size // (self.l1d_ways * self.line_size)

    @property
    def l2_sets(self) -> int:
        return self.l2_size // (self.l2_ways * self.line_size)

    @property
    def llc_sets(self) -> int:
        return self.llc_size // (self.llc_ways * self.line_size)

    def with_l1i_kb(self, kilobytes: int) -> "SimConfig":
        """Enlarged L1I baseline: more ways, same latency (paper §IV-B)."""
        ways = (kilobytes * 1024) // (self.l1i_sets * self.line_size)
        return replace(self, l1i_size=kilobytes * 1024, l1i_ways=ways)

    def with_physical_addresses(self) -> "SimConfig":
        return replace(self, physical_addresses=True)

    def with_backend(self, backend: str) -> "SimConfig":
        """The same configuration simulated by a different core."""
        return replace(self, backend=backend)


DEFAULT_CONFIG = SimConfig()
