"""Generic set-associative cache operating on line addresses.

Used for the L1I, L1D, L2 and LLC.  Lines carry the metadata the paper adds
for the Entangling prefetcher: the *access bit* (``prefetched`` — set while
a prefetched line has not yet been demanded) and an opaque source token
(``src_meta``) identifying the entangled pair that triggered the prefetch.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class CacheLine:
    """One resident cache line."""

    __slots__ = ("line_addr", "last_use", "inserted_at", "prefetched", "src_meta")

    def __init__(self, line_addr: int, now: int) -> None:
        self.line_addr = line_addr
        self.last_use = now
        self.inserted_at = now
        self.prefetched = False   # access bit unset: brought by a prefetch
        self.src_meta: Any = None

    def __repr__(self) -> str:
        return f"CacheLine(0x{self.line_addr:x}, prefetched={self.prefetched})"


class SetAssociativeCache:
    """Set-associative cache with LRU or FIFO replacement.

    Args:
        sets: number of sets (power of two recommended but not required).
        ways: associativity.
        replacement: ``"lru"`` or ``"fifo"``.
    """

    def __init__(self, sets: int, ways: int, replacement: str = "lru") -> None:
        if sets < 1 or ways < 1:
            raise ValueError("cache needs at least one set and one way")
        if replacement not in ("lru", "fifo"):
            raise ValueError(f"unknown replacement policy {replacement!r}")
        self.sets = sets
        self.ways = ways
        self.replacement = replacement
        # Per-set dict: line_addr -> CacheLine.  A dict per set keeps lookups
        # O(1) and insertion order doubles as FIFO order.
        self._sets: List[Dict[int, CacheLine]] = [dict() for _ in range(sets)]
        self._tick = 0

    def _index(self, line_addr: int) -> int:
        return line_addr % self.sets

    def lookup(self, line_addr: int, update_lru: bool = True) -> Optional[CacheLine]:
        """Return the resident line or None; touches LRU state on hit."""
        entry = self._sets[self._index(line_addr)].get(line_addr)
        if entry is not None and update_lru:
            self._tick += 1
            entry.last_use = self._tick
        return entry

    def touch(self, entry: CacheLine) -> None:
        """Promote a line found via a no-update probe (one LRU touch)."""
        self._tick += 1
        entry.last_use = self._tick

    def contains(self, line_addr: int) -> bool:
        return line_addr in self._sets[self._index(line_addr)]

    def insert(self, line_addr: int) -> Optional[CacheLine]:
        """Insert a line, returning the evicted line (if any).

        Re-inserting a resident line refreshes it in place and evicts
        nothing.
        """
        cache_set = self._sets[self._index(line_addr)]
        self._tick += 1
        existing = cache_set.get(line_addr)
        if existing is not None:
            existing.last_use = self._tick
            return None
        victim: Optional[CacheLine] = None
        if len(cache_set) >= self.ways:
            victim_addr = self._pick_victim(cache_set)
            victim = cache_set.pop(victim_addr)
        cache_set[line_addr] = CacheLine(line_addr, self._tick)
        return victim

    def _pick_victim(self, cache_set: Dict[int, CacheLine]) -> int:
        if self.replacement == "fifo":
            return min(cache_set.values(), key=lambda e: e.inserted_at).line_addr
        return min(cache_set.values(), key=lambda e: e.last_use).line_addr

    def invalidate(self, line_addr: int) -> Optional[CacheLine]:
        cache_set = self._sets[self._index(line_addr)]
        return cache_set.pop(line_addr, None)

    def resident_lines(self) -> List[int]:
        return [addr for cache_set in self._sets for addr in cache_set]

    @property
    def capacity(self) -> int:
        return self.sets * self.ways

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)
