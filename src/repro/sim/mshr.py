"""Miss-status holding registers for the L1I.

Each entry carries the timing metadata the paper adds (Section III-A2):
the issue timestamp, the access bit (*is_demand* — set for demand misses,
initially unset for prefetches and flipped when a demand access finds the
in-flight prefetch, marking it *late*), and the opaque source-entangled
token threaded from the prefetch queue.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Dict, List, Optional, Tuple


class MshrEntry:
    """One outstanding L1I miss."""

    __slots__ = (
        "line_addr",
        "issue_cycle",
        "ready_cycle",
        "is_demand",
        "demand_cycle",
        "was_prefetch",
        "src_meta",
    )

    def __init__(
        self,
        line_addr: int,
        issue_cycle: int,
        ready_cycle: int,
        is_demand: bool,
        src_meta: Any = None,
    ) -> None:
        self.line_addr = line_addr
        self.issue_cycle = issue_cycle
        self.ready_cycle = ready_cycle
        self.is_demand = is_demand
        # Cycle of the first demand access (== issue_cycle for demand
        # misses; set later for late prefetches).
        self.demand_cycle: Optional[int] = issue_cycle if is_demand else None
        self.was_prefetch = not is_demand
        self.src_meta = src_meta

    @property
    def is_late_prefetch(self) -> bool:
        """A prefetch whose line was demanded before it completed."""
        return self.was_prefetch and self.is_demand

    def mark_demanded(self, cycle: int) -> None:
        """A demand access found this in-flight entry (access bit flips)."""
        if not self.is_demand:
            self.is_demand = True
            self.demand_cycle = cycle

    def __repr__(self) -> str:
        return (
            f"MshrEntry(0x{self.line_addr:x}, issue={self.issue_cycle}, "
            f"ready={self.ready_cycle}, demand={self.is_demand})"
        )


class MshrFile:
    """Fixed-capacity MSHR file keyed by line address.

    Entries are indexed two ways: a dict for O(1) per-line lookup and a
    min-heap ordered by ``(ready_cycle, allocation sequence)`` so the two
    per-cycle hot queries — "which fills completed?" and "when is the
    next fill?" — are O(log n) pops and an O(1) peek instead of full
    scans.  ``ready_cycle`` is immutable after :meth:`allocate`
    (``mark_demanded`` only flips the access bit), so heap entries never
    go stale, and the ``(ready_cycle, seq)`` ordering reproduces exactly
    the order the previous scan-and-stable-sort implementation returned.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("MSHR file needs at least one entry")
        self.capacity = capacity
        self._entries: Dict[int, MshrEntry] = {}
        self._heap: List[Tuple[int, int, MshrEntry]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def lookup(self, line_addr: int) -> Optional[MshrEntry]:
        return self._entries.get(line_addr)

    def allocate(
        self,
        line_addr: int,
        issue_cycle: int,
        ready_cycle: int,
        is_demand: bool,
        src_meta: Any = None,
    ) -> MshrEntry:
        """Allocate an entry; the caller must have checked `full`.

        Raises:
            RuntimeError: the file is full or the line already has an entry.
        """
        if self.full:
            raise RuntimeError("MSHR file is full")
        if line_addr in self._entries:
            raise RuntimeError(f"duplicate MSHR entry for 0x{line_addr:x}")
        entry = MshrEntry(line_addr, issue_cycle, ready_cycle, is_demand, src_meta)
        self._entries[line_addr] = entry
        heappush(self._heap, (ready_cycle, self._seq, entry))
        self._seq += 1
        return entry

    def pop_ready(self, cycle: int) -> List[MshrEntry]:
        """Remove and return all entries whose fill has arrived.

        Ordered by fill time, ties broken by allocation order (the same
        order a stable sort over insertion order produced).
        """
        heap = self._heap
        if not heap or heap[0][0] > cycle:
            return []
        ready: List[MshrEntry] = []
        while heap and heap[0][0] <= cycle:
            entry = heappop(heap)[2]
            del self._entries[entry.line_addr]
            ready.append(entry)
        return ready

    def next_ready_cycle(self) -> Optional[int]:
        """Earliest pending fill time, or None when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]
