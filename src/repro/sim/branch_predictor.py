"""Conditional branch direction predictors (gshare and bimodal)."""

from __future__ import annotations


class GsharePredictor:
    """Classic gshare: PC XOR global history indexing 2-bit counters.

    Args:
        table_bits: log2 of the counter-table size.
        history_bits: length of the global branch-history register.
    """

    def __init__(self, table_bits: int = 14, history_bits: int = 12) -> None:
        if history_bits > table_bits:
            raise ValueError("history cannot be wider than the table index")
        self.table_bits = table_bits
        self.history_bits = history_bits
        self._mask = (1 << table_bits) - 1
        self._history_mask = (1 << history_bits) - 1
        self._counters = [2] * (1 << table_bits)   # weakly taken
        self._history = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        """Predict taken/not-taken for the conditional at ``pc``."""
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Train the counter and shift the outcome into the history."""
        idx = self._index(pc)
        counter = self._counters[idx]
        if taken:
            if counter < 3:
                self._counters[idx] = counter + 1
        else:
            if counter > 0:
                self._counters[idx] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

    @property
    def history(self) -> int:
        return self._history

    def storage_bits(self) -> int:
        return 2 * (1 << self.table_bits) + self.history_bits


class BimodalPredictor:
    """Per-PC 2-bit counters without history (the classic baseline).

    Cheaper and weaker than gshare on correlated patterns; selectable via
    ``SimConfig(branch_predictor="bimodal")`` for sensitivity studies.
    """

    def __init__(self, table_bits: int = 14, history_bits: int = 0) -> None:
        self.table_bits = table_bits
        self._mask = (1 << table_bits) - 1
        self._counters = [2] * (1 << table_bits)

    def predict(self, pc: int) -> bool:
        return self._counters[(pc >> 2) & self._mask] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = (pc >> 2) & self._mask
        counter = self._counters[idx]
        if taken:
            if counter < 3:
                self._counters[idx] = counter + 1
        else:
            if counter > 0:
                self._counters[idx] = counter - 1

    def storage_bits(self) -> int:
        return 2 * (1 << self.table_bits)


def make_direction_predictor(kind: str, table_bits: int, history_bits: int):
    """Factory for the configured conditional direction predictor."""
    if kind == "gshare":
        return GsharePredictor(table_bits, history_bits)
    if kind == "bimodal":
        return BimodalPredictor(table_bits)
    raise ValueError(f"unknown branch predictor {kind!r}")
