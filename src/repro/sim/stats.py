"""Simulation statistics: counters, derived metrics, and cache access counts."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass
class CacheAccessCounts:
    """Per-cache access counters consumed by the energy model."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes


@dataclass
class SimStats:
    """All counters collected during one simulation run.

    Prefetch bookkeeping follows the paper's Figure 5 taxonomy:

    * *useful* (timely): a demand access hits a line whose access bit was
      still unset (the prefetch arrived before the demand).
    * *late*: a demand miss finds the line's MSHR entry allocated by a
      prefetch that has not completed yet.
    * *wrong*: a prefetched line is evicted with its access bit still
      unset (never demanded).
    """

    instructions: int = 0
    cycles: int = 0

    # L1I demand behaviour
    l1i_demand_accesses: int = 0
    l1i_demand_hits: int = 0
    l1i_demand_misses: int = 0
    l1i_mshr_merges: int = 0

    # prefetch behaviour
    prefetches_requested: int = 0   # produced by the prefetcher
    prefetches_enqueued: int = 0    # accepted by the PQ
    prefetches_dropped_pq_full: int = 0
    prefetches_dropped_in_cache: int = 0
    prefetches_dropped_in_flight: int = 0
    # Enqueued requests filtered at issue time (state changed while queued).
    prefetches_stale_in_cache: int = 0
    prefetches_stale_in_flight: int = 0
    prefetches_sent: int = 0        # actually issued to the hierarchy
    useful_prefetches: int = 0
    late_prefetches: int = 0
    wrong_prefetches: int = 0

    # branch prediction
    branches: int = 0
    branch_mispredictions: int = 0
    btb_miss_redirects: int = 0

    # pipeline accounting
    fetch_stall_cycles: int = 0    # retire idle, FTQ head not ready (I-miss)
    ftq_empty_cycles: int = 0      # retire idle, FTQ drained (redirects)
    mshr_full_events: int = 0

    # per-cache access counts for the energy model
    cache_accesses: Dict[str, CacheAccessCounts] = field(
        default_factory=lambda: {
            name: CacheAccessCounts() for name in ("L1I", "L1D", "L2C", "LLC")
        }
    )

    # host-side timing telemetry (wall-clock, *not* architectural state:
    # excluded from :meth:`signature` so determinism checks ignore it)
    wall_seconds: float = 0.0
    # executor attempts this run consumed (1 = first try succeeded; >1
    # means the fault-tolerant runner retried a crashed/hung/corrupt
    # worker task) — telemetry, like wall_seconds
    attempts: int = 1
    # wall-clock seconds per simulator phase (fills/predict/issue/retire),
    # populated only when the run was profiled (see repro.obs.profiler)
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    # True on copies served by the run cache: wall_seconds /
    # instrs_per_second then describe the *original* simulation (possibly
    # another process or backend), so timing tables and speedup gates
    # must exclude this run — telemetry, like wall_seconds
    from_cache: bool = False

    def reset(self) -> None:
        """Zero every counter in place (end-of-warm-up measurement start).

        In-place so that components holding a reference to this object keep
        counting into the same instance.
        """
        fresh = SimStats()
        for field_info in dataclasses.fields(self):
            setattr(self, field_info.name, getattr(fresh, field_info.name))

    # -- derived metrics ----------------------------------------------------

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def l1i_miss_ratio(self) -> float:
        if self.l1i_demand_accesses == 0:
            return 0.0
        return self.l1i_demand_misses / self.l1i_demand_accesses

    @property
    def l1i_mpki(self) -> float:
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.l1i_demand_misses / self.instructions

    @property
    def accuracy(self) -> float:
        """Useful prefetches / prefetches issued to the hierarchy."""
        if self.prefetches_sent == 0:
            return 0.0
        return self.useful_prefetches / self.prefetches_sent

    @property
    def branch_misprediction_rate(self) -> float:
        if self.branches == 0:
            return 0.0
        return self.branch_mispredictions / self.branches

    @property
    def cycles_per_second(self) -> float:
        """Simulated cycles per wall-clock second (simulator throughput)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.cycles / self.wall_seconds

    @property
    def instrs_per_second(self) -> float:
        """Retired instructions per wall-clock second (simulator throughput)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.instructions / self.wall_seconds

    def coverage_vs(self, baseline: "SimStats") -> float:
        """Fraction of the baseline's misses this run eliminated."""
        if baseline.l1i_demand_misses == 0:
            return 0.0
        saved = baseline.l1i_demand_misses - self.l1i_demand_misses
        return max(0.0, saved / baseline.l1i_demand_misses)

    # -- serialization / comparison ----------------------------------------

    #: Fields that reflect the host machine, not simulated behaviour.
    TELEMETRY_FIELDS = ("wall_seconds", "attempts", "phase_seconds", "from_cache")

    def signature(self) -> Dict[str, Any]:
        """All architectural counters as a plain dict.

        Two runs of the same (workload, configuration) must produce equal
        signatures regardless of host, process, or parallelism; wall-clock
        telemetry is excluded.  Used by the determinism tests and the run
        cache's self-checks.
        """
        out: Dict[str, Any] = {}
        for field_info in dataclasses.fields(self):
            if field_info.name in self.TELEMETRY_FIELDS:
                continue
            value = getattr(self, field_info.name)
            if field_info.name == "cache_accesses":
                value = {
                    name: (counts.reads, counts.writes)
                    for name, counts in sorted(value.items())
                }
            out[field_info.name] = value
        return out

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of every field (telemetry included)."""
        out: Dict[str, Any] = {}
        for field_info in dataclasses.fields(self):
            value = getattr(self, field_info.name)
            if field_info.name == "cache_accesses":
                value = {
                    name: {"reads": counts.reads, "writes": counts.writes}
                    for name, counts in value.items()
                }
            out[field_info.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimStats":
        """Inverse of :meth:`to_dict`; unknown keys are ignored so cache
        files written by older versions still load."""
        stats = cls()
        names = {field_info.name for field_info in dataclasses.fields(cls)}
        for key, value in data.items():
            if key not in names:
                continue
            if key == "cache_accesses":
                value = {
                    name: CacheAccessCounts(
                        reads=counts["reads"], writes=counts["writes"]
                    )
                    for name, counts in value.items()
                }
            setattr(stats, key, value)
        return stats

    def summary(self) -> str:
        return (
            f"instr={self.instructions} cycles={self.cycles} "
            f"ipc={self.ipc:.3f} mpki={self.l1i_mpki:.2f} "
            f"missratio={self.l1i_miss_ratio:.3f} "
            f"pf_sent={self.prefetches_sent} useful={self.useful_prefetches} "
            f"late={self.late_prefetches} wrong={self.wrong_prefetches} "
            f"acc={self.accuracy:.3f}"
        )
