"""Trace preprocessing into fetch units.

The predict stage of the decoupled front end works at the granularity of
*fetch units*: maximal runs of consecutive instructions that stay on one
cache line and contain at most one branch (which, if present, terminates
the unit).  Preprocessing the trace once into fetch units makes the
cycle-level simulation independent of raw instruction count hot-loop work
and lets every prefetcher configuration reuse the same preprocessed list.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.workloads.trace import BranchType, Trace


class FetchUnit:
    """One line-visit of the front end.

    Attributes:
        line_addr: instruction-cache line (virtual byte address >> 6).
        n_instrs: instructions in the unit (>= 1).
        branch: ``(pc, branch_type, taken, target)`` of the terminating
            branch, or None when the unit ends at a line boundary.
        data_lines: data-cache line addresses touched by the unit's loads
            and stores, each tagged with ``is_store``.
    """

    __slots__ = ("line_addr", "n_instrs", "branch", "data_lines")

    def __init__(
        self,
        line_addr: int,
        n_instrs: int,
        branch: Optional[Tuple[int, BranchType, bool, int]],
        data_lines: Tuple[Tuple[int, bool], ...],
    ) -> None:
        self.line_addr = line_addr
        self.n_instrs = n_instrs
        self.branch = branch
        self.data_lines = data_lines

    def __repr__(self) -> str:
        return (
            f"FetchUnit(line=0x{self.line_addr:x}, n={self.n_instrs}, "
            f"branch={self.branch is not None})"
        )


def build_fetch_units(trace: Trace, line_size: int = 64) -> List[FetchUnit]:
    """Split a trace into fetch units (see :class:`FetchUnit`)."""
    units: List[FetchUnit] = []
    current_line: Optional[int] = None
    count = 0
    data: List[Tuple[int, bool]] = []

    def flush(branch: Optional[Tuple[int, BranchType, bool, int]]) -> None:
        nonlocal count, data, current_line
        if current_line is None or count == 0:
            return
        units.append(FetchUnit(current_line, count, branch, tuple(data)))
        count = 0
        data = []

    for inst in trace:
        line = inst.pc // line_size
        if current_line is None:
            current_line = line
        elif line != current_line:
            flush(None)
            current_line = line
        count += 1
        if inst.is_load or inst.is_store:
            data.append((inst.data_addr // line_size, inst.is_store))
        if inst.is_branch:
            flush((inst.pc, inst.branch_type, inst.taken, inst.target))
            current_line = None
    flush(None)
    return units


def units_instruction_count(units: List[FetchUnit]) -> int:
    return sum(u.n_instrs for u in units)
