"""The L1I prefetch queue (PQ).

A fixed-capacity FIFO of pending prefetch requests.  As in the paper, each
entry records the request's source-entangled token; the issue timestamp is
taken when the request leaves the queue for the memory hierarchy.  Requests
arriving at a full queue are dropped (the paper notes its prefetcher would
benefit from a larger PQ precisely because of these drops).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Tuple


class PrefetchQueue:
    """FIFO prefetch queue with duplicate suppression."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("prefetch queue needs at least one entry")
        self.capacity = capacity
        self._queue: Deque[Tuple[int, Any]] = deque()
        self._pending: set = set()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    def push(self, line_addr: int, src_meta: Any = None) -> bool:
        """Enqueue a prefetch; returns False if dropped (full or duplicate)."""
        if self.full or line_addr in self._pending:
            return False
        self._queue.append((line_addr, src_meta))
        self._pending.add(line_addr)
        return True

    def pop(self) -> Optional[Tuple[int, Any]]:
        if not self._queue:
            return None
        line_addr, src_meta = self._queue.popleft()
        self._pending.discard(line_addr)
        return line_addr, src_meta

    def peek(self) -> Optional[Tuple[int, Any]]:
        return self._queue[0] if self._queue else None

    def clear(self) -> None:
        self._queue.clear()
        self._pending.clear()
