"""Indirect target cache (ITC).

Predicts targets of indirect jumps and calls from the branch PC hashed
with a short target history, following the classic target-cache design
(Chang et al., ISCA 1997) that the paper's ChampSim baseline models.
"""

from __future__ import annotations

from typing import List, Optional


class IndirectTargetCache:
    """Direct-mapped PC ^ history -> target predictor."""

    def __init__(self, table_bits: int = 9, history_bits: int = 6) -> None:
        self.table_bits = table_bits
        self.history_bits = history_bits
        self._mask = (1 << table_bits) - 1
        self._history_mask = (1 << history_bits) - 1
        self._targets: List[Optional[int]] = [None] * (1 << table_bits)
        self._history = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> Optional[int]:
        return self._targets[self._index(pc)]

    def update(self, pc: int, target: int) -> None:
        self._targets[self._index(pc)] = target
        self._history = ((self._history << 2) ^ (target >> 2)) & self._history_mask

    def storage_bits(self) -> int:
        return (1 << self.table_bits) * 48 + self.history_bits
