"""Stage 3 of the staged core: the decoupled predict stage.

Walks the fetch units along the (correct) path, enqueuing FTQ blocks
into the parallel arrays and performing one demand L1I access per line
visit; branch prediction gates progress exactly as in the reference
``Simulator._do_predict`` / ``_enqueue_unit`` / ``_demand_access`` /
``_handle_branch``.  The MSHR-full case is still decided by a pure probe
before any state change (one architectural access = one LRU touch, one
count, on the cycle the access actually proceeds).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.workloads.trace import BranchType

from repro.sim.stages.issue import collect

__all__ = ["run_predict", "demand_access", "handle_branch"]

_RETRY = "retry"

_CONDITIONAL = BranchType.CONDITIONAL
_DIRECT_JUMP = BranchType.DIRECT_JUMP
_DIRECT_CALL = BranchType.DIRECT_CALL
_INDIRECT_JUMP = BranchType.INDIRECT_JUMP
_INDIRECT_CALL = BranchType.INDIRECT_CALL
_RETURN = BranchType.RETURN


def run_predict(sim: Any) -> bool:
    """Advance the predict stage by up to ``fetch_lines_per_cycle`` units.

    Safe to call unguarded: when blocked, stalled, out of units, or FTQ
    full, it returns False with no side effects (the staged loop checks
    those guards first to skip the call entirely).
    """
    if sim._pred_blocked_idx is not None or sim.cycle < sim._pred_stall_until:
        return False
    advanced = False
    units = sim.units
    total_units = len(units)
    fq_line = sim.fq_line
    ftq_size = sim.config.ftq_size
    pred_idx = sim._pred_idx
    for _ in range(sim.config.fetch_lines_per_cycle):
        if pred_idx >= total_units:
            break
        if len(fq_line) - sim.fq_head >= ftq_size:
            break
        unit = units[pred_idx]
        idx = enqueue_unit(sim, unit)
        if idx is None:
            # MSHR full: retry the same unit next cycle.
            sim.stats.mshr_full_events += 1
            break
        advanced = True
        pred_idx += 1
        sim._pred_idx = pred_idx
        if unit.branch is not None and handle_branch(sim, unit, idx):
            break  # mispredicted: stall until resolution
    return advanced


def enqueue_unit(sim: Any, unit: Any) -> Optional[int]:
    """Append one fetch unit to the FTQ arrays; None on MSHR-full retry."""
    mapper = sim.mapper
    line_addr = (
        unit.line_addr if mapper is None else mapper.translate_line(unit.line_addr)
    )
    ready = demand_access(sim, line_addr)
    if ready is _RETRY:
        return None
    idx = len(sim.fq_line)
    sim.fq_line.append(line_addr)
    sim.fq_remaining.append(unit.n_instrs)
    sim.fq_ready.append(ready)
    sim.fq_penalty.append(0)
    sim.fq_data.append(unit.data_lines)
    if ready is None:
        sim._waiting.setdefault(line_addr, []).append(idx)
    return idx


def demand_access(sim: Any, line_addr: int):
    """One demand L1I access; returns the block's ready cycle.

    Returns an int (hit / ideal: ready at ``cycle + l1i_latency``), None
    (miss: the block waits on the MSHR fill), or the ``"retry"`` sentinel
    (MSHR full, nothing touched).
    """
    stats = sim.stats
    tracer = sim.tracer
    prefetcher = sim.prefetcher
    l1i = sim.l1i
    cycle = sim.cycle
    entry = l1i.lookup(line_addr, update_lru=False)
    mshr_entry = None
    if entry is None and not prefetcher.is_ideal:
        mshr_entry = sim.mshr.lookup(line_addr)
        if mshr_entry is None and sim.mshr.full:
            return _RETRY
    sim._l1i_counts.reads += 1
    stats.l1i_demand_accesses += 1
    passive = prefetcher.is_passive
    if entry is not None:
        l1i.touch(entry)
        stats.l1i_demand_hits += 1
        if tracer is not None:
            tracer.emit("demand_access", cycle, line_addr, None, True)
        if entry.prefetched:
            entry.prefetched = False
            stats.useful_prefetches += 1
            if tracer is not None:
                tracer.emit("pf_useful", cycle, line_addr, entry.src_meta)
            prefetcher.on_prefetch_useful(line_addr, entry.src_meta, cycle)
        if not passive:
            collect(sim, prefetcher.on_demand_access(line_addr, True, cycle))
        return cycle + sim.config.l1i_latency

    if prefetcher.is_ideal:
        # Ideal L1I: the access hits, but the line is still fetched from
        # the next level to model the pollution it causes there.
        stats.l1i_demand_hits += 1
        sim.memory.request_instruction(line_addr, cycle)
        l1i.insert(line_addr)
        sim._l1i_counts.writes += 1
        return cycle + sim.config.l1i_latency

    if tracer is not None:
        tracer.emit("demand_access", cycle, line_addr, None, False)
    if mshr_entry is not None:
        stats.l1i_demand_misses += 1
        if not mshr_entry.is_demand:
            mshr_entry.mark_demanded(cycle)
            stats.late_prefetches += 1
            if tracer is not None:
                tracer.emit("pf_late", cycle, line_addr, mshr_entry.src_meta)
            prefetcher.on_prefetch_late(line_addr, mshr_entry.src_meta, cycle)
        else:
            stats.l1i_mshr_merges += 1
        if not passive:
            collect(sim, prefetcher.on_demand_access(line_addr, False, cycle))
        return None

    stats.l1i_demand_misses += 1
    ready = sim.memory.request_instruction(
        line_addr, cycle + sim.config.l1i_latency
    )
    sim.mshr.allocate(line_addr, cycle, ready, True, None)
    if not passive:
        collect(sim, prefetcher.on_demand_access(line_addr, False, cycle))
    return None


def handle_branch(sim: Any, unit: Any, idx: int) -> bool:
    """Predict the unit's terminating branch; returns True on stall."""
    pc, branch_type, taken, target = unit.branch
    sim.stats.branches += 1
    penalty = 0

    if branch_type == _CONDITIONAL:
        predicted_taken = sim.gshare.predict(pc)
        sim.gshare.update(pc, taken)
        if predicted_taken != taken:
            penalty = sim.config.exec_redirect_penalty
            sim.stats.branch_mispredictions += 1
        elif taken:
            if sim.btb.lookup(pc) is None:
                penalty = sim.config.decode_redirect_penalty
                sim.stats.btb_miss_redirects += 1
            sim.btb.update(pc, target)
    elif branch_type == _DIRECT_JUMP or branch_type == _DIRECT_CALL:
        if sim.btb.lookup(pc) is None:
            penalty = sim.config.decode_redirect_penalty
            sim.stats.btb_miss_redirects += 1
        sim.btb.update(pc, target)
    elif branch_type == _INDIRECT_JUMP or branch_type == _INDIRECT_CALL:
        predicted = sim.itc.predict(pc)
        if predicted != target:
            penalty = sim.config.exec_redirect_penalty
            sim.stats.branch_mispredictions += 1
        sim.itc.update(pc, target)
    elif branch_type == _RETURN:
        predicted = sim.ras.pop()
        if predicted != target:
            penalty = sim.config.exec_redirect_penalty
            sim.stats.branch_mispredictions += 1

    if branch_type == _DIRECT_CALL or branch_type == _INDIRECT_CALL:
        sim.ras.push(pc + 4)

    if not sim.prefetcher.is_passive:
        collect(
            sim,
            sim.prefetcher.on_branch(pc, branch_type, taken, target, sim.cycle),
        )

    if penalty:
        sim.fq_penalty[idx] = penalty
        sim._pred_blocked_idx = idx
        return True
    return False
