"""Stage 1 of the staged core: MSHR fill completion -> L1I insertion.

Equivalent to the reference ``Simulator._do_fills`` / ``_fill_line``
operating on the staged core's array-of-struct FTQ: waiters are woken by
*block index* into the parallel FTQ arrays rather than by object
reference.  Event order (victim accounting, fill metadata, tracer
emission, prefetcher feedback, sanitizer hook, waiter wake-up) is
identical to the reference.
"""

from __future__ import annotations

from typing import Any

from repro.prefetchers.base import FillInfo

from repro.sim.stages.issue import collect

__all__ = ["run_fills"]


def run_fills(sim: Any) -> bool:
    """Complete every MSHR entry whose fill has arrived.

    Safe to call unguarded: with no ready entry it returns False with no
    side effects (the staged loop peeks the fill heap to skip the call).
    """
    ready = sim.mshr.pop_ready(sim.cycle)
    for entry in ready:
        fill_line(sim, entry)
    return bool(ready)


def fill_line(sim: Any, entry: Any) -> None:
    tracer = sim.tracer
    cycle = sim.cycle
    prefetcher = sim.prefetcher
    line_addr = entry.line_addr
    victim = sim.l1i.insert(line_addr)
    sim._l1i_counts.writes += 1
    if victim is not None and victim.prefetched:
        sim.stats.wrong_prefetches += 1
        if tracer is not None:
            tracer.emit("pf_wrong", cycle, victim.line_addr, victim.src_meta)
        prefetcher.on_evict_unused(victim.line_addr, victim.src_meta, cycle)
    line = sim.l1i.lookup(line_addr, update_lru=False)
    line.prefetched = not entry.is_demand
    line.src_meta = entry.src_meta
    if tracer is not None or not prefetcher.is_passive:
        info = FillInfo(
            line_addr=line_addr,
            fill_cycle=cycle,
            issue_cycle=entry.issue_cycle,
            is_demand=entry.is_demand,
            was_prefetch=entry.was_prefetch,
            demand_cycle=entry.demand_cycle,
            src_meta=entry.src_meta,
        )
        if tracer is not None:
            tracer.emit(
                "fill",
                cycle,
                line_addr,
                entry.src_meta,
                (entry.is_demand, entry.was_prefetch, info.demand_latency),
            )
        if not prefetcher.is_passive:
            collect(sim, prefetcher.on_fill(info))
    if sim.checker is not None:
        sim.checker.check_fill(sim, line_addr)
    waiters = sim._waiting.pop(line_addr, None)
    if waiters:
        ready_at = cycle + sim.config.l1i_latency
        fq_ready = sim.fq_ready
        for idx in waiters:
            fq_ready[idx] = ready_at
