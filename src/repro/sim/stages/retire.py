"""Stage 4 of the staged core: retire + data-side (L1D) accounting.

Consumes up to ``retire_width`` instructions per cycle from ready FTQ
blocks in the parallel arrays, releasing redirect penalties and charging
the finished blocks' data-line traffic to the L1D/L2/LLC — identical in
order and effect to ``Simulator._do_retire`` / ``_finish_block`` /
``_l1d_access``.  The data-side walk is cycle-*independent* (nothing
reads the access cycle except the unused completion time), a property
the batch fast paths rely on; order still matters for LRU state, and is
preserved exactly.
"""

from __future__ import annotations

from typing import Any

__all__ = ["run_retire", "finish_block"]


def run_retire(sim: Any) -> int:
    """Retire up to ``retire_width`` instructions; returns the count.

    Safe to call unguarded: with an empty FTQ or a not-ready head it
    returns 0 with no side effects.
    """
    budget = sim.config.retire_width
    retired = 0
    fq_ready = sim.fq_ready
    fq_remaining = sim.fq_remaining
    head = sim.fq_head
    tail = len(sim.fq_line)
    cycle = sim.cycle
    while budget > 0 and head < tail:
        ready = fq_ready[head]
        if ready is None or ready > cycle:
            break
        remaining = fq_remaining[head]
        take = remaining if remaining <= budget else budget
        budget -= take
        retired += take
        if take == remaining:
            sim.fq_head = head + 1
            finish_block(sim, head)
            head += 1
        else:
            fq_remaining[head] = remaining - take
    sim.fq_head = head
    sim._retired += retired
    return retired


def finish_block(sim: Any, idx: int) -> None:
    penalty = sim.fq_penalty[idx]
    if penalty:
        sim._pred_stall_until = sim.cycle + penalty
        if sim._pred_blocked_idx == idx:
            sim._pred_blocked_idx = None
    data_lines = sim.fq_data[idx]
    if data_lines:
        mapper = sim.mapper
        for data_line, is_store in data_lines:
            l1d_access(
                sim,
                data_line if mapper is None else mapper.translate_line(data_line),
                is_store,
            )
        sim.fq_data[idx] = ()  # release the tuple; the block is done


def l1d_access(sim: Any, line_addr: int, is_store: bool) -> None:
    counts = sim._l1d_counts
    if is_store:
        counts.writes += 1
    else:
        counts.reads += 1
    if sim.l1d.lookup(line_addr) is None:
        sim.memory.request_data(line_addr, sim.cycle)
        sim.l1d.insert(line_addr)
        counts.writes += 1
