"""The vectorized simulator backend (``backend="numpy"``).

:class:`NumpySimulator` extends the staged core with a batch fast path
for the only stretches of a run that are regular enough to batch
exactly: **L1I-hit spans** — maximal runs of consecutive fetch units
whose instruction lines are all L1I-resident, reached while the memory
side is quiescent (MSHR empty, no block waiting on a fill).

Inside such a span no fill can land and no L1I membership can change
(hits never insert or evict), so the whole span's residency can be
decided up front: a linear probe against the cache's membership mirror
set, switching to one ``np.isin`` over the trace's columnar line array
once the span provably exceeds :data:`WALK_UNITS` (the vector call only
pays off on long spans; short ones — the common case — stay on the
early-exiting set walk).  The per-cycle semantics then collapse to an
integer timing replay: the predict stage enqueues
``fetch_lines_per_cycle`` units per cycle (FTQ-capacity permitting),
each block turns ready exactly ``l1i_latency`` cycles after its
enqueue, and retire drains ``retire_width`` instructions per cycle in
FIFO order.  Branches are *not* span boundaries: the replay runs the
branch predictors inline at the exact point each unit is enqueued, and
redirect penalties are replayed in full — a penalized unit blocks
further enqueue until it retires, its retirement starts the
``stall_until`` window, and idle stretches jump straight to the next
event, all in plain integers.  Only an L1I miss (a genuine event: MSHR
allocation, a future fill) ends the fast path.

Everything order-dependent but **cycle-independent** is applied in bulk
after the replay:

* L1I: counters in closed form; the LRU effect of N ordered touches is
  one move per distinct line in ascending order of *last* occurrence
  (dedupe-keep-last over the reversed sequence);
* L1D: retired blocks' data lines replayed in retire order with the
  same inline L2/LLC walk the scalar loops use (the data side is
  cycle-independent, so post-hoc replay in order is exact, misses
  included).

The trailing not-yet-retired blocks are materialized back into the FTQ
arrays and the staged scalar loop resumes.  Spans shorter than
:data:`MIN_SPAN_UNITS` and every event boundary (any L1I miss, pending
fill) fall back to :meth:`StagedSimulator._run_passive`, run with
``until_quiesce`` so it returns at the first state where the fast path
could engage again.

Bit-identity with the other backends is the contract; the fast path is
only entered from states where its assumptions are *provably* exact
(a passive prefetcher never marks a line prefetched, so the span's
demand hits carry no useful-prefetch side effects).
"""

from __future__ import annotations

from typing import Any, List, Optional

try:  # pragma: no cover - exercised via both CI backend-matrix legs
    import numpy as np

    NUMPY_AVAILABLE = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    NUMPY_AVAILABLE = False

from repro.sim.stages.core import StagedSimulator
from repro.workloads.trace import BranchType

__all__ = ["NumpySimulator", "NUMPY_AVAILABLE", "MIN_SPAN_UNITS"]

#: Smallest all-hit run (in fetch units) worth the span setup overhead;
#: shorter runs go through the scalar staged loop.
MIN_SPAN_UNITS = 64

#: Cap on units batched per engagement (bounds temporary arrays).
MAX_SPAN_UNITS = 16384

#: Length of the early-exiting set-membership walk before the residency
#: check switches to one vectorized ``np.isin`` over the remainder.
WALK_UNITS = 512

#: Upper bound (cycles) on one scalar-fallback stretch.  The stretch
#: normally ends much earlier, at the first quiescent top-of-cycle state
#: after a miss drains (``until_quiesce``); the bound only caps
#: pathological never-quiescent phases.
_SCALAR_CHUNK_CYCLES = 4096


class _UnitColumns:
    """Per-trace immutable columns of the fetch-unit list."""

    __slots__ = ("u_line", "u_line_l", "u_n", "branch", "d_tuple")

    def __init__(self, units) -> None:
        total = len(units)
        self.u_line = np.fromiter(
            (u.line_addr for u in units), dtype=np.int64, count=total
        )
        self.u_line_l: List[int] = self.u_line.tolist()
        self.u_n = [u.n_instrs for u in units]
        self.branch = [u.branch for u in units]
        self.d_tuple = [u.data_lines for u in units]


class NumpySimulator(StagedSimulator):
    """Staged core plus batch L1I-hit span processing."""

    backend_name = "numpy"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        if not NUMPY_AVAILABLE:  # resolve_backend never routes here then
            raise RuntimeError("the numpy backend requires numpy")
        super().__init__(*args, **kwargs)
        self._vec: Optional[_UnitColumns] = None
        self._l1i_members = self.l1i.enable_member_mirror()
        self._l1i_marr = None
        self._l1i_mver = -1

    def _l1i_members_arr(self):
        """The L1I membership mirror as an array, cached per ``_version``."""
        if self._l1i_mver != self.l1i._version:
            self._l1i_marr = np.fromiter(
                self._l1i_members, dtype=np.int64, count=len(self._l1i_members)
            )
            self._l1i_mver = self.l1i._version
        return self._l1i_marr

    # -- driver --------------------------------------------------------------

    def _run_passive(self, limit: int, max_cycles: Optional[int] = None) -> None:
        """Alternate batch spans with quiesce-bounded scalar stretches."""
        if self._vec is None:
            self._vec = _UnitColumns(self.units)
        total = len(self.units)
        scalar = StagedSimulator._run_passive
        while (
            self._pred_idx < total or self.fq_head < len(self.fq_line)
        ) and self._retired < limit:
            if not self._process_span(limit):
                scalar(self, limit, _SCALAR_CHUNK_CYCLES, True)

    # -- the fast path -------------------------------------------------------

    def _process_span(self, limit: int) -> bool:
        """Detect and batch-process one span; False = use the scalar loop.

        Entry requires a quiescent memory side: empty MSHR (no fill can
        land mid-span), no block waiting on a fill, and no blocked
        predict (the blocked marker is an absolute FTQ index the replay
        doesn't track).  A pending ``stall_until`` is fine — the replay
        models redirect stalls itself.  Every ``return False`` below
        happens before any architectural state is touched, so a rejected
        span leaves nothing to undo.
        """
        if self.mshr._entries or self._waiting or self._pred_blocked_idx is not None:
            return False
        cycle = self.cycle
        pred_idx = self._pred_idx
        vec = self._vec
        total = len(self.units)
        if pred_idx >= total:
            return False
        if self.config.l1i_latency < 1:
            # With a zero-latency L1I a penalized unit could retire on
            # its own enqueue cycle, which the replay's blocked handling
            # doesn't model; such configs stay on the scalar loop.
            return False

        # All-L1I-hit span: early-exiting set walk first (most attempts
        # die within a few units, costing a handful of set lookups), one
        # vectorized isin for the long tail.
        cap = total - pred_idx
        if cap > MAX_SPAN_UNITS:
            cap = MAX_SPAN_UNITS
        members = self._l1i_members
        u_line_l = vec.u_line_l
        walk_end = pred_idx + (cap if cap < WALK_UNITS else WALK_UNITS)
        i = pred_idx
        while i < walk_end and u_line_l[i] in members:
            i += 1
        span = i - pred_idx
        if span < MIN_SPAN_UNITS:
            return False
        if span == WALK_UNITS and cap > WALK_UNITS:
            rest = np.isin(
                vec.u_line[pred_idx + WALK_UNITS : pred_idx + cap],
                self._l1i_members_arr(),
            )
            span = cap if rest.all() else WALK_UNITS + int(np.argmax(~rest))
        # The boundary unit (an L1I miss) may share a predict window with
        # the span's tail, so the replay must stop a window short of it;
        # only a span ending at the trace's last unit may fill a final
        # partial window.
        open_end = pred_idx + span >= total

        head0 = self.fq_head
        tail0 = len(self.fq_line)
        fq_penalty = self.fq_penalty
        for i in range(head0, tail0):
            # A live penalized block implies a blocked predict, already
            # rejected above; scanned anyway as cheap defense (the replay
            # retires entry blocks without a penalty check).
            if fq_penalty[i]:
                return False

        # ---- integer timing replay with inline branch prediction --------
        config = self.config
        width = config.fetch_lines_per_cycle
        latency = config.l1i_latency
        ftq_cap = config.ftq_size
        retire_width = config.retire_width
        entry_count = tail0 - head0
        entry_ready = self.fq_ready[head0:tail0]
        entry_rem = self.fq_remaining[head0:tail0]
        span_n = vec.u_n[pred_idx : pred_idx + span]
        span_branch = vec.branch[pred_idx : pred_idx + span]
        gshare_predict = self.gshare.predict
        gshare_update = self.gshare.update
        btb_lookup = self.btb.lookup
        btb_update = self.btb.update
        itc_predict = self.itc.predict
        itc_update = self.itc.update
        ras_pop = self.ras.pop
        ras_push = self.ras.push
        decode_penalty = config.decode_redirect_penalty
        exec_penalty = config.exec_redirect_penalty
        CONDITIONAL = BranchType.CONDITIONAL
        DIRECT_JUMP = BranchType.DIRECT_JUMP
        DIRECT_CALL = BranchType.DIRECT_CALL
        INDIRECT_JUMP = BranchType.INDIRECT_JUMP
        INDIRECT_CALL = BranchType.INDIRECT_CALL
        RETURN = BranchType.RETURN

        enq_at = [0] * span
        enq = 0  # span units enqueued so far
        rc = 0  # retire cursor over [entry blocks..., enqueued span units]
        cur_rem = -1  # remaining of block rc; -1 = load from source
        occupancy = entry_count
        retired_total = self._retired
        stall_v = self._pred_stall_until
        blocked_off = None  # span offset of the pending penalized unit
        pen_of: dict = {}  # span offset -> redirect penalty
        fetch_stall = 0
        ftq_empty = 0
        branches = 0
        mispredicts = 0
        btb_redirects = 0
        while retired_total < limit:
            remaining = span - enq
            if remaining == 0 or (remaining < width and not open_end):
                break
            enq_progress = False
            if blocked_off is None and cycle >= stall_v:
                room = ftq_cap - occupancy
                take = width if room >= width else room
                if take > remaining:
                    take = remaining
                if take > 0:
                    enq_progress = True
                for _ in range(take):
                    enq_at[enq] = cycle
                    branch = span_branch[enq]
                    enq += 1
                    occupancy += 1
                    if branch is not None:
                        pc, branch_type, taken, target = branch
                        branches += 1
                        penalty = 0
                        if branch_type == CONDITIONAL:
                            predicted_taken = gshare_predict(pc)
                            gshare_update(pc, taken)
                            if predicted_taken != taken:
                                penalty = exec_penalty
                                mispredicts += 1
                            elif taken:
                                if btb_lookup(pc) is None:
                                    penalty = decode_penalty
                                    btb_redirects += 1
                                btb_update(pc, target)
                        elif branch_type == DIRECT_JUMP or branch_type == DIRECT_CALL:
                            if btb_lookup(pc) is None:
                                penalty = decode_penalty
                                btb_redirects += 1
                            btb_update(pc, target)
                        elif (
                            branch_type == INDIRECT_JUMP
                            or branch_type == INDIRECT_CALL
                        ):
                            if itc_predict(pc) != target:
                                penalty = exec_penalty
                                mispredicts += 1
                            itc_update(pc, target)
                        elif branch_type == RETURN:
                            if ras_pop() != target:
                                penalty = exec_penalty
                                mispredicts += 1
                        if branch_type == DIRECT_CALL or branch_type == INDIRECT_CALL:
                            ras_push(pc + 4)
                        if penalty:
                            # Same semantics as the scalar predict break:
                            # no further enqueue until this unit retires,
                            # which starts the stall window below.
                            offset = enq - 1
                            pen_of[offset] = penalty
                            blocked_off = offset
                            break
            budget = retire_width
            retired_now = 0
            while budget > 0 and rc < entry_count + enq:
                if rc < entry_count:
                    ready = entry_ready[rc]
                    if cur_rem < 0:
                        cur_rem = entry_rem[rc]
                else:
                    offset = rc - entry_count
                    ready = enq_at[offset] + latency
                    if cur_rem < 0:
                        cur_rem = span_n[offset]
                if ready > cycle:
                    break
                if cur_rem <= budget:
                    budget -= cur_rem
                    retired_now += cur_rem
                    if rc >= entry_count and pen_of:
                        penalty = pen_of.get(rc - entry_count)
                        if penalty is not None:
                            stall_v = cycle + penalty
                            if blocked_off == rc - entry_count:
                                blocked_off = None
                    rc += 1
                    cur_rem = -1
                    occupancy -= 1
                else:
                    cur_rem -= budget
                    retired_now += budget
                    budget = 0
            retired_total += retired_now

            # Cycle advance with the scalar loop's exact event jump and
            # stall attribution (the MSHR heap is empty throughout).
            if enq_progress or retired_now:
                next_cycle = cycle + 1
            else:
                best = None
                if stall_v > cycle and blocked_off is None:
                    best = stall_v
                if rc < entry_count + enq:
                    if rc < entry_count:
                        head_ready = entry_ready[rc]
                    else:
                        head_ready = enq_at[rc - entry_count] + latency
                    if head_ready > cycle and (best is None or head_ready < best):
                        best = head_ready
                next_cycle = best if (best is not None and best > cycle) else cycle + 1
            if retired_now == 0:
                if occupancy:
                    fetch_stall += next_cycle - cycle
                else:
                    ftq_empty += next_cycle - cycle
            cycle = next_cycle

        if enq == 0:
            return False

        # ---- bulk state application -------------------------------------
        stats = self.stats
        l1i = self.l1i

        # Predict-side: every enqueued span unit was one L1I demand hit.
        stats.l1i_demand_accesses += enq
        stats.l1i_demand_hits += enq
        stats.branches += branches
        stats.branch_mispredictions += mispredicts
        stats.btb_miss_redirects += btb_redirects
        self._l1i_counts.reads += enq
        if l1i._lru:
            # The LRU effect of the span's ordered touches: one move per
            # distinct line, in ascending order of last occurrence.
            seen = set()
            moves = []
            for i in range(pred_idx + enq - 1, pred_idx - 1, -1):
                line_addr = u_line_l[i]
                if line_addr not in seen:
                    seen.add(line_addr)
                    moves.append(line_addr)
            l1i_sets = l1i._sets
            l1i_nsets = l1i.sets
            for line_addr in reversed(moves):
                cache_set = l1i_sets[line_addr % l1i_nsets]
                entry = cache_set.pop(line_addr)
                cache_set[line_addr] = entry

        # Retire-side: blocks fully retired by the replay, data lines
        # replayed in retire order (entry blocks first, then the span
        # prefix) through the same inline L2/LLC walk the scalar loops
        # use.  The data side is cycle-independent, so the post-hoc
        # replay is exact even when it contains misses.
        entry_retired = rc if rc < entry_count else entry_count
        span_retired = rc - entry_count if rc > entry_count else 0
        l1d = self.l1d
        l1d_sets = l1d._sets
        l1d_nsets = l1d.sets
        l1d_ways = l1d.ways
        l1d_members = l1d._members
        l2 = self.memory.l2
        llc = self.memory.llc
        l2_sets = l2._sets
        l2_nsets = l2.sets
        l2_ways = l2.ways
        l2_members = l2._members
        llc_sets = llc._sets
        llc_nsets = llc.sets
        llc_ways = llc.ways
        llc_members = llc._members
        l1d_reads = 0
        l1d_writes = 0
        l2_reads = 0
        l2_writes = 0
        llc_reads = 0
        llc_writes = 0
        fq_data = self.fq_data
        d_tuple = vec.d_tuple
        for block in range(entry_retired + span_retired):
            if block < entry_retired:
                data_lines = fq_data[head0 + block]
                if data_lines:
                    fq_data[head0 + block] = ()
            else:
                data_lines = d_tuple[pred_idx + block - entry_retired]
            for data_line, is_store in data_lines:
                if is_store:
                    l1d_writes += 1
                else:
                    l1d_reads += 1
                data_set = l1d_sets[data_line % l1d_nsets]
                if data_line in data_set:
                    del data_set[data_line]
                    data_set[data_line] = True
                else:
                    l2_reads += 1
                    l2_set = l2_sets[data_line % l2_nsets]
                    if data_line in l2_set:
                        del l2_set[data_line]
                        l2_set[data_line] = True
                    else:
                        llc_reads += 1
                        llc_set = llc_sets[data_line % llc_nsets]
                        if data_line in llc_set:
                            del llc_set[data_line]
                            llc_set[data_line] = True
                        else:
                            if len(llc_set) >= llc_ways:
                                v = next(iter(llc_set))
                                del llc_set[v]
                                if llc_members is not None:
                                    llc_members.discard(v)
                            llc_set[data_line] = True
                            if llc_members is not None:
                                llc_members.add(data_line)
                            llc._version += 1
                            llc_writes += 1
                        if len(l2_set) >= l2_ways:
                            v = next(iter(l2_set))
                            del l2_set[v]
                            if l2_members is not None:
                                l2_members.discard(v)
                        l2_set[data_line] = True
                        if l2_members is not None:
                            l2_members.add(data_line)
                        l2._version += 1
                        l2_writes += 1
                    if len(data_set) >= l1d_ways:
                        victim_addr = next(iter(data_set))
                        del data_set[victim_addr]
                        if l1d_members is not None:
                            l1d_members.discard(victim_addr)
                    data_set[data_line] = True
                    if l1d_members is not None:
                        l1d_members.add(data_line)
                    l1d._version += 1
                    l1d_writes += 1
        l1d_counts = self._l1d_counts
        l1d_counts.reads += l1d_reads
        l1d_counts.writes += l1d_writes
        if l2_reads:
            l2_counts = stats.cache_accesses["L2C"]
            l2_counts.reads += l2_reads
            l2_counts.writes += l2_writes
            llc_counts = stats.cache_accesses["LLC"]
            llc_counts.reads += llc_reads
            llc_counts.writes += llc_writes
        stats.fetch_stall_cycles += fetch_stall
        stats.ftq_empty_cycles += ftq_empty

        # ---- materialize the live tail back into the FTQ arrays ---------
        fq_remaining = self.fq_remaining
        if rc < entry_count:
            # Partially-retired entry block: shrink it in place.
            if cur_rem >= 0:
                fq_remaining[head0 + rc] = cur_rem
            self.fq_head = head0 + rc
        else:
            self.fq_head = tail0
        fq_line = self.fq_line
        fq_ready = self.fq_ready
        fq_penalty_l = self.fq_penalty
        fq_data_l = self.fq_data
        u_n = vec.u_n
        first_live = span_retired
        for offset in range(first_live, enq):
            abs_idx = pred_idx + offset
            fq_line.append(u_line_l[abs_idx])
            if offset == first_live and rc >= entry_count and cur_rem >= 0:
                fq_remaining.append(cur_rem)
            else:
                fq_remaining.append(u_n[abs_idx])
            fq_ready.append(enq_at[offset] + latency)
            fq_penalty_l.append(pen_of.get(offset, 0) if pen_of else 0)
            fq_data_l.append(d_tuple[abs_idx])
        if blocked_off is not None:
            # The penalized unit is live by construction (the blocked
            # marker clears exactly when its block retires).
            self._pred_blocked_idx = len(fq_line) - enq + blocked_off

        self._pred_idx = pred_idx + enq
        self._pred_stall_until = stall_v
        self._retired = retired_total
        self.cycle = cycle
        self._maybe_compact()
        return True
