"""Simulator backends: the staged core and its vectorized fast path.

Three interchangeable engines drive the same front-end model (see
DESIGN.md §11):

* ``"reference"`` — the original per-cycle
  :class:`~repro.sim.simulator.Simulator`; the correctness anchor.
* ``"staged"`` — :class:`~repro.sim.stages.core.StagedSimulator`: stage
  modules over array-of-struct state, event-skipping, and a monolithic
  passive-prefetcher loop.
* ``"numpy"`` — :class:`~repro.sim.stages.vector.NumpySimulator`: the
  staged core plus vectorized batch processing of branch-free all-hit
  spans; falls back to ``"staged"`` when numpy is not importable.

Every backend produces bit-identical
:meth:`~repro.sim.stats.SimStats.signature` results; only wall-clock
telemetry differs.  :func:`resolve_backend` picks the engine from the
config field and the ``REPRO_BACKEND`` environment variable.
"""

from __future__ import annotations

import logging
import os
from typing import Optional, Tuple, Type

from repro.sim.config import BACKENDS

from repro.sim.stages.core import StagedSimulator
from repro.sim.stages.state import FastCache, FastLine, FastMetaCache

__all__ = [
    "StagedSimulator",
    "FastCache",
    "FastLine",
    "FastMetaCache",
    "resolve_backend",
    "backend_from_env",
]

logger = logging.getLogger(__name__)

#: Backend choices already announced via the startup log line, so a
#: sweep of hundreds of runs logs each distinct selection once.
_announced: set = set()


def backend_from_env() -> Optional[str]:
    """The ``REPRO_BACKEND`` override, validated; None when unset.

    Raises:
        ValueError: the variable names an unknown backend.
    """
    raw = os.environ.get("REPRO_BACKEND")
    if raw is None or not raw.strip():
        return None
    value = raw.strip().lower()
    if value not in BACKENDS:
        raise ValueError(
            f"REPRO_BACKEND must be one of {', '.join(BACKENDS)}, "
            f"got {raw!r} (e.g. REPRO_BACKEND=staged)"
        ) from None
    return value


def _select(config_backend: Optional[str]) -> Tuple[str, str]:
    """(requested backend, why) from the config field and the env."""
    if config_backend is not None and config_backend != "reference":
        return config_backend, "config"
    env_backend = backend_from_env()
    if env_backend is not None:
        return env_backend, "REPRO_BACKEND"
    return "reference", "default"


def resolve_backend(config_backend: Optional[str] = None) -> Type:
    """Map a backend choice to a simulator class.

    An explicit non-default ``config.backend`` wins; otherwise the
    ``REPRO_BACKEND`` environment variable fills in; otherwise the
    reference engine runs.  Requesting ``"numpy"`` without numpy
    installed falls back to ``"staged"`` (logged, never an error: the
    backends are bit-identical, so the fallback only affects speed).
    """
    requested, source = _select(config_backend)
    chosen = requested
    note = ""
    if requested == "numpy":
        from repro.sim.stages import vector

        if not vector.NUMPY_AVAILABLE:
            chosen = "staged"
            note = " (numpy unavailable: fell back to staged)"
    key = (requested, source, chosen)
    if key not in _announced:
        _announced.add(key)
        logger.info("simulator backend: %s via %s%s", chosen, source, note)
    if chosen == "reference":
        from repro.sim.simulator import Simulator

        return Simulator
    if chosen == "staged":
        return StagedSimulator
    from repro.sim.stages import vector

    return vector.NumpySimulator
