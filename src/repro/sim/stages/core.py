"""The staged, batch-oriented simulator core (``backend="staged"``).

Same architecture model, different engine.  The reference
:class:`~repro.sim.simulator.Simulator` dispatches four bound methods per
cycle over per-object structures; this core:

* keeps the FTQ as **parallel arrays** (``fq_line`` / ``fq_remaining`` /
  ``fq_ready`` / ``fq_penalty`` / ``fq_data`` plus a ``fq_head`` cursor)
  so the hot loop reads plain list slots instead of chasing
  ``_FtqBlock`` attributes, and blocks are addressed by index;
* uses the dict-ordered caches of :mod:`repro.sim.stages.state` (O(1)
  eviction instead of a ``min()`` scan per insertion — the reference's
  single hottest operation);
* runs an **event-skipping loop**: each stage call is guarded by a cheap
  precondition (fill heap peeked, PQ non-empty, predict unblocked, FTQ
  head ready) that is exact — a skipped call is one that would have
  returned without side effects — and idle spans jump straight to the
  next event supplied by the MSHR's fill heap;
* batches passive-prefetcher stretches through one monolithic loop
  (:meth:`StagedSimulator._run_passive`) with every structure hoisted
  into locals and counters accumulated out-of-band.

Bit-identity with the reference is the contract (enforced across every
workload family x config by ``tests/test_backends.py``): every
architectural counter, including per-cache read/write counts, matches
exactly.  Observability keeps working: a ``tracer`` sees the identical
event stream (the guarded stage path emits at the same points), a
``profiler`` gets all four ``SIM_PHASES`` registered with per-call
timings of the non-skipped calls, and a ``checker`` gets the same
``attach`` / ``check_fill`` / ``final_check`` hooks (the facade exposes
``l1i`` / ``mshr`` / ``pq`` / ``stats`` / ``cycle`` like the reference).
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.prefetchers.base import FillInfo
from repro.sim.branch_predictor import make_direction_predictor
from repro.sim.btb import BranchTargetBuffer
from repro.sim.config import SimConfig
from repro.sim.fetchunits import FetchUnit, build_fetch_units
from repro.sim.indirect import IndirectTargetCache
from repro.sim.memory import MemoryHierarchy, PageMapper
from repro.sim.mshr import MshrFile
from repro.sim.prefetch_queue import PrefetchQueue
from repro.sim.ras import ReturnAddressStack
from repro.sim.stats import SimStats
from repro.workloads.trace import BranchType, Trace

from repro.sim.stages.state import FastCache, FastMetaCache, install_fast_hierarchy
from repro.sim.stages.fills import run_fills
from repro.sim.stages.predict import run_predict
from repro.sim.stages.issue import collect, run_issue
from repro.sim.stages.retire import run_retire

__all__ = ["StagedSimulator"]

#: Compact the FTQ arrays once the consumed prefix exceeds this length.
#: MSHR waiters and the blocked-branch marker hold absolute indices, so
#: compaction only runs when neither is outstanding.
_COMPACT_THRESHOLD = 1 << 16


class StagedSimulator:
    """Drives one trace through the staged front-end core."""

    backend_name = "staged"

    def __init__(
        self,
        trace: Trace,
        prefetcher: Any,
        config: Optional[SimConfig] = None,
        units: Optional[Sequence[FetchUnit]] = None,
        tracer: Optional[Any] = None,
        profiler: Optional[Any] = None,
        checker: Optional[Any] = None,
    ) -> None:
        self.config = config or SimConfig()
        self.trace = trace
        self.prefetcher = prefetcher
        self.tracer = tracer
        self.profiler = profiler
        self.checker = checker
        self.units: Sequence[FetchUnit] = (
            units if units is not None else build_fetch_units(trace, self.config.line_size)
        )
        self.stats = SimStats()
        self.l1i = FastMetaCache(
            self.config.l1i_sets,
            self.config.l1i_ways,
            replacement=self.config.l1i_replacement,
        )
        self.l1d = FastCache(self.config.l1d_sets, self.config.l1d_ways)
        self.mshr = MshrFile(self.config.l1i_mshrs)
        self.pq = PrefetchQueue(self.config.prefetch_queue_size)
        self.memory = MemoryHierarchy(self.config, self.stats)
        install_fast_hierarchy(self.memory, self.config)
        self.gshare = make_direction_predictor(
            self.config.branch_predictor,
            self.config.gshare_bits,
            self.config.gshare_history,
        )
        self.btb = BranchTargetBuffer(self.config.btb_sets, self.config.btb_ways)
        self.ras = ReturnAddressStack(self.config.ras_size)
        self.itc = IndirectTargetCache(self.config.itc_bits, self.config.itc_history)
        self.mapper: Optional[PageMapper] = None
        if self.config.physical_addresses:
            self.mapper = PageMapper(
                self.config.physical_page_seed,
                self.config.page_size,
                self.config.line_size,
            )

        self.cycle = 0
        # Array-of-struct FTQ: parallel lists plus a consumed-head cursor.
        self.fq_line: List[int] = []
        self.fq_remaining: List[int] = []
        self.fq_ready: List[Optional[int]] = []
        self.fq_penalty: List[int] = []
        self.fq_data: List[Any] = []
        self.fq_head = 0
        self._waiting: Dict[int, List[int]] = {}
        self._pred_idx = 0
        self._pred_stall_until = 0
        self._pred_blocked_idx: Optional[int] = None
        self._retired = 0
        self._refresh_counter_refs()
        if checker is not None:
            checker.attach(self)

    def _refresh_counter_refs(self) -> None:
        """Re-bind per-cache counter objects (``stats.reset`` replaces them)."""
        self._l1i_counts = self.stats.cache_accesses["L1I"]
        self._l1d_counts = self.stats.cache_accesses["L1D"]

    # -- main loop -----------------------------------------------------------

    def run(self, warmup_instructions: int = 0) -> SimStats:
        """Simulate the whole trace; returns the (post-warmup) statistics."""
        started = time.perf_counter()
        warm_pending = warmup_instructions > 0
        total_units = len(self.units)
        fills = run_fills
        predict = run_predict
        issue = run_issue
        retire = run_retire
        if self.profiler is not None:
            # wrap() pre-registers every phase key, so phase_seconds
            # always covers all SIM_PHASES even when guards skip calls.
            fills = self.profiler.wrap("fills", fills)
            predict = self.profiler.wrap("predict", predict)
            issue = self.profiler.wrap("issue", issue)
            retire = self.profiler.wrap("retire", retire)
        fq_line = self.fq_line
        fq_ready = self.fq_ready
        pq_queue = self.pq._queue
        mshr_heap = self.mshr._heap
        ftq_size = self.config.ftq_size
        retire_width = self.config.retire_width
        stats = self.stats
        # The monolithic streak loops handle everything themselves
        # (fills, misses, branches, stalls — plus prefetcher hooks and
        # PQ issue on the active variant) when no tracer/profiler can
        # observe the run and addresses are virtual.
        streak = None
        if self.tracer is None and self.profiler is None and self.mapper is None:
            if not self.prefetcher.is_ideal:
                streak = (
                    self._run_passive
                    if self.prefetcher.is_passive
                    else self._run_active
                )
        while self._pred_idx < total_units or self.fq_head < len(fq_line):
            if streak is not None:
                limit = (
                    warmup_instructions - retire_width if warm_pending else sys.maxsize
                )
                if self._retired < limit:
                    # Runs whole cycles until the warm-up margin or the
                    # end of the trace; the per-cycle loop below then
                    # crosses the warm-up boundary exactly.
                    streak(limit)
                    continue
            cycle = self.cycle
            progress = False
            if mshr_heap and mshr_heap[0][0] <= cycle:
                progress = fills(self)
            if (
                self._pred_blocked_idx is None
                and cycle >= self._pred_stall_until
                and self._pred_idx < total_units
                and len(fq_line) - self.fq_head < ftq_size
            ):
                progress = predict(self) or progress
            if pq_queue:
                progress = issue(self) or progress
            retired_now = 0
            if self.fq_head < len(fq_line):
                head_ready = fq_ready[self.fq_head]
                if head_ready is not None and head_ready <= cycle:
                    retired_now = retire(self)

            if warm_pending and self._retired >= warmup_instructions:
                warm_pending = False
                self._reset_stats_for_measurement()
                stats = self.stats

            next_cycle = (
                cycle + 1 if (progress or retired_now) else self._next_event_cycle()
            )
            if retired_now == 0:
                span = next_cycle - cycle
                if self.fq_head < len(fq_line):
                    stats.fetch_stall_cycles += span
                else:
                    stats.ftq_empty_cycles += span
            self.cycle = next_cycle
            self._maybe_compact()
        stats.cycles = self.cycle - self._measure_start_cycle
        stats.instructions = self._retired - self._measure_start_retired
        stats.wall_seconds = time.perf_counter() - started
        if self.profiler is not None:
            stats.phase_seconds = self.profiler.snapshot()
        if self.checker is not None:
            self.checker.final_check(self)
        return stats

    _measure_start_cycle = 0
    _measure_start_retired = 0

    def _reset_stats_for_measurement(self) -> None:
        """End of warm-up: zero the counters, keep all structures warm."""
        self.stats.reset()
        self._refresh_counter_refs()
        self._measure_start_cycle = self.cycle
        self._measure_start_retired = self._retired
        if self.tracer is not None:
            self.tracer.clear()

    def _next_event_cycle(self) -> int:
        """Earliest cycle at which anything can happen, without allocating."""
        cycle = self.cycle
        heap = self.mshr._heap
        best = heap[0][0] if heap else None
        stall = self._pred_stall_until
        if (
            stall > cycle
            and self._pred_blocked_idx is None
            and (best is None or stall < best)
        ):
            best = stall
        if self.fq_head < len(self.fq_line):
            head_ready = self.fq_ready[self.fq_head]
            if (
                head_ready is not None
                and head_ready > cycle
                and (best is None or head_ready < best)
            ):
                best = head_ready
        if best is None or best <= cycle:
            return cycle + 1
        return best

    def _maybe_compact(self) -> None:
        """Drop the consumed FTQ prefix once it is long enough to matter."""
        head = self.fq_head
        if (
            head >= _COMPACT_THRESHOLD
            and not self._waiting
            and self._pred_blocked_idx is None
        ):
            del self.fq_line[:head]
            del self.fq_remaining[:head]
            del self.fq_ready[:head]
            del self.fq_penalty[:head]
            del self.fq_data[:head]
            self.fq_head = 0

    # -- the monolithic passive-prefetcher loop ------------------------------

    def _run_passive(
        self,
        limit: int,
        max_cycles: Optional[int] = None,
        until_quiesce: bool = False,
    ) -> None:
        """Batch-run cycles for a passive prefetcher with no observers.

        Preconditions (established by ``run``): no tracer, no profiler,
        ``prefetcher.is_passive`` (every hook a no-op returning ()), not
        ideal, virtual addressing.  Under those, the PQ stays empty, no
        prefetch ever enters the MSHR or the L1I, and no hook needs to
        see a cycle number — so fills, demand accesses, branches, and
        retire can run in one loop with every structure in a local and
        the hot counters accumulated out-of-band (flushed on exit).

        Processes whole cycles until the trace is done or ``_retired``
        reaches ``limit`` (the warm-up *margin*: ``run`` crosses the
        exact boundary with per-cycle steps).  The sanitizer's
        ``check_fill`` still fires per fill; it reads structure state,
        never counters, so the out-of-band accumulation is invisible to
        it.  Cold paths (fills, miss allocation) go through the real
        ``MshrFile`` / ``FastMetaCache`` methods; only the dominant hit
        and retire paths are inlined.

        ``max_cycles`` bounds the number of loop iterations so the numpy
        backend can interleave scalar stretches with vectorized span
        processing; None (the default) runs to the limit or trace end.
        ``until_quiesce`` additionally returns at the first top-of-cycle
        state where the numpy fast path could engage (MSHR drained, no
        waiter, predict unblocked) — but only after at least one miss
        was allocated here, so a caller whose span check just rejected
        this very state always makes progress before re-checking.
        """
        config = self.config
        stats = self.stats
        units = self.units
        total = len(units)
        mshr = self.mshr
        mshr_entries = mshr._entries
        mshr_heap = mshr._heap
        mshr_capacity = mshr.capacity
        mshr_pop_ready = mshr.pop_ready
        mshr_allocate = mshr.allocate
        request_instruction = self.memory.request_instruction
        checker = self.checker
        check_fill = checker.check_fill if checker is not None else None
        l1i = self.l1i
        l1i_sets = l1i._sets
        l1i_nsets = l1i.sets
        l1i_lru = l1i._lru
        l1i_insert = l1i.insert
        l1d = self.l1d
        l1d_sets = l1d._sets
        l1d_nsets = l1d.sets
        l1d_ways = l1d.ways
        l1d_members = l1d._members
        l1i_counts = self._l1i_counts
        l1d_counts = self._l1d_counts
        # The L2 -> LLC -> DRAM walk is inlined below (same accounting as
        # ``MemoryHierarchy._access``); hoist the fast caches' internals.
        l2 = self.memory.l2
        llc = self.memory.llc
        l2_sets = l2._sets
        l2_nsets = l2.sets
        l2_ways = l2.ways
        l2_members = l2._members
        llc_sets = llc._sets
        llc_nsets = llc.sets
        llc_ways = llc.ways
        llc_members = llc._members
        waiting = self._waiting
        fq_line = self.fq_line
        fq_remaining = self.fq_remaining
        fq_ready = self.fq_ready
        fq_penalty = self.fq_penalty
        fq_data = self.fq_data
        head = self.fq_head
        gshare_predict = self.gshare.predict
        gshare_update = self.gshare.update
        btb_lookup = self.btb.lookup
        btb_update = self.btb.update
        itc_predict = self.itc.predict
        itc_update = self.itc.update
        ras_pop = self.ras.pop
        ras_push = self.ras.push
        latency = config.l1i_latency
        fetch_width = config.fetch_lines_per_cycle
        ftq_size = config.ftq_size
        retire_width = config.retire_width
        decode_penalty = config.decode_redirect_penalty
        exec_penalty = config.exec_redirect_penalty
        CONDITIONAL = BranchType.CONDITIONAL
        DIRECT_JUMP = BranchType.DIRECT_JUMP
        DIRECT_CALL = BranchType.DIRECT_CALL
        INDIRECT_JUMP = BranchType.INDIRECT_JUMP
        INDIRECT_CALL = BranchType.INDIRECT_CALL
        RETURN = BranchType.RETURN

        cycle = self.cycle
        pred_idx = self._pred_idx
        stall_until = self._pred_stall_until
        blocked_idx = self._pred_blocked_idx
        retired_total = self._retired
        cycles_budget = sys.maxsize if max_cycles is None else max_cycles
        had_alloc = False

        # Out-of-band counter accumulation (flushed on exit).
        demand_accesses = 0
        demand_hits = 0
        demand_misses = 0
        merges = 0
        l1i_reads = 0
        l1i_writes = 0
        l1d_reads = 0
        l1d_writes = 0
        l2_reads = 0
        l2_writes = 0
        llc_reads = 0
        llc_writes = 0
        branches = 0
        mispredicts = 0
        btb_redirects = 0
        mshr_full_events = 0
        useful = 0
        wrong = 0
        late = 0
        fetch_stall = 0
        ftq_empty = 0

        while pred_idx < total or head < len(fq_line):
            if retired_total >= limit:
                break
            progress = False

            # -- phase 1: fills
            if mshr_heap and mshr_heap[0][0] <= cycle:
                ready_at = cycle + latency
                for entry in mshr_pop_ready(cycle):
                    line_addr = entry.line_addr
                    victim = l1i_insert(line_addr)
                    l1i_writes += 1
                    if victim is not None and victim.prefetched:
                        # Unreachable for a passive prefetcher (no
                        # prefetch ever fills); kept for the exact
                        # reference accounting.
                        wrong += 1
                    line = l1i_sets[line_addr % l1i_nsets][line_addr]
                    line.prefetched = not entry.is_demand
                    line.src_meta = entry.src_meta
                    if check_fill is not None:
                        check_fill(self, line_addr)
                    waiters = waiting.pop(line_addr, None)
                    if waiters:
                        for w in waiters:
                            fq_ready[w] = ready_at
                    progress = True

            # -- phase 3: predict (phase 2, issue, is a no-op: the PQ
            # stays empty under a passive prefetcher)
            if blocked_idx is None and cycle >= stall_until and pred_idx < total:
                for _ in range(fetch_width):
                    if pred_idx >= total or len(fq_line) - head >= ftq_size:
                        break
                    unit = units[pred_idx]
                    line_addr = unit.line_addr
                    cache_set = l1i_sets[line_addr % l1i_nsets]
                    line = cache_set.get(line_addr)
                    if line is not None:
                        if l1i_lru:
                            del cache_set[line_addr]
                            cache_set[line_addr] = line
                        l1i_reads += 1
                        demand_accesses += 1
                        demand_hits += 1
                        if line.prefetched:
                            line.prefetched = False
                            useful += 1
                        ready_val: Optional[int] = cycle + latency
                    else:
                        in_flight = mshr_entries.get(line_addr)
                        if in_flight is None and len(mshr_entries) >= mshr_capacity:
                            # MSHR full: retry the same unit next cycle.
                            mshr_full_events += 1
                            break
                        l1i_reads += 1
                        demand_accesses += 1
                        demand_misses += 1
                        if in_flight is not None:
                            if not in_flight.is_demand:
                                in_flight.mark_demanded(cycle)
                                late += 1
                            else:
                                merges += 1
                        else:
                            fill_ready = request_instruction(line_addr, cycle + latency)
                            mshr_allocate(line_addr, cycle, fill_ready, True, None)
                            had_alloc = True
                        ready_val = None
                    idx = len(fq_line)
                    fq_line.append(line_addr)
                    fq_remaining.append(unit.n_instrs)
                    fq_ready.append(ready_val)
                    fq_penalty.append(0)
                    fq_data.append(unit.data_lines)
                    if ready_val is None:
                        waiting.setdefault(line_addr, []).append(idx)
                    progress = True
                    pred_idx += 1
                    branch = unit.branch
                    if branch is not None:
                        pc, branch_type, taken, target = branch
                        branches += 1
                        penalty = 0
                        if branch_type == CONDITIONAL:
                            predicted_taken = gshare_predict(pc)
                            gshare_update(pc, taken)
                            if predicted_taken != taken:
                                penalty = exec_penalty
                                mispredicts += 1
                            elif taken:
                                if btb_lookup(pc) is None:
                                    penalty = decode_penalty
                                    btb_redirects += 1
                                btb_update(pc, target)
                        elif branch_type == DIRECT_JUMP or branch_type == DIRECT_CALL:
                            if btb_lookup(pc) is None:
                                penalty = decode_penalty
                                btb_redirects += 1
                            btb_update(pc, target)
                        elif (
                            branch_type == INDIRECT_JUMP
                            or branch_type == INDIRECT_CALL
                        ):
                            if itc_predict(pc) != target:
                                penalty = exec_penalty
                                mispredicts += 1
                            itc_update(pc, target)
                        elif branch_type == RETURN:
                            if ras_pop() != target:
                                penalty = exec_penalty
                                mispredicts += 1
                        if branch_type == DIRECT_CALL or branch_type == INDIRECT_CALL:
                            ras_push(pc + 4)
                        if penalty:
                            fq_penalty[idx] = penalty
                            blocked_idx = idx
                            break

            # -- phase 4: retire
            retired_now = 0
            tail = len(fq_line)
            if head < tail:
                head_ready = fq_ready[head]
                if head_ready is not None and head_ready <= cycle:
                    budget = retire_width
                    while budget > 0 and head < tail:
                        head_ready = fq_ready[head]
                        if head_ready is None or head_ready > cycle:
                            break
                        remaining = fq_remaining[head]
                        if remaining <= budget:
                            budget -= remaining
                            retired_now += remaining
                            penalty = fq_penalty[head]
                            if penalty:
                                stall_until = cycle + penalty
                                if blocked_idx == head:
                                    blocked_idx = None
                            data_lines = fq_data[head]
                            if data_lines:
                                for data_line, is_store in data_lines:
                                    if is_store:
                                        l1d_writes += 1
                                    else:
                                        l1d_reads += 1
                                    data_set = l1d_sets[data_line % l1d_nsets]
                                    if data_line in data_set:
                                        del data_set[data_line]
                                        data_set[data_line] = True
                                    else:
                                        # Inline L2 -> LLC -> DRAM walk
                                        # (``MemoryHierarchy._access``);
                                        # the completion cycle is unused
                                        # on the data side.
                                        l2_reads += 1
                                        l2_set = l2_sets[data_line % l2_nsets]
                                        if data_line in l2_set:
                                            del l2_set[data_line]
                                            l2_set[data_line] = True
                                        else:
                                            llc_reads += 1
                                            llc_set = llc_sets[
                                                data_line % llc_nsets
                                            ]
                                            if data_line in llc_set:
                                                del llc_set[data_line]
                                                llc_set[data_line] = True
                                            else:
                                                if len(llc_set) >= llc_ways:
                                                    v = next(iter(llc_set))
                                                    del llc_set[v]
                                                    if llc_members is not None:
                                                        llc_members.discard(v)
                                                llc_set[data_line] = True
                                                if llc_members is not None:
                                                    llc_members.add(data_line)
                                                llc._version += 1
                                                llc_writes += 1
                                            if len(l2_set) >= l2_ways:
                                                v = next(iter(l2_set))
                                                del l2_set[v]
                                                if l2_members is not None:
                                                    l2_members.discard(v)
                                            l2_set[data_line] = True
                                            if l2_members is not None:
                                                l2_members.add(data_line)
                                            l2._version += 1
                                            l2_writes += 1
                                        if len(data_set) >= l1d_ways:
                                            victim_addr = next(iter(data_set))
                                            del data_set[victim_addr]
                                            if l1d_members is not None:
                                                l1d_members.discard(victim_addr)
                                        data_set[data_line] = True
                                        if l1d_members is not None:
                                            l1d_members.add(data_line)
                                        l1d._version += 1
                                        l1d_writes += 1
                                fq_data[head] = ()  # release; the block is done
                            head += 1
                        else:
                            fq_remaining[head] = remaining - budget
                            retired_now += budget
                            budget = 0
                    retired_total += retired_now

            # -- cycle advance + stall attribution
            if progress or retired_now:
                next_cycle = cycle + 1
            else:
                best = mshr_heap[0][0] if mshr_heap else None
                if (
                    stall_until > cycle
                    and blocked_idx is None
                    and (best is None or stall_until < best)
                ):
                    best = stall_until
                if head < len(fq_line):
                    head_ready = fq_ready[head]
                    if (
                        head_ready is not None
                        and head_ready > cycle
                        and (best is None or head_ready < best)
                    ):
                        best = head_ready
                next_cycle = best if (best is not None and best > cycle) else cycle + 1
            if retired_now == 0:
                span = next_cycle - cycle
                if head < len(fq_line):
                    fetch_stall += span
                else:
                    ftq_empty += span
            cycle = next_cycle
            cycles_budget -= 1
            if cycles_budget <= 0:
                break

            if head >= _COMPACT_THRESHOLD and not waiting and blocked_idx is None:
                del fq_line[:head]
                del fq_remaining[:head]
                del fq_ready[:head]
                del fq_penalty[:head]
                del fq_data[:head]
                head = 0

            if (
                until_quiesce
                and had_alloc
                and not mshr_entries
                and not waiting
                and blocked_idx is None
            ):
                break

        # -- flush locals back into the shared state
        self.cycle = cycle
        self._pred_idx = pred_idx
        self._pred_stall_until = stall_until
        self._pred_blocked_idx = blocked_idx
        self._retired = retired_total
        self.fq_head = head
        stats.l1i_demand_accesses += demand_accesses
        stats.l1i_demand_hits += demand_hits
        stats.l1i_demand_misses += demand_misses
        stats.l1i_mshr_merges += merges
        stats.useful_prefetches += useful
        stats.late_prefetches += late
        stats.wrong_prefetches += wrong
        stats.branches += branches
        stats.branch_mispredictions += mispredicts
        stats.btb_miss_redirects += btb_redirects
        stats.mshr_full_events += mshr_full_events
        stats.fetch_stall_cycles += fetch_stall
        stats.ftq_empty_cycles += ftq_empty
        l1i_counts.reads += l1i_reads
        l1i_counts.writes += l1i_writes
        l1d_counts.reads += l1d_reads
        l1d_counts.writes += l1d_writes
        l2_counts = stats.cache_accesses["L2C"]
        l2_counts.reads += l2_reads
        l2_counts.writes += l2_writes
        llc_counts = stats.cache_accesses["LLC"]
        llc_counts.reads += llc_reads
        llc_counts.writes += llc_writes

    # -- the monolithic active-prefetcher loop -------------------------------

    def _run_active(self, limit: int, max_cycles: Optional[int] = None) -> None:
        """Batch-run cycles for an *active* prefetcher with no observers.

        Same contract as :meth:`_run_passive` plus the hook traffic an
        active prefetcher generates: ``on_fill`` / ``on_demand_access``
        / ``on_branch`` / ``on_prefetch_useful`` / ``on_prefetch_late``
        / ``on_evict_unused`` fire at the reference call sites with the
        live cycle, returned requests go through the shared
        :func:`~repro.sim.stages.issue.collect` admission filter
        (skipped for empty returns — a no-op in the reference too), and
        the PQ issue phase runs inline, including the demand-reserve
        MSHR limit.  Counters this loop owns are accumulated out-of-band
        and flushed on exit; the counters ``collect`` updates go through
        ``stats`` directly, so the two sets never overlap.
        """
        config = self.config
        stats = self.stats
        units = self.units
        total = len(units)
        prefetcher = self.prefetcher
        on_fill = prefetcher.on_fill
        on_demand_access = prefetcher.on_demand_access
        on_branch = prefetcher.on_branch
        on_prefetch_useful = prefetcher.on_prefetch_useful
        on_prefetch_late = prefetcher.on_prefetch_late
        on_evict_unused = prefetcher.on_evict_unused
        mshr = self.mshr
        mshr_entries = mshr._entries
        mshr_heap = mshr._heap
        mshr_capacity = mshr.capacity
        mshr_pop_ready = mshr.pop_ready
        mshr_allocate = mshr.allocate
        request_instruction = self.memory.request_instruction
        checker = self.checker
        check_fill = checker.check_fill if checker is not None else None
        pq = self.pq
        pq_queue = pq._queue
        pq_pop = pq.pop
        issue_width = config.prefetch_issue_width
        mshr_limit = mshr_capacity - config.mshr_demand_reserve
        l1i = self.l1i
        l1i_sets = l1i._sets
        l1i_nsets = l1i.sets
        l1i_lru = l1i._lru
        l1i_insert = l1i.insert
        l1d = self.l1d
        l1d_sets = l1d._sets
        l1d_nsets = l1d.sets
        l1d_ways = l1d.ways
        l1d_members = l1d._members
        l1i_counts = self._l1i_counts
        l1d_counts = self._l1d_counts
        l2 = self.memory.l2
        llc = self.memory.llc
        l2_sets = l2._sets
        l2_nsets = l2.sets
        l2_ways = l2.ways
        l2_members = l2._members
        llc_sets = llc._sets
        llc_nsets = llc.sets
        llc_ways = llc.ways
        llc_members = llc._members
        waiting = self._waiting
        fq_line = self.fq_line
        fq_remaining = self.fq_remaining
        fq_ready = self.fq_ready
        fq_penalty = self.fq_penalty
        fq_data = self.fq_data
        head = self.fq_head
        gshare_predict = self.gshare.predict
        gshare_update = self.gshare.update
        btb_lookup = self.btb.lookup
        btb_update = self.btb.update
        itc_predict = self.itc.predict
        itc_update = self.itc.update
        ras_pop = self.ras.pop
        ras_push = self.ras.push
        latency = config.l1i_latency
        fetch_width = config.fetch_lines_per_cycle
        ftq_size = config.ftq_size
        retire_width = config.retire_width
        decode_penalty = config.decode_redirect_penalty
        exec_penalty = config.exec_redirect_penalty
        CONDITIONAL = BranchType.CONDITIONAL
        DIRECT_JUMP = BranchType.DIRECT_JUMP
        DIRECT_CALL = BranchType.DIRECT_CALL
        INDIRECT_JUMP = BranchType.INDIRECT_JUMP
        INDIRECT_CALL = BranchType.INDIRECT_CALL
        RETURN = BranchType.RETURN

        cycle = self.cycle
        pred_idx = self._pred_idx
        stall_until = self._pred_stall_until
        blocked_idx = self._pred_blocked_idx
        retired_total = self._retired
        cycles_budget = sys.maxsize if max_cycles is None else max_cycles

        demand_accesses = 0
        demand_hits = 0
        demand_misses = 0
        merges = 0
        l1i_reads = 0
        l1i_writes = 0
        l1d_reads = 0
        l1d_writes = 0
        l2_reads = 0
        l2_writes = 0
        llc_reads = 0
        llc_writes = 0
        branches = 0
        mispredicts = 0
        btb_redirects = 0
        mshr_full_events = 0
        useful = 0
        wrong = 0
        late = 0
        stale_in_cache = 0
        stale_in_flight = 0
        sent = 0
        fetch_stall = 0
        ftq_empty = 0

        while pred_idx < total or head < len(fq_line):
            if retired_total >= limit:
                break
            progress = False

            # -- phase 1: fills (with prefetch feedback hooks)
            if mshr_heap and mshr_heap[0][0] <= cycle:
                ready_at = cycle + latency
                for entry in mshr_pop_ready(cycle):
                    line_addr = entry.line_addr
                    victim = l1i_insert(line_addr)
                    l1i_writes += 1
                    if victim is not None and victim.prefetched:
                        wrong += 1
                        on_evict_unused(victim.line_addr, victim.src_meta, cycle)
                    line = l1i_sets[line_addr % l1i_nsets][line_addr]
                    is_demand = entry.is_demand
                    line.prefetched = not is_demand
                    line.src_meta = entry.src_meta
                    reqs = on_fill(
                        FillInfo(
                            line_addr=line_addr,
                            fill_cycle=cycle,
                            issue_cycle=entry.issue_cycle,
                            is_demand=is_demand,
                            was_prefetch=entry.was_prefetch,
                            demand_cycle=entry.demand_cycle,
                            src_meta=entry.src_meta,
                        )
                    )
                    if reqs:
                        collect(self, reqs)
                    if check_fill is not None:
                        check_fill(self, line_addr)
                    waiters = waiting.pop(line_addr, None)
                    if waiters:
                        for w in waiters:
                            fq_ready[w] = ready_at
                    progress = True

            # -- phase 3: predict (demand accesses + branch prediction,
            # with on_demand_access / on_branch hooks)
            if blocked_idx is None and cycle >= stall_until and pred_idx < total:
                for _ in range(fetch_width):
                    if pred_idx >= total or len(fq_line) - head >= ftq_size:
                        break
                    unit = units[pred_idx]
                    line_addr = unit.line_addr
                    cache_set = l1i_sets[line_addr % l1i_nsets]
                    line = cache_set.get(line_addr)
                    if line is not None:
                        if l1i_lru:
                            del cache_set[line_addr]
                            cache_set[line_addr] = line
                        l1i_reads += 1
                        demand_accesses += 1
                        demand_hits += 1
                        if line.prefetched:
                            line.prefetched = False
                            useful += 1
                            on_prefetch_useful(line_addr, line.src_meta, cycle)
                        reqs = on_demand_access(line_addr, True, cycle)
                        if reqs:
                            collect(self, reqs)
                        ready_val: Optional[int] = cycle + latency
                    else:
                        in_flight = mshr_entries.get(line_addr)
                        if in_flight is None and len(mshr_entries) >= mshr_capacity:
                            # MSHR full: retry the same unit next cycle.
                            mshr_full_events += 1
                            break
                        l1i_reads += 1
                        demand_accesses += 1
                        demand_misses += 1
                        if in_flight is not None:
                            if not in_flight.is_demand:
                                in_flight.mark_demanded(cycle)
                                late += 1
                                on_prefetch_late(
                                    line_addr, in_flight.src_meta, cycle
                                )
                            else:
                                merges += 1
                        else:
                            fill_ready = request_instruction(
                                line_addr, cycle + latency
                            )
                            mshr_allocate(line_addr, cycle, fill_ready, True, None)
                        reqs = on_demand_access(line_addr, False, cycle)
                        if reqs:
                            collect(self, reqs)
                        ready_val = None
                    idx = len(fq_line)
                    fq_line.append(line_addr)
                    fq_remaining.append(unit.n_instrs)
                    fq_ready.append(ready_val)
                    fq_penalty.append(0)
                    fq_data.append(unit.data_lines)
                    if ready_val is None:
                        waiting.setdefault(line_addr, []).append(idx)
                    progress = True
                    pred_idx += 1
                    branch = unit.branch
                    if branch is not None:
                        pc, branch_type, taken, target = branch
                        branches += 1
                        penalty = 0
                        if branch_type == CONDITIONAL:
                            predicted_taken = gshare_predict(pc)
                            gshare_update(pc, taken)
                            if predicted_taken != taken:
                                penalty = exec_penalty
                                mispredicts += 1
                            elif taken:
                                if btb_lookup(pc) is None:
                                    penalty = decode_penalty
                                    btb_redirects += 1
                                btb_update(pc, target)
                        elif branch_type == DIRECT_JUMP or branch_type == DIRECT_CALL:
                            if btb_lookup(pc) is None:
                                penalty = decode_penalty
                                btb_redirects += 1
                            btb_update(pc, target)
                        elif (
                            branch_type == INDIRECT_JUMP
                            or branch_type == INDIRECT_CALL
                        ):
                            if itc_predict(pc) != target:
                                penalty = exec_penalty
                                mispredicts += 1
                            itc_update(pc, target)
                        elif branch_type == RETURN:
                            if ras_pop() != target:
                                penalty = exec_penalty
                                mispredicts += 1
                        if branch_type == DIRECT_CALL or branch_type == INDIRECT_CALL:
                            ras_push(pc + 4)
                        reqs = on_branch(pc, branch_type, taken, target, cycle)
                        if reqs:
                            collect(self, reqs)
                        if penalty:
                            fq_penalty[idx] = penalty
                            blocked_idx = idx
                            break

            # -- phase 2 (ordered after predict, as in the guarded loop):
            # prefetch issue from the PQ into the memory hierarchy
            if pq_queue:
                for _ in range(issue_width):
                    if not pq_queue:
                        break
                    line_addr, src_meta = pq_queue[0]
                    l1i_reads += 1
                    if line_addr in l1i_sets[line_addr % l1i_nsets]:
                        pq_pop()
                        stale_in_cache += 1
                        continue
                    if mshr_entries.get(line_addr) is not None:
                        pq_pop()
                        stale_in_flight += 1
                        continue
                    if len(mshr_entries) >= mshr_limit:
                        break
                    pq_pop()
                    fill_ready = request_instruction(line_addr, cycle)
                    mshr_allocate(line_addr, cycle, fill_ready, False, src_meta)
                    sent += 1
                    progress = True

            # -- phase 4: retire
            retired_now = 0
            tail = len(fq_line)
            if head < tail:
                head_ready = fq_ready[head]
                if head_ready is not None and head_ready <= cycle:
                    budget = retire_width
                    while budget > 0 and head < tail:
                        head_ready = fq_ready[head]
                        if head_ready is None or head_ready > cycle:
                            break
                        remaining = fq_remaining[head]
                        if remaining <= budget:
                            budget -= remaining
                            retired_now += remaining
                            penalty = fq_penalty[head]
                            if penalty:
                                stall_until = cycle + penalty
                                if blocked_idx == head:
                                    blocked_idx = None
                            data_lines = fq_data[head]
                            if data_lines:
                                for data_line, is_store in data_lines:
                                    if is_store:
                                        l1d_writes += 1
                                    else:
                                        l1d_reads += 1
                                    data_set = l1d_sets[data_line % l1d_nsets]
                                    if data_line in data_set:
                                        del data_set[data_line]
                                        data_set[data_line] = True
                                    else:
                                        # Inline L2 -> LLC -> DRAM walk
                                        # (``MemoryHierarchy._access``).
                                        l2_reads += 1
                                        l2_set = l2_sets[data_line % l2_nsets]
                                        if data_line in l2_set:
                                            del l2_set[data_line]
                                            l2_set[data_line] = True
                                        else:
                                            llc_reads += 1
                                            llc_set = llc_sets[
                                                data_line % llc_nsets
                                            ]
                                            if data_line in llc_set:
                                                del llc_set[data_line]
                                                llc_set[data_line] = True
                                            else:
                                                if len(llc_set) >= llc_ways:
                                                    v = next(iter(llc_set))
                                                    del llc_set[v]
                                                    if llc_members is not None:
                                                        llc_members.discard(v)
                                                llc_set[data_line] = True
                                                if llc_members is not None:
                                                    llc_members.add(data_line)
                                                llc._version += 1
                                                llc_writes += 1
                                            if len(l2_set) >= l2_ways:
                                                v = next(iter(l2_set))
                                                del l2_set[v]
                                                if l2_members is not None:
                                                    l2_members.discard(v)
                                            l2_set[data_line] = True
                                            if l2_members is not None:
                                                l2_members.add(data_line)
                                            l2._version += 1
                                            l2_writes += 1
                                        if len(data_set) >= l1d_ways:
                                            victim_addr = next(iter(data_set))
                                            del data_set[victim_addr]
                                            if l1d_members is not None:
                                                l1d_members.discard(victim_addr)
                                        data_set[data_line] = True
                                        if l1d_members is not None:
                                            l1d_members.add(data_line)
                                        l1d._version += 1
                                        l1d_writes += 1
                                fq_data[head] = ()  # release; the block is done
                            head += 1
                        else:
                            fq_remaining[head] = remaining - budget
                            retired_now += budget
                            budget = 0
                    retired_total += retired_now

            # -- cycle advance + stall attribution
            if progress or retired_now:
                next_cycle = cycle + 1
            else:
                best = mshr_heap[0][0] if mshr_heap else None
                if (
                    stall_until > cycle
                    and blocked_idx is None
                    and (best is None or stall_until < best)
                ):
                    best = stall_until
                if head < len(fq_line):
                    head_ready = fq_ready[head]
                    if (
                        head_ready is not None
                        and head_ready > cycle
                        and (best is None or head_ready < best)
                    ):
                        best = head_ready
                next_cycle = best if (best is not None and best > cycle) else cycle + 1
            if retired_now == 0:
                span = next_cycle - cycle
                if head < len(fq_line):
                    fetch_stall += span
                else:
                    ftq_empty += span
            cycle = next_cycle
            cycles_budget -= 1
            if cycles_budget <= 0:
                break

            if head >= _COMPACT_THRESHOLD and not waiting and blocked_idx is None:
                del fq_line[:head]
                del fq_remaining[:head]
                del fq_ready[:head]
                del fq_penalty[:head]
                del fq_data[:head]
                head = 0

        # -- flush locals back into the shared state
        self.cycle = cycle
        self._pred_idx = pred_idx
        self._pred_stall_until = stall_until
        self._pred_blocked_idx = blocked_idx
        self._retired = retired_total
        self.fq_head = head
        stats.l1i_demand_accesses += demand_accesses
        stats.l1i_demand_hits += demand_hits
        stats.l1i_demand_misses += demand_misses
        stats.l1i_mshr_merges += merges
        stats.useful_prefetches += useful
        stats.late_prefetches += late
        stats.wrong_prefetches += wrong
        stats.branches += branches
        stats.branch_mispredictions += mispredicts
        stats.btb_miss_redirects += btb_redirects
        stats.mshr_full_events += mshr_full_events
        stats.prefetches_stale_in_cache += stale_in_cache
        stats.prefetches_stale_in_flight += stale_in_flight
        stats.prefetches_sent += sent
        stats.fetch_stall_cycles += fetch_stall
        stats.ftq_empty_cycles += ftq_empty
        l1i_counts.reads += l1i_reads
        l1i_counts.writes += l1i_writes
        l1d_counts.reads += l1d_reads
        l1d_counts.writes += l1d_writes
        l2_counts = stats.cache_accesses["L2C"]
        l2_counts.reads += l2_reads
        l2_counts.writes += l2_writes
        llc_counts = stats.cache_accesses["LLC"]
        llc_counts.reads += llc_reads
        llc_counts.writes += llc_writes
