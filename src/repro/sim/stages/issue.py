"""Stage 2 of the staged core: prefetch issue (PQ -> memory hierarchy).

Also home of :func:`collect`, the PQ admission filter every stage that
receives prefetcher requests shares.  Both functions are line-for-line
equivalent to the reference ``Simulator._do_prefetch_issue`` /
``Simulator._collect``, operating on the staged core's fast structures;
tracer emissions and counter updates happen in the identical order.
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = ["run_issue", "collect"]


def run_issue(sim: Any) -> bool:
    """Issue up to ``prefetch_issue_width`` requests from the PQ.

    Safe to call unguarded: an empty PQ returns False with no side
    effects (the staged loop skips the call in that case).
    """
    pq = sim.pq
    if not pq._queue:
        return False
    issued = False
    stats = sim.stats
    l1i = sim.l1i
    mshr = sim.mshr
    l1i_counts = sim._l1i_counts
    tracer = sim.tracer
    cycle = sim.cycle
    # Prefetches may not occupy the last MSHR slots: demand misses
    # stall the predict stage when the file is full, so a prefetch
    # burst must not starve them.
    mshr_limit = mshr.capacity - sim.config.mshr_demand_reserve
    for _ in range(sim.config.prefetch_issue_width):
        item = pq.peek()
        if item is None:
            break
        line_addr, src_meta = item
        l1i_counts.reads += 1
        if l1i.contains(line_addr):
            pq.pop()
            stats.prefetches_stale_in_cache += 1
            if tracer is not None:
                tracer.emit("pf_stale", cycle, line_addr, src_meta, "in_cache")
            continue
        if mshr.lookup(line_addr) is not None:
            pq.pop()
            stats.prefetches_stale_in_flight += 1
            if tracer is not None:
                tracer.emit("pf_stale", cycle, line_addr, src_meta, "in_flight")
            continue
        if len(mshr) >= mshr_limit:
            break
        pq.pop()
        ready = sim.memory.request_instruction(line_addr, cycle)
        mshr.allocate(line_addr, cycle, ready, False, src_meta)
        stats.prefetches_sent += 1
        if tracer is not None:
            tracer.emit("pf_issued", cycle, line_addr, src_meta)
        issued = True
    return issued


def collect(sim: Any, requests: Iterable) -> None:
    """Accept prefetcher requests into the PQ (admission filtering).

    Requests for lines already resident or already in flight are
    filtered here so they do not occupy PQ slots.
    """
    stats = sim.stats
    l1i = sim.l1i
    mshr = sim.mshr
    pq = sim.pq
    tracer = sim.tracer
    cycle = sim.cycle
    for request in requests:
        stats.prefetches_requested += 1
        line_addr = request.line_addr
        if tracer is not None:
            tracer.emit("pf_requested", cycle, line_addr, request.src_meta)
        if l1i.contains(line_addr):
            stats.prefetches_dropped_in_cache += 1
            if tracer is not None:
                tracer.emit(
                    "pf_dropped", cycle, line_addr, request.src_meta, "in_cache"
                )
            continue
        if mshr.lookup(line_addr) is not None:
            stats.prefetches_dropped_in_flight += 1
            if tracer is not None:
                tracer.emit(
                    "pf_dropped", cycle, line_addr, request.src_meta, "in_flight"
                )
            continue
        if pq.push(line_addr, request.src_meta):
            stats.prefetches_enqueued += 1
            if tracer is not None:
                tracer.emit("pf_enqueued", cycle, line_addr, request.src_meta)
        else:
            stats.prefetches_dropped_pq_full += 1
            if tracer is not None:
                tracer.emit(
                    "pf_dropped", cycle, line_addr, request.src_meta, "pq_full"
                )
