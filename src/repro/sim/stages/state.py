"""Shared state structures for the staged simulator core.

The reference :class:`~repro.sim.cache.SetAssociativeCache` keeps an
explicit ``last_use`` stamp per line and picks victims with a full
``min()`` scan per insertion — the single hottest operation of the whole
simulator (the L1D/L2/LLC traffic of the retire stage alone is over half
of a run's wall clock).  The staged core replaces it with dict-ordered
sets: Python dicts preserve insertion order, so *moving a key to the
end* on every LRU touch makes the first key of the set dict the LRU
victim, O(1) instead of O(ways).

Equivalence argument (load-bearing — the backends must be bit-identical):

* the reference stamps every touch/refresh with a strictly increasing
  tick and evicts ``min(last_use)``; move-to-end reproduces exactly that
  total order, with the dict's front as the minimum;
* FIFO victims are picked by ``inserted_at``, which refreshes never
  update — so in FIFO mode touches don't move keys and insertion order
  alone decides the victim;
* re-inserting a resident line refreshes (LRU: moves to end) and never
  evicts, matching ``SetAssociativeCache.insert``.

Two flavours: :class:`FastMetaCache` carries the per-line prefetch
metadata the L1I needs (access bit + source token); :class:`FastCache`
stores bare membership for the L1D/L2/LLC, where no consumer ever reads
line metadata.  Both expose the subset of the reference cache API the
simulator and the sanitizer facade use (``lookup`` / ``touch`` /
``contains`` / ``insert`` / ``invalidate`` / ``resident_lines`` /
``capacity`` / ``occupancy``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["FastLine", "FastMetaCache", "FastCache", "install_fast_hierarchy"]


class FastLine:
    """One resident L1I line: the metadata subset of ``CacheLine``."""

    __slots__ = ("line_addr", "prefetched", "src_meta")

    def __init__(self, line_addr: int) -> None:
        self.line_addr = line_addr
        self.prefetched = False
        self.src_meta: Any = None

    def __repr__(self) -> str:
        return f"FastLine(0x{self.line_addr:x}, prefetched={self.prefetched})"


class FastMetaCache:
    """Dict-ordered set-associative cache with per-line metadata (L1I)."""

    def __init__(self, sets: int, ways: int, replacement: str = "lru") -> None:
        if sets < 1 or ways < 1:
            raise ValueError("cache needs at least one set and one way")
        if replacement not in ("lru", "fifo"):
            raise ValueError(f"unknown replacement policy {replacement!r}")
        self.sets = sets
        self.ways = ways
        self.replacement = replacement
        self._lru = replacement == "lru"
        self._sets: List[Dict[int, FastLine]] = [dict() for _ in range(sets)]
        # Flat membership mirror for the numpy backend's vectorized
        # residency checks; None until a consumer asks for it.
        self._members: Optional[set] = None
        # Bumped on every membership change (insert of a new line,
        # eviction, invalidate) so mirror-derived arrays can be cached.
        self._version = 0

    def enable_member_mirror(self) -> set:
        """Maintain (and return) a flat set of resident line addresses."""
        if self._members is None:
            members = set()
            for cache_set in self._sets:
                members.update(cache_set)
            self._members = members
        return self._members

    def lookup(self, line_addr: int, update_lru: bool = True) -> Optional[FastLine]:
        cache_set = self._sets[line_addr % self.sets]
        entry = cache_set.get(line_addr)
        if entry is not None and update_lru and self._lru:
            del cache_set[line_addr]
            cache_set[line_addr] = entry
        return entry

    def touch(self, entry: FastLine) -> None:
        """Promote a line found via a no-update probe (one LRU touch)."""
        if self._lru:
            cache_set = self._sets[entry.line_addr % self.sets]
            del cache_set[entry.line_addr]
            cache_set[entry.line_addr] = entry

    def contains(self, line_addr: int) -> bool:
        return line_addr in self._sets[line_addr % self.sets]

    def insert(self, line_addr: int) -> Optional[FastLine]:
        """Insert a line, returning the evicted line (if any)."""
        cache_set = self._sets[line_addr % self.sets]
        existing = cache_set.get(line_addr)
        if existing is not None:
            if self._lru:
                del cache_set[line_addr]
                cache_set[line_addr] = existing
            return None
        victim: Optional[FastLine] = None
        if len(cache_set) >= self.ways:
            victim_addr = next(iter(cache_set))
            victim = cache_set.pop(victim_addr)
            if self._members is not None:
                self._members.discard(victim_addr)
        cache_set[line_addr] = FastLine(line_addr)
        if self._members is not None:
            self._members.add(line_addr)
        self._version += 1
        return victim

    def invalidate(self, line_addr: int) -> Optional[FastLine]:
        if self._members is not None:
            self._members.discard(line_addr)
        self._version += 1
        return self._sets[line_addr % self.sets].pop(line_addr, None)

    def resident_lines(self) -> List[int]:
        return [addr for cache_set in self._sets for addr in cache_set]

    @property
    def capacity(self) -> int:
        return self.sets * self.ways

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)


class FastCache:
    """Dict-ordered LRU cache without per-line metadata (L1D/L2/LLC).

    ``lookup`` returns a truthy sentinel on hit (callers only test
    ``is not None``); victims are discarded, matching every consumer of
    the data-side caches, which never reads the evicted line.
    """

    def __init__(self, sets: int, ways: int, replacement: str = "lru") -> None:
        if sets < 1 or ways < 1:
            raise ValueError("cache needs at least one set and one way")
        if replacement != "lru":
            raise ValueError("FastCache only models LRU (data-side caches)")
        self.sets = sets
        self.ways = ways
        self.replacement = replacement
        self._sets: List[Dict[int, bool]] = [dict() for _ in range(sets)]
        self._members: Optional[set] = None
        self._version = 0

    def enable_member_mirror(self) -> set:
        if self._members is None:
            members = set()
            for cache_set in self._sets:
                members.update(cache_set)
            self._members = members
        return self._members

    def lookup(self, line_addr: int, update_lru: bool = True) -> Optional[bool]:
        cache_set = self._sets[line_addr % self.sets]
        if line_addr not in cache_set:
            return None
        if update_lru:
            del cache_set[line_addr]
            cache_set[line_addr] = True
        return True

    def contains(self, line_addr: int) -> bool:
        return line_addr in self._sets[line_addr % self.sets]

    def insert(self, line_addr: int) -> None:
        cache_set = self._sets[line_addr % self.sets]
        if line_addr in cache_set:
            del cache_set[line_addr]
            cache_set[line_addr] = True
            return None
        if len(cache_set) >= self.ways:
            victim_addr = next(iter(cache_set))
            del cache_set[victim_addr]
            if self._members is not None:
                self._members.discard(victim_addr)
        cache_set[line_addr] = True
        if self._members is not None:
            self._members.add(line_addr)
        self._version += 1
        return None

    def invalidate(self, line_addr: int) -> None:
        if self._members is not None:
            self._members.discard(line_addr)
        self._version += 1
        self._sets[line_addr % self.sets].pop(line_addr, None)

    def resident_lines(self) -> List[int]:
        return [addr for cache_set in self._sets for addr in cache_set]

    @property
    def capacity(self) -> int:
        return self.sets * self.ways

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)


def install_fast_hierarchy(memory: Any, config: Any) -> None:
    """Swap a ``MemoryHierarchy``'s L2/LLC for dict-ordered caches.

    ``MemoryHierarchy._access`` only calls ``lookup``/``insert`` and
    ignores eviction results, so the fast caches are drop-in; the walk
    logic (and its counter updates) stays the single shared
    implementation.
    """
    memory.l2 = FastCache(config.l2_sets, config.l2_ways)
    memory.llc = FastCache(config.llc_sets, config.llc_ways)
