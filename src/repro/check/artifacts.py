"""Crash-safe artifact IO: atomic write-replace and guarded loading.

A torn artifact — a metrics export or the benchmark trajectory half
written when the process died — is worse than a missing one: downstream
tooling reads garbage and either stack-traces or gates CI on noise.
Every writer in the repository that produces a consumable artifact goes
through :func:`atomic_write_bytes`: the payload is staged in a unique
temp file in the destination directory, fsynced, then ``os.replace``d
into place, so readers observe either the old complete file or the new
complete file, never a prefix.

:func:`load_json_guarded` is the matching reader: it distinguishes
missing (fine, return the default) from torn/corrupt (log and return the
default, with the error text so callers can surface it) and never lets a
decode error escape as a stack trace.
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import sys
from typing import Any, Optional, Tuple

logger = logging.getLogger(__name__)

#: Monotonic suffix so concurrent writers in one process never collide on
#: the staging file; the pid handles cross-process collisions.
_tmp_counter = itertools.count()


def _fsfault(op: str, path: str, scope: str, tmp: Optional[str] = None) -> None:
    """Chaos seam (:mod:`repro.check.fsfault`): zero-cost unless armed.

    Nothing is imported when ``REPRO_FSFAULT`` is unset and no injector
    module was loaded — the same contract the observability hooks keep.
    """
    if (
        "repro.check.fsfault" not in sys.modules
        and not os.environ.get("REPRO_FSFAULT")
    ):
        return
    from repro.check.fsfault import fault_check

    fault_check(op, path, scope=scope, tmp=tmp)


def atomic_write_bytes(
    path: str, data: bytes, fsync: bool = True, scope: str = "artifact"
) -> None:
    """Write ``data`` to ``path`` atomically (tmp + fsync + rename).

    The staging file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem rename, which POSIX guarantees to
    be atomic.  ``fsync=False`` skips the durability barrier for callers
    that only need atomicity (tests, scratch output).  ``scope`` labels
    this write for the fault-injection harness (``cache``, ``ledger``,
    ``checkpoint``, or the default ``artifact``).
    """
    tmp = f"{path}.{os.getpid()}.{next(_tmp_counter)}.tmp"
    try:
        _fsfault("write", path, scope)
        with open(tmp, "wb") as fh:
            fh.write(data)
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        _fsfault("rename", path, scope, tmp=tmp)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if fsync:
        # Make the rename itself durable where the platform allows it.
        try:
            dir_fd = os.open(os.path.dirname(os.path.abspath(path)), os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)


def atomic_write_text(
    path: str, text: str, encoding: str = "utf-8", fsync: bool = True
) -> None:
    """Atomic text variant of :func:`atomic_write_bytes`.

    No newline translation is applied: the string is written byte-exact,
    matching ``open(path, "w", newline="")`` semantics.
    """
    atomic_write_bytes(path, text.encode(encoding), fsync=fsync)


def atomic_write_json(
    path: str, payload: Any, indent: int = 2, fsync: bool = True
) -> None:
    """Serialize ``payload`` as JSON and write it atomically."""
    atomic_write_text(
        path, json.dumps(payload, indent=indent) + "\n", fsync=fsync
    )


def load_json_guarded(
    path: str, default: Any = None, label: str = "artifact"
) -> Tuple[Any, Optional[str]]:
    """Load JSON from ``path`` without ever raising for bad files.

    Returns ``(payload, error)``.  A missing file yields
    ``(default, None)`` — absence is a normal state, not damage.  A torn
    or corrupt file yields ``(default, error_text)`` after logging a
    warning, so callers can degrade gracefully and still tell the user
    what was skipped.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh), None
    except FileNotFoundError:
        return default, None
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        error = f"{label} {path} is unreadable ({exc})"
        logger.warning("%s; treating as absent", error)
        return default, error
