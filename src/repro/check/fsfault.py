"""Deterministic filesystem fault injection + the store chaos harness.

Shared-store bugs hide behind filesystem behaviour that never happens on
a developer laptop: the disk fills mid-publish, a rename lands after the
staging file was torn, a write hangs for seconds.  This module makes
those failures *reproducible*: ``REPRO_FSFAULT`` arms seeded, hash-based
fault rules at the store's IO seams (the same selection discipline as
``REPRO_FAULT_INJECT`` in :mod:`repro.analysis.parallel`), so the exact
same faults fire on the exact same operations every run.

Syntax (comma-separated rules)::

    REPRO_FSFAULT=enospc:0.05,torn-rename:0.05
    REPRO_FSFAULT=eio:0.1:ledger
    REPRO_FSFAULT=slow:0.2:cache

Each rule is ``mode:fraction[:scope]`` with mode one of

* ``enospc`` / ``eio`` — raise ``OSError(ENOSPC/EIO)`` at the seam
  (write, rename, lease-create, ledger/manifest append);
* ``torn-rename`` — truncate the staging file to half before the
  ``os.replace``, simulating a crash between write and rename: the
  destination ends up torn and the store's checksum must catch it;
* ``slow`` — sleep at the seam, widening race windows.

``scope`` restricts a rule to one seam family (``cache``, ``ledger``,
``checkpoint``, ``artifact``); omitted means all.  Selection hashes
``(seed, mode, op, basename, per-(op,basename) counter)`` — deterministic
per process, independent of wall clock and interleaving.  The seed comes
from ``REPRO_FSFAULT_SEED`` (default 0).

The seams themselves are zero-cost when chaos is off: callers check
``"repro.check.fsfault" not in sys.modules and not REPRO_FSFAULT``
before importing anything from here (the observability contract from
DESIGN §8).

The bottom half is the chaos harness the CI ``chaos-smoke`` job and
``repro chaos`` drive: a multi-process stress test (N writers × M
readers × eviction × injected faults) over one shared
:class:`~repro.analysis.store.ShardedRunStore`, asserting the store
invariants — a torn entry is never *served*, the byte budget holds, and
injected ENOSPC degrades workers to read-only instead of killing them —
plus :func:`lease_steal_check`, which SIGKILLs a lease owner and proves
a follower steals the orphaned claim.
"""

from __future__ import annotations

import errno
import hashlib
import json
import logging
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

logger = logging.getLogger(__name__)

_MODES = ("enospc", "eio", "torn-rename", "slow")

#: How long a ``slow`` rule sleeps at a selected seam (seconds).
SLOW_SECONDS = 0.05


@dataclass(frozen=True)
class FaultRule:
    """One armed fault: ``mode:fraction[:scope]``."""

    mode: str
    fraction: float
    scope: Optional[str] = None


def parse_rules(raw: str) -> List[FaultRule]:
    """Parse a comma-separated ``REPRO_FSFAULT`` value (strict)."""
    rules: List[FaultRule] = []
    for chunk in raw.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) not in (2, 3):
            raise ValueError(
                f"REPRO_FSFAULT rule {chunk!r} must be mode:fraction[:scope]"
            )
        mode = parts[0].strip().lower()
        if mode not in _MODES:
            raise ValueError(
                f"REPRO_FSFAULT mode {mode!r} not in {_MODES}"
            )
        try:
            fraction = float(parts[1])
        except ValueError:
            raise ValueError(
                f"REPRO_FSFAULT fraction {parts[1]!r} is not a number"
            ) from None
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(
                f"REPRO_FSFAULT fraction {fraction} must be in [0, 1]"
            )
        scope = parts[2].strip().lower() if len(parts) == 3 else None
        rules.append(FaultRule(mode, fraction, scope or None))
    return rules


class FsFaultInjector:
    """Seeded, deterministic fault selection over IO seams.

    Selection is a pure function of ``(seed, mode, op, basename, n)``
    where ``n`` is this process's running count of ``(op, basename)``
    seam crossings — two runs with the same seed and the same per-file
    operation sequence inject identical faults.
    """

    def __init__(self, rules: List[FaultRule], seed: int = 0) -> None:
        self.rules = rules
        self.seed = seed
        self._counts: Dict[Tuple[str, str], int] = {}
        self.injected: Dict[str, int] = {mode: 0 for mode in _MODES}

    def _selects(self, rule: FaultRule, op: str, name: str, n: int) -> bool:
        digest = hashlib.sha256(
            f"{self.seed}:{rule.mode}:{op}:{name}:{n}".encode("utf-8")
        ).digest()
        bucket = int.from_bytes(digest[:4], "big") % 10_000
        return bucket < int(rule.fraction * 10_000)

    def check(
        self,
        op: str,
        path: str,
        scope: str = "artifact",
        tmp: Optional[str] = None,
    ) -> None:
        """Cross one seam: maybe raise, sleep, or tear the staging file.

        ``op`` names the operation (``write``, ``rename``, ``append``,
        ``lease``); ``tmp`` is the staging file a ``rename`` is about to
        publish (the torn-rename target).
        """
        name = os.path.basename(path)
        n = self._counts.get((op, name), 0)
        self._counts[(op, name)] = n + 1
        for rule in self.rules:
            if rule.scope is not None and rule.scope != scope:
                continue
            if rule.mode == "torn-rename" and (op != "rename" or tmp is None):
                continue
            if not self._selects(rule, op, name, n):
                continue
            self.injected[rule.mode] += 1
            if rule.mode == "enospc":
                raise OSError(errno.ENOSPC, "injected: no space left on device", path)
            if rule.mode == "eio":
                raise OSError(errno.EIO, "injected: input/output error", path)
            if rule.mode == "slow":
                time.sleep(SLOW_SECONDS)
                continue
            if rule.mode == "torn-rename":
                _tear(tmp)
                continue


def _tear(tmp: str) -> None:
    """Truncate a staging file to half, as a crash mid-write would."""
    try:
        size = os.path.getsize(tmp)
        with open(tmp, "rb+") as fh:
            fh.truncate(size // 2)
    except OSError:
        pass


_injector: Optional[FsFaultInjector] = None
_env_injector: Optional[FsFaultInjector] = None
_injector_env: Optional[str] = None


def active_injector() -> Optional[FsFaultInjector]:
    """The armed injector: programmatic if installed, else from env.

    The env-derived injector is cached per ``REPRO_FSFAULT`` value so
    counters persist across seams within one process, and re-arms when
    the variable changes (tests flip it).
    """
    global _injector, _env_injector, _injector_env
    if _injector is not None:
        return _injector
    raw = os.environ.get("REPRO_FSFAULT", "").strip()
    if not raw:
        _env_injector = None
        _injector_env = None
        return None
    if raw != _injector_env:
        seed_raw = os.environ.get("REPRO_FSFAULT_SEED", "0").strip() or "0"
        try:
            seed = int(seed_raw)
        except ValueError:
            raise ValueError(
                f"REPRO_FSFAULT_SEED must be an integer, got {seed_raw!r}"
            ) from None
        _env_injector = FsFaultInjector(parse_rules(raw), seed)
        _injector_env = raw
    return _env_injector


def fault_check(
    op: str, path: str, scope: str = "artifact", tmp: Optional[str] = None
) -> None:
    """The seam entry point callers invoke once chaos might be armed."""
    injector = active_injector()
    if injector is not None:
        injector.check(op, path, scope=scope, tmp=tmp)


def set_fsfault(
    injector: Optional[FsFaultInjector],
) -> Optional[FsFaultInjector]:
    """Install a programmatic injector (tests); returns the previous."""
    global _injector
    previous = _injector
    _injector = injector
    return previous


def reset_fault_state() -> None:
    """Drop all injector state (programmatic and env-cached)."""
    global _injector, _env_injector, _injector_env
    _injector = None
    _env_injector = None
    _injector_env = None


# ---------------------------------------------------------------------------
# chaos harness: multi-process store stress
# ---------------------------------------------------------------------------


def _stress_key(seed: int, i: int) -> str:
    return hashlib.sha256(f"stress:{seed}:{i}".encode("utf-8")).hexdigest()[:32]


def _stress_blob(seed: int, i: int, payload_bytes: int) -> str:
    unit = hashlib.sha256(f"blob:{seed}:{i}".encode("utf-8")).hexdigest()
    reps = max(1, payload_bytes // len(unit) + 1)
    return (unit * reps)[:payload_bytes]


def _stress_payload(seed: int, i: int, payload_bytes: int) -> Dict[str, Any]:
    return {
        "trace_name": f"stress-{i}",
        "category": "stress",
        "prefetcher_name": "none",
        "stats": {"i": i, "blob": _stress_blob(seed, i, payload_bytes)},
    }


def _report_path(root: str, name: str) -> str:
    return os.path.join(root, "_reports", f"{name}.json")


def _write_report(root: str, name: str, report: Dict[str, Any]) -> None:
    # Plain (unfaulted) IO on purpose: the harness's own bookkeeping must
    # survive the chaos it injects into the store.
    path = _report_path(root, name)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w") as fh:
        json.dump(report, fh)
    os.replace(tmp, path)


def _stress_writer(
    root: str,
    name: str,
    seed: int,
    entries: int,
    payload_bytes: int,
    max_bytes: Optional[int],
    deadline: float,
) -> None:
    from repro.analysis.store import ShardedRunStore

    store = ShardedRunStore(root, max_bytes=max_bytes, reap_on_open=False)
    report = {
        "simulated": 0,
        "published": 0,
        "publish_failed": 0,
        "coalesced": 0,
        "steals": 0,
        "degraded": False,
        "verify_failures": 0,
    }
    for i in range(entries):
        key = _stress_key(seed, i)
        expected = _stress_blob(seed, i, payload_bytes)
        while time.time() < deadline:
            data, status = store.load(key)
            if status == "ok":
                blob = data.get("stats", {}).get("blob")
                if blob != expected:
                    report["verify_failures"] += 1
                else:
                    report["coalesced"] += 1
                break
            lease = store.claim(key) or store.steal(key)
            if lease is not None:
                # Post-claim re-probe, same as the engine: the previous
                # owner may have published between our miss and this
                # claim — serving that entry instead of re-simulating is
                # what makes the dedup count exact.
                data, status = store.load(key)
                if status == "ok":
                    blob = data.get("stats", {}).get("blob")
                    if blob != expected:
                        report["verify_failures"] += 1
                    else:
                        report["coalesced"] += 1
                    store.release(lease)
                    break
                # "Simulate" (construct the deterministic payload) and
                # publish; a degraded store returns False and the result
                # simply stays unshared — exactly the production path.
                report["simulated"] += 1
                if store.publish(key, _stress_payload(seed, i, payload_bytes)):
                    report["published"] += 1
                else:
                    report["publish_failed"] += 1
                store.release(lease)
                break
            time.sleep(0.01)
    report["steals"] = store.lease_steals
    report["degraded"] = store.read_only
    _write_report(root, name, report)


def _stress_reader(
    root: str,
    name: str,
    seed: int,
    entries: int,
    payload_bytes: int,
    deadline: float,
) -> None:
    from repro.analysis.store import ShardedRunStore

    store = ShardedRunStore(root, reap_on_open=False)
    report = {"served": 0, "missing": 0, "rejected": 0, "verify_failures": 0}
    i = 0
    while time.time() < deadline:
        key = _stress_key(seed, i % entries)
        data, status = store.load(key)
        if status == "ok":
            blob = data.get("stats", {}).get("blob")
            expected = _stress_blob(seed, i % entries, payload_bytes)
            if blob != expected:
                report["verify_failures"] += 1
            else:
                report["served"] += 1
        elif status == "missing":
            report["missing"] += 1
        else:
            # corrupt/stale: *detected* damage is the contract under
            # torn-rename injection — never served, so not a violation.
            report["rejected"] += 1
        i += 1
        time.sleep(0.002)
    _write_report(root, name, report)


def run_store_stress(
    root: str,
    writers: int = 2,
    readers: int = 2,
    entries: int = 50,
    seconds: float = 20.0,
    payload_bytes: int = 2048,
    max_bytes: Optional[int] = None,
    seed: int = 0,
    expect_degraded: bool = False,
) -> Dict[str, Any]:
    """Run the multi-process stress and check the store invariants.

    Returns a report dict with ``ok`` plus per-invariant fields.  Faults
    are armed by the *environment* (``REPRO_FSFAULT``), inherited by the
    worker processes — the harness itself stays deterministic either way.
    """
    from repro.analysis.store import ShardedRunStore

    os.makedirs(root, exist_ok=True)
    deadline = time.time() + seconds
    ctx = multiprocessing.get_context()
    procs = []
    names = []
    for w in range(writers):
        name = f"writer-{w}"
        names.append(name)
        procs.append(
            ctx.Process(
                target=_stress_writer,
                args=(root, name, seed, entries, payload_bytes, max_bytes,
                      deadline),
                name=name,
            )
        )
    for r in range(readers):
        name = f"reader-{r}"
        names.append(name)
        procs.append(
            ctx.Process(
                target=_stress_reader,
                args=(root, name, seed, entries, payload_bytes, deadline),
                name=name,
            )
        )
    for proc in procs:
        proc.start()
    # Workers inherited the armed REPRO_FSFAULT at start(); disarm the
    # parent so its final accounting pass below is genuinely fault-free.
    armed = os.environ.pop("REPRO_FSFAULT", None)
    reset_fault_state()
    for proc in procs:
        proc.join(timeout=seconds + 60.0)
        if proc.is_alive():  # pragma: no cover — hung worker
            proc.terminate()
            proc.join(timeout=5.0)
    worker_failures = [p.name for p in procs if p.exitcode != 0]

    reports: Dict[str, Dict[str, Any]] = {}
    for name in names:
        try:
            with open(_report_path(root, name)) as fh:
                reports[name] = json.load(fh)
        except (OSError, ValueError):
            reports[name] = {}

    verify_failures = sum(
        r.get("verify_failures", 0) for r in reports.values()
    )
    degraded = [n for n, r in reports.items() if r.get("degraded")]
    simulated = sum(r.get("simulated", 0) for r in reports.values())
    served = sum(r.get("served", 0) for r in reports.values())
    rejected = sum(r.get("rejected", 0) for r in reports.values())

    # Final accounting from a fresh, disarmed store view in the parent.
    store = ShardedRunStore(root, max_bytes=max_bytes, reap_on_open=True)
    if max_bytes is not None:
        store.maintain()
    final_bytes = store.total_bytes()
    budget_ok = max_bytes is None or final_bytes <= max_bytes
    degrade_ok = bool(degraded) if expect_degraded else True
    if armed is not None:
        os.environ["REPRO_FSFAULT"] = armed

    ok = (
        not worker_failures
        and verify_failures == 0
        and budget_ok
        and degrade_ok
    )
    return {
        "ok": ok,
        "worker_failures": worker_failures,
        "verify_failures": verify_failures,
        "torn_rejected": rejected,
        "served": served,
        "simulated": simulated,
        "degraded_workers": degraded,
        "expect_degraded": expect_degraded,
        "final_bytes": final_bytes,
        "max_bytes": max_bytes,
        "budget_ok": budget_ok,
        "reports": reports,
    }


# ---------------------------------------------------------------------------
# lease steal check: SIGKILLed owner
# ---------------------------------------------------------------------------


def _doomed_owner(root: str, key: str) -> None:  # pragma: no cover — dies
    from repro.analysis.store import ShardedRunStore

    store = ShardedRunStore(root, reap_on_open=False)
    lease = store.claim(key)
    assert lease is not None and lease.path is not None
    os.kill(os.getpid(), signal.SIGKILL)


def lease_steal_check(root: str, timeout: float = 30.0) -> Dict[str, Any]:
    """Prove a follower steals the lease of a SIGKILLed owner.

    A child process claims a key and is SIGKILLed holding the lease; the
    parent must observe the lease as stale (dead pid on this host) and
    win the steal race.  Returns ``{"ok": bool, ...}``.
    """
    from repro.analysis.store import ShardedRunStore

    os.makedirs(root, exist_ok=True)
    key = _stress_key(0, 999_999)
    ctx = multiprocessing.get_context()
    child = ctx.Process(target=_doomed_owner, args=(root, key))
    child.start()
    child.join(timeout=timeout)
    killed = child.exitcode == -signal.SIGKILL
    store = ShardedRunStore(root, reap_on_open=False)
    state_seen = None
    stolen = False
    deadline = time.time() + timeout
    while time.time() < deadline:
        state_seen, _info = store.lease_state(key)
        if state_seen in ("stale", "free"):
            lease = store.steal(key)
            if lease is not None:
                stolen = True
                store.release(lease)
            break
        time.sleep(0.05)
    return {
        "ok": killed and stolen,
        "owner_sigkilled": killed,
        "lease_state_seen": state_seen,
        "stolen": stolen,
    }
