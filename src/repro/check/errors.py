"""Structured error taxonomy for ingestion hardening and the sanitizer.

Every class here is a :class:`ValueError` subclass so existing callers
(and tests) that catch ``ValueError`` keep working; the subclasses add
machine-readable context — file path, byte offset, record index, the
violated invariant — so tooling can triage failures without parsing
message strings.

The taxonomy:

* :class:`CheckError` — root of everything raised by ``repro.check``.
* :class:`TraceError` — a trace file failed ingestion.  Concrete kinds:
  :class:`TraceMagicError`, :class:`TraceVersionError`,
  :class:`TraceHeaderError`, :class:`TraceCRCError`,
  :class:`TracePayloadError` (zlib/struct-level payload damage),
  :class:`TraceTruncatedError`, :class:`TraceRecordError`.
* :class:`ConfigError` — a :class:`~repro.sim.config.SimConfig` or
  entangling variant violates a structural constraint.
* :class:`InvariantViolation` — the runtime sanitizer caught the
  simulated hardware model outside its declared contract.
* :class:`ArtifactError` — an on-disk artifact (trajectory, metrics
  export) is torn or corrupt.
"""

from __future__ import annotations

from typing import Optional


class CheckError(ValueError):
    """Root of the ``repro.check`` error taxonomy."""


class TraceError(CheckError):
    """A trace file failed ingestion.

    Attributes:
        path: the offending file.
        offset: byte offset of the first bad byte where known (file
            offset for header damage, payload offset for record damage).
        record_index: index of the first bad record where known.
    """

    def __init__(
        self,
        message: str,
        *,
        path: Optional[str] = None,
        offset: Optional[int] = None,
        record_index: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.path = path
        self.offset = offset
        self.record_index = record_index


class TraceMagicError(TraceError):
    """The file does not start with the ``EPTR`` magic."""


class TraceVersionError(TraceError):
    """The version byte names a format this reader does not speak."""


class TraceHeaderError(TraceError):
    """The header (name/category/count fields) is malformed or truncated."""


class TraceCRCError(TraceError):
    """The stored checksum does not match the file contents."""


class TracePayloadError(TraceError):
    """The record block is damaged at the zlib/struct level."""


class TraceTruncatedError(TraceError):
    """The record block is shorter than the declared record count."""


class TraceRecordError(TraceError):
    """An individual record fails field validation (bad branch type,
    reserved flag bit set, out-of-range PC or size)."""


class ConfigError(CheckError):
    """A simulator or prefetcher configuration violates a structural
    constraint (non-power-of-two sets, bit budget overflow, ...)."""


class InvariantViolation(CheckError):
    """The runtime sanitizer caught a hardware-model invariant breach.

    Attributes:
        invariant: short machine-readable name (e.g. ``confidence_range``).
        cycle: simulator cycle at which the breach was observed (if the
            violation was raised from inside a simulation).
        context: free-form state snapshot for debugging.
    """

    def __init__(
        self,
        message: str,
        *,
        invariant: str = "unknown",
        cycle: Optional[int] = None,
        context: Optional[dict] = None,
    ) -> None:
        super().__init__(message)
        self.invariant = invariant
        self.cycle = cycle
        self.context = dict(context or {})


class ArtifactError(CheckError):
    """An on-disk artifact is torn, corrupt, or unwritable."""
